"""§2.2.1 baseline — Batcher's non-oblivious sorting-based routing:
Θ(log² N) on cube-class networks, queue-free, permutation-only.

The paper contrasts it with the oblivious randomized algorithms it
builds on; this bench regenerates the comparison series.
"""

import numpy as np
import pytest

from repro.routing import ValiantHypercubeRouter, bitonic_route, bitonic_stage_count
from repro.routing.batcher import bitonic_vs_valiant_times
from repro.topology import Hypercube
from repro.util.tables import Table


@pytest.mark.parametrize("k", [4, 6, 8])
def test_bitonic_routing(benchmark, k):
    cube = Hypercube(k)
    rng = np.random.default_rng(k)
    perm = rng.permutation(cube.num_nodes)

    stats = benchmark.pedantic(
        lambda: bitonic_route(cube, perm), rounds=1, iterations=1
    )
    assert stats.completed
    assert stats.steps == bitonic_stage_count(k)
    assert stats.max_queue == 1


def test_batcher_vs_valiant_series(benchmark, table_sink):
    """The gap grows like log N: Θ(log² N) vs Õ(log N)."""

    def run():
        rows = []
        for k in (4, 6, 8, 10):
            cube = Hypercube(k)
            rng = np.random.default_rng(k)
            perm = rng.permutation(cube.num_nodes)
            val = ValiantHypercubeRouter(cube, seed=k).route(
                np.arange(cube.num_nodes), perm
            )
            assert val.completed
            rows.append(bitonic_vs_valiant_times(k, val.steps))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(["log2N", "batcher (k(k+1)/2)", "valiant (measured)", "ratio"])
    for r in rows:
        table.add_row([r["log2N"], r["batcher_steps"], r["valiant_steps"],
                       round(r["ratio"], 2)])
    table.set_caption(
        "§2.2.1: Batcher routing is queue-free but Θ(log² N); the "
        "randomized oblivious algorithms stay Õ(log N) — and the paper's "
        "leveled networks go below even that."
    )
    table_sink(table)
    ratios = [r["ratio"] for r in rows]
    assert ratios[-1] > ratios[0]  # the gap widens with N
