"""E10 — §1/§3.3: constant-factor comparison against the prior schemes.

* ours (2 phases) vs Karlin–Upfal (4 phases): predicted ratio ≈ 2;
* Ranade-style merge machinery under load: normalized constant exceeds
  the direct algorithms' (the paper cites ≈100 for Ranade's bound on the
  mesh; we measure the mechanism's overhead on its native butterfly).
"""

import numpy as np
import pytest

from repro.emulation import (
    KarlinUpfalMeshEmulator,
    LeveledEmulator,
    MeshEmulator,
    RanadeEmulator,
)
from repro.experiments.exp_emulation import run_e10
from repro.pram import ReadRequest, StepTrace, permutation_step
from repro.topology import DAryButterflyLeveled, Mesh2D


def test_ku_vs_ours_ratio(benchmark):
    n = 16
    m = 4 * n * n
    step = permutation_step(n * n, m, seed=24)

    def run():
        ours = MeshEmulator(Mesh2D.square(n), m, seed=25).emulate_step(step)
        ku = KarlinUpfalMeshEmulator(Mesh2D.square(n), m, seed=25).emulate_step(step)
        return ours, ku

    ours, ku = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = ku.total_steps / ours.total_steps
    assert 1.4 <= ratio <= 3.0  # ≈ 2 (§3.3: two phases eliminated)


def test_ranade_machinery_overhead_under_load(benchmark):
    k, h = 5, 6
    rows = 1 << k
    m = 16 * rows
    rng = np.random.default_rng(26)
    addrs = rng.choice(m, size=h * rows, replace=False)
    step = StepTrace(reads=[ReadRequest(i % rows, int(a)) for i, a in enumerate(addrs)])

    def run():
        ranade = RanadeEmulator(k, address_space=m, seed=27)
        lev = LeveledEmulator(DAryButterflyLeveled(2, k), m, seed=27)
        return ranade.emulate_step(step), lev.emulate_step(step), ranade, lev

    c_r, c_l, ranade, lev = benchmark.pedantic(run, rounds=1, iterations=1)
    norm_ranade = c_r.total_steps / ranade.scale
    norm_ours = c_l.total_steps / lev.scale
    assert norm_ranade > 1.3 * norm_ours


def test_e10_table(benchmark, table_sink):
    table = benchmark.pedantic(
        lambda: run_e10(n=12, trials=2, seed=54), rounds=1, iterations=1
    )
    table_sink(table)
    times = {row[0]: float(row[1]) for row in table.rows}
    assert times["karlin-upfal"] > times["ours"]


def test_ranade_buffer_size_sensitivity(benchmark):
    """Ablation: smaller merge buffers increase stalls (the mechanism
    behind the large constant)."""
    k, h = 5, 4
    rows = 1 << k
    m = 16 * rows
    rng = np.random.default_rng(28)
    addrs = rng.choice(m, size=h * rows, replace=False)
    step = StepTrace(reads=[ReadRequest(i % rows, int(a)) for i, a in enumerate(addrs)])

    def run():
        out = {}
        for buf in (1, 2, 8):
            emu = RanadeEmulator(k, address_space=m, buffer_size=buf, seed=29)
            out[buf] = emu.emulate_step(step).total_steps
        return out

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    assert times[1] >= times[8]
