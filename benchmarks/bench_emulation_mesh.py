"""E8 — Theorem 3.2: one EREW PRAM step on the n x n mesh in 4n + o(n)."""

import pytest

from repro.analysis import MESH_EMULATION_CLAIM, fitted_constant
from repro.emulation import MeshEmulator
from repro.experiments.exp_mesh import run_e8
from repro.pram import permutation_step, random_trace
from repro.topology import Mesh2D


@pytest.mark.parametrize("n", [8, 16, 24])
def test_erew_step_on_mesh(benchmark, n):
    mesh = Mesh2D.square(n)
    m = 4 * n * n

    def run():
        emu = MeshEmulator(mesh, address_space=m, seed=14)
        return emu.emulate_step(permutation_step(n * n, m, seed=15))

    cost = benchmark.pedantic(run, rounds=1, iterations=1)
    assert cost.total_steps <= MESH_EMULATION_CLAIM.bound(n)
    assert cost.rehashes == 0


def test_e8_table_and_constant(benchmark, table_sink):
    table = benchmark.pedantic(
        lambda: run_e8(ns=(8, 16, 24), trials=2, seed=42), rounds=1, iterations=1
    )
    table_sink(table)
    ns = [float(r[0]) for r in table.rows]
    times = [float(r[1]) for r in table.rows]
    slope = fitted_constant(ns, times)
    # Theorem 3.2's leading constant: ≈4 (the o(n) term inflates small n)
    assert 2.0 <= slope <= 6.0


def test_multi_step_trace_emulation(benchmark):
    """Steady-state cost over a multi-step EREW trace."""
    n = 12
    mesh = Mesh2D.square(n)
    m = 4 * n * n
    trace = random_trace(n * n, m, 4, seed=16)

    def run():
        emu = MeshEmulator(mesh, address_space=m, seed=17)
        return emu.emulate_trace(trace)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.pram_steps == 4
    assert report.mean_step_time <= MESH_EMULATION_CLAIM.bound(n)
    assert report.total_rehashes == 0


def test_write_only_steps_cost_half(benchmark):
    """Writes need no reply phase: cost ≈ 2n + o(n), not 4n."""
    n = 12
    mesh = Mesh2D.square(n)
    m = 4 * n * n

    def run():
        emu = MeshEmulator(mesh, address_space=m, seed=18)
        step = permutation_step(n * n, m, seed=19, kind="write")
        return emu.emulate_step(step)

    cost = benchmark.pedantic(run, rounds=1, iterations=1)
    assert cost.reply_steps == 0
    assert cost.total_steps <= 0.75 * MESH_EMULATION_CLAIM.bound(n)
