"""E3 — Theorem 2.3 / Corollary 2.2: Õ(n) routing on the d-way shuffle."""

import pytest

from repro.experiments.exp_shuffle import run_e3, run_e3_relation
from repro.routing import ShuffleRouter
from repro.topology import DWayShuffle


@pytest.mark.parametrize("d,n", [(2, 6), (3, 3), (3, 4), (4, 3)])
def test_shuffle_permutation_routing(benchmark, d, n):
    sh = DWayShuffle(d, n)

    def run():
        return ShuffleRouter(sh, seed=4).route_random_permutation()

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats.completed
    assert stats.steps <= 10 * n  # Õ(n)
    assert all(h == 2 * n for h in stats.hops)  # exact unique-path lengths


def test_n_way_shuffle_routing(benchmark):
    """The headline instance: d = n, N = n^n nodes, diameter n."""
    sh = DWayShuffle.n_way(3)

    def run():
        return ShuffleRouter(sh, seed=5).route_random_permutation()

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats.completed
    assert stats.steps <= 10 * sh.n


def test_shuffle_n_relation(benchmark):
    sh = DWayShuffle(3, 3)

    def run():
        return ShuffleRouter(sh, seed=6).route_n_relation()

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats.completed


def test_e3_table(benchmark, table_sink):
    table = benchmark.pedantic(
        lambda: run_e3(settings=((2, 4), (2, 6), (3, 3)), trials=2, seed=23),
        rounds=1,
        iterations=1,
    )
    table_sink(table)
    # columns: d, n, N(max), time(mean), time/n(mean), max_queue(max)
    for row in table.rows:
        assert float(row[4]) < 10.0  # time/n stays a small constant


def test_e3_relation_table(benchmark, table_sink):
    table = benchmark.pedantic(
        lambda: run_e3_relation(settings=((2, 4),), trials=2, seed=24),
        rounds=1,
        iterations=1,
    )
    table_sink(table)
