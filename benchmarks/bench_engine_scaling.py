"""Engine-scaling benchmark: seed (reference) engine vs. compiled fast path.

Times the two routing engines on the workloads the paper's headline
claims need at scale — leveled permutation routing (Theorem 2.1), CRCW
hotspot emulation with combining (Theorem 2.6), 3-stage mesh permutation
routing (Theorem 3.1), mesh EREW/CRCW PRAM emulation (Theorems 3.2/2.6),
and credit-flow-control routing under O(1) node buffers (Corollary 3.3,
the vectorized constrained-batch mode) — at N >= 512 processors, asserts
the runs are result-identical, and writes ``BENCH_engine.json`` so
future PRs can track the performance trajectory.

The "seed" column runs ``engine="reference"``: the readable per-hop
engine the repository started with (today's reference engine is itself
faster than the original seed commit thanks to O(1) combining and
batched RNG, so the reported speedups are conservative lower bounds on
the win over the seed).  The "fast" column runs the compiled integer
path of :mod:`repro.routing.fast_engine`.

The CI regression gate compares *speedup ratios* against a committed
baseline (``--check-baseline BENCH_engine.json``): because fast and
reference engines run on the same machine in the same job, their ratio
cancels host speed, so a >30% drop is a real regression rather than
runner noise — unlike a wall-clock floor.

Not collected by pytest (file name is not ``test_*``); run directly:

    PYTHONPATH=src python benchmarks/bench_engine_scaling.py [--quick]
    PYTHONPATH=src python benchmarks/bench_engine_scaling.py --out BENCH_engine.json
    PYTHONPATH=src python benchmarks/bench_engine_scaling.py --quick \
        --check-baseline BENCH_engine.json
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.emulation.leveled import LeveledEmulator
from repro.emulation.mesh import MeshEmulator
from repro.pram.trace import hotspot_step, permutation_step
from repro.routing.leveled_router import LeveledRouter
from repro.routing.mesh_router import GreedyMeshRouter, MeshRouter
from repro.topology.leveled import DAryButterflyLeveled
from repro.topology.mesh import Mesh2D


def _best_of(fn, repeats: int) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        best = min(best, elapsed)
    return best, result


def bench_permutation(d: int, levels: int, *, seed: int, repeats: int) -> dict:
    """Leveled permutation routing: one random permutation, both engines."""
    net = DAryButterflyLeveled(d, levels)
    perm = np.random.default_rng(seed).permutation(net.column_size)

    def run(engine):
        return LeveledRouter(net, seed=seed, engine=engine).route_permutation(perm)

    t_seed, s_seed = _best_of(lambda: run("reference"), repeats)
    t_fast, s_fast = _best_of(lambda: run("fast"), repeats)
    assert s_seed.steps == s_fast.steps, "engines diverged"
    assert s_seed.max_queue == s_fast.max_queue, "engines diverged"
    return {
        "scenario": "leveled-permutation",
        "network": f"dary-butterfly(d={d}, L={levels})",
        "n": net.column_size,
        "packets": net.column_size,
        "steps": s_fast.steps,
        "seed_time_s": round(t_seed, 6),
        "fast_time_s": round(t_fast, 6),
        "speedup": round(t_seed / t_fast, 2),
    }


def bench_crcw_hotspot(d: int, levels: int, *, seed: int, repeats: int) -> dict:
    """CRCW hotspot emulation: combining + reply fan-out, both engines.

    Each timed run emulates several PRAM steps, the realistic usage
    pattern (a program is many steps against one emulator).
    """
    net = DAryButterflyLeveled(d, levels)
    n = net.column_size
    space = 4 * n
    n_steps = 3
    steps = [
        hotspot_step(n, space, hot_addresses=4, hot_fraction=0.5, seed=seed + i)
        for i in range(n_steps)
    ]

    def run(engine):
        em = LeveledEmulator(net, space, mode="crcw", seed=seed, engine=engine)
        return [em.emulate_step(s) for s in steps]

    t_seed, c_seed = _best_of(lambda: run("reference"), repeats)
    t_fast, c_fast = _best_of(lambda: run("fast"), repeats)
    for a, b in zip(c_seed, c_fast):
        assert (a.request_steps, a.reply_steps, a.combines) == (
            b.request_steps,
            b.reply_steps,
            b.combines,
        ), "engines diverged"
    return {
        "scenario": "crcw-hotspot-emulation",
        "network": f"dary-butterfly(d={d}, L={levels})",
        "n": n,
        "packets": n * n_steps,
        "pram_steps": n_steps,
        "combines": sum(c.combines for c in c_fast),
        "request_steps": sum(c.request_steps for c in c_fast),
        "reply_steps": sum(c.reply_steps for c in c_fast),
        "seed_time_s": round(t_seed, 6),
        "fast_time_s": round(t_fast, 6),
        "speedup": round(t_seed / t_fast, 2),
    }


def bench_mesh_permutation(n_side: int, *, seed: int, repeats: int) -> dict:
    """3-stage randomized mesh permutation routing (§3.4), both engines."""
    mesh = Mesh2D.square(n_side)
    perm = np.random.default_rng(seed).permutation(mesh.num_nodes)

    def run(engine):
        return MeshRouter(mesh, seed=seed, engine=engine).route_permutation(perm)

    t_seed, s_seed = _best_of(lambda: run("reference"), repeats)
    t_fast, s_fast = _best_of(lambda: run("fast"), repeats)
    assert s_seed.steps == s_fast.steps, "engines diverged"
    assert s_seed.max_queue == s_fast.max_queue, "engines diverged"
    assert s_seed.delays == s_fast.delays, "engines diverged"
    return {
        "scenario": "mesh-permutation",
        "network": f"mesh({n_side}x{n_side})",
        "n": mesh.num_nodes,
        "packets": mesh.num_nodes,
        "steps": s_fast.steps,
        "seed_time_s": round(t_seed, 6),
        "fast_time_s": round(t_fast, 6),
        "speedup": round(t_seed / t_fast, 2),
    }


def bench_mesh_emulation(n_side: int, mode: str, *, seed: int, repeats: int) -> dict:
    """Mesh PRAM emulation (Theorem 3.2), EREW or CRCW, both engines."""
    mesh = Mesh2D.square(n_side)
    n = mesh.num_nodes
    space = 4 * n
    if mode == "erew":
        steps = [
            permutation_step(n, space, seed=seed),
            permutation_step(n, space, seed=seed + 1, kind="write"),
        ]
    else:
        steps = [
            hotspot_step(
                n, space, hot_addresses=4, hot_fraction=0.5, seed=seed + i
            )
            for i in range(2)
        ]

    def run(engine):
        em = MeshEmulator(mesh, space, mode=mode, seed=seed, engine=engine)
        return [em.emulate_step(s) for s in steps]

    t_seed, c_seed = _best_of(lambda: run("reference"), repeats)
    t_fast, c_fast = _best_of(lambda: run("fast"), repeats)
    for a, b in zip(c_seed, c_fast):
        assert (a.request_steps, a.reply_steps, a.combines, a.max_queue) == (
            b.request_steps,
            b.reply_steps,
            b.combines,
            b.max_queue,
        ), "engines diverged"
    return {
        "scenario": f"mesh-{mode}-emulation",
        "network": f"mesh({n_side}x{n_side})",
        "n": n,
        "packets": sum(s.num_requests for s in steps),
        "pram_steps": len(steps),
        "combines": sum(c.combines for c in c_fast),
        "request_steps": sum(c.request_steps for c in c_fast),
        "reply_steps": sum(c.reply_steps for c in c_fast),
        "seed_time_s": round(t_seed, 6),
        "fast_time_s": round(t_fast, 6),
        "speedup": round(t_seed / t_fast, 2),
    }


def bench_mesh_flow_control(
    n_side: int, hubs: int, cap: int, *, seed: int, repeats: int
) -> dict:
    """Credit flow control under tight capacity (Corollary 3.3's O(1)
    queues): many-to-few traffic that deadlocks under plain
    backpressure, completed via the escape channel, both engines.

    The fast engine takes the vectorized constrained-batch mode (batch
    credit accounting) here; the stats — including the escape/stall
    counters — must stay bit-identical to the reference engine.
    Constrained rows are excluded from the unconstrained 3x batch floor
    and gated at the 4x constrained floor (N >= 4096) plus the baseline
    ratio check instead.
    """
    mesh = Mesh2D.square(n_side)
    n = mesh.num_nodes
    rng = np.random.default_rng(seed)
    dests = rng.choice(rng.choice(n, size=hubs, replace=False), size=n)

    def run(engine):
        return GreedyMeshRouter(
            mesh, node_capacity=cap, flow_control="credit", engine=engine
        ).route(np.arange(n), dests, max_steps=200_000)

    t_seed, s_seed = _best_of(lambda: run("reference"), repeats)
    t_fast, s_fast = _best_of(lambda: run("fast"), repeats)
    assert s_seed.steps == s_fast.steps, "engines diverged"
    assert s_seed.escape_hops == s_fast.escape_hops, "engines diverged"
    assert s_seed.credits_stalled == s_fast.credits_stalled, "engines diverged"
    assert s_seed.delays == s_fast.delays, "engines diverged"
    return {
        "scenario": "mesh-credit-flow-control",
        "network": f"mesh({n_side}x{n_side}) cap={cap}",
        "n": n,
        "packets": n,
        "steps": s_fast.steps,
        "escape_hops": s_fast.escape_hops,
        "credits_stalled": s_fast.credits_stalled,
        "constrained": True,
        "seed_time_s": round(t_seed, 6),
        "fast_time_s": round(t_fast, 6),
        "speedup": round(t_seed / t_fast, 2),
    }


def bench_leveled_flow_control(
    d: int, levels: int, hubs: int, cap: int, *, seed: int, repeats: int
) -> dict:
    """Credit flow control on a leveled network: hot-module h-relation
    routing with O(1) buffers per node (the regime of Corollary 3.3 and
    of bounded-memory emulation a la Karlin-Upfal), both engines, with
    the wrap-aliased capacity accounting exercised at every pass
    boundary.  Constrained-batch on the fast engine; bit-identical
    stats required."""
    net = DAryButterflyLeveled(d, levels)
    n = net.column_size
    rng = np.random.default_rng(seed)
    dests = rng.choice(rng.choice(n, size=hubs, replace=False), size=n)

    def run(engine):
        return LeveledRouter(
            net,
            seed=seed,
            node_capacity=cap,
            flow_control="credit",
            engine=engine,
        ).route(np.arange(n), dests, max_steps=200_000)

    t_seed, s_seed = _best_of(lambda: run("reference"), repeats)
    t_fast, s_fast = _best_of(lambda: run("fast"), repeats)
    assert s_seed.steps == s_fast.steps, "engines diverged"
    assert s_seed.escape_hops == s_fast.escape_hops, "engines diverged"
    assert s_seed.credits_stalled == s_fast.credits_stalled, "engines diverged"
    assert s_seed.delays == s_fast.delays, "engines diverged"
    return {
        "scenario": "leveled-credit-flow-control",
        "network": f"dary-butterfly(d={d}, L={levels}) cap={cap}",
        "n": n,
        "packets": n,
        "steps": s_fast.steps,
        "escape_hops": s_fast.escape_hops,
        "credits_stalled": s_fast.credits_stalled,
        "constrained": True,
        "seed_time_s": round(t_seed, 6),
        "fast_time_s": round(t_fast, 6),
        "speedup": round(t_seed / t_fast, 2),
    }


def run_suite(quick: bool) -> list[dict]:
    repeats = 2 if quick else 3
    perm_settings = [(2, 9)] if quick else [(2, 9), (2, 11), (2, 12), (4, 5)]
    emu_settings = [(2, 9)] if quick else [(2, 9), (2, 10), (2, 11)]
    # Mesh rows start at n=64 (N=4096): the paper-scale target size for
    # the mesh stack; below it the batch engine's per-step vector
    # overhead doesn't amortize and the honest speedup dips under 3x.
    mesh_perm_sides = [64] if quick else [64, 96]
    mesh_emu_sides = [64]
    rows = []
    for d, levels in perm_settings:
        rows.append(bench_permutation(d, levels, seed=1, repeats=repeats))
        print(_render(rows[-1]))
    for d, levels in emu_settings:
        rows.append(bench_crcw_hotspot(d, levels, seed=2, repeats=repeats))
        print(_render(rows[-1]))
    for n_side in mesh_perm_sides:
        rows.append(bench_mesh_permutation(n_side, seed=3, repeats=repeats))
        print(_render(rows[-1]))
    for n_side in mesh_emu_sides:
        for mode in ("erew", "crcw"):
            rows.append(bench_mesh_emulation(n_side, mode, seed=4, repeats=repeats))
            print(_render(rows[-1]))
    # Flow-control rows (quick mode included): the constrained-batch
    # (batch credit accounting) mode.  The n=32 hub row keeps the
    # historical heavy-escape-churn workload; the N=4096 rows are the
    # paper-scale capacity regime and carry the 4x constrained floor.
    rows.append(bench_mesh_flow_control(32, 8, 2, seed=5, repeats=repeats))
    print(_render(rows[-1]))
    rows.append(bench_mesh_flow_control(64, 64, 4, seed=5, repeats=repeats))
    print(_render(rows[-1]))
    rows.append(
        bench_leveled_flow_control(2, 12, 64, 2, seed=5, repeats=repeats)
    )
    print(_render(rows[-1]))
    return rows


def check_baseline(rows: list[dict], baseline: dict, *, tolerance: float) -> int:
    """Compare speedup *ratios* against a committed baseline report.

    Returns the number of regressed rows.  Rows are matched by
    (scenario, network); rows missing from the baseline are reported
    and skipped (a freshly added scenario gates once the baseline is
    regenerated).
    """
    by_key = {
        (r["scenario"], r["network"]): r for r in baseline.get("scenarios", [])
    }
    failures = 0
    print(f"\nbaseline ratio check (tolerance: -{tolerance:.0%}):")
    for row in rows:
        key = (row["scenario"], row["network"])
        base = by_key.get(key)
        if base is None:
            print(f"  {row['scenario']:24s} {row['network']:28s} "
                  "not in baseline — skipped")
            continue
        ratio = row["speedup"] / base["speedup"]
        ok = ratio >= 1.0 - tolerance
        flag = "ok" if ok else "REGRESSED"
        print(
            f"  {row['scenario']:24s} {row['network']:28s} "
            f"{base['speedup']:.1f}x -> {row['speedup']:.1f}x "
            f"(ratio {ratio:.2f}) {flag}"
        )
        if not ok:
            failures += 1
    return failures


def _render(row: dict) -> str:
    return (
        f"{row['scenario']:24s} {row['network']:28s} N={row['n']:<6d} "
        f"seed={row['seed_time_s']:.3f}s fast={row['fast_time_s']:.3f}s "
        f"speedup={row['speedup']:.1f}x"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="smallest qualifying sizes only"
    )
    parser.add_argument(
        "--no-gate",
        action="store_true",
        help="always exit 0 (report only); without this the exit code "
        "enforces the 3x speedup floor, which is timing-sensitive on "
        "noisy shared machines",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_engine.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--check-baseline",
        type=Path,
        default=None,
        metavar="BASELINE_JSON",
        help="compare fast/reference speedup ratios against this committed "
        "report and exit nonzero on a >30%% ratio regression; host speed "
        "cancels out of the ratio, so this gate is CI-noise-safe (it "
        "applies even with --no-gate)",
    )
    args = parser.parse_args(argv)

    # Load the baseline up front: --out may point at the same file.
    baseline = None
    if args.check_baseline is not None:
        baseline = json.loads(args.check_baseline.read_text())

    rows = run_suite(args.quick)
    # The 3x wall-clock floor covers the unconstrained vectorized batch
    # engine; constrained rows (capacity / credit runs) carry their own
    # 4x floor at paper scale (N >= 4096) — except the n=32 heavy-churn
    # row, which is escape-dominated in both engines and gated by the
    # baseline ratio check only.
    at_scale = [r for r in rows if r["n"] >= 512 and not r.get("constrained")]
    worst = min(r["speedup"] for r in at_scale)
    constrained = [r for r in rows if r.get("constrained") and r["n"] >= 4096]
    worst_constrained = (
        min(r["speedup"] for r in constrained) if constrained else None
    )
    report = {
        "benchmark": "engine-scaling",
        "quick": args.quick,
        "note": (
            "seed = reference engine (readable per-hop loop); "
            "fast = compiled integer-path engine; results verified identical"
        ),
        "min_speedup_at_n_ge_512": worst,
        "min_constrained_speedup_at_n_ge_4096": worst_constrained,
        "scenarios": rows,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"\nwrote {args.out} (min batch speedup at N>=512: {worst:.1f}x; "
        f"min constrained at N>=4096: "
        + (f"{worst_constrained:.1f}x)" if constrained else "n/a)")
    )
    failures = 0
    if baseline is not None:
        failures = check_baseline(rows, baseline, tolerance=0.30)
    if failures:
        return 1
    if args.no_gate:
        return 0
    if worst < 3.0:
        return 1
    if worst_constrained is not None and worst_constrained < 4.0:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
