"""Application benchmark: real algorithms end to end -> BENCH_apps.json.

Runs the two tentpole PRAM applications — Liu-Tarjan-Zhong-style
connected components (CRCW combining) and partition-refinement
bisimulation — plus the EREW matching-components variant, through the
full emulation stack on both networks (smallest binary butterfly and
smallest square mesh), over seeded input families (G(n,p), star, path,
bounded-degree, matching; random and cycle LTSs).

Each row reports the paper's claim made concrete:

* ``slowdown`` — mean network steps per PRAM step;
* ``normalized_slowdown`` — slowdown / network scale (leveled scale is
  the diameter Theta(log n), mesh scale the side Theta(sqrt n)); the
  emulation theorems bound this ratio by O(1);
* ``predicted_log`` — log2(N), the leveled overhead exponent, printed
  alongside so the O(log n) prediction is visible in the artifact;
* delivered-request and combining counters with the CRCW hit rate;
* the two correctness bits: trace-replay memory agreement and oracle
  agreement (union-find / sequential refinement), plus the race
  classification verdict for the app.

Every row is a pure function of the committed seeds (fast engine, but
the differential contract makes all metrics engine-independent), so
the baseline gate compares slowdowns exactly the way bench_faults
compares service metrics — deterministic, host-speed-safe.

Not collected by pytest (file name is not ``test_*``); run directly:

    PYTHONPATH=src python benchmarks/bench_apps.py --out BENCH_apps.json
    PYTHONPATH=src python benchmarks/bench_apps.py \
        --check-baseline BENCH_apps.json
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.analysis.races import classify_program
from repro.apps import (
    bisimulation,
    bisimulation_oracle,
    bounded_degree_graph,
    connected_components,
    connected_components_oracle,
    cycle_lts,
    gnp_graph,
    matching_components,
    matching_graph,
    path_graph,
    random_lts,
    run_app,
    star_graph,
)

#: engine dispatch labels a benchmark run is allowed to report; the
#: application traces are rectangular per round, so everything must go
#: through the vectorized batch path
ALLOWED_MODES = {"batch"}

NETWORKS = ("leveled", "mesh")

#: scenario name -> (spec builder, oracle) over committed seeds
SCENARIOS = {
    "cc-gnp": lambda: _graph_case(connected_components, gnp_graph(16, 0.2, seed=7)),
    "cc-star": lambda: _graph_case(connected_components, star_graph(16)),
    "cc-path": lambda: _graph_case(connected_components, path_graph(16)),
    "cc-bounded-degree": lambda: _graph_case(
        connected_components, bounded_degree_graph(16, 3, seed=3)
    ),
    "cc-matching-erew": lambda: _graph_case(
        matching_components, matching_graph(16, seed=5)
    ),
    "bisim-random": lambda: _lts_case(random_lts(12, 2, seed=11)),
    "bisim-cycle": lambda: _lts_case(cycle_lts(12, marked=1)),
}


def _graph_case(build, graph):
    return build(graph), connected_components_oracle(graph)


def _lts_case(lts):
    return bisimulation(lts), bisimulation_oracle(lts)


def _run_scenario(scenario: str, network: str) -> dict:
    spec, oracle = SCENARIOS[scenario]()
    verdict = classify_program(spec).verdict
    run = run_app(spec, oracle, network=network, engine="fast", seed=0)
    return {
        "scenario": scenario,
        "app": run.app,
        "network": f"{network}({run.n_processors})",
        "emulator_mode": run.emulator_mode,
        "n_processors": run.n_processors,
        "pram_steps": run.pram_steps,
        "slowdown": round(run.slowdown, 4),
        "scale": run.scale,
        "normalized_slowdown": round(run.normalized_slowdown, 4),
        "predicted_log": round(run.predicted_log, 4),
        "requests": run.requests,
        "combines": run.combines,
        "combining_hit_rate": round(run.combining_hit_rate, 4),
        "run_modes": sorted(run.run_modes),
        "race_verdict": verdict,
        "memory_matches": run.memory_matches,
        "oracle_match": run.oracle_match,
    }


def run_suite() -> list[dict]:
    rows: list[dict] = []
    for scenario in SCENARIOS:
        for network in NETWORKS:
            rows.append(_run_scenario(scenario, network))
            print(_render(rows[-1]))
    return rows


def structural_gates(rows: list[dict]) -> int:
    """Seed-independent gates; returns the number of failures.

    * every emulated run reproduces its sequential oracle exactly and
      replays the native memory image cell for cell;
    * every app classifies race-free for its declared mode (verdict
      ``"exact"`` — zero race reports, mode neither over- nor
      under-declared);
    * every row dispatches vectorized only (``run_modes == ["batch"]``);
    * CRCW rows on the star input actually combine (hit rate > 0), and
      EREW rows never do;
    * normalized slowdown stays O(1): bounded by a generous constant on
      every network (the baseline gate pins the exact values).
    """
    failures = 0

    def check(cond: bool, msg: str) -> None:
        nonlocal failures
        print(f"  {'ok' if cond else 'FAIL'}  {msg}")
        if not cond:
            failures += 1

    print("\nstructural gates:")
    for r in rows:
        key = f"{r['scenario']}/{r['network']}"
        check(r["oracle_match"], f"{key}: oracle agreement")
        check(r["memory_matches"], f"{key}: replay memory agreement")
        check(
            r["race_verdict"] == "exact",
            f"{key}: race classification exact (got {r['race_verdict']!r})",
        )
        check(
            set(r["run_modes"]) <= ALLOWED_MODES,
            f"{key}: vectorized dispatch only (saw {r['run_modes']})",
        )
        check(
            r["normalized_slowdown"] <= 16.0,
            f"{key}: normalized slowdown O(1) "
            f"(got {r['normalized_slowdown']})",
        )
        if r["emulator_mode"] == "erew":
            check(r["combines"] == 0, f"{key}: EREW row never combines")
    for r in rows:
        if r["scenario"] == "cc-star":
            check(
                r["combining_hit_rate"] > 0,
                f"cc-star/{r['network']}: hot-cell input exercises combining",
            )
    return failures


def check_baseline(rows: list[dict], baseline: dict, *, tolerance: float) -> int:
    """Compare deterministic metrics against a committed report.

    Rows are matched by (scenario, network); new rows are skipped until
    the baseline is regenerated, baseline rows missing from the run
    fail.  Slowdowns are exact functions of the committed seeds, so the
    tolerance only absorbs intentional routing-layer retunes.
    """
    by_key = {
        (r["scenario"], r["network"]): r for r in baseline.get("scenarios", [])
    }
    failures = 0
    print(f"\nbaseline check (tolerance: +-{tolerance:.0%}):")
    for row in rows:
        base = by_key.get((row["scenario"], row["network"]))
        if base is None:
            print(f"  {row['scenario']:24s} not in baseline — skipped")
            continue
        for metric in ("slowdown", "combining_hit_rate"):
            b, v = base[metric], row[metric]
            if b == 0:
                ok = v == 0
            else:
                ok = abs(v / b - 1.0) <= tolerance
            print(
                f"  {row['scenario']:24s} {row['network']:14s} {metric:20s} "
                f"{b:8.3f} -> {v:8.3f} {'ok' if ok else 'REGRESSED'}"
            )
            if not ok:
                failures += 1
    ran = {(r["scenario"], r["network"]) for r in rows}
    for scenario, network in sorted(set(by_key) - ran):
        print(f"  {scenario:24s} {network:14s} in baseline but MISSING")
        failures += 1
    return failures


def _render(row: dict) -> str:
    return (
        f"{row['scenario']:20s} {row['network']:14s} {row['emulator_mode']:4s} "
        f"slowdown={row['slowdown']:<8.2f} norm={row['normalized_slowdown']:<6.2f} "
        f"logN={row['predicted_log']:<5.2f} hit={row['combining_hit_rate']:<6.2f} "
        f"oracle={'ok' if row['oracle_match'] else 'FAIL'}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_apps.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--check-baseline",
        type=Path,
        default=None,
        metavar="BASELINE_JSON",
        help="compare deterministic metrics (slowdown, combining hit rate) "
        "against this committed report and exit nonzero on a >30%% drift; "
        "runs are seeded, so the gate is host-speed-safe",
    )
    args = parser.parse_args(argv)

    baseline = None
    if args.check_baseline is not None:
        baseline = json.loads(args.check_baseline.read_text())

    rows = run_suite()
    failures = structural_gates(rows)
    report = {
        "benchmark": "applications",
        "note": (
            "real PRAM algorithms (connected components, bisimulation) "
            "replayed through the full emulation stack on both networks; "
            "slowdown is reported beside the paper's O(log n) prediction; "
            "all metrics deterministic under the committed seeds"
        ),
        "scenarios": rows,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    if baseline is not None:
        failures += check_baseline(rows, baseline, tolerance=0.30)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
