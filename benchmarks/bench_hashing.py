"""E5 — §2.1 + Lemma 2.2: the hash family's load and description size."""

import numpy as np
import pytest

from repro.experiments.exp_hash import run_e5, run_e5_degree_ablation
from repro.hashing import (
    HashFamily,
    empirical_overflow_rate,
    lemma22_bound,
    max_load,
)


def test_vectorized_hash_throughput(benchmark):
    """Hashing a full request wave (N addresses) is a per-step cost of the
    emulation; keep it cheap (vectorized Horner)."""
    family = HashFamily(2**20, 4096, degree_param=16)
    h = family.sample(seed=1)
    addrs = np.arange(4096)

    mapped = benchmark(h.map, addrs)
    assert mapped.shape == (4096,)
    assert mapped.max() < 4096


def test_lemma22_overflow_probability(benchmark):
    """Measured overflow rate (some module with >= γ = 2S requests) stays
    under the Lemma 2.2 counting bound."""
    family = HashFamily(1024, 64, degree_param=8)

    def run():
        return empirical_overflow_rate(family, s_size=64, gamma=16, trials=60, seed=5)

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    bound = lemma22_bound(64, 64, delta=8, gamma=16, p=family.p)
    assert measured <= bound + 0.05


def test_description_bits_O_L_log_M(benchmark):
    """§2.1: 'each hash function in H needs only O(L log M) bits'."""

    def run():
        rows = []
        for L, M in [(6, 2**12), (9, 2**16), (12, 2**20)]:
            family = HashFamily(M, 1024, degree_param=L)
            bits = family.sample(seed=0).description_bits()
            rows.append((L, M, bits))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    import math

    for L, M, bits in rows:
        assert bits <= 2 * L * math.log2(M) + L  # O(L log M), small constant


def test_e5_table(benchmark, table_sink):
    table = benchmark.pedantic(
        lambda: run_e5(settings=((256, 16, 8), (1024, 64, 8)), trials=25, seed=31),
        rounds=1,
        iterations=1,
    )
    table_sink(table)
    for row in table.rows:
        assert float(row[4]) <= float(row[5]) + 0.05  # measured <= bound


def test_e5_degree_ablation_table(benchmark, table_sink):
    table = benchmark.pedantic(
        lambda: run_e5_degree_ablation(trials=20, seed=35), rounds=1, iterations=1
    )
    table_sink(table)
    worst = [float(r[3]) for r in table.rows]
    # the S=1 (linear) worst case should not beat the S=16 worst case
    assert worst[0] >= worst[-1]


def test_rehash_rarity(benchmark):
    """§2.1: 'rehashings hardly happen' — with γ = 2S headroom no draw in
    a long sequence overflows."""
    family = HashFamily(4096, 256, degree_param=10)
    addrs = np.arange(256)

    def run():
        overflows = 0
        for seed in range(40):
            h = family.sample(seed=seed)
            if max_load(h, addrs) >= 20:
                overflows += 1
        return overflows

    overflows = benchmark.pedantic(run, rounds=1, iterations=1)
    assert overflows == 0
