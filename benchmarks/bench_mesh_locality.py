"""E9 — Theorem 3.3: δ-local memory requests finish in 6δ + o(δ) steps,
independent of the mesh side n."""

import pytest

from repro.analysis import MESH_LOCALITY_CLAIM
from repro.emulation import MeshEmulator, locality_slice_rows
from repro.experiments.exp_mesh import run_e9
from repro.pram import local_step_for_mesh
from repro.topology import Mesh2D


@pytest.mark.parametrize("delta", [2, 4, 8])
def test_local_step_cost(benchmark, delta):
    n = 24
    mesh = Mesh2D.square(n)

    def run():
        emu = MeshEmulator(
            mesh,
            address_space=n * n,
            placement="direct",
            slice_rows=locality_slice_rows(delta),
            seed=20,
        )
        return emu.emulate_step(local_step_for_mesh(n, delta, seed=21))

    cost = benchmark.pedantic(run, rounds=1, iterations=1)
    assert cost.total_steps <= MESH_LOCALITY_CLAIM.bound(delta)
    # locality: far below the global 4n bound
    assert cost.total_steps < 4 * n


def test_e9_table_scales_with_delta_not_n(benchmark, table_sink):
    table = benchmark.pedantic(
        lambda: run_e9(deltas=(2, 4, 8), n=24, trials=2, seed=43),
        rounds=1,
        iterations=1,
    )
    table_sink(table)
    times = [float(r[1]) for r in table.rows]
    assert times[0] < times[-1]  # grows with δ ...
    assert times[-1] < 4 * 24  # ... but stays below the global cost


def test_locality_invariant_to_mesh_size(benchmark):
    """Same δ on two mesh sizes: cost unchanged (the o(δ) term dominates
    any n-dependence)."""
    delta = 4

    def run():
        costs = []
        for n in (16, 32):
            emu = MeshEmulator(
                Mesh2D.square(n),
                address_space=n * n,
                placement="direct",
                slice_rows=locality_slice_rows(delta),
                seed=22,
            )
            costs.append(
                emu.emulate_step(local_step_for_mesh(n, delta, seed=23)).total_steps
            )
        return costs

    c16, c32 = benchmark.pedantic(run, rounds=1, iterations=1)
    assert abs(c32 - c16) <= MESH_LOCALITY_CLAIM.bound(delta) * 0.5
