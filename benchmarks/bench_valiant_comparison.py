"""E12 — §2.3.4: Algorithm 2.3 (Õ(n)) vs Valiant's scheme on the d-way
shuffle (Õ(n log d / log log d) under the serialized node model)."""

import numpy as np
import pytest

from repro.experiments.exp_shuffle import run_e12
from repro.routing import ShuffleRouter, valiant_shuffle_route
from repro.topology import DWayShuffle


@pytest.mark.parametrize("n", [2, 3])
def test_parallel_vs_serialized_shuffle(benchmark, n):
    sh = DWayShuffle.n_way(n)
    rng = np.random.default_rng(34)
    perm = rng.permutation(sh.num_nodes)

    def run():
        ours = ShuffleRouter(sh, seed=35).route(np.arange(sh.num_nodes), perm)
        ser = valiant_shuffle_route(sh, np.arange(sh.num_nodes), perm, seed=35)
        return ours, ser

    ours, ser = benchmark.pedantic(run, rounds=1, iterations=1)
    assert ours.completed and ser.completed
    assert ser.steps >= ours.steps


def test_gap_grows_with_n(benchmark, table_sink):
    table = benchmark.pedantic(
        lambda: run_e12(ns=(2, 3), trials=2, seed=25), rounds=1, iterations=1
    )
    table_sink(table)
    ratios = [float(r[4]) for r in table.rows]
    assert ratios[-1] >= ratios[0] * 0.9  # non-shrinking gap at these sizes


def test_hypercube_transpose_baseline(benchmark):
    """The classical motivation (§2.2.1): deterministic oblivious routing
    on the transpose permutation vs Valiant randomization."""
    from repro.routing import GreedyRouter, ValiantHypercubeRouter, transpose_permutation
    from repro.topology import Hypercube

    cube = Hypercube(12)  # 4096 nodes: the 2^{n/2} hot spots bite
    perm = transpose_permutation(cube)

    def run():
        det = GreedyRouter(cube).route(np.arange(cube.num_nodes), perm)
        rnd = ValiantHypercubeRouter(cube, seed=36).route(np.arange(cube.num_nodes), perm)
        return det, rnd

    det, rnd = benchmark.pedantic(run, rounds=1, iterations=1)
    assert det.completed and rnd.completed
    # deterministic e-cube hits the transpose bottleneck (hot nodes, fat
    # queues); Valiant randomization stays near the diameter
    assert det.steps > 1.5 * rnd.steps
    assert det.max_queue > 2 * rnd.max_queue
