"""E2 — Theorem 2.2 / Corollary 2.1: Õ(n) routing on the n-star graph.

Regenerates the routing-time table on physical star graphs (n = 4..6),
the n-relation variant, the deterministic-greedy ablation, and the
Figure-3 logical-network run.
"""

import pytest

from repro.analysis import star_diameter
from repro.experiments.exp_star import run_e2, run_e2_ablation, run_e2_logical
from repro.routing import StarRouter
from repro.topology import StarGraph


@pytest.mark.parametrize("n", [4, 5, 6])
def test_star_permutation_routing(benchmark, n):
    star = StarGraph(n)

    def run():
        return StarRouter(star, seed=2).route_random_permutation()

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats.completed
    # Theorem 2.2: time within a constant factor of the diameter
    assert stats.steps <= 8 * star.diameter
    assert stats.max_queue <= 6 * n  # queue O(n)


def test_star_n_relation(benchmark):
    star = StarGraph(5)

    def run():
        return StarRouter(star, seed=3).route_n_relation()

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats.completed
    assert stats.steps <= 12 * star.diameter


def test_e2_table(benchmark, table_sink):
    def run():
        return run_e2(ns=(4, 5), trials=2, seed=17)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    table_sink(table)
    # normalized column time/diam bounded
    for row in table.rows:
        assert float(row[4]) < 8.0


def test_e2_ablation_table(benchmark, table_sink):
    table = benchmark.pedantic(
        lambda: run_e2_ablation(n=5, trials=2, seed=19), rounds=1, iterations=1
    )
    table_sink(table)


def test_e2_logical_network(benchmark, table_sink):
    table = benchmark.pedantic(
        lambda: run_e2_logical(ns=(4,), trials=2, seed=20), rounds=1, iterations=1
    )
    table_sink(table)


def test_diameter_is_sublogarithmic(benchmark):
    """§1's headline: star diameter ≪ log2(N) — the reason Theorem 2.6
    beats the O(log N) emulations."""
    import math

    def run():
        return [(n, star_diameter(n), math.log2(math.factorial(n))) for n in range(4, 10)]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for n, diam, log_n in rows:
        if n >= 5:
            assert diam < log_n
