"""E7 — Theorem 3.1: the 3-stage mesh router in 2n + o(n), queue O(log n).

Includes the §3.4.1 linear-array primitive and the discipline/slice/queue
ablations (E7b-E7e).
"""

import math

import pytest

from repro.analysis import MESH_ROUTING_CLAIM
from repro.experiments.exp_mesh import (
    run_e7,
    run_e7_discipline_ablation,
    run_e7_queue_variant,
    run_e7_slice_ablation,
    run_linear_primitive,
)
from repro.routing import MeshRouter, route_linear, random_linear_instance
from repro.topology import Mesh2D


@pytest.mark.parametrize("n", [8, 16, 24])
def test_mesh_routing_2n(benchmark, n):
    mesh = Mesh2D.square(n)

    def run():
        return MeshRouter(mesh, seed=12).route_random_permutation()

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats.completed
    assert stats.steps <= MESH_ROUTING_CLAIM.bound(n)
    assert stats.max_queue <= 6 * math.log2(n)  # O(log n) queues


def test_e7_table_trend(benchmark, table_sink):
    table = benchmark.pedantic(
        lambda: run_e7(ns=(8, 16, 24), trials=2, seed=41), rounds=1, iterations=1
    )
    table_sink(table)
    ratios = [float(r[2]) for r in table.rows]  # time/n
    # Theorem 3.1 shape: time/n stays below 2 + o(n)/n at every size
    assert all(r < 2.5 for r in ratios)
    assert ratios[-1] < 2.2


def test_linear_array_primitive(benchmark):
    n = 64
    origins, dests = random_linear_instance(n, n, seed=13)

    def run():
        return route_linear(n, origins, dests)

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats.completed
    assert stats.steps <= n + 6 * n**0.75  # n' + o(n)


def test_e7e_linear_table(benchmark, table_sink):
    table = benchmark.pedantic(
        lambda: run_linear_primitive(ns=(32, 64), trials=2, seed=47),
        rounds=1,
        iterations=1,
    )
    table_sink(table)


def test_e7b_discipline_ablation(benchmark, table_sink):
    table = benchmark.pedantic(
        lambda: run_e7_discipline_ablation(n=16, trials=2, seed=44),
        rounds=1,
        iterations=1,
    )
    table_sink(table)


def test_e7c_slice_ablation(benchmark, table_sink):
    table = benchmark.pedantic(
        lambda: run_e7_slice_ablation(n=16, trials=2, seed=45), rounds=1, iterations=1
    )
    table_sink(table)
    # ε = 1 (slice_rows = n) pays the full extra column trip
    times = {row[0]: float(row[1]) for row in table.rows}
    assert times[str(16)] >= times[str(max(1, round(16 / math.log2(16))))] - 1


def test_e7d_queue_variant(benchmark, table_sink):
    table = benchmark.pedantic(
        lambda: run_e7_queue_variant(n=16, trials=2, seed=46), rounds=1, iterations=1
    )
    table_sink(table)
    # bounded buffers cap the node load at the cap
    capped = [r for r in table.rows if r[0] != "None"]
    for row in capped:
        assert float(row[3]) <= float(row[0]) + 1
