"""E1 — Theorem 2.1: permutation routing on leveled networks in Õ(ℓ).

Regenerates the time-vs-levels series for degree-d, L-level networks and
checks the normalized time stays flat (the Õ(ℓ) claim) with queues O(ℓ).
"""

import pytest

from repro.analysis import flatness
from repro.experiments.exp_leveled import run_e1
from repro.routing import LeveledRouter
from repro.topology import DAryButterflyLeveled


@pytest.mark.parametrize("d,levels", [(2, 4), (2, 6), (2, 8), (3, 4)])
def test_leveled_permutation_routing(benchmark, d, levels):
    net = DAryButterflyLeveled(d, levels)

    def run():
        router = LeveledRouter(net, seed=1)
        return router.route_random_permutation()

    stats = benchmark(run)
    assert stats.completed
    assert stats.steps <= 8 * 2 * levels  # Õ(ℓ) with small constant
    assert stats.max_queue <= 4 * levels  # queue O(ℓ)


def test_e1_table_flatness(benchmark, table_sink):
    """The full E1 series: time/2L must not grow with network size."""

    def run():
        return run_e1(settings=((2, 4), (2, 6), (2, 8)), trials=2, seed=11)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    table_sink(table)
    normalized = [float(r[3]) for r in table.rows]  # time/2L column
    assert flatness(normalized, tolerance=0.8)


def test_lemma21_restart_amplification(benchmark):
    """Lemma 2.1: repeating the algorithm on stragglers (trace back, retry)
    completes any permutation even under a deliberately tight allotment."""
    import numpy as np

    net = DAryButterflyLeveled(2, 6)

    def run():
        router = LeveledRouter(net, seed=13)
        perm = np.random.default_rng(14).permutation(net.column_size)
        return router.route_with_restarts(
            np.arange(net.column_size), perm, allotment=2 * net.num_levels + 1
        )

    stats, rounds = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats.completed
    assert rounds >= 2  # the tight allotment forces at least one restart
    assert stats.steps <= 10 * 2 * net.num_levels  # still Õ(ℓ) overall


def test_algorithm21_coin_vs_node_modes(benchmark, table_sink):
    """Both phase-1 flavors (coin-per-level vs random node) are Õ(ℓ)."""
    net = DAryButterflyLeveled(2, 6)

    def run():
        coin = LeveledRouter(net, intermediate="coin", seed=3).route_random_permutation()
        node = LeveledRouter(net, intermediate="node", seed=3).route_random_permutation()
        return coin, node

    coin, node = benchmark.pedantic(run, rounds=1, iterations=1)
    assert coin.completed and node.completed
    assert coin.steps <= 8 * 12 and node.steps <= 8 * 12
