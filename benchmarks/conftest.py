"""Shared benchmark helpers.

Every benchmark regenerates one of the paper's claims (DESIGN.md §4) and
prints the paper-style table (visible with ``pytest -s`` or in the
captured output block of a failure).  Parameters are laptop-scale; the
experiment modules accept larger sweeps for a fuller run.
"""

import pytest


def emit(table) -> None:
    """Print a rendered experiment table beneath the benchmark."""
    print()
    print(table.render() if hasattr(table, "render") else table)


@pytest.fixture
def table_sink():
    return emit
