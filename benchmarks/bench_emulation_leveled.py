"""E6 — Theorems 2.5/2.6 + Corollaries 2.3-2.6: PRAM steps in Õ(diameter)
on star / shuffle / generic leveled networks, EREW and CRCW."""

import pytest

from repro.emulation import LeveledEmulator
from repro.experiments.exp_emulation import run_e6, run_e6_combining_ablation, run_e6_crcw
from repro.pram import hotspot_step, permutation_step
from repro.topology import DAryButterflyLeveled, ShuffleLeveled, StarLogicalLeveled


@pytest.mark.parametrize(
    "net_builder,mode",
    [
        (lambda: StarLogicalLeveled(4), "node"),
        (lambda: ShuffleLeveled.n_way(3), "coin"),
        (lambda: DAryButterflyLeveled(2, 6), "coin"),
    ],
    ids=["star-n4", "shuffle-n3", "butterfly-L6"],
)
def test_erew_step_emulation(benchmark, net_builder, mode):
    net = net_builder()
    m = 8 * net.column_size

    def run():
        emu = LeveledEmulator(net, address_space=m, intermediate=mode, seed=6)
        step = permutation_step(net.column_size, m, seed=7)
        return emu.emulate_step(step), emu

    cost, emu = benchmark.pedantic(run, rounds=1, iterations=1)
    # Theorem 2.5: Õ(ℓ) per step
    assert cost.total_steps <= 10 * emu.scale
    assert cost.rehashes == 0


def test_crcw_hotspot_emulation(benchmark):
    """Theorem 2.6: a full-machine concurrent read costs Õ(diameter)."""
    net = DAryButterflyLeveled(2, 6)  # 64 processors
    m = 8 * net.column_size

    def run():
        emu = LeveledEmulator(net, address_space=m, mode="crcw", seed=8)
        step = hotspot_step(net.column_size, m, hot_addresses=1, hot_fraction=1.0, seed=9)
        return emu.emulate_step(step), emu

    cost, emu = benchmark.pedantic(run, rounds=1, iterations=1)
    assert cost.combines > 0
    assert cost.total_steps <= 12 * emu.scale
    assert cost.total_steps < net.column_size  # beats the no-combining Ω(N)


def test_e6_table(benchmark, table_sink):
    table = benchmark.pedantic(
        lambda: run_e6(settings=(("star", 4), ("shuffle", 3), ("butterfly", 6)), trials=2, seed=51),
        rounds=1,
        iterations=1,
    )
    table_sink(table)
    for row in table.rows:
        assert float(row[5]) < 10.0  # time/diam column


def test_e6_crcw_table(benchmark, table_sink):
    table = benchmark.pedantic(
        lambda: run_e6_crcw(settings=(("butterfly", 5), ("star", 4)), trials=2, seed=52),
        rounds=1,
        iterations=1,
    )
    table_sink(table)


def test_e6_combining_ablation(benchmark, table_sink):
    table = benchmark.pedantic(
        lambda: run_e6_combining_ablation(size=5, trials=2, seed=53),
        rounds=1,
        iterations=1,
    )
    table_sink(table)
    with_combining = float(table.rows[0][1])
    without = float(table.rows[1][1])
    assert without > 2 * with_combining  # hot spot serializes sans combining


def test_sublogarithmic_emulation_headline(benchmark):
    """§1: the star's per-step emulation time (Õ(diameter)) is *sub-
    logarithmic* in machine size N = n! — compare against log2(N)."""
    import math

    net = StarLogicalLeveled(5)  # N = 120, diameter-ish 2L = 16 vs log2(120!) huge
    m = 4 * net.column_size

    def run():
        emu = LeveledEmulator(net, address_space=m, intermediate="node", seed=10)
        step = permutation_step(net.column_size, m, seed=11)
        return emu.emulate_step(step)

    cost = benchmark.pedantic(run, rounds=1, iterations=1)
    # the claim is about scaling; here we record the basic sanity that the
    # physical star diameter 3(n-1)/2 = 6 is below log2(N=120) ≈ 6.9
    assert (3 * (5 - 1)) // 2 < math.log2(math.factorial(5))
    assert cost.total_steps > 0
