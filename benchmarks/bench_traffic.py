"""Online-traffic benchmark: open-loop service scenarios -> BENCH_traffic.json.

Exercises the traffic subsystem (:mod:`repro.traffic`) end to end on
the uniform-vs-Zipf x sub-saturation-vs-saturation grid the closed-batch
benchmarks cannot express:

* **mesh EREW rows** — exclusive memory access serializes hot
  addresses to one touch per epoch, so at *equal offered load* the
  Zipf-hotspot row shows far higher p99 sojourn latency (and a growing
  backlog) than the uniform row: Hanlon-style contention on a large
  memory built from small modules, measured online.
* **leveled CRCW rows** — the same skew contrast with combining
  enabled: hashing + combining absorb the hot set (Theorem 2.6 doing
  its job), so Zipf p99 stays comparable to uniform.
* **bursty credit row** — an on/off MMPP source over a
  capacity-bounded, credit-flow-controlled leveled emulator with a
  bounded drop-tail admission queue: drops, backlog, and
  ``credits_stalled`` all nonzero.

All scenarios run ``engine="fast"`` and must dispatch every epoch to a
vectorized batch mode — any ``"event"`` or ``"reference"`` entry in a
dispatch history fails the run (the no-silent-fallback gate).

Every row is a pure function of its seeds (the generators pre-draw all
randomness), so the gate against the committed baseline compares
deterministic service metrics — p99 sojourn and per-step throughput —
with a tolerance that only needs to absorb RNG-stream drift between
numpy versions, not host speed.

The whole suite takes a couple of seconds, so CI runs it at full size —
no ``--quick`` subset exists (a size-reduced run could not be compared
against the committed full-size baseline anyway).

Not collected by pytest (file name is not ``test_*``); run directly:

    PYTHONPATH=src python benchmarks/bench_traffic.py --out BENCH_traffic.json
    PYTHONPATH=src python benchmarks/bench_traffic.py \
        --check-baseline BENCH_traffic.json
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.emulation import LeveledEmulator, MeshEmulator
from repro.topology import DAryButterflyLeveled, Mesh2D
from repro.traffic import (
    BurstyArrivals,
    OnlineEmulator,
    PoissonArrivals,
    UniformKeys,
    WorkloadGenerator,
    ZipfKeys,
)

#: engine modes an online epoch is allowed to dispatch to
VECTORIZED_MODES = {"batch", "batch-constrained"}


def _run_scenario(
    scenario: str,
    network: str,
    make_emulator,
    keys_fn,
    *,
    n_procs: int,
    rate: float,
    epochs: int,
    arrivals=None,
    queue_limit: int | None = None,
    overflow: str = "defer",
    em_seed: int = 11,
    wl_seed: int = 7,
) -> dict:
    """One scenario -> one JSON row (plus the no-fallback dispatch gate)."""
    emulator = make_emulator()
    if arrivals is None:
        arrivals = PoissonArrivals(rate)
    elif hasattr(arrivals, "mean_rate"):
        rate = arrivals.mean_rate()  # record the true long-run offered rate
    workload = WorkloadGenerator(
        n_procs,
        arrivals=arrivals,
        keys=keys_fn(),
        seed=wl_seed,
    )
    driver = OnlineEmulator(
        emulator, workload, queue_limit=queue_limit, overflow=overflow
    )
    report = driver.run(epochs)
    modes = report.run_mode_counts()
    fallback = {m: c for m, c in modes.items() if m not in VECTORIZED_MODES}
    ss = report.steady_state()
    return {
        "scenario": scenario,
        "network": network,
        "epochs": epochs,
        "offered_rate": rate,
        "delivered": report.total_delivered,
        "dropped": report.total_dropped,
        "final_backlog": report.final_backlog,
        "total_steps": report.total_steps,
        "rehashes": report.total_rehashes,
        "throughput_per_step": round(ss["throughput_per_step"], 4),
        "sojourn_p50": round(ss["sojourn_p50"], 1),
        "sojourn_p95": round(ss["sojourn_p95"], 1),
        "sojourn_p99": round(ss["sojourn_p99"], 1),
        "mean_backlog": round(ss["mean_backlog"], 1),
        "credits_stalled": int(ss["credits_stalled"]),
        "saturated": bool(ss["saturated"]),
        "run_modes": modes,
        "fallback_modes": fallback,
    }


def run_suite() -> list[dict]:
    n_side = 16
    epochs = 40
    mesh = Mesh2D.square(n_side)
    n = mesh.num_nodes
    space = 4 * n

    def mesh_emulator():
        return MeshEmulator(mesh, space, mode="erew", seed=11, engine="fast")

    rows: list[dict] = []
    grid = [
        ("uniform", 0.5, lambda: UniformKeys(space)),
        ("uniform", 1.2, lambda: UniformKeys(space)),
        ("zipf", 0.5, lambda: ZipfKeys(space, exponent=1.1)),
        ("zipf", 1.2, lambda: ZipfKeys(space, exponent=1.1)),
    ]
    # The uniform/Zipf x sub-saturation/saturation grid on the EREW
    # mesh: exclusive access serializes hot addresses, so the Zipf rows
    # measure hotspot contention at the *same* offered load.
    for kind, frac, keys_fn in grid:
        label = "subsat" if frac < 1.0 else "saturation"
        rows.append(
            _run_scenario(
                f"mesh-erew-{kind}-{label}",
                f"mesh({n_side}x{n_side})",
                mesh_emulator,
                keys_fn,
                n_procs=n,
                rate=frac * n,
                epochs=epochs,
            )
        )
        print(_render(rows[-1]))

    # CRCW leveled contrast: combining + hashing absorb the same skew.
    d, levels = 2, 8
    net = DAryButterflyLeveled(d, levels)
    ln = net.column_size
    lspace = 4 * ln

    def leveled_emulator():
        return LeveledEmulator(net, lspace, mode="crcw", seed=11, engine="fast")

    for kind, keys_fn in [
        ("uniform", lambda: UniformKeys(lspace)),
        ("zipf", lambda: ZipfKeys(lspace, exponent=1.1)),
    ]:
        rows.append(
            _run_scenario(
                f"leveled-crcw-{kind}-subsat",
                f"dary-butterfly(d={d}, L={levels})",
                leveled_emulator,
                keys_fn,
                n_procs=ln,
                rate=0.5 * ln,
                epochs=epochs,
            )
        )
        print(_render(rows[-1]))

    # Bursty saturation under O(1) buffers: MMPP source, credit flow
    # control, bounded drop-tail admission queue.
    def credit_emulator():
        return LeveledEmulator(
            net,
            lspace,
            mode="crcw",
            seed=11,
            engine="fast",
            node_capacity=2,
            flow_control="credit",
        )

    rows.append(
        _run_scenario(
            "leveled-crcw-bursty-credit-drop",
            f"dary-butterfly(d={d}, L={levels}) cap=2",
            credit_emulator,
            lambda: ZipfKeys(lspace, exponent=1.1),
            n_procs=ln,
            rate=0.0,  # recorded as the MMPP's stationary mean_rate()
            epochs=epochs,
            arrivals=BurstyArrivals(
                3.0 * ln, 0.2 * ln, p_exit_on=0.25, p_exit_off=0.25
            ),
            queue_limit=2 * ln,
            overflow="drop",
        )
    )
    print(_render(rows[-1]))
    return rows


def structural_gates(rows: list[dict]) -> int:
    """Seed-independent sanity gates; returns the number of failures.

    * no scenario may dispatch to a non-vectorized engine mode;
    * the mesh Zipf sub-saturation row must show measurably (>= 1.5x)
      higher p99 sojourn than the uniform row at equal offered load;
    * saturation rows must report saturation, the uniform
      sub-saturation row must not;
    * the drop-policy row must actually drop.
    """
    by_scenario = {r["scenario"]: r for r in rows}
    failures = 0

    def check(cond: bool, msg: str) -> None:
        nonlocal failures
        print(f"  {'ok' if cond else 'FAIL'}  {msg}")
        if not cond:
            failures += 1

    print("\nstructural gates:")
    for r in rows:
        check(
            not r["fallback_modes"],
            f"{r['scenario']}: vectorized dispatch only "
            f"(saw {r['run_modes']})",
        )
    uni = by_scenario["mesh-erew-uniform-subsat"]
    zipf = by_scenario["mesh-erew-zipf-subsat"]
    check(
        zipf["sojourn_p99"] >= 1.5 * uni["sojourn_p99"],
        f"zipf hotspot p99 ({zipf['sojourn_p99']}) >= 1.5x uniform p99 "
        f"({uni['sojourn_p99']}) at equal offered load",
    )
    check(not uni["saturated"], "uniform sub-saturation row is not saturated")
    for name in ("mesh-erew-uniform-saturation", "mesh-erew-zipf-saturation"):
        check(by_scenario[name]["saturated"], f"{name} reports saturation")
    drop = by_scenario["leveled-crcw-bursty-credit-drop"]
    check(drop["dropped"] > 0, "bounded-queue drop row drops arrivals")
    check(drop["credits_stalled"] > 0, "credit row records credit stalls")
    return failures


def check_baseline(rows: list[dict], baseline: dict, *, tolerance: float) -> int:
    """Compare deterministic service metrics against a committed report.

    Rows are matched by (scenario, network); rows missing from the
    baseline are reported and skipped (a new scenario gates once the
    baseline is regenerated), while baseline rows missing from the run
    *fail* — dropping a scenario must be an explicit baseline
    regeneration, not a silent loss of coverage.  The run is seeded, so
    drift beyond the tolerance means the service changed behaviour —
    not that the host was slow.
    """
    by_key = {
        (r["scenario"], r["network"]): r for r in baseline.get("scenarios", [])
    }
    failures = 0
    print(f"\nbaseline check (tolerance: +-{tolerance:.0%}):")
    for row in rows:
        base = by_key.get((row["scenario"], row["network"]))
        if base is None:
            print(f"  {row['scenario']:36s} not in baseline — skipped")
            continue
        for metric in ("sojourn_p99", "throughput_per_step"):
            b, v = base[metric], row[metric]
            if b == 0:
                ok = v == 0
            else:
                ok = abs(v / b - 1.0) <= tolerance
            print(
                f"  {row['scenario']:36s} {metric:20s} "
                f"{b:10.2f} -> {v:10.2f} {'ok' if ok else 'REGRESSED'}"
            )
            if not ok:
                failures += 1
    ran = {(r["scenario"], r["network"]) for r in rows}
    for scenario, network in sorted(set(by_key) - ran):
        print(f"  {scenario:36s} in baseline but MISSING from this run")
        failures += 1
    return failures


def _render(row: dict) -> str:
    return (
        f"{row['scenario']:36s} {row['network']:28s} "
        f"served={row['delivered']:<6d} p50={row['sojourn_p50']:<8.0f} "
        f"p99={row['sojourn_p99']:<8.0f} backlog={row['final_backlog']:<6d} "
        f"drops={row['dropped']:<5d} sat={int(row['saturated'])}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_traffic.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--check-baseline",
        type=Path,
        default=None,
        metavar="BASELINE_JSON",
        help="compare deterministic service metrics (p99 sojourn, per-step "
        "throughput) against this committed report and exit nonzero on a "
        ">30%% drift; runs are seeded, so the gate is host-speed-safe",
    )
    args = parser.parse_args(argv)

    # Load the baseline up front: --out may point at the same file.
    baseline = None
    if args.check_baseline is not None:
        baseline = json.loads(args.check_baseline.read_text())

    rows = run_suite()
    failures = structural_gates(rows)
    report = {
        "benchmark": "online-traffic",
        "note": (
            "open-loop service scenarios; all metrics deterministic under "
            "the committed seeds (engine-independent by the differential "
            "contract)"
        ),
        "scenarios": rows,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    if baseline is not None:
        failures += check_baseline(rows, baseline, tolerance=0.30)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
