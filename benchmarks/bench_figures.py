"""F1-F5 — regenerate the paper's structural figures and check their
defining invariants (the figures are diagrams, not data plots)."""

from repro.experiments.exp_figures import (
    all_figures,
    figure1_leveled_template,
    figure2_star_graphs,
    figure3_star_logical,
    figure4_two_way_shuffle,
    figure5_mesh_slices,
)
from repro.topology import DAryButterflyLeveled, DWayShuffle, Mesh2D, StarGraph


def test_figure1_unique_path_invariant(benchmark):
    out = benchmark.pedantic(figure1_leveled_template, rounds=1, iterations=1)
    assert "unique path" in out
    net = DAryButterflyLeveled(2, 3)
    for src in range(net.column_size):
        for dst in range(net.column_size):
            assert net.unique_path(src, dst)[-1] == dst


def test_figure2_star_invariants(benchmark):
    out = benchmark.pedantic(figure2_star_graphs, rounds=1, iterations=1)
    assert "3-star" in out and "4-star" in out
    s3, s4 = StarGraph(3), StarGraph(4)
    assert s3.bfs_eccentricity(0) == 3
    assert s4.bfs_eccentricity(0) == 4


def test_figure3_logical_network_invariant(benchmark):
    out = benchmark.pedantic(figure3_star_logical, rounds=1, iterations=1)
    assert "logical leveled network" in out


def test_figure4_shuffle_invariant(benchmark):
    out = benchmark.pedantic(figure4_two_way_shuffle, rounds=1, iterations=1)
    sh = DWayShuffle.n_way(2)
    # unique n-hop path between every ordered pair
    for u in range(4):
        for v in range(4):
            assert sh.unique_path(u, v)[-1] == v


def test_figure5_slices_partition(benchmark):
    out = benchmark.pedantic(lambda: figure5_mesh_slices(16), rounds=1, iterations=1)
    mesh = Mesh2D.square(16)
    rows = []
    from repro.routing import default_slice_rows

    sr = default_slice_rows(16)
    s = 0
    while s * sr < 16:
        rows.extend(mesh.slice_row_range(s, sr))
        s += 1
    assert rows == list(range(16))


def test_all_figures_render(benchmark, table_sink):
    out = benchmark.pedantic(all_figures, rounds=1, iterations=1)
    table_sink(out)
    assert out.count("Figure") >= 5
