"""E11 — Corollaries 3.1-3.3: the mesh analysis' hashing load facts."""

import math

import numpy as np
import pytest

from repro.experiments.exp_hash import run_e11_cor31, run_e11_cor32, run_e11_cor33
from repro.hashing import (
    HashFamily,
    collection_load,
    corollary31_reference,
    corollary32_reference,
    max_load,
)


def test_cor31_n_items_n_buckets(benchmark):
    n = 4096
    family = HashFamily(4 * n, n, degree_param=8)

    def run():
        h = family.sample(seed=30)
        return max_load(h, np.arange(n))

    ml = benchmark.pedantic(run, rounds=1, iterations=1)
    assert ml <= 6 * corollary31_reference(n)


def test_cor32_n2_items_beta_n_buckets(benchmark):
    n, beta = 64, 2.0
    family = HashFamily(4 * n * n, int(beta * n), degree_param=8)

    def run():
        h = family.sample(seed=31)
        return max_load(h, np.arange(n * n))

    ml = benchmark.pedantic(run, rounds=1, iterations=1)
    assert ml <= 1.5 * corollary32_reference(n, beta)
    assert ml >= n / beta  # can't beat the mean


def test_cor33_log_collection(benchmark):
    n = 4096
    family = HashFamily(4 * n, n, degree_param=8)
    k = int(math.log2(n))
    rng = np.random.default_rng(32)
    buckets = rng.choice(n, size=k, replace=False)

    def run():
        h = family.sample(seed=33)
        return collection_load(h, np.arange(n), buckets)

    load = benchmark.pedantic(run, rounds=1, iterations=1)
    assert load <= 6 * math.log(n)  # O(log N)


@pytest.mark.parametrize(
    "runner", [run_e11_cor31, run_e11_cor32, run_e11_cor33], ids=["31", "32", "33"]
)
def test_e11_tables(benchmark, table_sink, runner):
    table = benchmark.pedantic(lambda: runner(trials=3), rounds=1, iterations=1)
    table_sink(table)
    assert len(table.rows) >= 3
