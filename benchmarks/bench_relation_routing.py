"""E4 — Theorem 2.4: partial ℓ-relation routing on leveled networks.

The emulation's routing workload is not a permutation but (w.h.p.) a
partial cℓ-relation (Lemma 2.2); this bench regenerates the Õ(ℓ) series
for that load.
"""

import numpy as np
import pytest

from repro.experiments.exp_leveled import run_e4
from repro.routing import LeveledRouter
from repro.topology import DAryButterflyLeveled


@pytest.mark.parametrize("levels,h", [(4, 4), (6, 6), (6, 12)])
def test_l_relation_routing(benchmark, levels, h):
    net = DAryButterflyLeveled(2, levels)
    n = net.column_size
    rng = np.random.default_rng(7)
    sources = np.repeat(np.arange(n), h)
    dests = np.concatenate([rng.permutation(n) for _ in range(h)])

    def run():
        return LeveledRouter(net, seed=8).route_h_relation(sources, dests)

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats.completed
    assert stats.delivered == h * n
    # Õ(ℓ) per unit of h: time scales with h * 2L, small constant
    assert stats.steps <= 6 * h * levels + 10 * levels


def test_e4_table(benchmark, table_sink):
    table = benchmark.pedantic(
        lambda: run_e4(settings=((2, 5, 5), (2, 6, 6)), trials=2, seed=13),
        rounds=1,
        iterations=1,
    )
    table_sink(table)
    for row in table.rows:
        assert float(row[4]) < 4.0  # time/(h*2L)


def test_many_one_routing_with_combining(benchmark):
    """Many-one routing (§2.2.1): all packets to one destination —
    feasible in Õ(ℓ) only because combining collapses the flow."""
    net = DAryButterflyLeveled(2, 6)
    n = net.column_size

    def run():
        router = LeveledRouter(net, seed=9, combine=True)
        return router.route(
            np.arange(n), np.zeros(n, dtype=int), addresses=np.zeros(n, dtype=int)
        )

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats.completed
    assert stats.combines > 0
    assert stats.steps <= 8 * 2 * net.num_levels
