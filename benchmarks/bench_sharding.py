"""Sharded memory service benchmark: scatter/gather rows -> BENCH_sharding.json.

Exercises :mod:`repro.sharding` end to end at production-ish scale: a
2^20-address space (>= 10^6 cells, the ISSUE floor) partitioned over
shards in {1, 4, 16} leveled-network emulators, driven by a
three-tenant QoS workload (gold > silver > bronze with per-epoch
quotas) under two key mixes — uniform and Zipf — through the
:class:`~repro.sharding.MultiTenantOnlineEmulator` admission queue.

Structural gates (seed-independent invariants):

* **per-tenant conservation** — every row, every tenant:
  ``arrivals == delivered + dropped + timed_out + dead_lettered +
  backlog``;
* **quota enforcement** — no epoch delivers more than a tenant's quota;
* **shards=1 bit-identity** — the single-shard service run must match
  an *unsharded* emulator built from the same derived seed, report
  field for report field (the scatter/gather front end adds zero
  behaviour at N=1);
* **no silent fallback** — every epoch dispatches to a vectorized
  engine mode;
* **QoS ordering** — under overload, gold's delivered count and p99
  sojourn dominate bronze's.

Every row is a pure function of the committed seeds, so the baseline
gate compares deterministic service metrics with a tolerance that only
absorbs RNG-stream drift between numpy versions, not host speed.

Not collected by pytest (file name is not ``test_*``); run directly:

    PYTHONPATH=src python benchmarks/bench_sharding.py --out BENCH_sharding.json
    PYTHONPATH=src python benchmarks/bench_sharding.py \
        --check-baseline BENCH_sharding.json
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.emulation import LeveledEmulator
from repro.sharding import (
    MultiTenantOnlineEmulator,
    MultiTenantWorkload,
    ShardedEmulator,
    TenantPolicy,
)
from repro.topology import DAryButterflyLeveled
from repro.traffic import PoissonArrivals, UniformKeys, WorkloadGenerator, ZipfKeys

#: engine modes an online epoch is allowed to dispatch to
VECTORIZED_MODES = {"batch", "batch-constrained"}

SPACE = 1 << 20  # 1,048,576 addresses (>= 10^6)
SHARD_COUNTS = (1, 4, 16)
EPOCHS = 30
EM_SEED = 11
POLICIES = (
    TenantPolicy("gold", qos="gold", quota=32),
    TenantPolicy("silver", qos="silver", quota=24),
    TenantPolicy("bronze", qos="bronze", quota=16),
)


def _make_workload(mix: str, n_procs: int) -> MultiTenantWorkload:
    """Three QoS tenants at equal offered rate, uniform or Zipf keys."""

    def keys():
        if mix == "uniform":
            return UniformKeys(SPACE)
        return ZipfKeys(SPACE, exponent=1.1)

    # ~1.05x the admit capacity in total, so admission must arbitrate.
    rate = 0.35 * n_procs
    return MultiTenantWorkload(
        {
            p.tenant: WorkloadGenerator(
                n_procs,
                arrivals=PoissonArrivals(rate),
                keys=keys(),
                seed=100 + i,
            )
            for i, p in enumerate(POLICIES)
        }
    )


def _run_row(mix: str, n_shards: int, net) -> dict:
    """One (tenant mix, shard count) cell -> one JSON row."""

    def make_shard(index, seed):
        return LeveledEmulator(net, SPACE, mode="crcw", seed=seed, engine="fast")

    service = ShardedEmulator(make_shard, n_shards, SPACE, seed=EM_SEED)
    n_procs = service.n_processors
    workload = _make_workload(mix, n_procs)
    driver = MultiTenantOnlineEmulator(service, workload, policies=POLICIES)
    report = driver.run(EPOCHS)

    quota = {p.tenant: p.quota for p in POLICIES}
    quota_violations = sum(
        1
        for e in report.epochs
        for t, n in e.delivered_by_tenant.items()
        if quota.get(t) is not None and n > quota[t]
    )
    modes = report.run_mode_counts()
    fallback = {m: c for m, c in modes.items() if m not in VECTORIZED_MODES}
    tq = report.tenant_sojourn_percentiles(qs=(50.0, 99.0))
    totals = report.tenant_totals()

    unsharded_match = None
    if n_shards == 1:
        # The single-shard service against a bare emulator built from
        # the same derived seed, same workload, same QoS driver: the
        # two telemetry dumps must be bit-identical.
        bare = LeveledEmulator(
            net, SPACE, mode="crcw", seed=service.shard_seeds[0], engine="fast"
        )
        bare_report = MultiTenantOnlineEmulator(
            bare, _make_workload(mix, n_procs), policies=POLICIES
        ).run(EPOCHS)
        unsharded_match = json.dumps(report.to_dict(), sort_keys=True) == (
            json.dumps(bare_report.to_dict(), sort_keys=True)
        )

    return {
        "scenario": f"sharded-{mix}-shards{n_shards}",
        "network": f"dary-butterfly(d=2, L=6) x {n_shards}",
        "shards": n_shards,
        "tenant_mix": mix,
        "address_space": SPACE,
        "epochs": EPOCHS,
        "delivered": report.total_delivered,
        "final_backlog": report.final_backlog,
        "total_steps": report.total_steps,
        "throughput_per_step": round(
            report.total_delivered / report.total_steps, 4
        )
        if report.total_steps
        else 0.0,
        "sojourn_p99": round(
            report.sojourn_percentiles(qs=(99.0,))["p99"], 1
        ),
        "tenant_delivered": {t: c["delivered"] for t, c in totals.items()},
        "tenant_backlog": {t: c["backlog"] for t, c in totals.items()},
        "tenant_p99": {t: round(v["p99"], 1) for t, v in tq.items()},
        "tenant_conservation_deficits": report.tenant_conservation_deficits(),
        "quota_violations": quota_violations,
        "run_modes": modes,
        "fallback_modes": fallback,
        "unsharded_match": unsharded_match,
    }


def run_suite() -> list[dict]:
    net = DAryButterflyLeveled(2, 6)
    rows: list[dict] = []
    for mix in ("uniform", "zipf"):
        for n_shards in SHARD_COUNTS:
            rows.append(_run_row(mix, n_shards, net))
            print(_render(rows[-1]))
    return rows


def structural_gates(rows: list[dict]) -> int:
    """Seed-independent sanity gates; returns the number of failures."""
    failures = 0

    def check(cond: bool, msg: str) -> None:
        nonlocal failures
        print(f"  {'ok' if cond else 'FAIL'}  {msg}")
        if not cond:
            failures += 1

    print("\nstructural gates:")
    for r in rows:
        name = r["scenario"]
        check(
            all(v == 0 for v in r["tenant_conservation_deficits"].values()),
            f"{name}: per-tenant conservation "
            f"(deficits {r['tenant_conservation_deficits']})",
        )
        check(
            r["quota_violations"] == 0,
            f"{name}: no epoch exceeded a tenant quota",
        )
        check(
            not r["fallback_modes"],
            f"{name}: vectorized dispatch only (saw {r['run_modes']})",
        )
        if r["shards"] == 1:
            check(
                r["unsharded_match"] is True,
                f"{name}: bit-identical to the unsharded emulator",
            )
        gold, bronze = r["tenant_delivered"]["gold"], r["tenant_delivered"]["bronze"]
        check(
            gold >= bronze,
            f"{name}: gold delivered ({gold}) >= bronze ({bronze})",
        )
        check(
            r["tenant_p99"]["gold"] <= r["tenant_p99"]["bronze"],
            f"{name}: gold p99 ({r['tenant_p99']['gold']}) <= "
            f"bronze p99 ({r['tenant_p99']['bronze']})",
        )
    return failures


def check_baseline(rows: list[dict], baseline: dict, *, tolerance: float) -> int:
    """Compare deterministic service metrics against a committed report.

    Same contract as the other benchmark gates: rows match by
    (scenario, network); new rows are skipped until the baseline is
    regenerated, baseline rows missing from the run fail.
    """
    by_key = {
        (r["scenario"], r["network"]): r for r in baseline.get("scenarios", [])
    }
    failures = 0
    print(f"\nbaseline check (tolerance: +-{tolerance:.0%}):")
    for row in rows:
        base = by_key.get((row["scenario"], row["network"]))
        if base is None:
            print(f"  {row['scenario']:32s} not in baseline — skipped")
            continue
        for metric in ("sojourn_p99", "throughput_per_step"):
            b, v = base[metric], row[metric]
            ok = (v == 0) if b == 0 else abs(v / b - 1.0) <= tolerance
            print(
                f"  {row['scenario']:32s} {metric:20s} "
                f"{b:10.2f} -> {v:10.2f} {'ok' if ok else 'REGRESSED'}"
            )
            if not ok:
                failures += 1
    ran = {(r["scenario"], r["network"]) for r in rows}
    for scenario, network in sorted(set(by_key) - ran):
        print(f"  {scenario:32s} in baseline but MISSING from this run")
        failures += 1
    return failures


def _render(row: dict) -> str:
    td = row["tenant_delivered"]
    return (
        f"{row['scenario']:28s} served={row['delivered']:<6d} "
        f"p99={row['sojourn_p99']:<8.0f} backlog={row['final_backlog']:<6d} "
        f"g/s/b={td.get('gold', 0)}/{td.get('silver', 0)}/{td.get('bronze', 0)}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_sharding.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--check-baseline",
        type=Path,
        default=None,
        metavar="BASELINE_JSON",
        help="compare deterministic service metrics (p99 sojourn, per-step "
        "throughput) against this committed report and exit nonzero on a "
        ">30%% drift; runs are seeded, so the gate is host-speed-safe",
    )
    args = parser.parse_args(argv)

    # Load the baseline up front: --out may point at the same file.
    baseline = None
    if args.check_baseline is not None:
        baseline = json.loads(args.check_baseline.read_text())

    rows = run_suite()
    failures = structural_gates(rows)
    report = {
        "benchmark": "sharded-memory-service",
        "note": (
            "two-level-hashed scatter/gather service over 2^20 addresses; "
            "three QoS tenants (gold/silver/bronze quotas 32/24/16); all "
            "metrics deterministic under the committed seeds"
        ),
        "scenarios": rows,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    if baseline is not None:
        failures += check_baseline(rows, baseline, tolerance=0.30)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
