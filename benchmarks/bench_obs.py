"""Observability overhead benchmark -> BENCH_obs.json.

Measures what `repro.obs` costs the emulation hot path in each of its
modes, on both networks (square mesh and binary butterfly), over a
seeded multi-step trace:

* ``disabled`` — ``observer=None``, the default: instrumented code
  with every hook behind a ``None`` check (the shipping configuration);
* ``null`` — an explicit :class:`~repro.obs.NullObserver` instance:
  same no-op semantics through the attribute-dispatch path;
* ``metrics`` — counters/gauges/histograms only (no tracing, no
  profiling, no flight recorder);
* ``full`` — everything on: metrics + spans on both clocks + per-phase
  engine profiling + the flight-recorder ring.

Two gate families:

* **bit identity** (seed-exact, host-speed-safe) — every configuration
  produces the identical emulation report; observation never changes
  the run.  Deterministic service metrics (total network steps, and
  the observer's own ``pram_steps_total`` / ``network_steps_total``
  counters) are pinned by the ``--check-baseline`` gate.
* **overhead** (ratio of medians in one process, so host speed
  cancels) — the ``null`` configuration must stay within 3 % of
  ``disabled``: opting out of observability is free.  The measured
  ``metrics``/``full`` ratios are reported in the artifact for
  humans but not gated — they are real work by design.

Not collected by pytest (file name is not ``test_*``); run directly:

    PYTHONPATH=src python benchmarks/bench_obs.py --out BENCH_obs.json
    PYTHONPATH=src python benchmarks/bench_obs.py \
        --check-baseline BENCH_obs.json
"""

from __future__ import annotations

import argparse
import json
import statistics
import time
from pathlib import Path

from repro.emulation import LeveledEmulator, MeshEmulator
from repro.obs import NullObserver, Observer
from repro.pram.trace import random_trace
from repro.topology import DAryButterflyLeveled, Mesh2D

#: opting out of observability must cost < 3 % (null vs disabled)
NULL_OVERHEAD_GATE = 1.03

#: timing repeats per (scenario, config); medians absorb scheduler noise
REPEATS = 5

TRACE_STEPS = 12

CONFIGS = {
    "disabled": lambda: None,
    "null": lambda: NullObserver(),
    "metrics": lambda: Observer(
        metrics=True, tracing=False, profiling=False, flight_recorder=0
    ),
    "full": lambda: Observer(),
}


def _scenarios() -> dict:
    """name -> (emulator builder, processor count)."""
    return {
        "mesh-crcw": (
            lambda observer: MeshEmulator(
                Mesh2D.square(6), 256, mode="crcw", seed=5, observer=observer
            ),
            36,
        ),
        "leveled-crcw": (
            lambda observer: LeveledEmulator(
                DAryButterflyLeveled(2, 5), 256, mode="crcw", seed=5,
                observer=observer,
            ),
            32,
        ),
    }


def _time_once(build, n_procs, observer_factory) -> tuple[float, dict]:
    emu = build(observer_factory())
    trace = random_trace(n_procs, 256, TRACE_STEPS, seed=21, erew=False)
    t0 = time.perf_counter()
    report = emu.emulate_trace(trace)
    elapsed = time.perf_counter() - t0
    summary = {
        "total_steps": report.total_network_steps,
        "num_steps": report.pram_steps,
        "rehashes": report.total_rehashes,
    }
    obs = emu.observer
    if obs is not None and obs.metrics is not None:
        metrics = obs.metrics.snapshot()["metrics"]
        for name in ("pram_steps_total", "network_steps_total"):
            series = metrics[name]["series"]
            summary[name] = sum(s["value"] for s in series)
    return elapsed, summary


def run_suite() -> list[dict]:
    rows: list[dict] = []
    for scenario, (build, n_procs) in _scenarios().items():
        summaries: dict[str, dict] = {}
        medians: dict[str, float] = {}
        for config in CONFIGS:
            times = []
            for _ in range(REPEATS):
                elapsed, summary = _time_once(build, n_procs, CONFIGS[config])
                times.append(elapsed)
            summaries[config] = summary
            medians[config] = statistics.median(times)
        base = medians["disabled"]
        row = {
            "scenario": scenario,
            "trace_steps": TRACE_STEPS,
            "total_steps": summaries["disabled"]["total_steps"],
            "pram_steps_total": summaries["metrics"]["pram_steps_total"],
            "network_steps_total": summaries["metrics"]["network_steps_total"],
            "median_s": {k: round(v, 6) for k, v in medians.items()},
            "overhead_ratio": {
                k: round(medians[k] / base, 4) for k in CONFIGS if k != "disabled"
            },
            "summaries_identical": all(
                s["total_steps"] == summaries["disabled"]["total_steps"]
                and s["num_steps"] == summaries["disabled"]["num_steps"]
                and s["rehashes"] == summaries["disabled"]["rehashes"]
                for s in summaries.values()
            ),
        }
        rows.append(row)
        print(_render(row))
    return rows


def structural_gates(rows: list[dict]) -> int:
    """Seed-independent gates; returns the number of failures."""
    failures = 0

    def check(cond: bool, msg: str) -> None:
        nonlocal failures
        print(f"  {'ok' if cond else 'FAIL'}  {msg}")
        if not cond:
            failures += 1

    print("\nstructural gates:")
    for r in rows:
        key = r["scenario"]
        check(
            r["summaries_identical"],
            f"{key}: every observer config produces the identical report",
        )
        check(
            r["overhead_ratio"]["null"] <= NULL_OVERHEAD_GATE,
            f"{key}: null-observer overhead < {NULL_OVERHEAD_GATE - 1:.0%} "
            f"(got {r['overhead_ratio']['null']:.4f}x)",
        )
        check(
            r["pram_steps_total"] == r["trace_steps"],
            f"{key}: metrics counted every PRAM step "
            f"({r['pram_steps_total']} == {r['trace_steps']})",
        )
        check(
            r["network_steps_total"] == r["total_steps"],
            f"{key}: network-step counter matches the report "
            f"({r['network_steps_total']} == {r['total_steps']})",
        )
    return failures


def check_baseline(rows: list[dict], baseline: dict) -> int:
    """Deterministic metrics must match the committed report exactly.

    Wall times and overhead ratios are host-dependent and stay out of
    the gate; the step counts are exact functions of the committed
    seeds, so any drift is a semantic change, not noise.
    """
    by_key = {r["scenario"]: r for r in baseline.get("scenarios", [])}
    failures = 0
    print("\nbaseline check (exact, deterministic metrics only):")
    for row in rows:
        base = by_key.get(row["scenario"])
        if base is None:
            print(f"  {row['scenario']:16s} not in baseline — skipped")
            continue
        for metric in ("total_steps", "pram_steps_total", "network_steps_total"):
            ok = base[metric] == row[metric]
            print(
                f"  {row['scenario']:16s} {metric:22s} "
                f"{base[metric]:8d} -> {row[metric]:8d} "
                f"{'ok' if ok else 'REGRESSED'}"
            )
            if not ok:
                failures += 1
    ran = {r["scenario"] for r in rows}
    for scenario in sorted(set(by_key) - ran):
        print(f"  {scenario:16s} in baseline but MISSING")
        failures += 1
    return failures


def _render(row: dict) -> str:
    ratios = " ".join(
        f"{k}={v:.3f}x" for k, v in row["overhead_ratio"].items()
    )
    return (
        f"{row['scenario']:16s} steps={row['total_steps']:<6d} "
        f"disabled={row['median_s']['disabled'] * 1e3:7.2f}ms  {ratios}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_obs.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--check-baseline",
        type=Path,
        default=None,
        metavar="BASELINE_JSON",
        help="compare the deterministic step counts against this committed "
        "report (exact match; wall times are never gated)",
    )
    args = parser.parse_args(argv)

    baseline = None
    if args.check_baseline is not None:
        baseline = json.loads(args.check_baseline.read_text())

    rows = run_suite()
    failures = structural_gates(rows)
    report = {
        "benchmark": "observability",
        "note": (
            "observer overhead by configuration (median of repeats, ratios "
            "vs observer=None in the same process, so host speed cancels); "
            "the null-observer gate pins opt-out below 3%; step counts are "
            "deterministic under the committed seeds, wall times are not"
        ),
        "scenarios": rows,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    if baseline is not None:
        failures += check_baseline(rows, baseline)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
