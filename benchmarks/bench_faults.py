"""Fault-injection benchmark: degraded-mode service -> BENCH_faults.json.

Sweeps the online mesh service (8x8 CRCW, hashed placement) over a
k-dead-modules grid — k in {0, 1, 4, 16} of 64 modules killed mid-run
at virtual step 40 — plus a link-flap scenario (two wires flapping
down/up while traffic flows).  Each row records the degraded-mode
telemetry ISSUE 6 adds:

* the exact conservation law (``arrivals == delivered + dropped +
  timed_out + dead_lettered + backlog``) — the deficit must be 0 in
  every row, killed modules or not;
* recovery time after the fault epoch (virtual steps until windowed
  throughput is back within 10% of the pre-fault level) — finite for
  every k on this grid;
* retry / timeout / dead-letter counters (all zero here: hashed
  placement rehashes around dead modules, so nothing is lost) and
  ``fault_stalls`` for the flap row (nonzero: a down link stalls
  traffic like a zero-credit link).

Dispatch is gated like BENCH_traffic.json: every epoch must run a
vectorized batch mode; the only extra run-mode label allowed is
``"fault-failfast"``, the zero-step NACK that detects a scheduled kill.

Every row is a pure function of the committed seeds (and the
differential contract makes it engine-independent), so the baseline
gate compares deterministic service metrics — p99 sojourn and per-step
throughput — not wall-clock.

Not collected by pytest (file name is not ``test_*``); run directly:

    PYTHONPATH=src python benchmarks/bench_faults.py --out BENCH_faults.json
    PYTHONPATH=src python benchmarks/bench_faults.py \
        --check-baseline BENCH_faults.json
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.emulation import MeshEmulator
from repro.faults import FaultSchedule
from repro.topology import Mesh2D
from repro.traffic import DeterministicArrivals, OnlineEmulator, UniformKeys, WorkloadGenerator

#: engine modes an online epoch is allowed to dispatch to; the
#: fail-fast marker is a zero-step detection NACK, not a routing run
ALLOWED_MODES = {"batch", "batch-constrained", "fault-failfast"}

N_SIDE = 8
N = N_SIDE * N_SIDE
SPACE = 4 * N
EPOCHS = 40
KILL_STEP = 40
K_GRID = (0, 1, 4, 16)


def _dead_modules(k: int) -> list[int]:
    """k module ids spread across the mesh (deterministic)."""
    return [(4 * i + 1) % N for i in range(k)]


def _kill_schedule(k: int) -> FaultSchedule | None:
    if k == 0:
        return None
    sched = FaultSchedule()
    for m in _dead_modules(k):
        sched.kill_module(KILL_STEP, m)
    return sched


def _flap_schedule() -> FaultSchedule:
    """Two wires (both directions) flap down/up twice mid-run."""
    sched = FaultSchedule()
    for u, v in ((27, 28), (35, 43)):
        for lo, hi in ((40, 120), (200, 260)):
            sched.link_down(lo, (u, v)).link_down(lo, (v, u))
            sched.link_up(hi, (u, v)).link_up(hi, (v, u))
    return sched


def _run_scenario(scenario: str, faults, *, k_dead: int) -> dict:
    emulator = MeshEmulator(
        Mesh2D.square(N_SIDE),
        SPACE,
        mode="crcw",
        seed=11,
        engine="fast",
        faults=faults,
    )
    workload = WorkloadGenerator(
        N,
        arrivals=DeterministicArrivals(0.75 * N),
        keys=UniformKeys(SPACE),
        read_fraction=0.7,
        seed=7,
    )
    driver = OnlineEmulator(emulator, workload)
    report = driver.run(EPOCHS)

    modes = report.run_mode_counts()
    fallback = {m: c for m, c in modes.items() if m not in ALLOWED_MODES}
    ss = report.steady_state()
    recs = report.recovery_times()
    rec_steps = [r["recovery_steps"] for r in recs]
    recovered = bool(recs) and all(s is not None for s in rec_steps)
    hot = report.module_hotness(top=1)
    return {
        "scenario": scenario,
        "network": f"mesh({N_SIDE}x{N_SIDE})",
        "epochs": EPOCHS,
        "k_dead": k_dead,
        "delivered": report.total_delivered,
        "dropped": report.total_dropped,
        "timed_out": report.total_timed_out,
        "retried": report.total_retried,
        "dead_lettered": report.total_dead_lettered,
        "final_backlog": report.final_backlog,
        "conservation_deficit": report.conservation_deficit(),
        "total_steps": report.total_steps,
        "stall_steps": report.total_stall_steps,
        "fault_stalls": report.total_fault_stalls,
        "rehashes": report.total_rehashes,
        "deadlock_retries": report.total_deadlock_retries,
        "throughput_per_step": round(ss["throughput_per_step"], 4),
        "sojourn_p50": round(ss["sojourn_p50"], 1),
        "sojourn_p99": round(ss["sojourn_p99"], 1),
        "fault_events": len(report.fault_event_log),
        "recovered": recovered,
        "recovery_steps_max": max(
            (s for s in rec_steps if s is not None), default=None
        ),
        "hottest_module": list(hot[0]) if hot else None,
        "run_modes": modes,
        "fallback_modes": fallback,
    }


def run_suite() -> list[dict]:
    rows: list[dict] = []
    for k in K_GRID:
        rows.append(
            _run_scenario(f"mesh-crcw-kill-{k}", _kill_schedule(k), k_dead=k)
        )
        print(_render(rows[-1]))
    rows.append(_run_scenario("mesh-crcw-link-flap", _flap_schedule(), k_dead=0))
    print(_render(rows[-1]))
    return rows


def structural_gates(rows: list[dict]) -> int:
    """Seed-independent gates; returns the number of failures.

    * every row balances the conservation law exactly (deficit 0);
    * no row dispatches outside the allowed engine modes;
    * the fault-free row (k=0) loses nothing: no dead letters, no
      timeouts, no rehashes, no fault stalls;
    * every k >= 1 row detects its kills (fail-fast + rehash) and
      recovers: finite recovery time, zero dead letters — hashed
      placement re-homes every address away from the dead modules;
    * the link-flap row actually stalls on the downed wires and still
      delivers everything.
    """
    by_scenario = {r["scenario"]: r for r in rows}
    failures = 0

    def check(cond: bool, msg: str) -> None:
        nonlocal failures
        print(f"  {'ok' if cond else 'FAIL'}  {msg}")
        if not cond:
            failures += 1

    print("\nstructural gates:")
    for r in rows:
        check(
            r["conservation_deficit"] == 0,
            f"{r['scenario']}: conservation deficit is 0",
        )
        check(
            not r["fallback_modes"],
            f"{r['scenario']}: allowed dispatch only (saw {r['run_modes']})",
        )
        check(
            r["dead_lettered"] == 0,
            f"{r['scenario']}: no request dead-lettered",
        )
    clean = by_scenario["mesh-crcw-kill-0"]
    for metric in ("timed_out", "rehashes", "fault_stalls", "fault_events"):
        check(clean[metric] == 0, f"k=0 row has zero {metric}")
    for k in K_GRID[1:]:
        r = by_scenario[f"mesh-crcw-kill-{k}"]
        check(
            r["run_modes"].get("fault-failfast", 0) >= 1,
            f"k={k}: scheduled kills were fail-fast-detected",
        )
        check(r["rehashes"] >= 1, f"k={k}: detection triggered a rehash")
        check(
            r["recovered"] and r["recovery_steps_max"] is not None,
            f"k={k}: finite recovery "
            f"(max {r['recovery_steps_max']} steps)",
        )
    flap = by_scenario["mesh-crcw-link-flap"]
    check(flap["fault_stalls"] > 0, "link-flap row records fault stalls")
    check(
        flap["delivered"] + flap["final_backlog"]
        == clean["delivered"] + clean["final_backlog"],
        "link-flap row accounts for the same arrivals as the clean row",
    )
    return failures


def check_baseline(rows: list[dict], baseline: dict, *, tolerance: float) -> int:
    """Compare deterministic service metrics against a committed report.

    Same contract as bench_traffic: rows matched by (scenario,
    network); new rows are skipped until the baseline is regenerated,
    baseline rows missing from the run fail.
    """
    by_key = {
        (r["scenario"], r["network"]): r for r in baseline.get("scenarios", [])
    }
    failures = 0
    print(f"\nbaseline check (tolerance: +-{tolerance:.0%}):")
    for row in rows:
        base = by_key.get((row["scenario"], row["network"]))
        if base is None:
            print(f"  {row['scenario']:36s} not in baseline — skipped")
            continue
        for metric in ("sojourn_p99", "throughput_per_step"):
            b, v = base[metric], row[metric]
            if b == 0:
                ok = v == 0
            else:
                ok = abs(v / b - 1.0) <= tolerance
            print(
                f"  {row['scenario']:36s} {metric:20s} "
                f"{b:10.2f} -> {v:10.2f} {'ok' if ok else 'REGRESSED'}"
            )
            if not ok:
                failures += 1
    ran = {(r["scenario"], r["network"]) for r in rows}
    for scenario, network in sorted(set(by_key) - ran):
        print(f"  {scenario:36s} in baseline but MISSING from this run")
        failures += 1
    return failures


def _render(row: dict) -> str:
    rec = row["recovery_steps_max"]
    return (
        f"{row['scenario']:24s} k={row['k_dead']:<3d} "
        f"served={row['delivered']:<6d} p99={row['sojourn_p99']:<8.0f} "
        f"rehashes={row['rehashes']:<3d} stalls={row['fault_stalls']:<5d} "
        f"dead={row['dead_lettered']:<3d} deficit={row['conservation_deficit']:<2d} "
        f"recovery={rec if rec is not None else '-'}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_faults.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--check-baseline",
        type=Path,
        default=None,
        metavar="BASELINE_JSON",
        help="compare deterministic service metrics (p99 sojourn, per-step "
        "throughput) against this committed report and exit nonzero on a "
        ">30%% drift; runs are seeded, so the gate is host-speed-safe",
    )
    args = parser.parse_args(argv)

    # Load the baseline up front: --out may point at the same file.
    baseline = None
    if args.check_baseline is not None:
        baseline = json.loads(args.check_baseline.read_text())

    rows = run_suite()
    failures = structural_gates(rows)
    report = {
        "benchmark": "fault-injection",
        "note": (
            "degraded-mode service under k dead modules and link flaps; "
            "all metrics deterministic under the committed seeds "
            "(engine-independent by the differential contract)"
        ),
        "scenarios": rows,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    if baseline is not None:
        failures += check_baseline(rows, baseline, tolerance=0.30)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
