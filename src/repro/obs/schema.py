"""Versioned report envelopes: one schema helper for every ``to_dict``.

The repo's JSON-facing reports (the traffic report, its degraded-mode
fault slice, the per-tenant sharding slice, metric snapshots, engine
profiles) historically each invented their own dict layout, which is
how telemetry drifts.  This module is the single convention:

* :data:`SCHEMA_VERSION` — one integer for the whole repo's report
  schemas, bumped on any breaking layout change;
* :func:`versioned` — wraps a payload with a ``"schema"`` envelope
  (``{"version": ..., "kind": ...}``) identifying what the dict is;
* :func:`stable_json` — canonical serialization (sorted keys, compact
  separators) so byte-identical reports mean identical content, the
  property the cross-engine round-trip tests pin.

Reports keep their existing flat keys — benchmark baselines and CI
gates read them — and *add* the envelope plus grouped section views,
so consumers can migrate to ``report["faults"]`` /
``report["tenants"]`` without a flag day.
"""

from __future__ import annotations

import json

__all__ = ["SCHEMA_VERSION", "schema_of", "stable_json", "versioned"]

#: single version number shared by every report kind in the repo
SCHEMA_VERSION = 1


def versioned(kind: str, payload: dict) -> dict:
    """Return *payload* with the standard schema envelope prepended.

    The envelope occupies the reserved ``"schema"`` key; *payload* must
    not already use it.
    """
    if "schema" in payload:
        raise ValueError(f"payload for kind {kind!r} already has a 'schema' key")
    out: dict = {"schema": {"version": SCHEMA_VERSION, "kind": kind}}
    out.update(payload)
    return out


def schema_of(report: dict) -> tuple[int, str] | None:
    """The ``(version, kind)`` of an enveloped report, else ``None``."""
    env = report.get("schema")
    if not isinstance(env, dict):
        return None
    return env.get("version"), env.get("kind")


def stable_json(obj) -> str:
    """Canonical JSON: sorted keys, compact separators, no NaN drama.

    ``allow_nan=True`` (the default) is kept deliberately: sojourn
    percentiles of empty windows are ``nan`` and the benchmarks already
    serialize them; canonicalization here is about *ordering*, so equal
    content always produces equal bytes.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))
