"""Engine wall-time profile: per-dispatch-mode and per-phase buckets.

The routing engines advance a virtual clock; this profile answers the
orthogonal question of where *real* time goes while they do it.  Two
bucket families:

* **modes** — wall seconds per dispatch mode (``"reference"``,
  ``"batch"``, ``"batch-constrained"``, ``"event"``), one sample per
  engine run;
* **phases** — wall seconds per step-loop phase: ``"transmission"``
  (links send), ``"arrival"`` (packets place/enqueue), ``"escape"``
  (the credit flow-control escape subphase), ``"combining"`` (CRCW
  combine-index work).

Phase buckets are disjoint: time attributed to ``combining`` or
``escape`` is subtracted from the enclosing ``arrival`` /
``transmission`` measurement, so the buckets sum to (approximately) the
engines' total step-loop time.  All accumulation is guarded by the
observer being attached — with the default :class:`NullObserver`, the
engines never read the wall clock at all.
"""

from __future__ import annotations

__all__ = ["PhaseProfile"]

#: canonical phase vocabulary (engines may add none or all per run)
PHASES = ("transmission", "arrival", "escape", "combining")


class PhaseProfile:
    """Accumulates wall seconds into mode and phase buckets."""

    def __init__(self) -> None:
        self.mode_seconds: dict[str, float] = {}
        self.phase_seconds: dict[str, float] = {}
        self.runs = 0

    def add_mode(self, mode: str, seconds: float) -> None:
        """Attribute one whole engine run to dispatch mode *mode*."""
        self.mode_seconds[mode] = self.mode_seconds.get(mode, 0.0) + seconds
        self.runs += 1

    def add_phase(self, phase: str, seconds: float) -> None:
        self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds

    def phase_total(self, phase: str) -> float:
        return self.phase_seconds.get(phase, 0.0)

    def merge(self, other: "PhaseProfile") -> None:
        """Fold *other*'s buckets into this profile."""
        for mode, sec in other.mode_seconds.items():
            self.mode_seconds[mode] = self.mode_seconds.get(mode, 0.0) + sec
        for phase, sec in other.phase_seconds.items():
            self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + sec
        self.runs += other.runs

    def to_dict(self) -> dict:
        """Deterministically ordered JSON-ready view."""
        return {
            "runs": self.runs,
            "modes": {k: self.mode_seconds[k] for k in sorted(self.mode_seconds)},
            "phases": {
                k: self.phase_seconds[k] for k in sorted(self.phase_seconds)
            },
        }
