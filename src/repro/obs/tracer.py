"""Span tracer on two clocks, with a Chrome trace-event exporter.

Every span records *both* timestamps the repo cares about:

* **wall clock** (via :func:`repro.obs.clock.wall_time`) — where real
  time goes, for profiling;
* **virtual clock** (network steps / epochs) — where the emulation's
  *cost* goes, the quantity the paper's theorems bound.

Spans nest naturally as ``with`` blocks::

    with tracer.span("route_attempt", category="routing",
                     virtual_clock=emu.virtual_clock, attempt=1) as sp:
        ...
        sp.virtual_end = emu.virtual_clock

``to_chrome_trace()`` exports the span list in the Chrome trace-event
format (``{"traceEvents": [...]}`` of ``"ph": "X"`` complete events,
microsecond timestamps), which loads directly in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``.  Virtual-clock
bounds travel in each event's ``args``.
"""

from __future__ import annotations

import json

from repro.obs.clock import wall_time

__all__ = ["Span", "SpanTracer"]


class Span:
    """One traced interval; use as a context manager."""

    __slots__ = (
        "name",
        "category",
        "args",
        "wall_start",
        "wall_end",
        "virtual_start",
        "virtual_end",
        "_tracer",
    )

    def __init__(
        self,
        tracer: "SpanTracer",
        name: str,
        category: str,
        virtual_clock,
        args: dict,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.args = args
        self.virtual_start = virtual_clock
        self.virtual_end = None
        self.wall_start = 0.0
        self.wall_end = None

    def __enter__(self) -> "Span":
        self.wall_start = wall_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.wall_end = wall_time()
        self._tracer._finish(self)
        return False


class SpanTracer:
    """Collects finished spans; exports Chrome trace-event JSON."""

    def __init__(self) -> None:
        self._origin = wall_time()
        self._spans: list[Span] = []

    def span(
        self, name: str, category: str = "repro", virtual_clock=None, **args
    ) -> Span:
        """A new (unstarted) span; entering it starts the wall clock."""
        return Span(self, name, category, virtual_clock, args)

    def _finish(self, span: Span) -> None:
        self._spans.append(span)

    def __len__(self) -> int:
        return len(self._spans)

    def spans(self) -> list[Span]:
        """Finished spans in completion order."""
        return list(self._spans)

    def events(self) -> list[dict]:
        """Finished spans as plain dicts (completion order)."""
        out = []
        for s in self._spans:
            out.append(
                {
                    "name": s.name,
                    "category": s.category,
                    "wall_start": s.wall_start - self._origin,
                    "wall_duration": (s.wall_end or s.wall_start) - s.wall_start,
                    "virtual_start": s.virtual_start,
                    "virtual_end": s.virtual_end,
                    "args": dict(s.args),
                }
            )
        return out

    def to_chrome_trace(self) -> dict:
        """The span list as a Chrome trace-event / Perfetto document."""
        events = []
        for s in self._spans:
            args = dict(s.args)
            if s.virtual_start is not None:
                args["virtual_start"] = s.virtual_start
            if s.virtual_end is not None:
                args["virtual_end"] = s.virtual_end
            ts = (s.wall_start - self._origin) * 1e6
            dur = ((s.wall_end or s.wall_start) - s.wall_start) * 1e6
            events.append(
                {
                    "name": s.name,
                    "cat": s.category,
                    "ph": "X",
                    "ts": ts,
                    "dur": dur,
                    "pid": 1,
                    "tid": 1,
                    "args": args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write(self, path) -> None:
        """Write the Chrome trace to *path* (open in Perfetto)."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome_trace(), fh)
