"""Bounded flight recorder: a ring buffer of recent step events.

When an emulation dies with a :class:`DeadlockError`, a
:class:`RehashStormError`, or a :class:`RaceError`, the stack trace says
*where* but not *what led up to it*.  The flight recorder keeps the last
K step events (engine steps, route attempts, rehashes, admission
epochs) in a ``deque(maxlen=K)``; the raise sites attach its tail to
the exception as ``exc.flight_tail``, so post-mortems see the run's
final moments without paying for full-run event logging.

The bound is hard: the deque drops the oldest event on overflow, so
memory use is O(K) no matter how long the run.
"""

from __future__ import annotations

from collections import deque

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Fixed-capacity ring buffer of event dicts."""

    def __init__(self, bound: int = 64) -> None:
        if bound <= 0:
            raise ValueError(f"flight recorder bound must be positive: {bound}")
        self.bound = bound
        self._events: deque[dict] = deque(maxlen=bound)

    def record(self, kind: str, virtual_clock=None, **fields) -> None:
        """Append one event; the oldest falls out past the bound."""
        event = {"kind": kind}
        if virtual_clock is not None:
            event["virtual_clock"] = virtual_clock
        event.update(fields)
        self._events.append(event)

    def tail(self) -> tuple[dict, ...]:
        """The recorded events, oldest first (at most ``bound``)."""
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        self._events.clear()
