"""The deterministic core's single wall-clock portal.

Everything under ``src/repro`` is a pure function of (inputs, seed)
advancing a *virtual* clock; the REPRO002 lint rule bans wall-clock
reads there so nondeterminism cannot leak into routing decisions.
Observability is the one legitimate consumer of real time — profiling
and tracing must measure it — so this module is the single, lint-exempt
portal: :func:`wall_time` wraps ``time.perf_counter`` and every
``src/repro`` module that needs a wall-clock timestamp imports it from
here.  The exemption is scoped to this file alone (see
``tools/lint/rules/wall_clock.py``), so a raw ``time.time()`` anywhere
else in the core still fails the lint.

The invariant that keeps observability safe: wall-clock values are
*recorded, never acted on*.  No branch in engine or emulator code may
depend on a value returned by :func:`wall_time`; that is what keeps
runs bit-identical with and without an observer attached.
"""

from __future__ import annotations

import time

__all__ = ["wall_time"]


def wall_time() -> float:
    """Seconds on a monotonic high-resolution clock.

    ``time.perf_counter`` semantics: the absolute origin is arbitrary,
    only differences are meaningful.
    """
    return time.perf_counter()
