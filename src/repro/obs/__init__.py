"""Unified observability layer: metrics, tracing, profiling, flight data.

One :class:`Observer` object carries the four instruments the repo's
runtime surfaces accept (engines, routers, emulators, the online
driver, the sharded service, the apps harness):

* :class:`~repro.obs.registry.MetricsRegistry` — labeled counters /
  gauges / histograms with deterministic JSON snapshots;
* :class:`~repro.obs.tracer.SpanTracer` — spans on both the virtual
  and the wall clock, exporting Chrome trace-event JSON (Perfetto);
* :class:`~repro.obs.profile.PhaseProfile` — per-dispatch-mode and
  per-phase engine wall-time breakdowns;
* :class:`~repro.obs.recorder.FlightRecorder` — a bounded ring buffer
  of recent step events whose tail rides on ``DeadlockError`` /
  ``RehashStormError`` / ``RaceError`` diagnostics.

Everything is opt-in.  The default everywhere is :class:`NullObserver`
(``enabled = False``, every component ``None``, every hook a no-op), so
a run without an observer never reads the wall clock and stays
bit-identical to the pre-observability code paths — the property the
differential tests and ``benchmarks/bench_obs.py`` pin.

Wall-clock access is centralized in :mod:`repro.obs.clock`, the single
file exempt from the REPRO002 no-wall-clock lint rule.
"""

from __future__ import annotations

from repro.obs.clock import wall_time
from repro.obs.profile import PhaseProfile
from repro.obs.recorder import FlightRecorder
from repro.obs.registry import MetricsError, MetricsRegistry
from repro.obs.schema import SCHEMA_VERSION, schema_of, stable_json, versioned
from repro.obs.tracer import Span, SpanTracer

__all__ = [
    "NULL_OBSERVER",
    "SCHEMA_VERSION",
    "FlightRecorder",
    "MetricsError",
    "MetricsRegistry",
    "NullObserver",
    "Observer",
    "PhaseProfile",
    "Span",
    "SpanTracer",
    "schema_of",
    "stable_json",
    "versioned",
    "wall_time",
]


class _NullSpan:
    """Context manager that measures nothing and tolerates everything."""

    __slots__ = ("virtual_end",)

    def __init__(self) -> None:
        self.virtual_end = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class NullObserver:
    """The do-nothing observer: default for every runtime surface.

    All components are ``None`` and every convenience hook is a no-op,
    so instrumented code can hold any observer and call it without
    branching; the disabled cost is an attribute read and a predictable
    branch.  A fresh instance is stateless, picklable, and shareable.
    """

    enabled = False
    metrics = None
    tracer = None
    profile = None
    recorder = None

    def span(self, name: str, category: str = "repro", virtual_clock=None, **args):
        return _NullSpan()

    def count(self, name: str, inc: float = 1, **labels) -> None:
        pass

    def gauge(self, name: str, value: float, **labels) -> None:
        pass

    def observe(self, name: str, value: float, **labels) -> None:
        pass

    def record(self, kind: str, virtual_clock=None, **fields) -> None:
        pass

    def flight_tail(self) -> tuple:
        return ()


class Observer(NullObserver):
    """A live observer bundling the four instruments (all optional).

    Parameters select components: ``metrics``, ``tracing``, and
    ``profiling`` toggle their registries; ``flight_recorder`` is the
    ring-buffer bound (0 disables it).  Components the caller turned
    off stay ``None`` and their hooks degrade to no-ops, so a
    metrics-only observer pays nothing for tracing.
    """

    enabled = True

    def __init__(
        self,
        *,
        metrics: bool = True,
        tracing: bool = True,
        profiling: bool = True,
        flight_recorder: int = 64,
    ) -> None:
        self.metrics = MetricsRegistry() if metrics else None
        self.tracer = SpanTracer() if tracing else None
        self.profile = PhaseProfile() if profiling else None
        self.recorder = (
            FlightRecorder(flight_recorder) if flight_recorder else None
        )

    def span(self, name: str, category: str = "repro", virtual_clock=None, **args):
        if self.tracer is None:
            return _NullSpan()
        return self.tracer.span(
            name, category=category, virtual_clock=virtual_clock, **args
        )

    def count(self, name: str, inc: float = 1, **labels) -> None:
        if self.metrics is not None:
            self.metrics.counter(name, inc, **labels)

    def gauge(self, name: str, value: float, **labels) -> None:
        if self.metrics is not None:
            self.metrics.gauge(name, value, **labels)

    def observe(self, name: str, value: float, **labels) -> None:
        if self.metrics is not None:
            self.metrics.histogram(name, value, **labels)

    def record(self, kind: str, virtual_clock=None, **fields) -> None:
        if self.recorder is not None:
            self.recorder.record(kind, virtual_clock=virtual_clock, **fields)

    def flight_tail(self) -> tuple:
        return self.recorder.tail() if self.recorder is not None else ()


#: shared stateless no-op instance; high-level surfaces normalize
#: ``observer or NULL_OBSERVER`` once and then call hooks unguarded
NULL_OBSERVER = NullObserver()
