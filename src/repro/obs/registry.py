"""Labeled metrics registry with deterministic JSON snapshots.

One registry replaces the repo's former trio of ad-hoc telemetry dicts
(traffic totals, fault/degraded-mode counters, per-tenant sharding
slices) with a single schema: named metrics of one of three kinds —

* **counter** — monotonically accumulated sum (``inc`` defaults to 1);
* **gauge** — last-write-wins instantaneous value;
* **histogram** — streaming ``count/sum/min/max`` summary of observed
  values (enough for means and extrema without storing samples).

Every metric may carry labels (keyword arguments); each distinct label
set is an independent series under the metric's name.  Names are
validated at registration time — snake_case, registered under exactly
one kind — which is the runtime half of the REPRO007 lint rule.

Snapshots are deterministic: metric names, label keys, and series are
all emitted in sorted order, so ``json.dumps`` of a snapshot is stable
across runs, engines, and interpreter builds (given the same recorded
values).
"""

from __future__ import annotations

import json
import re
from typing import Iterator

__all__ = ["MetricsError", "MetricsRegistry"]

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")

_KINDS = ("counter", "gauge", "histogram")


class MetricsError(ValueError):
    """Invalid metric name or kind-conflicting re-registration."""


class _Metric:
    __slots__ = ("name", "kind", "series")

    def __init__(self, name: str, kind: str) -> None:
        self.name = name
        self.kind = kind
        #: sorted-label-tuple -> value (counter/gauge) or summary dict
        self.series: dict[tuple, object] = {}


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


class MetricsRegistry:
    """Registry of named, labeled counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}

    # -- registration --------------------------------------------------
    def _get(self, name: str, kind: str) -> _Metric:
        m = self._metrics.get(name)
        if m is None:
            if not _NAME_RE.match(name):
                raise MetricsError(
                    f"metric name {name!r} is not snake_case "
                    "(expected ^[a-z][a-z0-9_]*$)"
                )
            m = self._metrics[name] = _Metric(name, kind)
        elif m.kind != kind:
            raise MetricsError(
                f"metric {name!r} already registered as a {m.kind}; "
                f"cannot re-register as a {kind}"
            )
        return m

    # -- recording -----------------------------------------------------
    def counter(self, name: str, inc: float = 1, **labels) -> None:
        """Add *inc* to the counter *name* (series selected by labels)."""
        series = self._get(name, "counter").series
        key = _label_key(labels)
        series[key] = series.get(key, 0) + inc

    def gauge(self, name: str, value: float, **labels) -> None:
        """Set the gauge *name* to *value* (last write wins)."""
        self._get(name, "gauge").series[_label_key(labels)] = value

    def histogram(self, name: str, value: float, **labels) -> None:
        """Fold *value* into the histogram *name*'s streaming summary."""
        series = self._get(name, "histogram").series
        key = _label_key(labels)
        s = series.get(key)
        if s is None:
            series[key] = {"count": 1, "sum": value, "min": value, "max": value}
        else:
            s["count"] += 1
            s["sum"] += value
            if value < s["min"]:
                s["min"] = value
            if value > s["max"]:
                s["max"] = value

    # -- introspection -------------------------------------------------
    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def kinds(self) -> Iterator[tuple[str, str]]:
        """Yield ``(name, kind)`` pairs in sorted name order."""
        for name in sorted(self._metrics):
            yield name, self._metrics[name].kind

    def value(self, name: str, **labels):
        """Current value of one series (None if never recorded)."""
        m = self._metrics.get(name)
        if m is None:
            return None
        return m.series.get(_label_key(labels))

    # -- export ----------------------------------------------------------
    def snapshot(self) -> dict:
        """Deterministic JSON-ready view of every metric.

        The standard versioned envelope around ``{"metrics": {name:
        {"kind": ..., "series": [{"labels": {...}, "value": ...},
        ...]}}}`` with names, label keys, and series all sorted.
        """
        from repro.obs.schema import versioned

        out: dict = {}
        for name in sorted(self._metrics):
            m = self._metrics[name]
            series = []
            for key in sorted(m.series):
                val = m.series[key]
                if isinstance(val, dict):
                    val = {k: val[k] for k in sorted(val)}
                series.append({"labels": dict(key), "value": val})
            out[name] = {"kind": m.kind, "series": series}
        return versioned("metrics", {"metrics": out})

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps(self.snapshot(), sort_keys=True, indent=indent)
