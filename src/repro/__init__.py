"""repro — Emulation of a PRAM on Leveled Networks (Palis, Rajasekaran &
Wei, ICPP 1991), reproduced as a Python library.

Public API tour:

* ``repro.topology`` — star graph, d-way shuffle, hypercube, butterfly,
  mesh, and the :class:`~repro.topology.LeveledNetwork` abstraction.
* ``repro.routing`` — the synchronous machine model and the paper's
  routing algorithms (Algorithms 2.1-2.3, the §3.4 mesh router).
* ``repro.hashing`` — the Karlin–Upfal hash family H (§2.1).
* ``repro.pram`` — a programmable EREW/CREW/CRCW PRAM plus classic
  parallel programs.
* ``repro.emulation`` — the emulation engines (Theorems 2.5/2.6, 3.2,
  3.3) and baselines; ``replay_program`` runs a PRAM program end-to-end
  on a network.
* ``repro.analysis`` — executable versions of the paper's bounds.
* ``repro.experiments`` — the E1-E12 / F1-F5 reproduction suite.
* ``repro.traffic`` — online traffic: open-loop workload generators,
  the :class:`~repro.traffic.OnlineEmulator` streaming driver, and
  windowed service telemetry (:class:`~repro.traffic.TrafficReport`).
* ``repro.sharding`` — the sharded multi-module memory service:
  two-level hashing, the :class:`~repro.sharding.ShardedEmulator`
  scatter/gather front end, and multi-tenant QoS admission.
* ``repro.obs`` — the opt-in observability layer: one
  :class:`~repro.obs.Observer` threads metrics, virtual-clock tracing,
  engine profiling, and a flight recorder through the whole stack.
"""

from repro.emulation import LeveledEmulator, MeshEmulator, replay_program
from repro.obs import NullObserver, Observer
from repro.pram import PRAM, AccessMode, WritePolicy
from repro.routing import LeveledRouter, MeshRouter, ShuffleRouter, StarRouter
from repro.sharding import ShardedEmulator
from repro.topology import (
    DWayShuffle,
    LeveledNetwork,
    Mesh2D,
    StarGraph,
    StarLogicalLeveled,
)
from repro.traffic import OnlineEmulator, TrafficReport, WorkloadGenerator

__version__ = "0.1.0"

__all__ = [
    "AccessMode",
    "DWayShuffle",
    "LeveledEmulator",
    "LeveledNetwork",
    "LeveledRouter",
    "Mesh2D",
    "MeshEmulator",
    "MeshRouter",
    "NullObserver",
    "Observer",
    "OnlineEmulator",
    "PRAM",
    "ShardedEmulator",
    "ShuffleRouter",
    "StarGraph",
    "StarLogicalLeveled",
    "StarRouter",
    "TrafficReport",
    "WorkloadGenerator",
    "WritePolicy",
    "__version__",
    "replay_program",
]
