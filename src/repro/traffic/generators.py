"""Open-loop workload generators: seeded arrival processes x key patterns.

The closed-batch experiments inject one synthetic PRAM step and drain
it; the traffic subsystem instead *streams* requests at the emulators:
an :class:`ArrivalProcess` decides how many requests arrive in each
epoch, a :class:`KeyDistribution` decides which shared-memory addresses
they touch, and a :class:`WorkloadGenerator` composes the two with a
read/write mix and per-request processor assignment.

Randomness discipline
---------------------
Everything follows the library's pre-drawn randomness rule
(:mod:`repro.util.rng`): a :class:`WorkloadGenerator` snapshots one
integer root seed at construction and :meth:`WorkloadGenerator.stream`
derives the entire request stream from it in a fixed draw order —
arrival counts first, then per-epoch addresses, kinds, and processor
ids.  The stream is therefore a pure function of the seed: calling
``stream`` twice, or feeding it to emulators running different engines,
yields bit-identical requests (the differential tests in
``tests/test_traffic.py`` pin this).

The two scenario axes the related work motivates are both here: skewed
key popularity (:class:`ZipfKeys`, :class:`HotspotKeys`) stresses the
hash-based memory distribution exactly where Hanlon's "large memory
from small ones" analysis predicts contention, and bursty arrivals
(:class:`BurstyArrivals`, an on/off MMPP) exercise sustained
multi-round operation instead of one-shot batches.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.util.rng import as_generator

__all__ = [
    "ArrivalProcess",
    "BurstyArrivals",
    "DeterministicArrivals",
    "HotspotKeys",
    "KeyDistribution",
    "PoissonArrivals",
    "ScanKeys",
    "TrafficRequest",
    "UniformKeys",
    "WorkloadGenerator",
    "ZipfKeys",
]


@dataclass(frozen=True)
class TrafficRequest:
    """One shared-memory request in an open-loop stream.

    ``rid`` is unique and monotone within a stream (the conservation
    tests key on it); ``epoch`` is the arrival epoch.  Write requests
    carry ``value`` (defaults to the rid, so concurrent-write resolution
    stays deterministic and observable).  ``tenant`` names the traffic
    source for multi-tenant accounting (quotas, QoS classes, per-tenant
    conservation — see :mod:`repro.sharding.qos`); single-tenant
    generators leave it at ``"default"``.
    """

    rid: int
    pid: int
    addr: int
    kind: str  # "read" | "write"
    epoch: int
    value: Any = None
    tenant: str = "default"


# ---- arrival processes -----------------------------------------------------


class ArrivalProcess(ABC):
    """How many requests arrive in each epoch (an open-loop source)."""

    @abstractmethod
    def counts(self, epochs: int, rng: np.random.Generator) -> np.ndarray:
        """Pre-draw the arrival count of every epoch in one pass."""


class DeterministicArrivals(ArrivalProcess):
    """A constant offered rate: ``rate`` requests per epoch.

    Fractional rates accumulate (rate=1.5 alternates 1, 2, 1, 2, ...),
    so the long-run average is exact.  Draws no randomness.
    """

    def __init__(self, rate: float) -> None:
        if rate < 0:
            raise ValueError("rate must be >= 0")
        self.rate = float(rate)

    def counts(self, epochs: int, rng: np.random.Generator) -> np.ndarray:
        marks = np.floor(self.rate * np.arange(epochs + 1, dtype=np.float64))
        return np.diff(marks).astype(np.int64)


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals: epoch counts ~ Poisson(rate), independent."""

    def __init__(self, rate: float) -> None:
        if rate < 0:
            raise ValueError("rate must be >= 0")
        self.rate = float(rate)

    def counts(self, epochs: int, rng: np.random.Generator) -> np.ndarray:
        return rng.poisson(self.rate, size=epochs).astype(np.int64)


class BurstyArrivals(ArrivalProcess):
    """On/off Markov-modulated Poisson process (a 2-state MMPP).

    Each epoch the source sits in an ``on`` or ``off`` state and emits
    Poisson(``on_rate``) or Poisson(``off_rate``) requests; the state
    flips with probability ``p_exit_on`` / ``p_exit_off`` per epoch.
    Mean burst length is ``1 / p_exit_on`` epochs, and the long-run
    offered rate is the stationary mix of the two rates.
    """

    def __init__(
        self,
        on_rate: float,
        off_rate: float = 0.0,
        *,
        p_exit_on: float = 0.2,
        p_exit_off: float = 0.2,
        start_on: bool = True,
    ) -> None:
        if on_rate < 0 or off_rate < 0:
            raise ValueError("rates must be >= 0")
        if not (0 < p_exit_on <= 1 and 0 < p_exit_off <= 1):
            raise ValueError("state-exit probabilities must be in (0, 1]")
        self.on_rate = float(on_rate)
        self.off_rate = float(off_rate)
        self.p_exit_on = float(p_exit_on)
        self.p_exit_off = float(p_exit_off)
        self.start_on = start_on

    def mean_rate(self) -> float:
        """Long-run offered rate (stationary state mix)."""
        pi_on = self.p_exit_off / (self.p_exit_on + self.p_exit_off)
        return pi_on * self.on_rate + (1 - pi_on) * self.off_rate

    def counts(self, epochs: int, rng: np.random.Generator) -> np.ndarray:
        flips = rng.random(epochs)  # pre-drawn state coins, one per epoch
        states = np.empty(epochs, dtype=bool)
        on = self.start_on
        for e in range(epochs):
            states[e] = on
            on = (flips[e] >= self.p_exit_on) if on else (flips[e] < self.p_exit_off)
        rates = np.where(states, self.on_rate, self.off_rate)
        return rng.poisson(rates).astype(np.int64)


# ---- key / address distributions -------------------------------------------


class KeyDistribution(ABC):
    """Which shared-memory addresses a batch of requests touches."""

    def __init__(self, address_space: int) -> None:
        if address_space < 1:
            raise ValueError("address_space must be >= 1")
        self.address_space = int(address_space)

    @abstractmethod
    def draw(self, k: int, rng: np.random.Generator) -> np.ndarray:
        """*k* addresses in ``[0, address_space)`` as an int64 array."""


class UniformKeys(KeyDistribution):
    """Every address equally likely — the hash family's best case."""

    def draw(self, k: int, rng: np.random.Generator) -> np.ndarray:
        return rng.integers(self.address_space, size=k, dtype=np.int64)


class ZipfKeys(KeyDistribution):
    """Zipf-popular addresses: P(addr = r) proportional to 1/(r+1)^s.

    Address 0 is the hottest (rank 1), address 1 the next, and so on —
    a deterministic rank layout, so a run's hot set is known a priori
    and two streams with equal seeds agree address for address.  Drawn
    by inverting a precomputed CDF (one ``searchsorted`` per batch),
    truncated to the address space: the bounded analogue of the classic
    Zipf law, the standard skewed-popularity model for cache and
    key-value workloads.
    """

    def __init__(self, address_space: int, exponent: float = 1.1) -> None:
        super().__init__(address_space)
        if exponent <= 0:
            raise ValueError("exponent must be > 0")
        self.exponent = float(exponent)
        weights = np.arange(1, self.address_space + 1, dtype=np.float64)
        weights **= -self.exponent
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        self._cdf = cdf

    def draw(self, k: int, rng: np.random.Generator) -> np.ndarray:
        return np.searchsorted(self._cdf, rng.random(k), side="right").astype(
            np.int64
        )


class HotspotKeys(KeyDistribution):
    """A fixed hot set absorbs a fixed fraction of the traffic.

    ``hot_fraction`` of requests land uniformly on the first
    ``hot_addresses`` addresses; the rest spread uniformly over the
    whole space — the online analogue of
    :func:`repro.pram.trace.hotspot_step`.
    """

    def __init__(
        self,
        address_space: int,
        *,
        hot_addresses: int = 1,
        hot_fraction: float = 0.9,
    ) -> None:
        super().__init__(address_space)
        if not 1 <= hot_addresses <= address_space:
            raise ValueError("hot_addresses must be in [1, address_space]")
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in [0, 1]")
        self.hot_addresses = int(hot_addresses)
        self.hot_fraction = float(hot_fraction)

    def draw(self, k: int, rng: np.random.Generator) -> np.ndarray:
        hot = rng.random(k) < self.hot_fraction
        hot_draw = rng.integers(self.hot_addresses, size=k, dtype=np.int64)
        cold_draw = rng.integers(self.address_space, size=k, dtype=np.int64)
        return np.where(hot, hot_draw, cold_draw)


class ScanKeys(KeyDistribution):
    """Sequential scans instead of point lookups.

    Requests come in runs of ``scan_length`` consecutive addresses
    (wrapping at the space boundary) from random start points — the
    access shape of table scans and bulk reads, at the opposite end of
    the locality spectrum from Zipf point traffic.
    """

    def __init__(self, address_space: int, *, scan_length: int = 8) -> None:
        super().__init__(address_space)
        if scan_length < 1:
            raise ValueError("scan_length must be >= 1")
        self.scan_length = int(scan_length)

    def draw(self, k: int, rng: np.random.Generator) -> np.ndarray:
        n_scans = -(-k // self.scan_length)  # ceil
        starts = rng.integers(self.address_space, size=n_scans, dtype=np.int64)
        offsets = np.arange(self.scan_length, dtype=np.int64)
        grid = (starts[:, None] + offsets[None, :]) % self.address_space
        return grid.reshape(-1)[:k]


# ---- the composed generator ------------------------------------------------


class WorkloadGenerator:
    """Arrival process x key distribution x read/write mix -> request stream.

    Parameters
    ----------
    n_procs:
        Number of PRAM processors; each request originates at a
        uniformly drawn pid (an open-loop source does not wait for its
        previous request, so one processor may issue several requests
        in one epoch — an h-relation, which the emulators support).
    arrivals / keys:
        The :class:`ArrivalProcess` and :class:`KeyDistribution` to
        compose.
    read_fraction:
        Probability a request is a read (writes carry their rid as the
        value).  1.0 (default) is a pure-read workload.
    seed:
        Anything :func:`repro.util.rng.as_generator` accepts.  The
        generator snapshots a single root integer immediately, so the
        stream is replayable regardless of what the caller does with
        its generator afterwards.
    """

    def __init__(
        self,
        n_procs: int,
        *,
        arrivals: ArrivalProcess,
        keys: KeyDistribution,
        read_fraction: float = 1.0,
        seed=None,
    ) -> None:
        if n_procs < 1:
            raise ValueError("n_procs must be >= 1")
        if not 0.0 <= read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        self.n_procs = int(n_procs)
        self.arrivals = arrivals
        self.keys = keys
        self.read_fraction = float(read_fraction)
        # Snapshot one root seed: stream() must be a pure function of it.
        self.root_seed = int(as_generator(seed).integers(2**63 - 1))

    @property
    def address_space(self) -> int:
        return self.keys.address_space

    def stream(self, epochs: int) -> list[list[TrafficRequest]]:
        """The first *epochs* epochs of arrivals, one list per epoch.

        Fixed draw order — counts, then per-epoch (addresses, kinds,
        pids) — from a generator derived from the snapshotted root
        seed, so equal seeds give bit-identical streams.
        """
        if epochs < 0:
            raise ValueError("epochs must be >= 0")
        rng = np.random.default_rng(self.root_seed)
        counts = self.arrivals.counts(epochs, rng)
        out: list[list[TrafficRequest]] = []
        rid = 0
        for epoch, k in enumerate(counts.tolist()):
            if k == 0:
                out.append([])
                continue
            addrs = self.keys.draw(k, rng)
            if self.read_fraction >= 1.0:
                is_read = np.ones(k, dtype=bool)
            elif self.read_fraction <= 0.0:
                is_read = np.zeros(k, dtype=bool)
            else:
                is_read = rng.random(k) < self.read_fraction
            pids = rng.integers(self.n_procs, size=k, dtype=np.int64)
            batch = []
            for a, r, p in zip(addrs.tolist(), is_read.tolist(), pids.tolist()):
                batch.append(
                    TrafficRequest(
                        rid=rid,
                        pid=int(p),
                        addr=int(a),
                        kind="read" if r else "write",
                        epoch=epoch,
                        value=None if r else rid,
                    )
                )
                rid += 1
            out.append(batch)
        return out
