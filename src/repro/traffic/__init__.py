"""Online traffic: open-loop workload generators, streaming driver, telemetry.

The paper's emulation results are closed batches — inject one PRAM
step, drain it, stop.  This subsystem turns the emulators into an open
*service*: seeded arrival processes composed with key-popularity
distributions (:mod:`repro.traffic.generators`) stream requests into an
admission queue, an :class:`OnlineEmulator`
(:mod:`repro.traffic.driver`) serves them epoch by epoch through the
existing engine dispatch, and windowed telemetry
(:mod:`repro.traffic.telemetry`) reports throughput, sojourn-latency
percentiles, queue depth, and the per-epoch engine-dispatch history.

Quickstart::

    from repro.emulation import LeveledEmulator
    from repro.topology import DAryButterflyLeveled
    from repro.traffic import (
        OnlineEmulator, PoissonArrivals, WorkloadGenerator, ZipfKeys,
    )

    net = DAryButterflyLeveled(2, 6)
    em = LeveledEmulator(net, address_space=1024, mode="crcw", seed=1)
    wl = WorkloadGenerator(
        net.column_size,
        arrivals=PoissonArrivals(40.0),
        keys=ZipfKeys(1024, exponent=1.1),
        seed=2,
    )
    report = OnlineEmulator(em, wl).run(epochs=50)
    print(report.sojourn_percentiles(), report.last_run_mode)

See ``docs/traffic.md`` for driver semantics and the telemetry field
reference.
"""

from repro.traffic.driver import OnlineEmulator
from repro.traffic.generators import (
    ArrivalProcess,
    BurstyArrivals,
    DeterministicArrivals,
    HotspotKeys,
    KeyDistribution,
    PoissonArrivals,
    ScanKeys,
    TrafficRequest,
    UniformKeys,
    WorkloadGenerator,
    ZipfKeys,
)
from repro.traffic.telemetry import EpochRecord, TrafficReport

__all__ = [
    "ArrivalProcess",
    "BurstyArrivals",
    "DeterministicArrivals",
    "EpochRecord",
    "HotspotKeys",
    "KeyDistribution",
    "OnlineEmulator",
    "PoissonArrivals",
    "ScanKeys",
    "TrafficRequest",
    "UniformKeys",
    "WorkloadGenerator",
    "ZipfKeys",
]
