"""Open-loop streaming driver: feed an emulator epoch by epoch.

:class:`OnlineEmulator` turns the closed-batch PRAM emulators into an
open service.  A :class:`~repro.traffic.generators.WorkloadGenerator`
produces arrivals; an admission queue smooths them into *epochs* — one
emulated PRAM step each — and windowed telemetry
(:class:`~repro.traffic.telemetry.TrafficReport`) records what the
service did.

Epoch loop
----------
Per epoch: (1) the generator's arrivals for the epoch enter the
admission queue (the ``"drop"`` overflow policy rejects arrivals beyond
``queue_limit``; ``"defer"`` keeps everything); (2) up to
``admit_limit`` queued requests are admitted FIFO into a
:class:`~repro.pram.trace.StepTrace`; (3) the emulator serves the step
— hashing, request routing under whatever ``node_capacity`` /
``flow_control`` the emulator was built with, memory ops, replies; (4)
the virtual clock advances by the step's network cost and every served
request's sojourn (arrival -> delivery, in network steps) is recorded.
Un-admitted requests stay queued and carry over — under credit
backpressure a congested epoch takes longer, the clock advances
further, and the queued requests' sojourns grow: exactly the open-loop
feedback a closed batch cannot express.

Admitted batches are *rectangular* work for the engines: requests
become one PRAM step, which the emulators route through their
``engine="auto"`` dispatch, so online epochs stay on the vectorized
batch / constrained-batch paths.  The per-epoch dispatch history on the
report (``run_modes``) lets tests assert that no epoch silently fell
back to the per-event mode.

Reproducibility: the workload stream is a pure function of the
generator's seed and the emulator pre-draws its routing randomness, so
a fixed (workload seed, emulator seed) pair replays bit-identically on
``engine="fast"`` and ``engine="reference"``.
"""

from __future__ import annotations

from collections import deque

from repro.emulation.base import Emulator, StepCost
from repro.pram.trace import ReadRequest, StepTrace, WriteRequest
from repro.traffic.generators import TrafficRequest, WorkloadGenerator
from repro.traffic.telemetry import EpochRecord, TrafficReport

__all__ = ["OnlineEmulator"]

OVERFLOW_POLICIES = ("defer", "drop")


class OnlineEmulator:
    """Drive an :class:`~repro.emulation.base.Emulator` with open traffic.

    Parameters
    ----------
    emulator:
        A configured :class:`~repro.emulation.MeshEmulator` or
        :class:`~repro.emulation.LeveledEmulator` (any engine, any
        flow-control setting).  The driver never touches its internals;
        it only calls :meth:`emulate_step`.
    workload:
        The seeded request source.  Its ``n_procs`` must not exceed the
        emulator's processor count.
    admit_limit:
        Maximum requests admitted into one epoch's PRAM step (default:
        the workload's ``n_procs`` — one request per processor, the
        natural rectangular step).  Arrivals beyond it wait.
    queue_limit / overflow:
        Admission-queue bound and what to do beyond it: ``"defer"``
        (default) never drops — the queue grows without bound (a
        ``queue_limit`` is rejected as meaningless) and saturation
        shows up as growing backlog; ``"drop"`` rejects (drop-tail)
        arrivals that would exceed ``queue_limit``.
    exclusive:
        Admit at most one request per address per epoch: later requests
        for an already-admitted address are *skipped over* (they keep
        their FIFO position and retry next epoch) rather than blocking
        the queue head.  Defaults to ``True`` exactly when the emulator
        runs ``mode="erew"``, which rejects concurrent accesses; CRCW
        emulators take the whole batch and let combining handle
        concurrency.  Under a hot-spot key distribution this rule *is*
        the cost of exclusive access: a hot address serializes to one
        touch per epoch, so its excess demand accumulates as backlog.
    """

    def __init__(
        self,
        emulator: Emulator,
        workload: WorkloadGenerator,
        *,
        admit_limit: int | None = None,
        queue_limit: int | None = None,
        overflow: str = "defer",
        exclusive: bool | None = None,
    ) -> None:
        if overflow not in OVERFLOW_POLICIES:
            raise ValueError(
                f"unknown overflow policy {overflow!r}; "
                f"pick one of {OVERFLOW_POLICIES}"
            )
        if overflow == "drop" and queue_limit is None:
            raise ValueError('overflow="drop" requires a queue_limit')
        if overflow == "defer" and queue_limit is not None:
            raise ValueError(
                'queue_limit has no effect under overflow="defer"; '
                'use overflow="drop" for a bounded queue'
            )
        if queue_limit is not None and queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        procs = self._emulator_procs(emulator)
        if procs is not None and workload.n_procs > procs:
            raise ValueError(
                f"workload spans {workload.n_procs} processors but the "
                f"emulator has only {procs}"
            )
        memory = getattr(emulator, "memory", None)
        if memory is not None and workload.address_space > memory.size:
            raise ValueError(
                f"workload draws addresses in [0, {workload.address_space}) "
                f"but the emulator's memory has only {memory.size} cells"
            )
        if admit_limit is None:
            admit_limit = workload.n_procs
        if admit_limit < 1:
            raise ValueError("admit_limit must be >= 1")
        if exclusive is None:
            exclusive = getattr(emulator, "mode", None) == "erew"
        self.emulator = emulator
        self.workload = workload
        self.admit_limit = int(admit_limit)
        self.queue_limit = queue_limit
        self.overflow = overflow
        self.exclusive = bool(exclusive)
        #: admission queue of (request, arrival_clock) pairs, FIFO
        self.queue: deque[tuple[TrafficRequest, int]] = deque()
        #: virtual time in network steps (sum of served epochs' costs)
        self.clock = 0
        self._ran = False

    @staticmethod
    def _emulator_procs(emulator) -> int | None:
        if hasattr(emulator, "n_processors"):
            return int(emulator.n_processors)
        mesh = getattr(emulator, "mesh", None)
        if mesh is not None:
            return int(mesh.num_nodes)
        return None

    @property
    def backlog(self) -> int:
        """Requests currently waiting in the admission queue."""
        return len(self.queue)

    # ------------------------------------------------------------------
    def _admit(self) -> list[tuple[TrafficRequest, int]]:
        """Pop this epoch's FIFO batch (respecting the exclusive rule).

        Exclusive mode walks the queue skipping address conflicts;
        skipped requests are spliced back in their original order, so
        an address's pending accesses drain one per epoch while
        unrelated traffic flows past them.
        """
        batch: list[tuple[TrafficRequest, int]] = []
        if not self.exclusive:
            while self.queue and len(batch) < self.admit_limit:
                batch.append(self.queue.popleft())
            return batch
        skipped: list[tuple[TrafficRequest, int]] = []
        seen_addrs: set[int] = set()
        while self.queue and len(batch) < self.admit_limit:
            req, stamp = self.queue.popleft()
            if req.addr in seen_addrs:
                skipped.append((req, stamp))
                continue
            seen_addrs.add(req.addr)
            batch.append((req, stamp))
        self.queue.extendleft(reversed(skipped))
        return batch

    @staticmethod
    def _build_step(batch: list[tuple[TrafficRequest, int]]) -> StepTrace:
        step = StepTrace()
        for req, _stamp in batch:
            if req.kind == "read":
                step.reads.append(ReadRequest(req.pid, req.addr))
            else:
                step.writes.append(WriteRequest(req.pid, req.addr, req.value))
        return step

    # ------------------------------------------------------------------
    def run(self, epochs: int) -> TrafficReport:
        """Serve *epochs* epochs of traffic; returns the telemetry report.

        One-shot: the workload stream starts at epoch 0 and the driver's
        clock at 0, so a second call would silently replay the same
        arrivals against mutated emulator state — it raises instead.
        """
        if self._ran:
            raise RuntimeError(
                "OnlineEmulator.run is one-shot; build a fresh driver "
                "(and emulator) to run again"
            )
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        self._ran = True
        stream = self.workload.stream(epochs)
        report = TrafficReport()
        for epoch in range(epochs):
            arrivals = stream[epoch]
            dropped = 0
            if self.overflow == "drop":
                room = self.queue_limit - len(self.queue)
                if len(arrivals) > room:
                    dropped = len(arrivals) - max(room, 0)
                    arrivals = arrivals[: max(room, 0)]
            for req in arrivals:
                self.queue.append((req, self.clock))
            batch = self._admit()
            if batch:
                cost = self.emulator.emulate_step(self._build_step(batch))
            else:
                cost = StepCost(0, 0)
            self.clock += cost.total_steps
            record = EpochRecord(
                epoch=epoch,
                arrivals=len(arrivals) + dropped,
                dropped=dropped,
                admitted=len(batch),
                backlog=len(self.queue),
                steps=cost.total_steps,
                request_steps=cost.request_steps,
                reply_steps=cost.reply_steps,
                rehashes=cost.rehashes,
                combines=cost.combines,
                max_queue=cost.max_queue,
                credits_stalled=cost.credits_stalled,
                run_modes=cost.run_modes,
                clock=self.clock,
                sojourns=[self.clock - stamp for _req, stamp in batch],
                sojourns_epochs=[epoch - req.epoch for req, _stamp in batch],
            )
            report.add(record)
        return report
