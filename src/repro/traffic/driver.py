"""Open-loop streaming driver: feed an emulator epoch by epoch.

:class:`OnlineEmulator` turns the closed-batch PRAM emulators into an
open service.  A :class:`~repro.traffic.generators.WorkloadGenerator`
produces arrivals; an admission queue smooths them into *epochs* — one
emulated PRAM step each — and windowed telemetry
(:class:`~repro.traffic.telemetry.TrafficReport`) records what the
service did.

Epoch loop
----------
Per epoch: (1) the generator's arrivals for the epoch enter the
admission queue (the ``"drop"`` overflow policy rejects arrivals beyond
``queue_limit``; ``"defer"`` keeps everything); (2) up to
``admit_limit`` queued requests are admitted FIFO into a
:class:`~repro.pram.trace.StepTrace` — requests past their
``request_timeout`` deadline expire here instead; (3) the emulator
serves the step — hashing, request routing under whatever
``node_capacity`` / ``flow_control`` / fault schedule the emulator was
built with, memory ops, replies; (4) the virtual clock advances by the
step's network cost (successful phases *plus* failed-attempt stalls)
and every served request's sojourn (arrival -> delivery, in network
steps) is recorded.  Un-admitted requests stay queued and carry over —
under credit backpressure a congested epoch takes longer, the clock
advances further, and the queued requests' sojourns grow: exactly the
open-loop feedback a closed batch cannot express.

Degraded-mode hardening
-----------------------
A step that the emulator gives up on (it raises
:class:`~repro.faults.RehashStormError` when a fault schedule keeps an
attempt from completing) does **not** lose its requests: each one is
re-enqueued at the back of the queue with an exponential-backoff
eligibility time (``backoff * 2**(attempt-1)`` virtual steps), up to
``retry_limit`` attempts, after which it moves to ``dead_letters``.
When every queued request is backing off, the driver fast-forwards the
clock to the earliest eligibility instead of spinning idle epochs.
Requests therefore obey an exact conservation law the tests and
benchmark gates assert::

    arrivals == delivered + dropped + timed_out + dead_lettered + backlog

The driver also pins the emulator's fault clock (``virtual_clock``) to
its own every epoch, so a :class:`~repro.faults.FaultSchedule` runs on
the same timeline the telemetry reports, and it annotates each epoch
with the fault events that fired during it.

Admitted batches are *rectangular* work for the engines: requests
become one PRAM step, which the emulators route through their
``engine="auto"`` dispatch, so online epochs stay on the vectorized
batch / constrained-batch paths.  The per-epoch dispatch history on the
report (``run_modes``) lets tests assert that no epoch silently fell
back to the per-event mode.

Reproducibility: the workload stream is a pure function of the
generator's seed and the emulator pre-draws its routing randomness, so
a fixed (workload seed, emulator seed) pair replays bit-identically on
``engine="fast"`` and ``engine="reference"``.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush

import numpy as np

from repro.emulation.base import Emulator, StepCost
from repro.faults import RehashStormError
from repro.obs import NULL_OBSERVER
from repro.pram.trace import ReadRequest, StepTrace, WriteRequest
from repro.traffic.generators import TrafficRequest, WorkloadGenerator
from repro.traffic.telemetry import EpochRecord, TrafficReport

__all__ = ["OnlineEmulator"]

OVERFLOW_POLICIES = ("defer", "drop")


def _tenant_counts(*groups) -> dict[str, int]:
    """Requests per tenant label across any number of request iterables."""
    counts: dict[str, int] = {}
    for group in groups:
        for req in group:
            counts[req.tenant] = counts.get(req.tenant, 0) + 1
    return counts


class OnlineEmulator:
    """Drive an :class:`~repro.emulation.base.Emulator` with open traffic.

    Parameters
    ----------
    emulator:
        A configured :class:`~repro.emulation.MeshEmulator` or
        :class:`~repro.emulation.LeveledEmulator` (any engine, any
        flow-control setting, optionally carrying a fault schedule).
        The driver calls :meth:`emulate_step` and, for fault-aware
        emulators, keeps their ``virtual_clock`` pinned to its own.
    workload:
        The seeded request source.  Its ``n_procs`` must not exceed the
        emulator's processor count.
    admit_limit:
        Maximum requests admitted into one epoch's PRAM step (default:
        the workload's ``n_procs`` — one request per processor, the
        natural rectangular step).  Arrivals beyond it wait.
    queue_limit / overflow:
        Admission-queue bound and what to do beyond it: ``"defer"``
        (default) never drops — the queue grows without bound (a
        ``queue_limit`` is rejected as meaningless) and saturation
        shows up as growing backlog; ``"drop"`` rejects (drop-tail)
        arrivals that would exceed ``queue_limit``.
    exclusive:
        Admit at most one request per address per epoch: later requests
        for an already-admitted address are *skipped over* (they keep
        their FIFO position and retry next epoch) rather than blocking
        the queue head.  Defaults to ``True`` exactly when the emulator
        runs ``mode="erew"``, which rejects concurrent accesses; CRCW
        emulators take the whole batch and let combining handle
        concurrency.  Under a hot-spot key distribution this rule *is*
        the cost of exclusive access: a hot address serializes to one
        touch per epoch, so its excess demand accumulates as backlog.
    request_timeout:
        Per-request deadline in virtual network steps.  A request still
        undelivered ``request_timeout`` steps after arrival expires at
        its next admission opportunity (lazily, when it reaches the
        head of its address's sub-queue) and is counted ``timed_out``.
        ``None`` (default) disables deadlines.
    retry_limit / backoff:
        Degraded-mode retry policy: a request whose serving step failed
        (:class:`~repro.faults.RehashStormError`) is re-enqueued with
        eligibility ``clock + backoff * 2**(attempt-1)`` for up to
        ``retry_limit`` attempts, then dead-lettered (kept, with its
        retry count, in :attr:`dead_letters`).
    rehash_storm_cap:
        Hard guard: if a *successful* epoch needed more than this many
        rehashes, the run aborts with
        :class:`~repro.faults.RehashStormError` instead of silently
        burning time.  ``None`` (default) disables the guard.
    """

    def __init__(
        self,
        emulator: Emulator,
        workload: WorkloadGenerator,
        *,
        admit_limit: int | None = None,
        queue_limit: int | None = None,
        overflow: str = "defer",
        exclusive: bool | None = None,
        request_timeout: int | None = None,
        retry_limit: int = 3,
        backoff: int = 4,
        rehash_storm_cap: int | None = None,
        observer=None,
    ) -> None:
        if overflow not in OVERFLOW_POLICIES:
            raise ValueError(
                f"unknown overflow policy {overflow!r}; "
                f"pick one of {OVERFLOW_POLICIES}"
            )
        if overflow == "drop" and queue_limit is None:
            raise ValueError('overflow="drop" requires a queue_limit')
        if overflow == "defer" and queue_limit is not None:
            raise ValueError(
                'queue_limit has no effect under overflow="defer"; '
                'use overflow="drop" for a bounded queue'
            )
        if queue_limit is not None and queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if request_timeout is not None and request_timeout < 1:
            raise ValueError("request_timeout must be >= 1")
        if retry_limit < 0:
            raise ValueError("retry_limit must be >= 0")
        if backoff < 1:
            raise ValueError("backoff must be >= 1")
        if rehash_storm_cap is not None and rehash_storm_cap < 1:
            raise ValueError("rehash_storm_cap must be >= 1")
        procs = self._emulator_procs(emulator)
        if procs is not None and workload.n_procs > procs:
            raise ValueError(
                f"workload spans {workload.n_procs} processors but the "
                f"emulator has only {procs}"
            )
        memory = getattr(emulator, "memory", None)
        if memory is not None and workload.address_space > memory.size:
            raise ValueError(
                f"workload draws addresses in [0, {workload.address_space}) "
                f"but the emulator's memory has only {memory.size} cells"
            )
        if admit_limit is None:
            admit_limit = workload.n_procs
        if admit_limit < 1:
            raise ValueError("admit_limit must be >= 1")
        if exclusive is None:
            exclusive = getattr(emulator, "mode", None) == "erew"
        self.emulator = emulator
        self.workload = workload
        #: repro.obs observer for epoch spans and service metrics; when
        #: not given explicitly, the emulator's own observer is reused so
        #: one wiring point covers the whole serving stack
        self.observer = (
            observer if observer is not None else getattr(emulator, "observer", None)
        )
        self.admit_limit = int(admit_limit)
        self.queue_limit = queue_limit
        self.overflow = overflow
        self.exclusive = bool(exclusive)
        self.request_timeout = request_timeout
        self.retry_limit = int(retry_limit)
        self.backoff = int(backoff)
        self.rehash_storm_cap = rehash_storm_cap
        # Admission state: one FIFO sub-queue per address plus a lazy
        # min-heap of (seq, addr) over the sub-queue *heads*.  Exclusive
        # admission used to rescan (and re-splice) the whole backlog
        # every epoch — O(epochs x backlog) on a hot-spot workload; the
        # heap pops exactly the admitted/deferred heads instead.
        # Invariant: the heap holds an entry for the current head of
        # every non-empty sub-queue (plus possibly stale entries, which
        # the seq check discards).  Entries are
        # (seq, request, arrival_clock, not_before).
        self._subq: dict[int, deque[tuple[int, TrafficRequest, int, int]]] = {}
        self._heap: list[tuple[int, int]] = []
        self._seq = 0
        self._n_queued = 0
        #: queued requests per tenant label (kept incrementally so the
        #: per-epoch backlog snapshot is O(tenants), not O(backlog))
        self._queued_by_tenant: dict[str, int] = {}
        #: retry attempts per request id (only failed-step survivors)
        self._retries: dict[int, int] = {}
        #: requests that exhausted ``retry_limit``: (request,
        #: arrival_clock, attempts) — kept for post-mortem accounting
        self.dead_letters: list[tuple[TrafficRequest, int, int]] = []
        #: requests expired by the last ``_admit`` call (per-epoch scratch)
        self._expired: list[TrafficRequest] = []
        #: virtual time in network steps (served cost + retry stalls +
        #: backoff fast-forwards)
        self.clock = 0
        self._ran = False

    @staticmethod
    def _emulator_procs(emulator) -> int | None:
        if hasattr(emulator, "n_processors"):
            return int(emulator.n_processors)
        mesh = getattr(emulator, "mesh", None)
        if mesh is not None:
            return int(mesh.num_nodes)
        return None

    @property
    def backlog(self) -> int:
        """Requests currently waiting in the admission queue."""
        return self._n_queued

    @property
    def queue(self) -> list[tuple[TrafficRequest, int]]:
        """The queued (request, arrival_clock) pairs in FIFO order.

        A read-only snapshot (introspection and tests); admission runs
        on the internal sub-queue structures.
        """
        entries: list[tuple[int, TrafficRequest, int, int]] = []
        for dq in self._subq.values():
            entries.extend(dq)
        entries.sort(key=lambda t: t[0])
        return [(req, stamp) for _seq, req, stamp, _nb in entries]

    # ------------------------------------------------------------------
    def _enqueue(self, req: TrafficRequest, stamp: int, not_before: int) -> None:
        dq = self._subq.get(req.addr)
        if dq is None:
            dq = self._subq[req.addr] = deque()
        was_empty = not dq
        dq.append((self._seq, req, stamp, not_before))
        if was_empty:
            heappush(self._heap, (self._seq, req.addr))
        self._seq += 1
        self._n_queued += 1
        t = req.tenant
        self._queued_by_tenant[t] = self._queued_by_tenant.get(t, 0) + 1

    def _dequeued(self, req: TrafficRequest) -> None:
        """Bookkeeping for one request leaving the admission queue."""
        self._n_queued -= 1
        left = self._queued_by_tenant.get(req.tenant, 0) - 1
        if left > 0:
            self._queued_by_tenant[req.tenant] = left
        else:
            self._queued_by_tenant.pop(req.tenant, None)

    def _admit(self) -> list[tuple[TrafficRequest, int]]:
        """Pop this epoch's FIFO batch (respecting the exclusive rule).

        Heads are taken in global arrival (seq) order.  A head is
        *deferred* — left queued, position preserved — when it is still
        backing off or (exclusive mode) its address was already admitted
        this epoch; deferring the head defers its whole sub-queue, which
        is exactly the old skip-scan semantics, since every later
        request for that address queued behind it.  Heads past their
        ``request_timeout`` deadline expire here instead of admitting;
        they land in ``self._expired`` (reset per call) for the epoch
        record.
        """
        batch: list[tuple[TrafficRequest, int]] = []
        expired: list[TrafficRequest] = []
        self._expired = expired
        deferred: list[tuple[int, int]] = []
        seen_addrs: set[int] = set()
        heap, subq = self._heap, self._subq
        while heap and len(batch) < self.admit_limit:
            seq, addr = heappop(heap)
            dq = subq.get(addr)
            if not dq or dq[0][0] != seq:
                continue  # stale heap entry
            _seq, req, stamp, not_before = dq[0]
            if (
                self.request_timeout is not None
                and self.clock - stamp > self.request_timeout
            ):
                dq.popleft()
                self._dequeued(req)
                expired.append(req)
            elif not_before > self.clock or (
                self.exclusive and addr in seen_addrs
            ):
                deferred.append((seq, addr))
                continue
            else:
                dq.popleft()
                self._dequeued(req)
                if self.exclusive:
                    seen_addrs.add(addr)
                batch.append((req, stamp))
            if dq:
                heappush(heap, (dq[0][0], addr))
            else:
                del subq[addr]
        for item in deferred:
            heappush(heap, item)
        return batch

    @staticmethod
    def _build_step(batch: list[tuple[TrafficRequest, int]]) -> StepTrace:
        step = StepTrace()
        for req, _stamp in batch:
            if req.kind == "read":
                step.reads.append(ReadRequest(req.pid, req.addr))
            else:
                step.writes.append(WriteRequest(req.pid, req.addr, req.value))
        return step

    def _served_modules(self, batch: list[tuple[TrafficRequest, int]]) -> list[int]:
        """Module that served each request (vectorized when possible).

        Evaluated *after* the step, so the mapping reflects the hash
        the successful attempt actually used (mid-step rehashes
        included) and the detected-dead remap.
        """
        emu = self.emulator
        if not hasattr(emu, "module_of"):
            return []
        hash_fn = getattr(emu, "hash", None)
        faults = getattr(emu, "faults", None)
        if (
            hash_fn is not None
            and faults is not None
            and getattr(emu, "placement", "hash") == "hash"
        ):
            addrs = np.asarray([req.addr for req, _ in batch], dtype=np.int64)
            return faults.map_modules(hash_fn.map(addrs)).tolist()
        return [emu.module_of(req.addr) for req, _ in batch]

    def _requeue_failed(
        self, batch: list[tuple[TrafficRequest, int]]
    ) -> tuple[int, int]:
        """Retry-or-dead-letter every request of a failed step."""
        retried = dead = 0
        for req, stamp in batch:
            attempt = self._retries.get(req.rid, 0) + 1
            self._retries[req.rid] = attempt
            if attempt > self.retry_limit:
                self.dead_letters.append((req, stamp, attempt - 1))
                dead += 1
            else:
                # Re-enqueue at the back (fresh seq) with exponential
                # backoff; the original stamp is kept so an eventual
                # delivery reports the true arrival->delivery sojourn.
                self._enqueue(
                    req, stamp, self.clock + self.backoff * 2 ** (attempt - 1)
                )
                retried += 1
        return retried, dead

    def _fast_forward(self) -> int:
        """Steps to the earliest backoff eligibility among queued heads
        (0 when anything is admissible now or the queue is empty)."""
        if not self._subq:
            return 0
        nxt = min(dq[0][3] for dq in self._subq.values())
        return max(0, nxt - self.clock)

    # ------------------------------------------------------------------
    def run(self, epochs: int) -> TrafficReport:
        """Serve *epochs* epochs of traffic; returns the telemetry report.

        One-shot: the workload stream starts at epoch 0 and the driver's
        clock at 0, so a second call would silently replay the same
        arrivals against mutated emulator state — it raises instead.
        """
        if self._ran:
            raise RuntimeError(
                "OnlineEmulator.run is one-shot; build a fresh driver "
                "(and emulator) to run again"
            )
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        self._ran = True
        stream = self.workload.stream(epochs)
        report = TrafficReport()
        emu = self.emulator
        obs = self.observer if self.observer is not None else NULL_OBSERVER
        faults = getattr(emu, "faults", None)
        annotate = faults is not None and bool(faults.schedule)
        for epoch in range(epochs):
            arrivals = stream[epoch]
            dropped = 0
            dropped_reqs: list[TrafficRequest] = []
            if self.overflow == "drop":
                room = self.queue_limit - self._n_queued
                if len(arrivals) > room:
                    dropped = len(arrivals) - max(room, 0)
                    dropped_reqs = list(arrivals[max(room, 0) :])
                    arrivals = arrivals[: max(room, 0)]
            arrivals_by_tenant = _tenant_counts(arrivals, dropped_reqs)
            for req in arrivals:
                self._enqueue(req, self.clock, self.clock)
            clock_before = self.clock
            dead_before = len(self.dead_letters)
            batch = self._admit()
            expired = self._expired
            retried = dead_lettered = 0
            served: list[tuple[TrafficRequest, int]] = []
            if batch:
                # Pin the emulator's fault clock to the driver's so the
                # schedule, the backoff timers, and the telemetry all
                # run on one timeline (fast-forwards included).
                if hasattr(emu, "virtual_clock"):
                    emu.virtual_clock = self.clock
                with obs.span(
                    "admission_epoch",
                    category="epoch",
                    virtual_clock=self.clock,
                    epoch=epoch,
                    admitted=len(batch),
                ) as sp:
                    try:
                        cost = emu.emulate_step(self._build_step(batch))
                        served = batch
                    except RehashStormError as exc:
                        # The step burned time but delivered nothing; its
                        # requests go back through the retry policy.
                        cost = StepCost(
                            0,
                            0,
                            rehashes=exc.rehashes,
                            requests=len(batch),
                            stall_steps=exc.stall_steps,
                            deadlock_retries=exc.deadlock_retries,
                            run_modes=tuple(exc.run_modes),
                        )
                        self.clock += cost.stall_steps
                        retried, dead_lettered = self._requeue_failed(batch)
                        obs.count("epoch_storms_total")
                    else:
                        self.clock += cost.total_steps + cost.stall_steps
                        if (
                            self.rehash_storm_cap is not None
                            and cost.rehashes > self.rehash_storm_cap
                        ):
                            err = RehashStormError(
                                f"epoch {epoch} needed {cost.rehashes} "
                                f"rehashes (cap {self.rehash_storm_cap})",
                                rehashes=cost.rehashes,
                                stall_steps=cost.stall_steps,
                                deadlock_retries=cost.deadlock_retries,
                                run_modes=cost.run_modes,
                            )
                            err.flight_tail = obs.flight_tail()
                            raise err
                    sp.virtual_end = self.clock
            else:
                cost = StepCost(0, 0)
            stall_steps = cost.stall_steps
            if not served and self._n_queued:
                # Nothing admissible: everything queued is backing off.
                # Jump to the earliest eligibility instead of spinning.
                ff = self._fast_forward()
                self.clock += ff
                stall_steps += ff
            fault_events: tuple[str, ...] = ()
            if annotate and self.clock > clock_before:
                fault_events = tuple(
                    faults.events_between(clock_before, self.clock)
                )
            tenant_sojourns: dict[str, list[int]] = {}
            for req, stamp in served:
                tenant_sojourns.setdefault(req.tenant, []).append(
                    self.clock - stamp
                )
            record = EpochRecord(
                epoch=epoch,
                arrivals=len(arrivals) + dropped,
                dropped=dropped,
                admitted=len(served),
                backlog=self._n_queued,
                steps=cost.total_steps,
                request_steps=cost.request_steps,
                reply_steps=cost.reply_steps,
                rehashes=cost.rehashes,
                combines=cost.combines,
                max_queue=cost.max_queue,
                credits_stalled=cost.credits_stalled,
                run_modes=cost.run_modes,
                clock=self.clock,
                sojourns=[self.clock - stamp for _req, stamp in served],
                sojourns_epochs=[epoch - req.epoch for req, _stamp in served],
                stall_steps=stall_steps,
                fault_stalls=cost.fault_stalls,
                deadlock_retries=cost.deadlock_retries,
                retried=retried,
                timed_out=len(expired),
                dead_lettered=dead_lettered,
                fault_events=fault_events,
                modules=self._served_modules(served) if served else [],
                arrivals_by_tenant=arrivals_by_tenant,
                dropped_by_tenant=_tenant_counts(dropped_reqs),
                delivered_by_tenant=_tenant_counts(r for r, _ in served),
                timed_out_by_tenant=_tenant_counts(expired),
                dead_lettered_by_tenant=_tenant_counts(
                    r for r, _stamp, _n in self.dead_letters[dead_before:]
                ),
                backlog_by_tenant=dict(self._queued_by_tenant),
                tenant_sojourns=tenant_sojourns,
            )
            report.add(record)
            obs.count("epochs_total")
            obs.count("requests_admitted_total", len(served))
            if dropped:
                obs.count("requests_dropped_total", dropped)
            obs.gauge("backlog_requests", self._n_queued)
            obs.record(
                "epoch",
                virtual_clock=self.clock,
                epoch=epoch,
                admitted=len(served),
                backlog=self._n_queued,
                rehashes=cost.rehashes,
            )
        return report
