"""Windowed service telemetry for online emulation runs.

The driver (:mod:`repro.traffic.driver`) measures time in *network
steps*: each served epoch advances a virtual clock by the PRAM step's
routing cost (request + reply phases), so every latency below is in the
same unit the paper's theorems bound.  A request's **sojourn** is
``delivery_clock - arrival_clock``: the steps spent waiting in the
admission queue (while earlier epochs were served) plus the steps of
the epoch that served it.

:class:`TrafficReport` is what benchmarks and tests consume: per-epoch
records, sliding-window throughput and latency-percentile series,
steady-state summaries, and the per-epoch engine-dispatch history
(``run_modes``) that lets tests assert an online run never silently
fell back to the per-event engine mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs.schema import versioned

__all__ = ["EpochRecord", "TrafficReport"]


@dataclass
class EpochRecord:
    """Everything measured about one epoch of an online run."""

    epoch: int
    #: new requests generated this epoch (before admission control)
    arrivals: int
    #: arrivals rejected by the ``"drop"`` overflow policy this epoch
    dropped: int
    #: requests admitted into (and fully served by) this epoch's PRAM step
    admitted: int
    #: admission-queue depth after the epoch (deferred carry-over)
    backlog: int
    #: network steps charged to this epoch (0 for an idle epoch)
    steps: int
    request_steps: int
    reply_steps: int
    rehashes: int
    combines: int
    max_queue: int
    credits_stalled: int
    #: engine execution mode of every routing run in this epoch's step
    #: (request attempts then replies); empty for idle epochs
    run_modes: tuple[str, ...]
    #: virtual clock (cumulative network steps) after this epoch
    clock: int
    #: sojourn (network steps, arrival -> delivery) of each request this
    #: epoch delivered, in admission order
    sojourns: list[int] = field(default_factory=list)
    #: sojourn of the same requests measured in epochs
    #: (serve epoch - arrival epoch)
    sojourns_epochs: list[int] = field(default_factory=list)
    #: virtual steps this epoch spent *not* delivering: failed request
    #: attempts inside the emulator (rehash retries, wedged or
    #: fault-stalled runs) plus driver backoff fast-forwards
    stall_steps: int = 0
    #: link-fault transmission stalls across the epoch's routing phases
    fault_stalls: int = 0
    #: failed attempts that ended in a credit DeadlockError (each was
    #: rehashed and retried inside the emulator)
    deadlock_retries: int = 0
    #: requests re-enqueued (with backoff) after this epoch's step failed
    retried: int = 0
    #: requests expired at admission by the ``request_timeout`` deadline
    timed_out: int = 0
    #: requests moved to the dead-letter list after exhausting retries
    dead_lettered: int = 0
    #: fault-schedule events that fired during this epoch's clock span,
    #: as stable ``describe()`` labels (annotations for plots/recovery)
    fault_events: tuple[str, ...] = ()
    #: memory module that served each delivered request, aligned with
    #: ``sojourns`` (empty when the emulator exposes no module mapping)
    modules: list[int] = field(default_factory=list)
    #: per-tenant slices of this epoch's counters (keys are tenant
    #: labels; single-tenant runs put everything under ``"default"``).
    #: The driver maintains them so the conservation law can be checked
    #: *per tenant* — the isolation property multi-tenant admission
    #: (quotas, QoS classes) must not break.
    arrivals_by_tenant: dict[str, int] = field(default_factory=dict)
    dropped_by_tenant: dict[str, int] = field(default_factory=dict)
    delivered_by_tenant: dict[str, int] = field(default_factory=dict)
    timed_out_by_tenant: dict[str, int] = field(default_factory=dict)
    dead_lettered_by_tenant: dict[str, int] = field(default_factory=dict)
    #: admission-queue depth per tenant *after* the epoch
    backlog_by_tenant: dict[str, int] = field(default_factory=dict)
    #: sojourns (network steps) of this epoch's deliveries per tenant
    tenant_sojourns: dict[str, list[int]] = field(default_factory=dict)


class TrafficReport:
    """Aggregated telemetry of one :class:`~repro.traffic.OnlineEmulator` run."""

    def __init__(self, epochs: list[EpochRecord] | None = None) -> None:
        self.epochs: list[EpochRecord] = epochs if epochs is not None else []

    def add(self, record: EpochRecord) -> None:
        self.epochs.append(record)

    # ---- totals ----------------------------------------------------------
    @property
    def num_epochs(self) -> int:
        return len(self.epochs)

    @property
    def total_arrivals(self) -> int:
        return sum(e.arrivals for e in self.epochs)

    @property
    def total_delivered(self) -> int:
        return sum(e.admitted for e in self.epochs)

    @property
    def total_dropped(self) -> int:
        return sum(e.dropped for e in self.epochs)

    @property
    def total_steps(self) -> int:
        return sum(e.steps for e in self.epochs)

    @property
    def total_rehashes(self) -> int:
        return sum(e.rehashes for e in self.epochs)

    @property
    def total_deadlock_retries(self) -> int:
        """Credit-deadlock attempts the emulators absorbed via rehash."""
        return sum(e.deadlock_retries for e in self.epochs)

    @property
    def total_fault_stalls(self) -> int:
        return sum(e.fault_stalls for e in self.epochs)

    @property
    def total_stall_steps(self) -> int:
        return sum(e.stall_steps for e in self.epochs)

    @property
    def total_retried(self) -> int:
        return sum(e.retried for e in self.epochs)

    @property
    def total_timed_out(self) -> int:
        return sum(e.timed_out for e in self.epochs)

    @property
    def total_dead_lettered(self) -> int:
        return sum(e.dead_lettered for e in self.epochs)

    @property
    def final_backlog(self) -> int:
        return self.epochs[-1].backlog if self.epochs else 0

    def conservation_deficit(self) -> int:
        """Requests not accounted for — must be 0.

        Every arrival is exactly one of: delivered, dropped at
        admission, expired by its deadline, dead-lettered after
        retries, or still in the backlog.  (Retries are not a terminal
        state: a retried request is later delivered, dead-lettered, or
        left queued.)  Nonzero means the driver lost or duplicated a
        request; the fault tests and benchmark gates assert zero.
        """
        return self.total_arrivals - (
            self.total_delivered
            + self.total_dropped
            + self.total_timed_out
            + self.total_dead_lettered
            + self.final_backlog
        )

    @property
    def sojourns(self) -> list[int]:
        """All delivered requests' sojourns (network steps), epoch order."""
        out: list[int] = []
        for e in self.epochs:
            out.extend(e.sojourns)
        return out

    # ---- per-tenant accounting -------------------------------------------
    @property
    def tenants(self) -> list[str]:
        """Every tenant label observed anywhere in the run, sorted."""
        names: set[str] = set()
        for e in self.epochs:
            names.update(e.arrivals_by_tenant)
            names.update(e.delivered_by_tenant)
            names.update(e.backlog_by_tenant)
        return sorted(names)

    def tenant_totals(self) -> dict[str, dict[str, int]]:
        """Whole-run counters per tenant.

        Keys per tenant: ``arrivals``, ``delivered``, ``dropped``,
        ``timed_out``, ``dead_lettered``, and ``backlog`` (the *final*
        epoch's queue depth, not a sum).
        """
        out: dict[str, dict[str, int]] = {
            t: {
                "arrivals": 0,
                "delivered": 0,
                "dropped": 0,
                "timed_out": 0,
                "dead_lettered": 0,
                "backlog": 0,
            }
            for t in self.tenants
        }
        for e in self.epochs:
            for field_name, key in (
                ("arrivals_by_tenant", "arrivals"),
                ("delivered_by_tenant", "delivered"),
                ("dropped_by_tenant", "dropped"),
                ("timed_out_by_tenant", "timed_out"),
                ("dead_lettered_by_tenant", "dead_lettered"),
            ):
                for t, k in getattr(e, field_name).items():
                    out[t][key] += k
        if self.epochs:
            for t, depth in self.epochs[-1].backlog_by_tenant.items():
                out[t]["backlog"] = depth
        return out

    def tenant_conservation_deficits(self) -> dict[str, int]:
        """The conservation law, sliced per tenant — every value must be 0.

        ``arrivals - (delivered + dropped + timed_out + dead_lettered +
        final backlog)`` per tenant: multi-tenant admission (quotas, QoS
        priorities) may *reorder* and *delay* a tenant's requests but
        must never lose or leak one across tenant boundaries.
        """
        return {
            t: c["arrivals"]
            - (
                c["delivered"]
                + c["dropped"]
                + c["timed_out"]
                + c["dead_lettered"]
                + c["backlog"]
            )
            for t, c in self.tenant_totals().items()
        }

    def tenant_sojourn_percentiles(
        self, qs: tuple[float, ...] = (50.0, 95.0, 99.0), *, skip_epochs: int = 0
    ) -> dict[str, dict[str, float]]:
        """Per-tenant sojourn percentiles — the QoS-class outcome metric."""
        samples: dict[str, list[int]] = {}
        for e in self.epochs[skip_epochs:]:
            for t, sj in e.tenant_sojourns.items():
                samples.setdefault(t, []).extend(sj)
        out: dict[str, dict[str, float]] = {}
        for t in self.tenants:
            vals = samples.get(t, [])
            if vals:
                arr = np.asarray(vals, dtype=np.float64)
                out[t] = {f"p{q:g}": float(np.percentile(arr, q)) for q in qs}
            else:
                out[t] = {f"p{q:g}": float("nan") for q in qs}
        return out

    # ---- dispatch history ------------------------------------------------
    @property
    def dispatch_history(self) -> list[tuple[str, ...]]:
        """Per-epoch engine run modes (idle epochs contribute ``()``)."""
        return [e.run_modes for e in self.epochs]

    @property
    def last_run_mode(self) -> str | None:
        """Mode of the most recent routing run, ``None`` if never routed."""
        for e in reversed(self.epochs):
            if e.run_modes:
                return e.run_modes[-1]
        return None

    def run_mode_counts(self) -> dict[str, int]:
        """How many routing runs each engine mode served."""
        counts: dict[str, int] = {}
        for e in self.epochs:
            for m in e.run_modes:
                counts[m] = counts.get(m, 0) + 1
        return counts

    # ---- time series -----------------------------------------------------
    def queue_depth_series(self) -> list[int]:
        return [e.backlog for e in self.epochs]

    def credits_stalled_series(self) -> list[int]:
        return [e.credits_stalled for e in self.epochs]

    def epoch_steps_series(self) -> list[int]:
        return [e.steps for e in self.epochs]

    def throughput_series(self, window: int = 1) -> list[float]:
        """Delivered requests per network step over a trailing window.

        Entry i covers epochs ``[i - window + 1, i]`` (fewer at the
        start); epochs that charged no steps contribute 0 work and 0
        time, and a window with zero total steps reports 0.0.
        """
        if window < 1:
            raise ValueError("window must be >= 1")
        served = [e.admitted for e in self.epochs]
        steps = [e.steps for e in self.epochs]
        out: list[float] = []
        for i in range(len(self.epochs)):
            lo = max(0, i - window + 1)
            s = sum(steps[lo : i + 1])
            out.append(sum(served[lo : i + 1]) / s if s else 0.0)
        return out

    def sojourn_percentile_series(
        self, q: float, window: int = 1
    ) -> list[float]:
        """Trailing-window q-th percentile of sojourn latency per epoch.

        Windows that delivered nothing report ``nan``.
        """
        if window < 1:
            raise ValueError("window must be >= 1")
        out: list[float] = []
        for i in range(len(self.epochs)):
            lo = max(0, i - window + 1)
            samples: list[int] = []
            for e in self.epochs[lo : i + 1]:
                samples.extend(e.sojourns)
            out.append(
                float(np.percentile(samples, q)) if samples else float("nan")
            )
        return out

    # ---- degraded-mode analyses ------------------------------------------
    def module_service_counts(self) -> dict[int, int]:
        """Delivered requests per serving memory module (whole run)."""
        counts: dict[int, int] = {}
        for e in self.epochs:
            for m in e.modules:
                counts[m] = counts.get(m, 0) + 1
        return counts

    def module_hotness(self, top: int | None = None) -> list[tuple[int, int]]:
        """(module, served) ranking, hottest first (ties by module id).

        Under module faults the surrogate of a dead module absorbs its
        addresses on top of its own, so it climbs this ranking — the
        degraded-mode load-imbalance signal.
        """
        ranked = sorted(
            self.module_service_counts().items(), key=lambda kv: (-kv[1], kv[0])
        )
        return ranked if top is None else ranked[:top]

    @property
    def fault_event_log(self) -> list[tuple[int, str]]:
        """(epoch, event label) pairs for every annotated fault event."""
        out: list[tuple[int, str]] = []
        for e in self.epochs:
            out.extend((e.epoch, label) for label in e.fault_events)
        return out

    def recovery_times(
        self, *, window: int = 4, tolerance: float = 0.10
    ) -> list[dict]:
        """Recovery time after each fault-annotated epoch.

        For every epoch carrying fault events, the pre-fault level is
        the windowed throughput just before the event; recovery is the
        first epoch at or after it whose windowed throughput is back
        within ``tolerance`` (default 10%) of that level.  Returns one
        dict per fault epoch: ``epoch``, ``events``, ``pre_throughput``,
        ``recovered_epoch`` (None if never), and ``recovery_steps`` —
        virtual steps from the start of the fault epoch to the end of
        the recovery epoch (0 if throughput never left the band).
        """
        thr = self.throughput_series(window)
        out: list[dict] = []
        for i, e in enumerate(self.epochs):
            if not e.fault_events:
                continue
            pre = thr[i - 1] if i > 0 else thr[i]
            start_clock = self.epochs[i - 1].clock if i > 0 else 0
            recovered_epoch = None
            recovery_steps = None
            for j in range(i, len(self.epochs)):
                if thr[j] >= pre * (1.0 - tolerance):
                    recovered_epoch = j
                    recovery_steps = self.epochs[j].clock - start_clock
                    break
            out.append(
                {
                    "epoch": i,
                    "events": list(e.fault_events),
                    "pre_throughput": pre,
                    "recovered_epoch": recovered_epoch,
                    "recovery_steps": recovery_steps,
                }
            )
        return out

    # ---- summaries -------------------------------------------------------
    def sojourn_percentiles(
        self, qs: tuple[float, ...] = (50.0, 95.0, 99.0), *, skip_epochs: int = 0
    ) -> dict[str, float]:
        """p50/p95/p99 (by default) sojourn latency in network steps.

        ``skip_epochs`` discards a warmup prefix so steady-state numbers
        are not polluted by the initially empty queue.  Empty sample
        sets report ``nan``.
        """
        samples: list[int] = []
        for e in self.epochs[skip_epochs:]:
            samples.extend(e.sojourns)
        if not samples:
            return {f"p{q:g}": float("nan") for q in qs}
        arr = np.asarray(samples, dtype=np.float64)
        return {f"p{q:g}": float(np.percentile(arr, q)) for q in qs}

    def steady_state(self, *, skip_epochs: int | None = None) -> dict[str, float]:
        """One-row summary of the run past a warmup prefix.

        ``skip_epochs`` defaults to a quarter of the run.  Keys are
        stable (benchmarks serialize them): offered/served rates,
        throughput per step, sojourn percentiles, mean backlog + drops,
        and the saturation flag (backlog still growing at the end).
        """
        n = len(self.epochs)
        if skip_epochs is None:
            skip_epochs = n // 4
        tail = self.epochs[skip_epochs:]
        if not tail:
            raise ValueError("no epochs past the warmup prefix")
        steps = sum(e.steps for e in tail)
        served = sum(e.admitted for e in tail)
        percentiles = self.sojourn_percentiles(skip_epochs=skip_epochs)
        return {
            "epochs": float(len(tail)),
            "offered_per_epoch": sum(e.arrivals for e in tail) / len(tail),
            "served_per_epoch": served / len(tail),
            "steps_per_epoch": steps / len(tail),
            "throughput_per_step": served / steps if steps else 0.0,
            "sojourn_p50": percentiles["p50"],
            "sojourn_p95": percentiles["p95"],
            "sojourn_p99": percentiles["p99"],
            "mean_backlog": sum(e.backlog for e in tail) / len(tail),
            "final_backlog": float(self.final_backlog),
            "dropped": float(sum(e.dropped for e in tail)),
            "credits_stalled": float(sum(e.credits_stalled for e in tail)),
            "saturated": float(self._is_saturated(tail)),
        }

    @staticmethod
    def _is_saturated(tail: list[EpochRecord]) -> bool:
        """The source outruns the service: backlog trending up AND more
        than one epoch's offered load already pending (small stable
        queues from arrival jitter do not count)."""
        if len(tail) < 2:
            return False
        mid = len(tail) // 2
        first = sum(e.backlog for e in tail[:mid]) / max(mid, 1)
        second = sum(e.backlog for e in tail[mid:]) / max(len(tail) - mid, 1)
        mean_arrivals = sum(e.arrivals for e in tail) / len(tail)
        return second > first and tail[-1].backlog > mean_arrivals

    # ---- serialization ---------------------------------------------------
    def traffic_section(self) -> dict:
        """The service-level numbers, grouped (versioned ``traffic``).

        Engine-dispatch detail (``run_mode_counts``) deliberately stays
        out: the sections hold only engine-invariant numbers, so a fast
        and a reference run of the same seed dump identical sections.
        """
        return versioned(
            "traffic",
            {
                "num_epochs": self.num_epochs,
                "total_arrivals": self.total_arrivals,
                "total_delivered": self.total_delivered,
                "total_dropped": self.total_dropped,
                "total_steps": self.total_steps,
                "final_backlog": self.final_backlog,
                "conservation_deficit": self.conservation_deficit(),
            },
        )

    def faults_section(self) -> dict:
        """The degraded-mode numbers, grouped (versioned ``faults``)."""
        return versioned(
            "faults",
            {
                "total_rehashes": self.total_rehashes,
                "total_deadlock_retries": self.total_deadlock_retries,
                "total_fault_stalls": self.total_fault_stalls,
                "total_stall_steps": self.total_stall_steps,
                "total_retried": self.total_retried,
                "total_timed_out": self.total_timed_out,
                "total_dead_lettered": self.total_dead_lettered,
            },
        )

    def tenants_section(self) -> dict:
        """The multi-tenant QoS numbers, grouped (versioned ``tenants``)."""
        return versioned(
            "tenants",
            {
                "totals": self.tenant_totals(),
                "conservation_deficits": self.tenant_conservation_deficits(),
            },
        )

    def to_dict(self) -> dict:
        """JSON-ready dump (benchmarks commit these as baselines).

        Carries the shared versioned envelope of
        :mod:`repro.obs.schema` plus three grouped section views —
        ``traffic`` / ``faults`` / ``tenants``, each with its own
        envelope — over the same numbers.  The historical flat keys are
        all preserved, so existing consumers (committed baselines,
        engine-vs-engine dump comparisons) read the dump unchanged.
        """
        flat = {
            "num_epochs": self.num_epochs,
            "total_arrivals": self.total_arrivals,
            "total_delivered": self.total_delivered,
            "total_dropped": self.total_dropped,
            "total_steps": self.total_steps,
            "total_rehashes": self.total_rehashes,
            "total_deadlock_retries": self.total_deadlock_retries,
            "total_fault_stalls": self.total_fault_stalls,
            "total_stall_steps": self.total_stall_steps,
            "total_retried": self.total_retried,
            "total_timed_out": self.total_timed_out,
            "total_dead_lettered": self.total_dead_lettered,
            "final_backlog": self.final_backlog,
            "conservation_deficit": self.conservation_deficit(),
            "tenant_totals": self.tenant_totals(),
            "tenant_conservation_deficits": self.tenant_conservation_deficits(),
            "run_mode_counts": self.run_mode_counts(),
            "epochs": [
                {
                    "epoch": e.epoch,
                    "arrivals": e.arrivals,
                    "dropped": e.dropped,
                    "admitted": e.admitted,
                    "backlog": e.backlog,
                    "steps": e.steps,
                    "request_steps": e.request_steps,
                    "reply_steps": e.reply_steps,
                    "rehashes": e.rehashes,
                    "combines": e.combines,
                    "max_queue": e.max_queue,
                    "credits_stalled": e.credits_stalled,
                    "run_modes": list(e.run_modes),
                    "clock": e.clock,
                    "sojourns": list(e.sojourns),
                    "sojourns_epochs": list(e.sojourns_epochs),
                    "stall_steps": e.stall_steps,
                    "fault_stalls": e.fault_stalls,
                    "deadlock_retries": e.deadlock_retries,
                    "retried": e.retried,
                    "timed_out": e.timed_out,
                    "dead_lettered": e.dead_lettered,
                    "fault_events": list(e.fault_events),
                    "modules": list(e.modules),
                    "arrivals_by_tenant": dict(e.arrivals_by_tenant),
                    "delivered_by_tenant": dict(e.delivered_by_tenant),
                    "backlog_by_tenant": dict(e.backlog_by_tenant),
                }
                for e in self.epochs
            ],
        }
        flat["traffic"] = self.traffic_section()
        flat["faults"] = self.faults_section()
        flat["tenants"] = self.tenants_section()
        return versioned("traffic_report", flat)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        p = self.sojourn_percentiles()
        return (
            f"TrafficReport(epochs={self.num_epochs}, "
            f"arrivals={self.total_arrivals}, delivered={self.total_delivered}, "
            f"dropped={self.total_dropped}, backlog={self.final_backlog}, "
            f"steps={self.total_steps}, p50={p['p50']:.0f}, "
            f"p99={p['p99']:.0f})"
        )
