"""The PRAM model: machine, memory, variants, programs, traces (§1)."""

from repro.pram.machine import PRAM, Read, Write, run_program
from repro.pram.memory import SharedMemory
from repro.pram.programs import (
    ALL_PROGRAM_BUILDERS,
    ProgramSpec,
    boolean_or,
    broadcast,
    find_max,
    histogram,
    list_ranking,
    matrix_multiply,
    odd_even_sort,
    parallel_sum,
    prefix_sum,
)
from repro.pram.trace import (
    MemoryTrace,
    ReadRequest,
    StepTrace,
    WriteRequest,
    h_relation_step,
    hotspot_step,
    local_step_for_mesh,
    permutation_step,
    random_trace,
)
from repro.pram.variants import (
    AccessMode,
    ConcurrentAccessError,
    WritePolicy,
    resolve_writes,
)

__all__ = [
    "ALL_PROGRAM_BUILDERS",
    "AccessMode",
    "ConcurrentAccessError",
    "MemoryTrace",
    "PRAM",
    "ProgramSpec",
    "Read",
    "ReadRequest",
    "SharedMemory",
    "StepTrace",
    "Write",
    "WritePolicy",
    "WriteRequest",
    "boolean_or",
    "broadcast",
    "find_max",
    "h_relation_step",
    "histogram",
    "hotspot_step",
    "list_ranking",
    "local_step_for_mesh",
    "matrix_multiply",
    "odd_even_sort",
    "parallel_sum",
    "permutation_step",
    "prefix_sum",
    "random_trace",
    "resolve_writes",
    "run_program",
]
