"""The PRAM machine (§1): N processors + shared memory, synchronous steps.

Processor programs are Python generators.  Each ``yield`` issues at most
one shared-memory request — exactly the PRAM's "one access per
instruction" — and local computation between yields is free, matching the
model's unit-time instruction that bundles a local operation with a memory
access:

    def program(pid: int, nprocs: int):
        value = yield Read(addr)          # one PRAM step
        yield Write(addr2, value + 1)     # another step
        yield None                        # compute-only step
        return                            # halt

Within one step every read sees the memory state *before* the step and
writes are applied at the end (the standard CRCW read-then-write cycle).
The machine enforces the declared :class:`AccessMode` and resolves CRCW
write conflicts via :class:`WritePolicy`; every step is recorded into a
:class:`MemoryTrace` for the network emulators to replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Iterable, Mapping

from repro.pram.memory import SharedMemory
from repro.pram.trace import MemoryTrace, ReadRequest, StepTrace, WriteRequest
from repro.pram.variants import (
    AccessMode,
    ConcurrentAccessError,
    WritePolicy,
    resolve_writes,
)


@dataclass(frozen=True)
class Read:
    """Yielded by a program: read shared cell *addr*; the yield evaluates
    to the cell's value."""

    addr: int


@dataclass(frozen=True)
class Write:
    """Yielded by a program: write *value* to shared cell *addr*."""

    addr: int
    value: object


ProgramFactory = Callable[[int, int], Generator]


class PRAM:
    """An N-processor PRAM over an M-cell shared memory."""

    def __init__(
        self,
        n_procs: int,
        memory_size: int,
        *,
        mode: AccessMode = AccessMode.EREW,
        write_policy: WritePolicy = WritePolicy.COMMON,
        combine_op: str = "sum",
        init: Mapping[int, object] | Iterable | None = None,
        record_trace: bool = True,
        enforce_mode: bool = True,
        observer=None,
    ) -> None:
        if n_procs < 1:
            raise ValueError("need at least one processor")
        self.n_procs = n_procs
        #: optional repro.obs observer: feeds the flight recorder per
        #: step and rides its tail on RaceError diagnostics
        self.observer = observer
        self.mode = mode
        self.write_policy = write_policy
        self.combine_op = combine_op
        self.memory = SharedMemory(memory_size, init)
        self.record_trace = record_trace
        #: with enforce_mode=False the machine never raises on access-mode
        #: violations (COMMON divergence resolves lowest-pid) — the
        #: permissive setting the race-analysis pre-run uses so a broken
        #: program still yields a full trace to report on
        self.enforce_mode = enforce_mode
        self.trace = MemoryTrace(num_processors=n_procs, address_space=memory_size)
        self._procs: list[Generator | None] = [None] * n_procs
        self._pending: list[object] = [None] * n_procs
        self.steps_executed = 0
        #: populated by ``run(check_races=...)``: every conflict the
        #: sanitizer saw (not just violations), and the minimal variant
        self.race_reports: list | None = None
        self.inferred_mode: AccessMode | None = None

    # ------------------------------------------------------------------
    def load(self, program: ProgramFactory) -> None:
        """Instantiate *program(pid, n_procs)* on every processor."""
        self._procs = [program(pid, self.n_procs) for pid in range(self.n_procs)]
        self._pending = [None] * self.n_procs
        # Prime the generators to their first yield.
        for pid, gen in enumerate(self._procs):
            try:
                self._pending[pid] = ("request", gen.send(None))
            except StopIteration:
                self._procs[pid] = None
                self._pending[pid] = None

    @property
    def live_processors(self) -> int:
        return sum(1 for g in self._procs if g is not None)

    # ------------------------------------------------------------------
    def step(self) -> StepTrace | None:
        """Execute one synchronous PRAM step; None when all procs halted."""
        if self.live_processors == 0:
            return None

        # 1. collect this step's requests (already primed in _pending)
        reads: list[ReadRequest] = []
        writes: list[WriteRequest] = []
        for pid, slot in enumerate(self._pending):
            if slot is None:
                continue
            _tag, req = slot
            if req is None:
                continue  # compute-only step
            if isinstance(req, Read):
                reads.append(ReadRequest(pid, req.addr))
            elif isinstance(req, Write):
                writes.append(WriteRequest(pid, req.addr, req.value))
            else:
                raise TypeError(
                    f"processor {pid} yielded {req!r}; expected Read/Write/None"
                )

        if self.enforce_mode:
            self._validate(reads, writes)

        # 2. reads see pre-step memory
        read_results = {r.pid: self.memory.read(r.addr) for r in reads}

        # 3. writes applied at end of step, conflicts resolved per policy
        by_addr: dict[int, list[tuple[int, object]]] = {}
        for w in writes:
            by_addr.setdefault(w.addr, []).append((w.pid, w.value))
        for addr, writers in by_addr.items():
            value = resolve_writes(
                sorted(writers),
                self.write_policy,
                self.combine_op,
                strict=self.enforce_mode,
            )
            self.memory.write(addr, value)

        if self.record_trace:
            self.trace.steps.append(StepTrace(reads=reads, writes=writes))
        self.steps_executed += 1
        obs = self.observer
        if obs is not None and obs.recorder is not None:
            obs.record(
                "pram_step",
                virtual_clock=self.steps_executed - 1,
                reads=len(reads),
                writes=len(writes),
                live=self.live_processors,
            )

        # 4. resume every live processor with its result, collect next req
        for pid, gen in enumerate(self._procs):
            if gen is None:
                continue
            try:
                nxt = gen.send(read_results.get(pid))
                self._pending[pid] = ("request", nxt)
            except StopIteration:
                self._procs[pid] = None
                self._pending[pid] = None

        return self.trace.steps[-1] if self.record_trace else StepTrace(reads, writes)

    def run(
        self,
        *,
        max_steps: int = 100_000,
        check_races: bool | AccessMode | None = None,
    ) -> MemoryTrace:
        """Step until every processor halts (or raise past *max_steps*).

        ``check_races`` turns on the conflict sanitizer
        (:class:`repro.analysis.races.ConflictChecker`, fed step by step
        so it works even with ``record_trace=False``):

        * ``True`` — verify the execution against this machine's own
          declared mode/policy and raise
          :class:`~repro.analysis.races.RaceError` (with the structured
          reports attached) on any violation.  Mostly useful with
          ``enforce_mode=False``, where the machine itself stays silent.
        * an :class:`AccessMode` — portability check: verify against
          *that* mode instead (e.g. run on CRCW, ask "is this program
          EREW-clean?").

        Either way ``self.race_reports`` / ``self.inferred_mode`` are
        populated with everything the sanitizer saw.
        """
        checker = None
        reports: list = []
        if check_races:
            from repro.analysis.races import ConflictChecker

            checker = ConflictChecker()
        while self.live_processors > 0:
            if self.steps_executed >= max_steps:
                raise RuntimeError(
                    f"PRAM exceeded {max_steps} steps with "
                    f"{self.live_processors} processors live"
                )
            step = self.step()
            if checker is not None and step is not None:
                reports.extend(checker.check_step(self.steps_executed - 1, step))
        if checker is not None:
            from repro.analysis.races import RaceError, find_violations, infer_mode

            self.race_reports = reports
            self.inferred_mode = infer_mode(reports)
            target = check_races if isinstance(check_races, AccessMode) else self.mode
            violations = find_violations(reports, target, self.write_policy)
            if violations:
                err = RaceError(
                    f"{len(violations)} access-mode violation(s) under "
                    f"{target.name}; first: {violations[0].describe()}",
                    violations,
                )
                if self.observer is not None:
                    err.flight_tail = self.observer.flight_tail()
                raise err
        return self.trace

    # ------------------------------------------------------------------
    def _validate(
        self, reads: list[ReadRequest], writes: list[WriteRequest]
    ) -> None:
        if self.mode is AccessMode.CRCW:
            return
        write_addrs: dict[int, int] = {}
        for w in writes:
            write_addrs[w.addr] = write_addrs.get(w.addr, 0) + 1
        read_addrs: dict[int, int] = {}
        for r in reads:
            read_addrs[r.addr] = read_addrs.get(r.addr, 0) + 1

        for addr, cnt in write_addrs.items():
            if cnt > 1:
                raise ConcurrentAccessError(
                    f"{self.mode.name}: {cnt} concurrent writes to address {addr}"
                )
            if addr in read_addrs:
                raise ConcurrentAccessError(
                    f"{self.mode.name}: simultaneous read and write of address {addr}"
                )
        if self.mode is AccessMode.EREW:
            for addr, cnt in read_addrs.items():
                if cnt > 1:
                    raise ConcurrentAccessError(
                        f"EREW: {cnt} concurrent reads of address {addr}"
                    )


def run_program(
    program: ProgramFactory,
    n_procs: int,
    memory_size: int,
    *,
    mode: AccessMode = AccessMode.EREW,
    write_policy: WritePolicy = WritePolicy.COMMON,
    combine_op: str = "sum",
    init: Mapping[int, object] | Iterable | None = None,
    max_steps: int = 100_000,
    enforce_mode: bool = True,
    check_races: bool | AccessMode | None = None,
) -> PRAM:
    """Convenience: build a PRAM, load *program*, run to completion."""
    pram = PRAM(
        n_procs,
        memory_size,
        mode=mode,
        write_policy=write_policy,
        combine_op=combine_op,
        init=init,
        enforce_mode=enforce_mode,
    )
    pram.load(program)
    pram.run(max_steps=max_steps, check_races=check_races)
    return pram
