"""PRAM variants: access modes and concurrent-write resolution policies.

The paper emulates the strongest variant (CRCW) via combining (Theorem
2.6) and the weaker EREW directly (Theorem 2.5, §3).  The machine enforces
the chosen mode exactly, so programs written for EREW are guaranteed
conflict-free before they are handed to an emulator.
"""

from __future__ import annotations

import enum
from typing import Callable, Iterable


class AccessMode(enum.Enum):
    """Concurrent shared-memory access rules."""

    EREW = "erew"  #: exclusive read, exclusive write
    CREW = "crew"  #: concurrent read, exclusive write
    CRCW = "crcw"  #: concurrent read, concurrent write


class WritePolicy(enum.Enum):
    """CRCW write-conflict resolution."""

    COMMON = "common"  #: all writers must agree on the value
    ARBITRARY = "arbitrary"  #: any single writer wins (we pick lowest pid)
    PRIORITY = "priority"  #: lowest processor id wins
    COMBINE = "combine"  #: values reduced with an associative operator


class ConcurrentAccessError(RuntimeError):
    """A program violated its declared access mode."""


#: associative reduce operators accepted by WritePolicy.COMBINE
COMBINE_OPS: dict[str, Callable[[Iterable], object]] = {
    "sum": sum,
    "min": min,
    "max": max,
    "or": lambda vals: int(any(vals)),
    "and": lambda vals: int(all(vals)),
}


def resolve_writes(
    writers: list[tuple[int, object]],
    policy: WritePolicy,
    combine_op: str = "sum",
    *,
    strict: bool = True,
) -> object:
    """Resolve one address's concurrent writes to a single stored value.

    *writers* is a list of (processor id, value) pairs, len >= 1.
    With ``strict=False`` a COMMON value divergence resolves lowest-pid
    instead of raising — the permissive mode the race-analysis pre-run
    (:func:`repro.analysis.races.prerun_trace`) uses to keep tracing
    past the conflict it is about to report.
    """
    if not writers:
        raise ValueError("resolve_writes needs at least one writer")
    if len(writers) == 1:
        return writers[0][1]
    if policy is WritePolicy.COMMON:
        values = {v for _, v in writers}
        if len(values) != 1:
            if not strict:
                return min(writers, key=lambda t: t[0])[1]
            raise ConcurrentAccessError(
                f"COMMON CRCW write conflict: values {sorted(map(repr, values))}"
            )
        return writers[0][1]
    if policy in (WritePolicy.ARBITRARY, WritePolicy.PRIORITY):
        return min(writers, key=lambda t: t[0])[1]
    if policy is WritePolicy.COMBINE:
        try:
            op = COMBINE_OPS[combine_op]
        except KeyError:
            raise ValueError(f"unknown combine op {combine_op!r}") from None
        return op([v for _, v in writers])
    raise ValueError(f"unhandled policy {policy}")  # pragma: no cover
