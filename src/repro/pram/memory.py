"""The PRAM's shared global memory (§1).

A flat address space of M cells with unit-time access — the abstraction
the whole paper is about making physically realizable.  Cells default to
0; reads of never-written cells are well-defined.
"""

from __future__ import annotations

from typing import Iterable, Mapping


class SharedMemory:
    """M-cell shared memory with dense integer addresses."""

    def __init__(self, size: int, init: Mapping[int, object] | Iterable | None = None) -> None:
        if size < 1:
            raise ValueError("memory size must be positive")
        self.size = size
        self._cells: dict[int, object] = {}
        if init is not None:
            if isinstance(init, Mapping):
                for addr, val in init.items():
                    self.write(int(addr), val)
            else:
                for addr, val in enumerate(init):
                    self.write(addr, val)

    def _check(self, addr: int) -> None:
        if not 0 <= addr < self.size:
            raise IndexError(f"address {addr} outside [0, {self.size})")

    def read(self, addr: int):
        self._check(addr)
        return self._cells.get(addr, 0)

    def write(self, addr: int, value) -> None:
        self._check(addr)
        self._cells[addr] = value

    def snapshot(self, lo: int = 0, hi: int | None = None) -> list:
        """Cells [lo, hi) as a list (hi defaults to the used extent)."""
        if hi is None:
            hi = max(self._cells, default=-1) + 1
        return [self.read(a) for a in range(lo, hi)]

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SharedMemory(size={self.size}, touched={len(self._cells)})"
