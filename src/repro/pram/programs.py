"""A library of classic PRAM programs (§1: "sorting, graph and matrix
problems, computational geometry" are the PRAM's home turf).

Each entry is a :class:`ProgramSpec` bundling the program, its machine
requirements (mode, write policy), the memory layout, and a verifier.
These serve three purposes: they exercise the PRAM semantics in tests,
they generate *realistic* memory traces for the emulation experiments,
and they are the substance of the example applications.

Memory layouts are documented per program; all use dense cells.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.pram.machine import PRAM, Read, Write, run_program
from repro.pram.variants import AccessMode, WritePolicy


@dataclass
class ProgramSpec:
    """A runnable, verifiable PRAM workload."""

    name: str
    n_procs: int
    memory_size: int
    mode: AccessMode
    program: Callable
    init: dict[int, object] = field(default_factory=dict)
    write_policy: WritePolicy = WritePolicy.COMMON
    combine_op: str = "sum"
    #: verifier(memory_snapshot_fn) -> None, raises AssertionError on failure
    verify: Callable[[PRAM], None] | None = None

    def run(
        self,
        *,
        max_steps: int = 100_000,
        check_races: bool | AccessMode | None = None,
    ) -> PRAM:
        pram = run_program(
            self.program,
            self.n_procs,
            self.memory_size,
            mode=self.mode,
            write_policy=self.write_policy,
            combine_op=self.combine_op,
            init=self.init,
            max_steps=max_steps,
            check_races=check_races,
        )
        if self.verify is not None:
            self.verify(pram)
        return pram


def _is_pow2(n: int) -> bool:
    return n >= 1 and (n & (n - 1)) == 0


# ---------------------------------------------------------------------------
# 1. Tree-structured parallel sum (EREW, O(log n) rounds)
# Layout: cells [0, n) = working array (destroyed); cell 0 ends as the sum.
# ---------------------------------------------------------------------------

def parallel_sum(values: Sequence[float]) -> ProgramSpec:
    n = len(values)
    if not _is_pow2(n):
        raise ValueError("parallel_sum needs a power-of-two input size")
    total = sum(values)

    def program(pid: int, nprocs: int):
        stride = 1
        while stride < n:
            if pid % (2 * stride) == 0 and pid + stride < n:
                other = yield Read(pid + stride)
                mine = yield Read(pid)
                yield Write(pid, mine + other)
            else:
                yield None
                yield None
                yield None
            stride *= 2

    def verify(pram: PRAM) -> None:
        assert pram.memory.read(0) == total, (
            f"sum: got {pram.memory.read(0)}, want {total}"
        )

    return ProgramSpec(
        name="parallel-sum",
        n_procs=n,
        memory_size=n,
        mode=AccessMode.EREW,
        program=program,
        init=dict(enumerate(values)),
        verify=verify,
    )


# ---------------------------------------------------------------------------
# 2. Prefix sums via double-buffered Hillis–Steele scan (EREW, O(log n))
# Layout: cells [0, n) buffer A, [n, 2n) buffer B; result = inclusive scan.
# ---------------------------------------------------------------------------

def prefix_sum(values: Sequence[float]) -> ProgramSpec:
    n = len(values)
    if not _is_pow2(n):
        raise ValueError("prefix_sum needs a power-of-two input size")
    import itertools

    expected = list(itertools.accumulate(values))
    rounds = n.bit_length() - 1  # log2 n

    def buf(round_idx: int) -> int:
        return 0 if round_idx % 2 == 0 else n

    def program(pid: int, nprocs: int):
        for r in range(rounds):
            src, dst = buf(r), buf(r + 1)
            stride = 1 << r
            mine = yield Read(src + pid)
            if pid >= stride:
                left = yield Read(src + pid - stride)
                yield Write(dst + pid, mine + left)
            else:
                yield None
                yield Write(dst + pid, mine)

    def verify(pram: PRAM) -> None:
        base = buf(rounds)
        got = [pram.memory.read(base + i) for i in range(n)]
        assert got == expected, f"scan mismatch: {got} != {expected}"

    return ProgramSpec(
        name="prefix-sum",
        n_procs=n,
        memory_size=2 * n,
        mode=AccessMode.EREW,
        program=program,
        init=dict(enumerate(values)),
        verify=verify,
    )


# ---------------------------------------------------------------------------
# 3. Broadcast by recursive doubling (EREW, O(log n))
# Layout: cells [0, n); cell 0 starts with the value; all end with it.
# ---------------------------------------------------------------------------

def broadcast(n: int, value: object = 42) -> ProgramSpec:
    if not _is_pow2(n):
        raise ValueError("broadcast needs a power-of-two processor count")

    def program(pid: int, nprocs: int):
        stride = 1
        while stride < n:
            if stride <= pid < 2 * stride:
                got = yield Read(pid - stride)
                yield Write(pid, got)
            else:
                yield None
                yield None
            stride *= 2

    def verify(pram: PRAM) -> None:
        vals = [pram.memory.read(i) for i in range(n)]
        assert all(v == value for v in vals), f"broadcast incomplete: {vals}"

    return ProgramSpec(
        name="broadcast",
        n_procs=n,
        memory_size=n,
        mode=AccessMode.EREW,
        program=program,
        init={0: value},
        verify=verify,
    )


# ---------------------------------------------------------------------------
# 4. Boolean OR in O(1) (CRCW-COMMON): the canonical constant-time trick.
# Layout: cells [0, n) = input bits; cell n = result (preset 0).
# ---------------------------------------------------------------------------

def boolean_or(bits: Sequence[int]) -> ProgramSpec:
    n = len(bits)
    expected = int(any(bits))

    def program(pid: int, nprocs: int):
        mine = yield Read(pid)
        if mine:
            yield Write(n, 1)
        else:
            yield None

    def verify(pram: PRAM) -> None:
        assert pram.memory.read(n) == expected

    return ProgramSpec(
        name="boolean-or",
        n_procs=n,
        memory_size=n + 1,
        mode=AccessMode.CRCW,
        write_policy=WritePolicy.COMMON,
        program=program,
        init=dict(enumerate(bits)),
        verify=verify,
    )


# ---------------------------------------------------------------------------
# 5. Maximum in O(1) with n² processors (CRCW-COMMON).
# Layout: [0, n) input; [n, 2n) loser flags (preset 0); cell 2n = result.
# ---------------------------------------------------------------------------

def find_max(values: Sequence[float]) -> ProgramSpec:
    n = len(values)
    expected = max(values)

    def program(pid: int, nprocs: int):
        i, j = divmod(pid, n)
        a_i = yield Read(i)
        a_j = yield Read(j)
        # mark the loser of each comparison (ties: higher index loses)
        if (a_i, -i) < (a_j, -j):
            yield Write(n + i, 1)
        else:
            yield None
        if i == 0:  # one row of processors publishes the winner
            flag = yield Read(n + j)
            if not flag:
                yield Write(2 * n, a_j)
            else:
                yield None

    def verify(pram: PRAM) -> None:
        assert pram.memory.read(2 * n) == expected

    return ProgramSpec(
        name="find-max",
        n_procs=n * n,
        memory_size=2 * n + 1,
        mode=AccessMode.CRCW,
        write_policy=WritePolicy.COMMON,
        program=program,
        init=dict(enumerate(values)),
        verify=verify,
    )


# ---------------------------------------------------------------------------
# 6. List ranking by pointer jumping (CREW, O(log n) rounds).
# Layout: [0, n) next-pointers (self-loop marks the tail);
#         [n, 2n) ranks (distance to tail).
# ---------------------------------------------------------------------------

def list_ranking(next_ptrs: Sequence[int]) -> ProgramSpec:
    n = len(next_ptrs)

    # reference ranks
    expected = [0] * n
    for i in range(n):
        r, cur = 0, i
        while next_ptrs[cur] != cur:
            cur = next_ptrs[cur]
            r += 1
            if r > n:
                raise ValueError("next_ptrs does not describe a list")
        expected[i] = r

    import math

    rounds = max(1, math.ceil(math.log2(max(2, n))))

    def program(pid: int, nprocs: int):
        # invariant: rank[i] == distance from i to next[i]
        for _ in range(rounds):
            nxt = yield Read(pid)
            if nxt != pid:
                add = yield Read(n + nxt)  # concurrent read at the tail: CREW
                mine = yield Read(n + pid)
                yield Write(n + pid, mine + add)
                jump = yield Read(nxt)  # concurrent read: CREW
                yield Write(pid, jump)
            else:
                for _ in range(5):
                    yield None  # stay in lockstep with active processors

    def verify(pram: PRAM) -> None:
        got = [pram.memory.read(n + i) for i in range(n)]
        assert got == expected, f"ranks {got} != {expected}"

    init: dict[int, object] = dict(enumerate(next_ptrs))
    for i in range(n):
        init[n + i] = 0 if next_ptrs[i] == i else 1

    return ProgramSpec(
        name="list-ranking",
        n_procs=n,
        memory_size=2 * n,
        mode=AccessMode.CREW,
        program=program,
        init=init,
        verify=verify,
    )


# ---------------------------------------------------------------------------
# 7. Matrix multiply, k² processors each owning c[i][j] (CREW, O(k) steps).
# Layout: [0, k²) = A row-major, [k², 2k²) = B, [2k², 3k²) = C.
# ---------------------------------------------------------------------------

def matrix_multiply(a: Sequence[Sequence[float]], b: Sequence[Sequence[float]]) -> ProgramSpec:
    k = len(a)
    if any(len(row) != k for row in a) or len(b) != k or any(len(r) != k for r in b):
        raise ValueError("need square matrices of equal size")
    expected = [
        [sum(a[i][r] * b[r][j] for r in range(k)) for j in range(k)] for i in range(k)
    ]

    def program(pid: int, nprocs: int):
        i, j = divmod(pid, k)
        acc = 0
        for r in range(k):
            x = yield Read(i * k + r)
            y = yield Read(k * k + r * k + j)
            acc += x * y
        yield Write(2 * k * k + i * k + j, acc)

    def verify(pram: PRAM) -> None:
        got = [
            [pram.memory.read(2 * k * k + i * k + j) for j in range(k)]
            for i in range(k)
        ]
        assert got == expected

    init: dict[int, object] = {}
    for i in range(k):
        for j in range(k):
            init[i * k + j] = a[i][j]
            init[k * k + i * k + j] = b[i][j]

    return ProgramSpec(
        name="matrix-multiply",
        n_procs=k * k,
        memory_size=3 * k * k,
        mode=AccessMode.CREW,
        program=program,
        init=init,
        verify=verify,
    )


# ---------------------------------------------------------------------------
# 8. Odd–even transposition sort (EREW, O(n) rounds) — the paper's favorite
#    benchmark problem class (§2.2.1 mentions sorting-based routing).
# Layout: [0, n) the array, sorted ascending in place.
# ---------------------------------------------------------------------------

def odd_even_sort(values: Sequence[float]) -> ProgramSpec:
    n = len(values)
    expected = sorted(values)

    def program(pid: int, nprocs: int):
        for rnd in range(n):
            active = pid % 2 == rnd % 2 and pid + 1 < n
            if active:
                x = yield Read(pid)
                y = yield Read(pid + 1)
                if x > y:
                    yield Write(pid, y)
                    yield Write(pid + 1, x)
                else:
                    yield None
                    yield None
            else:
                for _ in range(4):
                    yield None

    def verify(pram: PRAM) -> None:
        got = [pram.memory.read(i) for i in range(n)]
        assert got == expected, f"sort failed: {got}"

    return ProgramSpec(
        name="odd-even-sort",
        n_procs=n,
        memory_size=n,
        mode=AccessMode.EREW,
        program=program,
        init=dict(enumerate(values)),
        verify=verify,
    )


# ---------------------------------------------------------------------------
# 9. Histogram with combining writes (CRCW-COMBINE "sum").
# Layout: [0, n) keys; [n, n+k) counts.
# ---------------------------------------------------------------------------

def histogram(keys: Sequence[int], n_bins: int) -> ProgramSpec:
    n = len(keys)
    expected = [0] * n_bins
    for key in keys:
        if not 0 <= key < n_bins:
            raise ValueError(f"key {key} outside [0, {n_bins})")
        expected[key] += 1

    def program(pid: int, nprocs: int):
        key = yield Read(pid)
        yield Write(n + key, 1)

    def verify(pram: PRAM) -> None:
        got = [pram.memory.read(n + b) for b in range(n_bins)]
        assert got == expected, f"histogram {got} != {expected}"

    return ProgramSpec(
        name="histogram",
        n_procs=n,
        memory_size=n + n_bins,
        mode=AccessMode.CRCW,
        write_policy=WritePolicy.COMBINE,
        combine_op="sum",
        program=program,
        init=dict(enumerate(keys)),
        verify=verify,
    )


ALL_PROGRAM_BUILDERS: dict[str, Callable[[], ProgramSpec]] = {
    "parallel-sum": lambda: parallel_sum(list(range(16))),
    "prefix-sum": lambda: prefix_sum(list(range(1, 17))),
    "broadcast": lambda: broadcast(16),
    # at least two set bits so the CRCW-COMMON concurrent write actually
    # happens on the default input (keeps the race classifier's inferred
    # variant equal to the declared one, not merely over-declared)
    "boolean-or": lambda: boolean_or([0] * 13 + [1] * 3),
    "find-max": lambda: find_max([3, 1, 4, 1, 5, 9, 2, 6]),
    "list-ranking": lambda: list_ranking([1, 2, 3, 4, 5, 6, 7, 7]),
    "matrix-multiply": lambda: matrix_multiply(
        [[1, 2], [3, 4]], [[5, 6], [7, 8]]
    ),
    "odd-even-sort": lambda: odd_even_sort([5, 3, 8, 1, 9, 2, 7, 4]),
    "histogram": lambda: histogram([0, 1, 1, 2, 2, 2, 3, 0], 4),
}

# The application layer (repro.apps) contributes its data-dependent
# workloads — connected components, bisimulation, and the EREW matching
# specialization — to the same registry, so classification sweeps and
# emulation differentials cover them automatically.  apps.programs
# defers its ProgramSpec import to builder call time, which keeps this
# bottom-of-module import acyclic.
from repro.apps.programs import APP_PROGRAM_BUILDERS

ALL_PROGRAM_BUILDERS.update(APP_PROGRAM_BUILDERS)
