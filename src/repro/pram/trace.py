"""Memory-access traces: the interface between the PRAM and its emulators.

One PRAM instruction (step) is, from the network's point of view, a set of
read/write requests — "each processor has a packet of information and also
each processor wants to access the information some other processor has"
(§3.3).  The machine records a :class:`StepTrace` per step; emulators
replay them and charge network time.

Synthetic trace generators cover the workloads the experiments need
without running full programs: permutation steps, h-relation steps,
hot-spot (concurrent) steps, and distance-bounded local steps for
Theorem 3.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.util.rng import as_generator


@dataclass(frozen=True)
class ReadRequest:
    pid: int
    addr: int


@dataclass(frozen=True)
class WriteRequest:
    pid: int
    addr: int
    value: object = None


@dataclass
class StepTrace:
    """All shared-memory requests issued in one PRAM step."""

    reads: list[ReadRequest] = field(default_factory=list)
    writes: list[WriteRequest] = field(default_factory=list)

    @property
    def num_requests(self) -> int:
        return len(self.reads) + len(self.writes)

    def addresses(self) -> list[int]:
        return [r.addr for r in self.reads] + [w.addr for w in self.writes]

    def max_concurrency(self) -> int:
        """Largest number of requests aimed at one address (1 = exclusive)."""
        addrs = self.addresses()
        if not addrs:
            return 0
        return int(np.bincount(np.asarray(addrs)).max())

    def is_erew(self) -> bool:
        return self.max_concurrency() <= 1


@dataclass
class MemoryTrace:
    """A full program execution's step-by-step request log."""

    steps: list[StepTrace] = field(default_factory=list)
    num_processors: int = 0
    address_space: int = 0

    def __iter__(self) -> Iterator[StepTrace]:
        return iter(self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def total_requests(self) -> int:
        return sum(s.num_requests for s in self.steps)

    def nonempty_steps(self) -> list[StepTrace]:
        return [s for s in self.steps if s.num_requests > 0]


# ---- synthetic traces ------------------------------------------------------

def permutation_step(
    n_procs: int, address_space: int, seed=None, *, kind: str = "read"
) -> StepTrace:
    """Every processor touches a distinct random address (EREW-legal)."""
    rng = as_generator(seed)
    if n_procs > address_space:
        raise ValueError("need at least one address per processor")
    addrs = rng.choice(address_space, size=n_procs, replace=False)
    step = StepTrace()
    for pid, addr in enumerate(addrs):
        if kind == "read":
            step.reads.append(ReadRequest(pid, int(addr)))
        else:
            step.writes.append(WriteRequest(pid, int(addr), pid))
    return step


def h_relation_step(
    n_procs: int, address_space: int, h: int, seed=None
) -> StepTrace:
    """Up to h requests per processor-address (stresses Theorem 2.4)."""
    rng = as_generator(seed)
    step = StepTrace()
    for rep in range(h):
        addrs = rng.choice(address_space, size=n_procs, replace=False)
        for pid, addr in enumerate(addrs):
            step.reads.append(ReadRequest(pid, int(addr)))
    return step


def hotspot_step(
    n_procs: int,
    address_space: int,
    *,
    hot_addresses: int = 1,
    hot_fraction: float = 1.0,
    seed=None,
) -> StepTrace:
    """Concurrent-read hot spot: a fraction of processors all read the
    same few addresses (the CRCW pattern combining is for)."""
    if not 0 <= hot_fraction <= 1:
        raise ValueError("hot_fraction must be in [0,1]")
    rng = as_generator(seed)
    hot = rng.choice(address_space, size=hot_addresses, replace=False)
    step = StepTrace()
    for pid in range(n_procs):
        if rng.random() < hot_fraction:
            addr = int(hot[int(rng.integers(hot_addresses))])
        else:
            addr = int(rng.integers(address_space))
        step.reads.append(ReadRequest(pid, addr))
    return step


def local_step_for_mesh(
    n: int, max_distance: int, seed=None
) -> StepTrace:
    """Theorem 3.3 workload on an n x n mesh: processor (r, c) reads the
    *module-address* of a distinct node within Manhattan distance
    ``max_distance`` (an EREW-legal "local permutation").

    Construction: tile the mesh with b x b blocks, b = δ//2 + 1, and
    permute addresses uniformly within each block; any two cells of a
    block are within Manhattan distance 2(b-1) <= δ.  Addresses are
    node-direct (identity placement): address a lives in module a.
    """
    if max_distance < 0:
        raise ValueError("max_distance must be >= 0")
    rng = as_generator(seed)
    b = max(1, max_distance // 2 + 1)
    step = StepTrace()
    requests: dict[int, int] = {}
    for br in range(0, n, b):
        for bc in range(0, n, b):
            cells = [
                (r, c)
                for r in range(br, min(br + b, n))
                for c in range(bc, min(bc + b, n))
            ]
            perm = rng.permutation(len(cells))
            for (r, c), t in zip(cells, perm):
                tr, tc = cells[int(t)]
                requests[r * n + c] = tr * n + tc
    for pid in sorted(requests):
        step.reads.append(ReadRequest(pid, requests[pid]))
    return step


def random_trace(
    n_procs: int,
    address_space: int,
    n_steps: int,
    seed=None,
    *,
    read_fraction: float = 0.5,
    erew: bool = True,
) -> MemoryTrace:
    """A multi-step synthetic trace (EREW-legal if *erew*)."""
    rng = as_generator(seed)
    trace = MemoryTrace(num_processors=n_procs, address_space=address_space)
    for _ in range(n_steps):
        step = StepTrace()
        if erew:
            addrs = rng.choice(address_space, size=n_procs, replace=False)
        else:
            addrs = rng.integers(0, address_space, size=n_procs)
        for pid in range(n_procs):
            if rng.random() < read_fraction:
                step.reads.append(ReadRequest(pid, int(addrs[pid])))
            else:
                step.writes.append(WriteRequest(pid, int(addrs[pid]), pid))
        trace.steps.append(step)
    return trace
