"""Shared utilities: seeded RNG plumbing, number theory, statistics, tables."""

from repro.util.rng import RngMixin, as_generator, spawn_generators
from repro.util.primes import is_prime, next_prime
from repro.util.stats import (
    binomial_tail,
    chernoff_upper,
    hoeffding_poisson_tail,
    mean,
    percentile,
    summarize,
)
from repro.util.tables import Table

__all__ = [
    "RngMixin",
    "Table",
    "as_generator",
    "binomial_tail",
    "chernoff_upper",
    "hoeffding_poisson_tail",
    "is_prime",
    "mean",
    "next_prime",
    "percentile",
    "spawn_generators",
    "summarize",
]
