"""Plain-text table rendering for experiment output.

The paper has no numeric tables of its own (it is an analysis paper), so the
reproduction prints one table per theorem in a uniform format: a header, one
row per parameter setting, and an optional caption tying the numbers back to
the claimed bound.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


class Table:
    """Small monospace table builder.

    >>> t = Table(["n", "time"], title="demo")
    >>> t.add_row([4, 12.5])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str], *, title: str | None = None) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns = [str(c) for c in columns]
        self.title = title
        self.rows: list[list[str]] = []
        self.caption: str | None = None

    def add_row(self, values: Iterable[Any]) -> None:
        row = [self._fmt(v) for v in values]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    def set_caption(self, caption: str) -> None:
        self.caption = caption

    @staticmethod
    def _fmt(v: Any) -> str:
        if isinstance(v, float):
            if v != v:  # NaN
                return "nan"
            if abs(v) >= 1000 or (abs(v) < 0.01 and v != 0):
                return f"{v:.3g}"
            return f"{v:.3f}".rstrip("0").rstrip(".")
        return str(v)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines = []
        if self.title:
            lines.append(self.title)
            lines.append("=" * max(len(self.title), len(header)))
        lines.append(header)
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if self.caption:
            lines.append("")
            lines.append(self.caption)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()
