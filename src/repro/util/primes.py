"""Deterministic primality testing and prime search.

The hash family of §2.1 needs a prime P >= M (the PRAM address-space size).
M can be large (2**20 and beyond), so trial division is not enough; we use a
deterministic Miller-Rabin variant valid for all 64-bit integers.
"""

from __future__ import annotations

# Witnesses proven sufficient for n < 3,317,044,064,679,887,385,961,981
# (covers all 64-bit inputs).  Sinclair / Sorenson-Webster bases.
_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97,
)


def _miller_rabin_round(n: int, a: int, d: int, r: int) -> bool:
    """One Miller-Rabin round; True if *n* passes for witness *a*."""
    x = pow(a, d, n)
    if x in (1, n - 1):
        return True
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return True
    return False


def is_prime(n: int) -> bool:
    """Deterministic primality test, exact for every n < 2**64."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    return all(_miller_rabin_round(n, a % n, d, r) for a in _MR_WITNESSES if a % n)


def next_prime(n: int) -> int:
    """Smallest prime >= n (n may be any nonnegative int)."""
    if n <= 2:
        return 2
    candidate = n | 1  # next odd >= n
    while not is_prime(candidate):
        candidate += 2
    return candidate


def primes_below(limit: int) -> list[int]:
    """All primes < limit via a simple sieve (for tests and small tables)."""
    if limit <= 2:
        return []
    sieve = bytearray([1]) * limit
    sieve[0:2] = b"\x00\x00"
    for i in range(2, int(limit**0.5) + 1):
        if sieve[i]:
            sieve[i * i :: i] = b"\x00" * len(range(i * i, limit, i))
    return [i for i in range(limit) if sieve[i]]
