"""Probability bounds and summary statistics used throughout the paper.

Implements the tools of §2.2.2: binomial tails B(m, N, P), the Hoeffding
fact reducing Poisson trials to Bernoulli trials, and Chernoff bounds — plus
small summary helpers the experiment harness uses to report measured
distributions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


def binomial_tail(m: int, n: int, p: float) -> float:
    """B(m, n, p): probability of at least *m* successes in n Bernoulli(p).

    Computed with a numerically careful log-space sum; exact enough for the
    moderate n used in the analysis module.
    """
    if m <= 0:
        return 1.0
    if m > n:
        return 0.0
    if p <= 0.0:
        return 0.0
    if p >= 1.0:
        return 1.0
    logp, log1p = math.log(p), math.log1p(-p)
    total = 0.0
    for k in range(m, n + 1):
        logterm = (
            math.lgamma(n + 1)
            - math.lgamma(k + 1)
            - math.lgamma(n - k + 1)
            + k * logp
            + (n - k) * log1p
        )
        total += math.exp(logterm)
    return min(total, 1.0)


def chernoff_upper(m: int, n: int, p: float) -> float:
    """Chernoff bound (Fact 2.3): B(m, n, p) <= (np/m)^m * e^(m - np) for m >= np.

    This is the classic form used in the paper's delay analysis.
    """
    if m <= 0:
        return 1.0
    mu = n * p
    if m < mu:
        return 1.0
    if mu == 0:
        return 0.0
    return math.exp(m * math.log(mu / m) + m - mu)


def hoeffding_poisson_tail(m: int, probs: Sequence[float]) -> float:
    """Fact 2.2 (Hoeffding): tail of a sum of independent Poisson trials.

    With success probabilities ``probs`` and mean p̄ = mean(probs), the
    probability of >= m successes is at most B(m, N, p̄) whenever
    m >= N p̄ + 1.  Returns that Bernoulli bound (or 1.0 when the premise
    fails, which keeps the bound valid though weak).
    """
    probs = list(probs)
    n = len(probs)
    if n == 0:
        return 0.0 if m > 0 else 1.0
    pbar = sum(probs) / n
    if m < n * pbar + 1:
        return 1.0
    return binomial_tail(m, n, pbar)


def poisson_tail(m: int, lam: float) -> float:
    """P(X >= m) for X ~ Poisson(lam); the limit law behind Theorem 2.4."""
    if m <= 0:
        return 1.0
    # 1 - CDF(m-1), summed in log space.
    total = 0.0
    for k in range(0, m):
        total += math.exp(-lam + k * math.log(lam) - math.lgamma(k + 1)) if lam > 0 else (
            1.0 if k == 0 else 0.0
        )
    return max(0.0, 1.0 - total)


def mean(xs: Iterable[float]) -> float:
    xs = list(xs)
    return sum(xs) / len(xs) if xs else float("nan")


def percentile(xs: Iterable[float], q: float) -> float:
    """q-th percentile (0..100) with linear interpolation."""
    arr = np.asarray(list(xs), dtype=float)
    if arr.size == 0:
        return float("nan")
    return float(np.percentile(arr, q))


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample; printed in experiment tables."""

    n: int
    mean: float
    std: float
    minimum: float
    median: float
    p95: float
    maximum: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.n} mean={self.mean:.3f} std={self.std:.3f} "
            f"min={self.minimum:.3f} med={self.median:.3f} "
            f"p95={self.p95:.3f} max={self.maximum:.3f}"
        )


def summarize(xs: Iterable[float]) -> Summary:
    arr = np.asarray(list(xs), dtype=float)
    if arr.size == 0:
        nan = float("nan")
        return Summary(0, nan, nan, nan, nan, nan, nan)
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=0)),
        minimum=float(arr.min()),
        median=float(np.median(arr)),
        p95=float(np.percentile(arr, 95)),
        maximum=float(arr.max()),
    )


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float]:
    """Least-squares fit y ≈ a*x + b; returns (a, b).

    Experiments use this to extract the leading constant of time-vs-diameter
    curves (e.g. the "4" of 4n + o(n)).
    """
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.size < 2:
        raise ValueError("need at least two points for a linear fit")
    a, b = np.polyfit(x, y, 1)
    return float(a), float(b)
