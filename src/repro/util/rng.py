"""Randomness plumbing.

Every randomized component in the library accepts either a seed (int), a
``numpy.random.Generator``, or ``None`` (fresh entropy).  Routing algorithms
and emulators draw *all* of their coins from the resulting generator, so any
experiment is reproducible from a single integer seed.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

SeedLike = "int | np.random.Generator | np.random.SeedSequence | None"


def as_generator(seed=None) -> np.random.Generator:
    """Coerce *seed* into a ``numpy.random.Generator``.

    Accepts ``None`` (OS entropy), an integer seed, a ``SeedSequence``, or an
    existing ``Generator`` (returned unchanged so callers can thread one
    generator through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(seed, n: int) -> list[np.random.Generator]:
    """Derive *n* independent child generators from *seed*.

    Used when an experiment fans out over trials: each trial gets its own
    stream so trials are independent yet the whole sweep replays from one
    seed.
    """
    if isinstance(seed, np.random.Generator):
        # Derive children by drawing seeds from the parent stream.
        seeds = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in seeds]
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


class RngMixin:
    """Mixin storing a lazily created generator under ``self._rng``."""

    def __init__(self, seed=None) -> None:
        self._rng = as_generator(seed)

    @property
    def rng(self) -> np.random.Generator:
        return self._rng

    def reseed(self, seed) -> None:
        """Replace the generator (used by rehashing logic and tests)."""
        self._rng = as_generator(seed)


def random_permutation(rng: np.random.Generator, n: int) -> np.ndarray:
    """A uniformly random permutation of ``range(n)`` as an int64 array."""
    return rng.permutation(n)


def random_partial_permutation(
    rng: np.random.Generator, n: int, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """A random *partial* permutation: k distinct sources -> k distinct dests.

    Returns ``(sources, dests)`` arrays of length ``k``.  Used for partial
    routing problems (§2.2.1 of the paper).
    """
    if not 0 <= k <= n:
        raise ValueError(f"k={k} must be in [0, {n}]")
    sources = rng.choice(n, size=k, replace=False)
    dests = rng.choice(n, size=k, replace=False)
    return sources, dests


def random_h_relation(
    rng: np.random.Generator, n: int, h: int, *, total: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """A random partial h-relation on ``n`` nodes (§2.2.1).

    At most ``h`` packets originate at any node and at most ``h`` packets
    share a destination.  Built by superposing ``h`` random partial
    permutations; ``total`` (defaults to ``h * n``) caps the number of
    packets.  Returns ``(sources, dests)``.
    """
    if h < 1:
        raise ValueError("h must be >= 1")
    cap = h * n if total is None else total
    srcs: list[np.ndarray] = []
    dsts: list[np.ndarray] = []
    remaining = cap
    for _ in range(h):
        k = min(n, remaining)
        if k <= 0:
            break
        s, d = random_partial_permutation(rng, n, k)
        srcs.append(s)
        dsts.append(d)
        remaining -= k
    if not srcs:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    return np.concatenate(srcs), np.concatenate(dsts)


def choice_weighted(rng: np.random.Generator, options: Sequence, weights: Iterable[float]):
    """Pick one element of *options* with the given (unnormalized) weights."""
    w = np.asarray(list(weights), dtype=float)
    idx = rng.choice(len(options), p=w / w.sum())
    return options[idx]
