"""Multi-tenant admission: QoS classes and per-tenant quotas.

The PR 5 admission queue (:class:`~repro.traffic.OnlineEmulator`) is
single-tenant: one FIFO over sub-queues, every request equal.  A shared
memory *service* is not — tenants share the front end, and the operator
wants (a) latency classes and (b) bounds on how much of each epoch any
one tenant can consume.  This module layers both on top of the existing
queue without changing its mechanics:

* :class:`TenantPolicy` names a tenant's QoS class (``gold`` >
  ``silver`` > ``bronze``) and an optional per-epoch admission quota.
* :class:`MultiTenantWorkload` merges several seeded single-tenant
  generators into one labeled request stream (round-robin interleave,
  globally re-numbered rids), still a pure function of its sources'
  seeds.
* :class:`MultiTenantOnlineEmulator` extends the driver's admission
  heap from ``(seq, addr)`` to ``(qos_rank, seq, addr)`` — strict
  priority across classes, FIFO within a class — and defers a head
  whose tenant already used its quota this epoch (position preserved,
  the same deferral mechanism retry backoff uses).

Strict priority can starve bronze under sustained gold load; quotas are
the knob that bounds it (cap gold's per-epoch admissions and the
residual capacity drains lower classes).  Whatever the policy does —
reorder, delay, defer — the per-tenant conservation law still holds and
is asserted by the tests and the sharding benchmark gates::

    arrivals[t] == delivered[t] + dropped[t] + timed_out[t]
                   + dead_lettered[t] + backlog[t]    for every tenant t
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from heapq import heappop, heappush

from repro.traffic.driver import OnlineEmulator
from repro.traffic.generators import TrafficRequest, WorkloadGenerator

__all__ = [
    "QOS_CLASSES",
    "MultiTenantOnlineEmulator",
    "MultiTenantWorkload",
    "TenantPolicy",
]

#: admission priority order, highest first
QOS_CLASSES = ("gold", "silver", "bronze")


@dataclass(frozen=True)
class TenantPolicy:
    """Admission policy for one tenant.

    ``quota`` bounds the requests admitted for the tenant in any one
    epoch (``None`` = unlimited); ``qos`` picks the priority class.
    """

    tenant: str
    qos: str = "silver"
    quota: int | None = None

    def __post_init__(self) -> None:
        if self.qos not in QOS_CLASSES:
            raise ValueError(
                f"unknown qos class {self.qos!r}; pick one of {QOS_CLASSES}"
            )
        if self.quota is not None and self.quota < 1:
            raise ValueError("quota must be >= 1 (or None for unlimited)")

    @property
    def rank(self) -> int:
        """Heap rank: lower admits first."""
        return QOS_CLASSES.index(self.qos)


class MultiTenantWorkload:
    """Merge labeled single-tenant generators into one request stream.

    Parameters
    ----------
    sources:
        ``{tenant_name: WorkloadGenerator}``.  All sources must draw
        from the same address space; the merged ``n_procs`` is the
        maximum over sources (every pid stays valid).

    The merged stream interleaves the sources round-robin within each
    epoch (one request from each tenant in turn, in the listed order)
    and re-numbers rids globally, so rids stay unique and monotone —
    the invariant the conservation accounting keys on.  Each request is
    stamped with its tenant's name.  Determinism is inherited: every
    source pre-draws its own stream from its own snapshotted seed, and
    the merge itself draws nothing.
    """

    def __init__(self, sources: dict[str, WorkloadGenerator]) -> None:
        if not sources:
            raise ValueError("need at least one tenant source")
        spaces = {g.address_space for g in sources.values()}
        if len(spaces) != 1:
            raise ValueError(
                f"tenant sources disagree on address space: {sorted(spaces)}"
            )
        self.sources = dict(sources)
        self.n_procs = max(g.n_procs for g in sources.values())

    @property
    def address_space(self) -> int:
        return next(iter(self.sources.values())).address_space

    @property
    def tenants(self) -> list[str]:
        return list(self.sources)

    def stream(self, epochs: int) -> list[list[TrafficRequest]]:
        """The merged, tenant-labeled arrival stream."""
        per_tenant = {
            name: gen.stream(epochs) for name, gen in self.sources.items()
        }
        out: list[list[TrafficRequest]] = []
        rid = 0
        for epoch in range(epochs):
            lanes = [
                (name, per_tenant[name][epoch]) for name in self.sources
            ]
            merged: list[TrafficRequest] = []
            depth = max((len(batch) for _n, batch in lanes), default=0)
            for i in range(depth):
                for name, batch in lanes:
                    if i >= len(batch):
                        continue
                    req = batch[i]
                    merged.append(
                        replace(
                            req,
                            rid=rid,
                            tenant=name,
                            # writes carry their rid as the default
                            # value; keep that tie after re-numbering
                            value=rid if req.value == req.rid else req.value,
                        )
                    )
                    rid += 1
            out.append(merged)
        return out


class MultiTenantOnlineEmulator(OnlineEmulator):
    """:class:`~repro.traffic.OnlineEmulator` with QoS-aware admission.

    Accepts every driver parameter plus ``policies`` (an iterable of
    :class:`TenantPolicy`) and ``default_policy`` for tenants without
    one (default: ``silver``, no quota).  Only the admission *order*
    changes — timeouts, retry/backoff, dead-lettering, overflow and the
    conservation law are all inherited.
    """

    def __init__(
        self,
        emulator,
        workload,
        *,
        policies=(),
        default_policy: TenantPolicy | None = None,
        **kwargs,
    ) -> None:
        self.policies: dict[str, TenantPolicy] = {}
        for policy in policies:
            if policy.tenant in self.policies:
                raise ValueError(f"duplicate policy for {policy.tenant!r}")
            self.policies[policy.tenant] = policy
        self.default_policy = (
            default_policy
            if default_policy is not None
            else TenantPolicy("default")
        )
        super().__init__(emulator, workload, **kwargs)
        # The heap now orders by (qos_rank, seq, addr).
        self._heap: list[tuple[int, int, int]] = []

    def policy_for(self, tenant: str) -> TenantPolicy:
        return self.policies.get(tenant, self.default_policy)

    # ------------------------------------------------------------------
    def _enqueue(self, req: TrafficRequest, stamp: int, not_before: int) -> None:
        # Same sub-queue bookkeeping as the base class; only the heap
        # entry grows a leading qos rank.  The rank pushed is the *new
        # head's* rank whenever this request becomes the head.
        dq = self._subq.get(req.addr)
        if dq is None:
            dq = self._subq[req.addr] = deque()
        was_empty = not dq
        dq.append((self._seq, req, stamp, not_before))
        if was_empty:
            heappush(
                self._heap,
                (self.policy_for(req.tenant).rank, self._seq, req.addr),
            )
        self._seq += 1
        self._n_queued += 1
        t = req.tenant
        self._queued_by_tenant[t] = self._queued_by_tenant.get(t, 0) + 1

    def _admit(self) -> list[tuple[TrafficRequest, int]]:
        """QoS admission: strict priority across classes, FIFO within.

        Identical to the base admission pass except that (a) heads pop
        in ``(qos_rank, seq)`` order and (b) a head whose tenant has
        exhausted its per-epoch ``quota`` is deferred — left queued,
        position preserved — exactly like a head still backing off.  A
        deferred head defers its whole address sub-queue for the epoch,
        matching the base class's deferral semantics.
        """
        batch: list[tuple[TrafficRequest, int]] = []
        expired: list[TrafficRequest] = []
        self._expired = expired
        admitted_by_tenant: dict[str, int] = {}
        deferred: list[tuple[int, int, int]] = []
        seen_addrs: set[int] = set()
        heap, subq = self._heap, self._subq
        while heap and len(batch) < self.admit_limit:
            rank, seq, addr = heappop(heap)
            dq = subq.get(addr)
            if not dq or dq[0][0] != seq:
                continue  # stale heap entry
            _seq, req, stamp, not_before = dq[0]
            policy = self.policy_for(req.tenant)
            over_quota = (
                policy.quota is not None
                and admitted_by_tenant.get(req.tenant, 0) >= policy.quota
            )
            if (
                self.request_timeout is not None
                and self.clock - stamp > self.request_timeout
            ):
                dq.popleft()
                self._dequeued(req)
                expired.append(req)
            elif (
                not_before > self.clock
                or over_quota
                or (self.exclusive and addr in seen_addrs)
            ):
                deferred.append((rank, seq, addr))
                continue
            else:
                dq.popleft()
                self._dequeued(req)
                if self.exclusive:
                    seen_addrs.add(addr)
                admitted_by_tenant[req.tenant] = (
                    admitted_by_tenant.get(req.tenant, 0) + 1
                )
                batch.append((req, stamp))
            if dq:
                head_req = dq[0][1]
                heappush(
                    heap,
                    (self.policy_for(head_req.tenant).rank, dq[0][0], addr),
                )
            else:
                del subq[addr]
        for item in deferred:
            heappush(heap, item)
        return batch
