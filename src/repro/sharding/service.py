"""Sharded multi-module memory service: scatter/gather over emulator shards.

ROADMAP open item 1, and the production-scale version of the related
work's "emulating a large memory with a collection of smaller ones"
(Hanlon, PAPERS.md): a :class:`ShardedEmulator` partitions the PRAM
address space across N *independent* emulator shards with the two-level
hash of :mod:`repro.sharding.placement` and serves each PRAM step by

1. **scatter** — splitting the step into per-shard sub-steps and
   submitting each to its shard's inbox (the queued-work API every
   :class:`~repro.emulation.base.Emulator` exposes);
2. **step** — serving every loaded shard exactly once, independently;
3. **gather** — merging the per-shard :class:`StepCost` records into
   one step cost under the parallel-shards clock model below.

Each shard is a full emulator (its own network, hash function, memory,
credit pool, fault plan), built by a caller-supplied factory from a
seed this class derives — so per-shard flow control and per-shard
:class:`~repro.faults.FaultPlan` schedules compose unchanged, and the
whole service is a pure function of one root seed on either engine.

Clock model: shards run in parallel, so *time-like* fields of the
merged cost (request/reply steps, stalls, peak queue) take the maximum
over shards — the gather barrier waits for the slowest shard — while
*event counters* (requests, rehashes, combines, fault stalls, deadlock
retries, credit stalls) sum.  With one shard the merge is the identity,
which is what makes the shards=1 benchmark row bit-identical to an
unsharded emulator built from the same derived seed.

Failure model: a shard that exhausts its rehash budget raises
:class:`~repro.faults.RehashStormError`.  The gather barrier then fails
the *whole* step — remaining inboxes are cleared and the error
propagates, so a driver retries the full batch.  Reads are idempotent
and retried writes re-apply the same values, so the retry is safe; the
work shards completed before the failure is charged to the failed
attempt's clock by the driver's stall accounting.

Shards are cheap, picklable, independently steppable instances (the
Emulator contract), so the same front end can later scatter to a
process pool; today it steps them in-process, in shard order.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.emulation.base import Emulator, StepCost
from repro.faults import RehashStormError
from repro.obs import NULL_OBSERVER
from repro.pram.trace import StepTrace
from repro.sharding.placement import ShardPlacement
from repro.util.rng import as_generator

__all__ = ["ShardedEmulator", "ShardedMemory", "merge_costs"]


def merge_costs(costs: Sequence[StepCost]) -> StepCost:
    """Gather per-shard step costs into one (max time, summed events)."""
    if not costs:
        return StepCost(0, 0)
    modes: list[str] = []
    for c in costs:
        modes.extend(c.run_modes)
    return StepCost(
        request_steps=max(c.request_steps for c in costs),
        reply_steps=max(c.reply_steps for c in costs),
        rehashes=sum(c.rehashes for c in costs),
        combines=sum(c.combines for c in costs),
        max_queue=max(c.max_queue for c in costs),
        requests=sum(c.requests for c in costs),
        credits_stalled=sum(c.credits_stalled for c in costs),
        stall_steps=max(c.stall_steps for c in costs),
        fault_stalls=sum(c.fault_stalls for c in costs),
        deadlock_retries=sum(c.deadlock_retries for c in costs),
        run_modes=tuple(modes),
    )


class ShardedMemory:
    """Facade presenting the shards' memories as one address space.

    Reads and writes route through the placement hash to the owning
    shard, so callers that initialize or inspect emulator memory (the
    replay layer's ``configure_emulator_for``, memory differentials)
    work unchanged against a shard fleet.
    """

    def __init__(self, service: "ShardedEmulator") -> None:
        self._service = service

    @property
    def size(self) -> int:
        return self._service.address_space

    def read(self, addr: int):
        svc = self._service
        return svc.shards[svc.placement.shard_of(addr)].memory.read(addr)

    def write(self, addr: int, value) -> None:
        svc = self._service
        svc.shards[svc.placement.shard_of(addr)].memory.write(addr, value)

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedMemory(size={self.size}, "
            f"shards={self._service.n_shards})"
        )


class ShardedEmulator(Emulator):
    """Scatter/gather front end over N independently steppable shards.

    Parameters
    ----------
    shard_factory:
        ``factory(shard_index, shard_seed) -> Emulator``.  Called once
        per shard with a seed derived from ``seed``; build whatever
        emulator the shard should run (network, mode, flow control,
        fault plan) from exactly that seed so runs stay replayable.
        Every shard must cover the full ``address_space`` (memories are
        sparse, so this is O(touched cells), not O(M) — see
        :class:`~repro.pram.memory.SharedMemory`).
    n_shards:
        Number of shards.
    address_space:
        M — the emulated PRAM's shared-memory size.
    seed:
        Root seed.  One generator draw order — placement seed first,
        then one seed per shard — makes the whole service a pure
        function of it.  ``shard_seeds[i]`` is exposed so a benchmark
        can build the *unsharded* comparator from ``shard_seeds[0]``
        and check the shards=1 row bit for bit.
    placement_degree:
        Degree parameter S of the outer (address -> shard) hash.
    """

    def __init__(
        self,
        shard_factory: Callable[[int, int], Emulator],
        n_shards: int,
        address_space: int,
        *,
        seed=None,
        placement_degree: int = 4,
        observer=None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("need at least one shard")
        if address_space < 1:
            raise ValueError("address space must be positive")
        self.n_shards = int(n_shards)
        self.address_space = int(address_space)
        #: repro.obs observer for scatter/gather spans and fleet metrics;
        #: shards get their own observers only if shard_factory wires one
        self.observer = observer
        rng = as_generator(seed)
        seeds = rng.integers(2**63 - 1, size=self.n_shards + 1)
        #: seed of the outer address -> shard hash
        self.placement_seed = int(seeds[0])
        #: per-shard emulator seeds, in shard order
        self.shard_seeds = [int(s) for s in seeds[1:]]
        self.placement = ShardPlacement(
            self.address_space,
            self.n_shards,
            degree_param=placement_degree,
            seed=self.placement_seed,
        )
        self.shards: list[Emulator] = [
            shard_factory(i, self.shard_seeds[i]) for i in range(self.n_shards)
        ]
        for i, shard in enumerate(self.shards):
            if not isinstance(shard, Emulator):
                raise TypeError(
                    f"shard_factory returned {type(shard).__name__!r} for "
                    f"shard {i}; expected an Emulator"
                )
            mem = getattr(shard, "memory", None)
            if mem is not None and mem.size < self.address_space:
                raise ValueError(
                    f"shard {i} covers only {mem.size} of "
                    f"{self.address_space} addresses"
                )
        #: shared-access mode of the shard fleet (drivers key admission
        #: exclusivity off this, exactly as for a plain emulator)
        self.mode = getattr(self.shards[0], "mode", None)
        self.memory = ShardedMemory(self)
        #: global module-id stride: shard i's module m is reported as
        #: ``i * module_stride + m``, so telemetry's module-hotness
        #: rankings stay meaningful across the fleet
        self.module_stride = max(
            (self._modules_of(s) or 1) for s in self.shards
        )
        self._virtual_clock = 0

    # ---- fleet introspection -----------------------------------------
    @staticmethod
    def _procs_of(shard) -> int | None:
        if hasattr(shard, "n_processors"):
            return int(shard.n_processors)
        mesh = getattr(shard, "mesh", None)
        if mesh is not None:
            return int(mesh.num_nodes)
        return None

    @staticmethod
    def _modules_of(shard) -> int | None:
        faults = getattr(shard, "faults", None)
        if faults is not None:
            return int(faults.num_modules)
        return ShardedEmulator._procs_of(shard)

    @property
    def scale(self) -> float:
        """Slowest shard's scale: one gather waits for one full pass."""
        return max(s.scale for s in self.shards)

    @property
    def n_processors(self) -> int:
        procs = [self._procs_of(s) for s in self.shards]
        known = [p for p in procs if p is not None]
        if not known:
            # Property raises -> hasattr() is False, exactly like an
            # emulator that never had the attribute.
            raise AttributeError("shards expose no processor count")
        return min(known)

    @property
    def virtual_clock(self) -> int:
        """Fleet-wide fault clock; assigning pins every shard to it."""
        return self._virtual_clock

    @virtual_clock.setter
    def virtual_clock(self, value: int) -> None:
        self._virtual_clock = int(value)
        for shard in self.shards:
            if hasattr(shard, "virtual_clock"):
                shard.virtual_clock = self._virtual_clock

    def module_of(self, addr: int) -> int:
        """Global module serving ``addr`` (shard-strided id)."""
        shard = self.placement.shard_of(addr)
        return shard * self.module_stride + int(
            self.shards[shard].module_of(addr)
        )

    # ---- the scatter/gather step -------------------------------------
    def emulate_step(self, step: StepTrace) -> StepCost:
        obs = self.observer if self.observer is not None else NULL_OBSERVER
        with obs.span(
            "shard_scatter",
            category="sharding",
            virtual_clock=self._virtual_clock,
            requests=step.num_requests,
        ):
            parts = self.placement.split(step)
            for idx, sub in parts.items():
                self.shards[idx].submit(sub)
        costs: list[StepCost] = []
        try:
            with obs.span(
                "shard_gather",
                category="sharding",
                virtual_clock=self._virtual_clock,
                shards=len(parts),
            ) as sp:
                for idx in sorted(parts):
                    cost = self.shards[idx].step()
                    assert cost is not None  # we just submitted
                    costs.append(cost)
                sp.virtual_end = self._virtual_clock + max(
                    (c.total_steps + c.stall_steps for c in costs), default=0
                )
        except RehashStormError as err:
            # Gather barrier failed: drop the un-served sub-steps so a
            # retried step does not double-submit, and let the caller's
            # retry policy re-run the whole batch (reads are idempotent,
            # re-applied writes carry the same values).
            for shard in self.shards:
                shard.inbox.clear()
            if not err.flight_tail and self.observer is not None:
                err.flight_tail = self.observer.flight_tail()
            raise
        merged = merge_costs(costs)
        obs.count("shard_gathers_total")
        obs.observe("shards_loaded", len(parts))
        # One fleet timeline: advance by the merged (parallel-shards)
        # cost and re-pin every shard, superseding the per-shard clocks
        # that each advanced by their own local cost.
        self.virtual_clock = (
            self._virtual_clock + merged.total_steps + merged.stall_steps
        )
        return merged

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedEmulator(shards={self.n_shards}, "
            f"M={self.address_space}, mode={self.mode!r})"
        )
