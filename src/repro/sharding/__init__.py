"""Sharded multi-module memory service (ROADMAP open item 1).

The paper emulates one PRAM memory on one network; this subsystem
scales the same idea out: a :class:`ShardedEmulator` partitions the
address space across N independent emulator shards with two-level
hashing — a seeded global :class:`ShardPlacement` picks the shard, each
shard's own Karlin–Upfal hash spreads its addresses over its modules —
and serves every PRAM step scatter/gather over the shards' queued-work
API.  On top of the front end, :mod:`repro.sharding.qos` adds
multi-tenant admission: QoS classes and per-epoch quotas layered onto
the PR 5 admission queue, with per-tenant conservation guaranteed.

Quickstart::

    from repro.emulation import LeveledEmulator
    from repro.sharding import ShardedEmulator
    from repro.topology import DAryButterflyLeveled

    net = DAryButterflyLeveled(2, 6)

    def make_shard(index, seed):
        return LeveledEmulator(net, 1 << 20, mode="crcw", seed=seed)

    service = ShardedEmulator(make_shard, 4, 1 << 20, seed=7)
    # service is itself an Emulator: emulate_step / emulate_trace /
    # submit / step / drain all work, and OnlineEmulator can drive it.

See ``docs/sharding.md`` for the architecture, the clock/failure
models, and a worked multi-tenant example.
"""

from repro.sharding.placement import ShardPlacement
from repro.sharding.qos import (
    QOS_CLASSES,
    MultiTenantOnlineEmulator,
    MultiTenantWorkload,
    TenantPolicy,
)
from repro.sharding.service import ShardedEmulator, ShardedMemory, merge_costs

__all__ = [
    "MultiTenantOnlineEmulator",
    "MultiTenantWorkload",
    "QOS_CLASSES",
    "ShardPlacement",
    "ShardedEmulator",
    "ShardedMemory",
    "TenantPolicy",
    "merge_costs",
]
