"""Level-1 placement: a seeded global hash from address to shard.

The sharded memory service uses *two-level* hashing.  This module is
the first level: a :class:`ShardPlacement` maps every PRAM address to
one of N shards with a member of the same Karlin–Upfal polynomial
family H the paper uses within a network (§2.1) — drawn over the full
address space with the shard count as the modulus.  The second level is
unchanged: each shard's emulator samples its own per-shard
:class:`~repro.hashing.family.PolynomialHash` to spread the addresses
it owns across its memory modules.

The two levels compose because H is universal at *every* modulus: the
outer hash balances addresses across shards, the inner one balances
each shard's addresses across its modules, and both are pure functions
of their seeds — so a sharded run is replayable bit for bit.

Placement is *static*: unlike the within-shard hash, the shard map is
never redrawn at runtime (a shard-level rehash would move memory cells
between shards, which is a resharding migration, not a §2.1 recovery).
A shard that cannot complete a step raises and the front end retries
the step against the same placement.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.family import HashFamily
from repro.pram.trace import StepTrace

__all__ = ["ShardPlacement"]


class ShardPlacement:
    """Seeded address -> shard map over ``[0, address_space)``.

    Parameters
    ----------
    address_space:
        M — size of the emulated PRAM's shared memory.
    n_shards:
        Number of independent emulator shards.
    degree_param:
        S for the outer polynomial.  The outer hash only needs pairwise
        balance across shards (there is no shard-level congestion
        argument to serve), so a small constant degree suffices; the
        default 4 keeps the map description tiny.
    seed:
        Anything :func:`repro.util.rng.as_generator` accepts; the outer
        hash is drawn from H once, at construction.
    """

    def __init__(
        self,
        address_space: int,
        n_shards: int,
        *,
        degree_param: int = 4,
        seed=None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("need at least one shard")
        self.address_space = int(address_space)
        self.n_shards = int(n_shards)
        self.family = HashFamily(address_space, n_shards, degree_param)
        self.hash = self.family.sample(seed)

    def shard_of(self, addr: int) -> int:
        """Shard owning ``addr``."""
        return int(self.hash(int(addr)))

    def map(self, addrs) -> np.ndarray:
        """Vectorized :meth:`shard_of` over an address array."""
        return self.hash.map(np.asarray(addrs, dtype=np.int64))

    def split(self, step: StepTrace) -> dict[int, StepTrace]:
        """Partition one PRAM step into per-shard sub-steps.

        Requests keep their relative order within each shard (reads
        stay reads, writes stay writes), so with ``n_shards == 1`` the
        single sub-step is request-for-request identical to the input —
        the property the shards=1 bit-identity gate rests on.  Shards
        that receive no requests are absent from the result.
        """
        if self.n_shards == 1:
            if step.num_requests == 0:
                return {}
            return {0: step}
        parts: dict[int, StepTrace] = {}
        for reqs, lane in ((step.reads, "reads"), (step.writes, "writes")):
            if not reqs:
                continue
            owners = self.map([r.addr for r in reqs]).tolist()
            for req, shard in zip(reqs, owners):
                sub = parts.get(shard)
                if sub is None:
                    sub = parts[shard] = StepTrace()
                getattr(sub, lane).append(req)
        return parts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardPlacement(M={self.address_space}, "
            f"shards={self.n_shards}, S={self.hash.degree_param})"
        )
