"""Algorithm 2.1 — the universal randomized routing algorithm (§2.3.2).

Phase 1 sends every packet to a random node of the last column; phase 2
follows the unique path from there to the true destination.  The two
standard variants are both implemented:

* ``intermediate="coin"`` — the literal Algorithm 2.1: at every level the
  packet "selects a random link as a bridge to go to the next level by
  flipping a d-sided coin".
* ``intermediate="node"`` — Algorithms 2.2/2.3: pick a uniformly random
  intermediate *node* up front and follow the unique path to it.

All randomness is drawn **before** routing begins: coin flips arrive as
one batched ``(n_packets, L)`` RNG call (elementwise identical to the
scalar draws, but orders of magnitude cheaper) and intermediates as one
vector draw.  That also makes the run independent of the engine used, so
the compiled fast path (:mod:`repro.routing.fast_engine`) — selected by
default — reproduces the reference engine's results bit for bit.

Networks whose last column is identified with the first (shuffle,
wrapped butterfly, the star's logical network — all our families) let the
packet re-enter column 0 for the second pass, so every packet traverses
exactly ``2 * num_levels`` links.

Engine node keys are ``(pass, column, row)`` triples.
"""

from __future__ import annotations

from typing import Literal, Sequence

import numpy as np

from repro.routing.engine import SynchronousEngine
from repro.routing.fast_engine import FastPathEngine, resolve_engine_mode
from repro.routing.metrics import RoutingStats
from repro.routing.packet import Packet, make_packets
from repro.routing.queues import fifo_factory
from repro.topology.compiled import compile_leveled
from repro.topology.leveled import LeveledNetwork
from repro.util.rng import as_generator


class LeveledRouter:
    """Two-phase randomized router for a :class:`LeveledNetwork`.

    ``engine`` selects the simulator: ``"reference"`` is the readable
    per-hop engine, ``"fast"`` the compiled integer path
    (:class:`~repro.routing.fast_engine.FastPathEngine`); ``"auto"``
    (default) resolves via the ``REPRO_ENGINE`` environment variable and
    falls back to the fast path.  Both produce identical results under a
    fixed seed.

    ``node_capacity`` bounds each node's resident packets (leveled paths
    move strictly forward in (pass, level), so plain backpressure cannot
    cycle here), and ``flow_control="credit"`` adds the escape channel
    of :mod:`repro.routing.flow_control` for O(1)-queue runs.  Capacity
    accounting identifies the wrap aliases ``(0, L, r)`` / ``(1, 0, r)``
    as one physical node, matching the compiled ids.  On the fast
    engine, capacity runs take the vectorized constrained-batch mode
    (batch credit accounting; escape buffers keyed by arithmetic link
    id) — see ``docs/architecture.md``.
    """

    def __init__(
        self,
        net: LeveledNetwork,
        *,
        intermediate: Literal["coin", "node"] = "coin",
        seed=None,
        combine: bool = False,
        node_capacity: int | None = None,
        flow_control: str = "none",
        track_paths: bool = False,
        engine: str = "auto",
        link_faults=None,
        fault_base: int = 0,
        observer=None,
    ) -> None:
        if intermediate not in ("coin", "node"):
            raise ValueError(f"unknown intermediate mode {intermediate!r}")
        self.net = net
        self.intermediate = intermediate
        self.rng = as_generator(seed)
        self.combine = combine
        self.node_capacity = node_capacity
        self.flow_control = flow_control
        self.track_paths = track_paths
        self.engine_mode = engine
        #: forwarded to whichever engine runs (profiling / flight data)
        self.observer = observer
        resolve_engine_mode(engine)  # validate eagerly
        # Link-fault support: specs are (col, u_row, v_row) physical
        # wires, blocked on both passes; each engine gets a view in its
        # own key space (tuples vs. arithmetic ids), translated so the
        # two stay step-equivalent.  ``fault_base`` offsets this run
        # into the emulator's global virtual clock.
        self.fault_base = int(fault_base)
        self._link_faults = link_faults
        self._ref_fault_view = None
        self._fast_fault_view = None
        if link_faults is not None:
            Lf, Nf = net.num_levels, net.column_size

            def _check(spec):
                c, u, v = spec
                if not (0 <= c < Lf and 0 <= u < Nf and 0 <= v < Nf):
                    raise ValueError(f"link fault spec {spec!r} out of range")
                return c, u, v

            def ref_translate(spec):
                c, u, v = _check(spec)
                return (((0, c, u), (0, c + 1, v)), ((1, c, u), (1, c + 1, v)))

            def fast_translate(spec):
                c, u, v = _check(spec)
                return (
                    (c * Nf + u, (c + 1) * Nf + v),
                    ((Lf + c) * Nf + u, (Lf + c + 1) * Nf + v),
                )

            self._ref_fault_view = link_faults.view(ref_translate)
            self._fast_fault_view = link_faults.view(fast_translate)
        #: after a fast-path run: the packets' compiled node-id
        #: itineraries as an ``(n, 2L + 1)`` int matrix, aligned with
        #: the routed packet list (None after a reference run).  The
        #: emulation layer reuses these to build reply itineraries
        #: without re-encoding traces.
        self.last_fast_paths: np.ndarray | None = None
        L = net.num_levels
        self.engine = SynchronousEngine(
            queue_factory=fifo_factory,
            combine=combine,
            node_capacity=node_capacity,
            flow_control=flow_control,
            # Capacity bookkeeping needs the two key spaces reconciled:
            # a packet exits at the (pass, column, row) key (1, L, dest)
            # while packet.dest is the bare row, and the wrap identifies
            # (0, L, r) with (1, 0, r) as one physical node — exactly
            # how the compiled ids see it (id L*N + r).
            exit_dest=lambda p: (1, L, p.dest),
            capacity_key=lambda k: (1, 0, k[2]) if k[0] == 0 and k[1] == L else k,
            track_paths=track_paths,
            observer=observer,
        )

    # ------------------------------------------------------------------
    def _next_hop(self, p: Packet):
        pass_idx, col, row = p.node
        L = self.net.num_levels
        if col == L:
            if pass_idx == 1:
                return None if row == p.dest else self._fail(p)
            # wrap into the second pass (columns identified)
            pass_idx, col = 1, 0
            p.node = (1, 0, row)
        if pass_idx == 0:
            if self.intermediate == "coin":
                options = self.net.out_neighbors(col, row)
                if p.state is not None:
                    nxt = options[p.state[col]]  # pre-drawn coin
                else:
                    nxt = options[int(self.rng.integers(len(options)))]
            else:
                nxt = self.net.unique_next(col, row, p.state)
        else:
            nxt = self.net.unique_next(col, row, p.dest)
        return (pass_idx, col + 1, nxt)

    @staticmethod
    def _fail(p: Packet):
        raise RuntimeError(
            f"packet {p.pid} finished pass 2 at row {p.node[2]} != dest {p.dest}"
        )

    # ------------------------------------------------------------------
    def route_packets(
        self, packets: list[Packet], *, max_steps: int | None = None
    ) -> RoutingStats:
        """Route prebuilt packets (node keys ``(0, 0, row)``; int dests).

        Used directly by the emulation layer, which needs to attach
        addresses/payloads/kinds to the packets it routes.
        """
        L = self.net.num_levels
        if max_steps is None:
            max_steps = 40 * L + 100
        coins = None
        if self.intermediate == "node":
            inters = self.rng.integers(self.net.column_size, size=len(packets))
            for p, r in zip(packets, inters):
                p.state = int(r)
        elif self.net.uniform_out_degree and packets:
            # One batched draw replaces a scalar rng.integers per packet
            # per level; elementwise the stream is identical, and both
            # engines read the same matrix.
            coins = self.rng.integers(self.net.degree, size=(len(packets), L))
            for p, row in zip(packets, coins.tolist()):
                p.state = row
        mode = resolve_engine_mode(self.engine_mode)
        self.last_fast_paths = None
        if mode == "fast" and (self.intermediate == "node" or coins is not None):
            return self._run_fast(packets, coins, max_steps)
        return self.engine.run(
            packets,
            self._next_hop,
            max_steps=max_steps,
            link_faults=self._ref_fault_view,
            fault_base=self.fault_base,
        )

    def _run_fast(
        self, packets: list[Packet], coins, max_steps: int
    ) -> RoutingStats:
        """Compile trajectories and replay them on the fast engine."""
        compiled = compile_leveled(self.net)
        sources = []
        for p in packets:
            pass_idx, col, row = p.node
            if pass_idx != 0 or col != 0:
                raise ValueError(
                    f"packet {p.pid} must start in column 0, not {p.node}"
                )
            sources.append(row)
        dests = [p.dest for p in packets]
        if self.intermediate == "node":
            paths = compiled.build_paths(
                sources, dests, inters=[p.state for p in packets]
            )
        else:
            paths = compiled.build_paths(sources, dests, coins=coins)
        self.last_fast_paths = paths
        fast = FastPathEngine(
            combine=self.combine,
            track_paths=self.track_paths,
            node_capacity=self.node_capacity,
            flow_control=self.flow_control,
            observer=self.observer,
        )
        # Arithmetic link ids skip the engine's np.unique interning pass
        # (and carry link_dst for the constrained batch mode's credit
        # accounting); they need the out-neighbor tables, so non-uniform
        # out-degree networks fall back to interning.
        links = None
        if self.net.uniform_out_degree:
            link_src, link_dst = compiled.link_arrays()
            links = (compiled.link_matrix(paths), link_src, link_dst)
        return fast.run(
            packets,
            paths,
            num_nodes=compiled.num_node_ids,
            max_steps=max_steps,
            links=links,
            node_key=compiled.node_key,
            trace_key=compiled.trace_key,
            link_faults=self._fast_fault_view,
            fault_base=self.fault_base,
        )

    def route(
        self,
        sources: Sequence[int],
        dests: Sequence[int],
        *,
        max_steps: int | None = None,
        addresses: Sequence[int] | None = None,
    ) -> RoutingStats:
        """Route packets from column-0 *sources* to last-column *dests*.

        ``max_steps`` defaults to a generous multiple of the 2L lower
        bound; Theorem 2.1 says Õ(L) suffices w.h.p.
        """
        packets = make_packets(
            [(0, 0, int(s)) for s in sources],
            [int(d) for d in dests],
            addresses=None if addresses is None else list(addresses),
        )
        return self.route_packets(packets, max_steps=max_steps)

    def route_permutation(
        self, perm: Sequence[int] | np.ndarray, *, max_steps: int | None = None
    ) -> RoutingStats:
        """Permutation routing: packet i goes from row i to row perm[i]."""
        perm = np.asarray(perm)
        n = self.net.column_size
        if perm.shape != (n,) or sorted(perm.tolist()) != list(range(n)):
            raise ValueError("perm must be a permutation of the column rows")
        return self.route(np.arange(n), perm, max_steps=max_steps)

    def route_random_permutation(self, *, max_steps: int | None = None) -> RoutingStats:
        return self.route_permutation(
            self.rng.permutation(self.net.column_size), max_steps=max_steps
        )

    def route_h_relation(
        self,
        sources: Sequence[int],
        dests: Sequence[int],
        *,
        max_steps: int | None = None,
    ) -> RoutingStats:
        """Partial h-relation routing (Theorem 2.4): sources may repeat up
        to h times and so may destinations."""
        return self.route(sources, dests, max_steps=max_steps)

    # ------------------------------------------------------------------
    def route_with_restarts(
        self,
        sources: Sequence[int],
        dests: Sequence[int],
        *,
        allotment: int | None = None,
        max_rounds: int = 10,
    ) -> tuple[RoutingStats, int]:
        """Lemma 2.1's amplification: repeat the algorithm on stragglers.

        Each round runs Algorithm 2.1 for *allotment* steps; packets that
        miss the deadline "trace back their paths and reach their sources
        in c₁f(N) steps or less and ... repeat algorithm X".  Repeating a
        constant number of times drives the failure probability from
        N^{-α} to N^{-cα}.

        Returns ``(aggregate_stats, rounds_used)``; the aggregate's
        ``steps`` charges, per round, the allotment plus the trace-back
        time (the maximum progress any straggler must unwind), and the
        final round's actual completion time.
        """
        L = self.net.num_levels
        if allotment is None:
            allotment = 3 * 2 * L  # deliberately tight: restarts do occur
        if allotment < 1 or max_rounds < 1:
            raise ValueError("allotment and max_rounds must be positive")

        pending = list(zip(map(int, sources), map(int, dests)))
        total_time = 0
        max_queue = 0
        delays: list[int] = []
        hops: list[int] = []
        delivered = 0
        for round_idx in range(1, max_rounds + 1):
            packets = make_packets([(0, 0, s) for s, _ in pending], [d for _, d in pending])
            stats = self.route_packets(packets, max_steps=allotment)
            max_queue = max(max_queue, stats.max_queue)
            done = [p for p in packets if p.delivered]
            failed = [p for p in packets if not p.delivered]
            delivered += len(done)
            delays.extend(p.delay for p in done)
            hops.extend(p.hops for p in done)
            if not failed:
                total_time += stats.steps
                return (
                    RoutingStats(
                        steps=total_time,
                        delivered=delivered,
                        total_packets=delivered,
                        max_queue=max_queue,
                        completed=True,
                        delays=delays,
                        hops=hops,
                        # The aggregate spans rounds that all ran the
                        # same engine; stamp the final round's mode.
                        run_mode=stats.run_mode,
                    ),
                    round_idx,
                )
            # stragglers unwind their partial paths back to their sources
            traceback = max(p.hops for p in failed)
            total_time += allotment + traceback
            pending = [(p.source[2], p.dest) for p in failed]
        raise RuntimeError(
            f"{len(pending)} packets undelivered after {max_rounds} rounds; "
            "increase the allotment (Lemma 2.1 needs c1 f(N) per trial)"
        )
