"""Compiled fast path of the synchronous routing engine.

:class:`FastPathEngine` replays the exact queue dynamics of
:class:`repro.routing.engine.SynchronousEngine` — same one-packet-per-link
steps, link queues, enqueue-time combining, injection times, timeouts,
node-capacity backpressure, per-node service rates, and insertion-ordered
transmission — but over **precompiled integer trajectories** instead of
hashable node keys and a per-hop ``next_hop`` callback:

* each packet i carries ``paths[i]``: the full list of integer node ids
  it will visit (produced by, e.g.,
  :meth:`repro.topology.compiled.CompiledLeveledTopology.build_paths` or
  :meth:`repro.topology.compiled.CompiledMesh2D.three_stage`);
  variable-length trajectories may be passed as one padded rectangular
  matrix plus ``path_lengths`` (the pad repeats the destination), which
  keeps the link interning a single vectorized ``np.unique``;
* every directed link a packet will ever cross is interned up front to a
  dense link index, and each packet's remaining itinerary becomes one C
  iterator over those indices — the hot loop never hashes a node pair or
  re-indexes a path row;
* link FIFO queues are intrusive: head/tail/next arrays of packet
  *indices* (a packet waits in at most one queue), so pushes and pops
  are pure list arithmetic with no container allocation; CRCW combining
  is O(1) per arrival via a per-link dict from combine key to the
  resident host's index (mirroring the LinkQueue side index);
* furthest-destination-first arbitration (the §3.4 mesh discipline) is
  array-based: when per-hop ``priorities`` are supplied, each link keeps
  a heap of packed integers ``(bias - priority, push counter, packet)``
  — the priority-and-index part of every key is precomputed as one
  vectorized matrix, so a push is one OR and one shift, with the exact
  order of the reference ``FurthestFirstQueue`` (largest priority first,
  FIFO among ties);
* per-node load and per-link activity live in flat lists, and the
  capacity/service-rate arbitration reserves arrival slots during the
  transmission phase exactly like the reference engine.

The engine picks one of three execution modes per run (recorded in
``last_run_mode`` for tests and diagnostics):

* ``"batch"`` — the fully vectorized unconstrained mode: whole
  transmission and arrival phases as numpy array operations;
* ``"batch-constrained"`` — the vectorized *constrained* mode for
  ``node_capacity`` runs (``flow_control="none"`` or ``"credit"``):
  per-node credit counters are updated with segment reductions
  (``np.add.at``), escape-buffer occupancy lives in a parallel table
  keyed by compiled link id, and each step's transmission phase splits
  the active links into a provably-unconstrained majority (resolved
  vectorized) and a small contended residue replayed in exact
  reference order — see :meth:`FastPathEngine._run_batch`;
* ``"event"`` — the per-event compiled loop, kept for dynamic
  injection (``on_arrival``), ``node_service_rate``, and ragged
  (non-rectangular) trajectory lists.

Because routers pre-draw all randomness (coin matrices, intermediate
nodes/rows) *before* choosing an engine, the fast and reference engines
consume identical random bits and produce identical
:class:`~repro.routing.metrics.RoutingStats` under a fixed seed; the
differential tests in ``tests/test_fast_engine.py`` assert this
field-for-field on star, shuffle, butterfly, mesh, linear-array, and
hypercube networks.

Engine selection: routers take ``engine="auto" | "fast" | "reference"``;
``"auto"`` resolves through :func:`resolve_engine_mode`, which honours
the ``REPRO_ENGINE`` environment variable and otherwise picks the fast
path.
"""

from __future__ import annotations

import os
from collections import defaultdict
from heapq import heappop, heappush
from typing import Callable, Sequence

import numpy as np

from repro.obs.clock import wall_time
from repro.routing.engine import RoutingTimeout
from repro.routing.flow_control import (
    CreditState,
    DeadlockError,
    no_progress_detail,
    resolve_flow_control,
)
from repro.routing.metrics import RoutingStats, collect_stats
from repro.routing.packet import Packet

ENGINE_MODES = ("auto", "fast", "reference")

#: environment override consulted by ``engine="auto"`` routers
ENGINE_ENV_VAR = "REPRO_ENGINE"


def resolve_engine_mode(mode: str) -> str:
    """Collapse an engine request to ``"fast"`` or ``"reference"``.

    Explicit ``"fast"`` / ``"reference"`` win; ``"auto"`` defers to the
    ``REPRO_ENGINE`` environment variable and finally defaults to the
    fast path.  A set-but-unrecognized ``REPRO_ENGINE`` raises rather
    than silently running an engine the user didn't ask for.
    """
    if mode not in ENGINE_MODES:
        raise ValueError(f"unknown engine mode {mode!r}; pick one of {ENGINE_MODES}")
    if mode != "auto":
        return mode
    env = os.environ.get(ENGINE_ENV_VAR, "").strip().lower()
    if not env:
        return "fast"
    if env in ("fast", "reference"):
        return env
    raise ValueError(
        f"unrecognized {ENGINE_ENV_VAR}={env!r}; use 'fast' or 'reference'"
    )


class FastPathEngine:
    """Synchronous router over precompiled integer paths.

    Parameters mirror the reference engine: ``node_capacity`` enables the
    backpressure model (arrival slots reserved during the transmission
    phase, delivered-at-target heads exempt) and ``node_service_rate``
    caps departures per node per step, with capacity-stalled links never
    consuming a service slot — both bit-for-bit the semantics of
    :class:`~repro.routing.engine.SynchronousEngine`.
    ``flow_control="credit"`` adds the deadlock-free credit/escape
    protocol of :mod:`repro.routing.flow_control` to the per-event loop
    (escape buffers are keyed by interned link index — 1:1 with the
    reference engine's ``(u, w)`` link keys), and a no-progress step
    with queued packets raises
    :class:`~repro.routing.flow_control.DeadlockError` in both engines.

    The capacity exemption compares a head's *final node id* against the
    link's target, which equals the reference engine's ``head.dest ==
    link target`` check on every flat integer topology (mesh, linear
    array, hypercube, shuffle, star).  Leveled routes compare
    position-encoded ids, which bakes in the reference engine's
    ``exit_dest`` / ``capacity_key`` reconciliation: the wrap aliases
    ``(0, L, r)`` and ``(1, 0, r)`` share one id, so capacity is
    accounted per physical node exactly as the tuple-keyed engine does.

    Attributes
    ----------
    last_run_mode:
        After each :meth:`run`: ``"batch"`` (vectorized, unconstrained),
        ``"batch-constrained"`` (vectorized with ``node_capacity`` /
        credits), or ``"event"`` (per-event compiled loop).  Tests use
        this to assert that a configuration takes the intended path.
    """

    def __init__(
        self,
        *,
        combine: bool = False,
        track_paths: bool = False,
        node_capacity: int | None = None,
        node_service_rate: int | None = None,
        flow_control: str = "none",
        observer=None,
    ) -> None:
        self.combine = combine
        self.track_paths = track_paths
        self.node_capacity = node_capacity
        self.node_service_rate = node_service_rate
        self.flow_control = resolve_flow_control(
            flow_control,
            node_capacity=node_capacity,
            node_service_rate=node_service_rate,
        )
        #: optional repro.obs.Observer — profile buckets per dispatch
        #: mode / phase, flight-recorder step events, DeadlockError
        #: tails.  Wall-clock values are recorded, never branched on,
        #: so results stay bit-identical with and without an observer.
        self.observer = observer
        #: execution mode of the most recent run() — see class docstring
        self.last_run_mode: str | None = None

    def run(
        self,
        packets: Sequence[Packet],
        paths,
        *,
        num_nodes: int,
        max_steps: int,
        path_lengths: Sequence[int] | None = None,
        priorities=None,
        links: tuple[np.ndarray, np.ndarray] | None = None,
        spawn_plan: "list[tuple[int, int, list[int]]] | None" = None,
        raise_on_timeout: bool = False,
        on_arrival: Callable | None = None,
        hook_filter: Callable[[Packet], bool] | None = None,
        node_key: Callable[[int, int], object] | None = None,
        trace_key: Callable[[int, int], object] | None = None,
        link_faults=None,
        fault_base: int = 0,
    ) -> RoutingStats:
        """Route *packets* along *paths* until delivery or *max_steps*.

        ``paths[i]`` is packet i's node-id itinerary including its start;
        the packet is delivered on reaching entry ``path_lengths[i]``
        (default: the last entry).  A 2-D ``np.ndarray`` of paths padded
        past each packet's end (repeating the destination) is accepted —
        with ``path_lengths`` the pad is never traversed.  ``num_nodes``
        bounds the id space (used to intern links and size load tables).
        ``priorities[i][k]`` — when given — is packet i's integer queue
        priority at its k-th link crossing (largest first, FIFO ties):
        the furthest-destination-first discipline with priorities
        evaluated at push time, exactly like the reference
        ``FurthestFirstQueue``.  ``on_arrival(index, packet, key, t)``
        mirrors the reference engine's hook: called at every node a
        packet reaches (``key`` is the decoded position key) and may
        return ``[(packet, path), ...]`` to inject there immediately.
        ``hook_filter(packet)``, evaluated once when a packet is
        registered, exempts packets for which the hook could never act
        (it must be a pure function of the packet — a False means
        on_arrival is skipped for every node that packet reaches).
        ``node_key`` / ``trace_key`` decode ``(position, node_id)`` into
        the hashable keys written back to ``packet.node`` /
        ``packet.trace`` (identity when omitted).  ``links`` — a
        precompiled ``(link_id_matrix, link_src)`` pair or
        ``(link_id_matrix, link_src, link_dst)`` triple aligned with a
        rectangular *paths* matrix (e.g. the arithmetic mesh encoding of
        :meth:`repro.topology.compiled.CompiledMesh2D.link_matrix` or
        the leveled encoding of
        :meth:`repro.topology.compiled.CompiledLeveledTopology.link_matrix`)
        — lets the vectorized batch modes skip their np.unique interning
        pass (the constrained mode derives ``link_dst`` from the path
        matrix when only the pair is given); the per-event mode ignores
        it.

        ``link_faults`` is an optional
        :class:`~repro.faults.runtime.LinkFaultView` whose keys are
        ``(u, w)`` integer node-id pairs: a blocked link holds its
        queue (and any escape occupant crossing it) this step, counted
        in ``fault_stalls``; states are sampled at the global step
        ``fault_base + t`` — semantics identical to the reference
        engine's, so differential tests stay bit-exact.

        ``spawn_plan`` is the static alternative to ``on_arrival`` for
        reply fan-out: entries ``(parent, position, children)`` mean that
        when packet *parent* reaches path position *position*, the listed
        packet indices activate there (they are passed in *packets* /
        *paths* up front but stay dormant until triggered; packets never
        triggered are excluded from the run's stats, exactly as if they
        were never created).  Requires the vectorized batch mode and is
        mutually exclusive with ``on_arrival``.
        """
        combine = self.combine
        capacity = self.node_capacity
        service_rate = self.node_service_rate
        _obs = self.observer
        _prof = _obs.profile if _obs is not None else None
        _rec = _obs.recorder if _obs is not None else None
        _t_run0 = wall_time() if _prof is not None else 0.0
        fc = CreditState() if self.flow_control == "credit" else None
        # Packet index -> escape link claimed at transmit time; place()
        # turns the claim into an occupancy (or drops it on delivery).
        pending_escape: dict[int, int] = {}
        use_heap = priorities is not None
        if use_heap and on_arrival is not None:
            raise ValueError(
                "on_arrival injection is not supported with priority queues"
            )

        all_packets: list[Packet] = list(packets)
        rectangular = False
        path_arr: np.ndarray | None = None
        if isinstance(paths, np.ndarray):
            if paths.ndim != 2:
                raise ValueError("ndarray paths must be 2-D (packets x positions)")
            path_arr = paths
            path_list: list[list[int]] = []
            rectangular = paths.shape[1] > 0
            n = paths.shape[0]
        else:
            path_list = [list(p) for p in paths]
            widths = {len(p) for p in path_list}
            rectangular = len(widths) == 1 and widths != {0}
            n = len(path_list)
        if len(all_packets) != n:
            raise ValueError("one path per packet required")
        if path_lengths is None:
            if path_arr is not None:
                last = [path_arr.shape[1] - 1] * n
            else:
                last = [len(p) - 1 for p in path_list]
        else:
            last = [int(x) for x in path_lengths]
            if len(last) != n:
                raise ValueError("one path length per packet required")
            width_of = (
                (lambda i: path_arr.shape[1])
                if path_arr is not None
                else (lambda i: len(path_list[i]))
            )
            for i, k in enumerate(last):
                if not 0 <= k < width_of(i):
                    raise ValueError(
                        f"path_lengths[{i}]={k} outside its {width_of(i)}"
                        "-node path"
                    )

        # ---- fully vectorized batch modes -------------------------------
        # The hook-free rectangular case (permutation / many-one /
        # CRCW-combining routing on any compiled topology, under FIFO or
        # furthest-first arbitration) steps whole transmission and
        # arrival phases as numpy array operations; per-link priority
        # heaps become class-indexed FIFO chains and combining becomes
        # gathers over interned (link, combine-group) codes, so both
        # vectorize too.  ``node_capacity`` runs (flow_control "none" or
        # "credit") take the vectorized *constrained* variant of the same
        # loop (batch credit accounting).  Everything else — dynamic
        # injection, service rates, ragged paths — falls through to the
        # per-event loop below.
        if spawn_plan is not None and capacity is not None:
            raise ValueError("spawn_plan is not supported with node_capacity")
        if (
            rectangular
            and n
            and on_arrival is None
            and service_rate is None
        ):
            if path_arr is None:
                path_arr = np.asarray(path_list, dtype=np.int64)
            try:
                return self._run_batch(
                    all_packets,
                    path_arr,
                    np.asarray(last, dtype=np.int64),
                    priorities,
                    links=links,
                    spawn_plan=spawn_plan,
                    num_nodes=num_nodes,
                    max_steps=max_steps,
                    raise_on_timeout=raise_on_timeout,
                    node_key=node_key,
                    trace_key=trace_key,
                    link_faults=link_faults,
                    fault_base=fault_base,
                )
            finally:
                if _prof is not None:
                    _prof.add_mode(
                        self.last_run_mode or "batch", wall_time() - _t_run0
                    )
        if spawn_plan is not None:
            raise ValueError(
                "spawn_plan requires the vectorized batch mode (rectangular "
                "paths, no on_arrival/capacity/service-rate)"
            )
        self.last_run_mode = "event"
        if path_arr is not None:
            path_list = path_arr.tolist()
        pos = [0] * n
        arrived: list[int | None] = [None] * n
        combined_flag = [False] * n
        children: list[list[int] | None] = [None] * n
        ckeys: list[tuple | None] = (
            [p.combine_key for p in all_packets] if combine else []
        )
        hooked: list[bool] = []
        if on_arrival is not None:
            hooked = (
                [True] * n
                if hook_filter is None
                else [bool(hook_filter(p)) for p in all_packets]
            )
        node_load = [0] * num_nodes
        # Final node id per packet, for the backpressure exit exemption.
        dest_id: list[int] = (
            [path_list[i][last[i]] for i in range(n)] if capacity is not None else []
        )

        # ---- intern every link each path crosses to a dense index ------
        link_of: dict[int, int] = {}
        link_src: list[int] = []
        link_dst: list[int] = []
        link_rows: list[list[int]] = []
        if rectangular and n:
            # Rectangular trajectory matrix: one np.unique interns all
            # links at C speed (the common case for compiled routes).
            # Padded rows contribute dest->dest self-loop codes; those
            # links exist but are never enqueued (a packet stops at
            # position ``last``), so they cost a few idle table slots.
            arr = (
                paths
                if isinstance(paths, np.ndarray)
                else np.asarray(path_list, dtype=np.int64)
            )
            if arr.shape[1] > 1:
                codes = arr[:, :-1] * num_nodes + arr[:, 1:]
                uniq, inverse = np.unique(codes, return_inverse=True)
                link_src = (uniq // num_nodes).tolist()
                link_dst = (uniq % num_nodes).tolist()
                link_rows = inverse.reshape(codes.shape).tolist()
                if on_arrival is not None or link_faults is not None:
                    # Spawned packets intern their links dynamically and
                    # must share the dense id space; fault views resolve
                    # their (u, w) pairs through the same code table.
                    link_of = dict(zip(uniq.tolist(), range(uniq.size)))
            else:
                link_rows = [[] for _ in range(n)]
        else:
            for path in path_list:
                link_rows.append(
                    self._intern_path(path, link_of, link_src, link_dst, num_nodes)
                )

        # ---- priority packing ------------------------------------------
        # Heap entries are packed ints ``(bias - prio, counter, index)``
        # with each field just wide enough for this run; the counter is
        # globally increasing, so ties within one link's heap break FIFO
        # — the same order as the reference FurthestFirstQueue's
        # per-queue counter.  The (priority | index) part of every key is
        # precomputed per link crossing, so a push ORs in the counter and
        # nothing else.
        prio_bias = idx_mask = shift_counter = shift_prio = 0
        kb_rows: list[list[int]] = []
        if use_heap:
            prio_arr = (
                priorities
                if isinstance(priorities, np.ndarray)
                else np.asarray([list(p) for p in priorities], dtype=np.int64)
            )
            if prio_arr.shape[0] != n:
                raise ValueError("one priority row per packet required")
            pmax = int(prio_arr.max()) if prio_arr.size else 0
            idx_bits = max(1, n.bit_length())
            counter_bits = max(1, (sum(last) + 1).bit_length())
            prio_bits = max(1, pmax.bit_length() + 1)
            prio_bias = 1 << prio_bits
            idx_mask = (1 << idx_bits) - 1
            shift_counter = idx_bits
            shift_prio = idx_bits + counter_bits
            if shift_prio + prio_bits + 1 <= 62 and prio_arr.size:
                kb = (prio_bias - prio_arr.astype(np.int64)) << shift_prio
                kb |= np.arange(n, dtype=np.int64)[:, None]
                kb_rows = kb.tolist()
            else:  # fields too wide for int64: pack in Python big ints
                kb_rows = [
                    [((prio_bias - p) << shift_prio) | i for p in row]
                    for i, row in enumerate(prio_arr.tolist())
                ]

        # Each packet's remaining itinerary as one C-level iterator:
        # exhaustion is delivery, so the hot loop does no bounds checks
        # or row indexing.  Heap mode keeps a parallel iterator of
        # precomputed key bases (two allocation-free next() calls beat a
        # zip tuple per hop).
        iters = [iter(link_rows[i][: last[i]]) for i in range(n)]
        kb_iters = (
            [iter(kb_rows[i][: last[i]]) for i in range(n)] if use_heap else []
        )

        # Each link's FIFO queue is threaded through the packets
        # themselves (a packet waits in at most one queue): q_head/q_tail
        # hold packet indices, q_next links them.  No per-link containers
        # to allocate, pushes and pops are pure list-index arithmetic.
        # Priority mode replaces the threading with per-link heaps of
        # packed integer keys.  A link is in ``active`` iff its queue is
        # nonempty (the rebuild after each transmission phase filters on
        # q_len, preserving the reference engine's activation order).
        n_links = len(link_src)
        q_head = [-1] * n_links
        q_tail = [-1] * n_links
        q_len = [0] * n_links
        q_next = [-1] * n
        q_heap: list[list[int]] = [[] for _ in range(n_links)] if use_heap else []
        push_counter = 0
        cindex: list[dict | None] = [None] * n_links
        active: list[int] = []

        max_queue = 0
        max_node_load = 0
        combines = 0
        remaining = n

        injections: dict[int, list[int]] = defaultdict(list)
        for i, p in enumerate(all_packets):
            injections[p.injected_at].append(i)
        pending_times = sorted(injections, reverse=True)

        def deliver(i: int, t: int) -> None:
            nonlocal remaining
            stack = [i]
            while stack:
                j = stack.pop()
                if arrived[j] is None:
                    arrived[j] = t
                    remaining -= 1
                ch = children[j]
                if ch:
                    stack.extend(ch)

        def place(i: int, t: int) -> None:
            nonlocal remaining, max_queue, max_node_load, combines, push_counter
            if on_arrival is not None and hooked[i]:
                k = pos[i]
                here = path_list[i][k]
                key = trace_key(k, here) if trace_key is not None else here
                spawned = on_arrival(i, all_packets[i], key, t)
                if spawned:
                    for q_pkt, q_path in spawned:
                        q_path = list(q_path)
                        if q_path[0] != here:
                            raise ValueError(
                                f"spawned packet {q_pkt.pid} starts at "
                                f"{q_path[0]}, expected {here}"
                            )
                        q_pkt.injected_at = t
                        all_packets.append(q_pkt)
                        path_list.append(q_path)
                        row = self._intern_path(
                            q_path, link_of, link_src, link_dst, num_nodes
                        )
                        link_rows.append(row)
                        iters.append(iter(row))
                        while len(q_head) < len(link_src):
                            q_head.append(-1)
                            q_tail.append(-1)
                            q_len.append(0)
                            cindex.append(None)
                        q_next.append(-1)
                        pos.append(0)
                        last.append(len(q_path) - 1)
                        if capacity is not None:
                            dest_id.append(q_path[-1])
                        arrived.append(None)
                        combined_flag.append(False)
                        children.append(None)
                        if combine:
                            ckeys.append(q_pkt.combine_key)
                        hooked.append(
                            True if hook_filter is None else bool(hook_filter(q_pkt))
                        )
                        remaining += 1
                        place(len(all_packets) - 1, t)
            li = next(iters[i], None)
            if li is None:
                if fc is not None:
                    pending_escape.pop(i, None)
                deliver(i, t)
                return
            if use_heap:
                # Consumed even on an escape landing: the kb iterator
                # must stay aligned with the link iterator (an escape
                # crossing simply never enters a heap).
                kb = next(kb_iters[i])
            if fc is not None:
                el = pending_escape.pop(i, None)
                if el is not None:
                    # The packet crossed link `el` into its escape
                    # buffer; it advances from there (skipping bulk
                    # queues and combining) until a credit frees up.
                    fc.occupy(el, i, li)
                    return
            if combine:
                key = ckeys[i]
                if key is not None:
                    index = cindex[li]
                    if index is None:
                        index = cindex[li] = {}
                    host = index.get(key)
                    if host is not None:
                        ch = children[host]
                        if ch is None:
                            ch = children[host] = []
                        ch.append(i)
                        combined_flag[i] = True
                        combines += 1
                        return
                    index[key] = i
            if use_heap:
                heappush(q_heap[li], kb | (push_counter << shift_counter))
                push_counter += 1
            else:
                tail = q_tail[li]
                if tail < 0:
                    q_head[li] = i
                else:
                    q_next[tail] = i
                q_tail[li] = i
                q_next[i] = -1
            length = q_len[li] + 1
            q_len[li] = length
            if length == 1:
                active.append(li)
            u = link_src[li]
            load = node_load[u] + 1
            node_load[u] = load
            if length > max_queue:
                max_queue = length
            if load > max_node_load:
                max_node_load = load

        t = 0
        deadlocked = False
        fault_stalls = 0
        f_blocked_li: set[int] | None = None
        if link_faults is not None:
            # Fault pairs resolve through link_of (code -> dense index);
            # the static part is cached per timeline segment.
            f_last_static: frozenset | None = None
            f_static_li: set[int] = set()
            f_n_links = len(link_src)
        simple = capacity is None and service_rate is None
        if not simple:
            # Constrained transmission state and helpers, hoisted out of
            # the step loop (they'd otherwise be rebuilt every step):
            # mirror the reference engine's reserve-as-you-transmit
            # capacity discipline and service-rate slot filling
            # (stalled links keep their slots for ready siblings).
            arrivals: list[int] = []
            arrivals_append = arrivals.append
            reserved: dict[int, int] = {}
            used: set[int] = set()

            def stalled(li: int) -> bool:
                w = link_dst[li]
                if node_load[w] + reserved.get(w, 0) < capacity:
                    return False
                head = (q_heap[li][0] & idx_mask) if use_heap else q_head[li]
                return dest_id[head] != w

            def transmit(li: int, reserve: bool = True) -> int:
                # reserve=False is the escape landing: the packet
                # crosses into the link's dedicated escape buffer, so
                # it claims no bulk slot at the target.
                if use_heap:
                    i = heappop(q_heap[li]) & idx_mask
                else:
                    i = q_head[li]
                    q_head[li] = q_next[i]
                    if q_len[li] == 1:
                        q_tail[li] = -1
                q_len[li] -= 1
                if combine:
                    key = ckeys[i]
                    if key is not None:
                        index = cindex[li]
                        if index.get(key) == i:
                            del index[key]
                if reserve and capacity is not None:
                    w = link_dst[li]
                    if dest_id[i] != w:
                        reserved[w] = reserved.get(w, 0) + 1
                node_load[link_src[li]] -= 1
                pos[i] += 1
                arrivals_append(i)
                return i

        while remaining > 0:
            while pending_times and pending_times[-1] <= t:
                for i in injections[pending_times.pop()]:
                    place(i, t)
            if remaining == 0:
                break
            if t >= max_steps:
                break
            if (
                not active
                and not pending_times
                and (fc is None or not fc.escape_at)
            ):
                raise RuntimeError(
                    f"{remaining} packets undeliverable: network drained at t={t}"
                )

            fault_blocked_step = False
            if link_faults is not None:
                fstatic, fextra = link_faults.parts_at(fault_base + t)
                if fstatic is not f_last_static or len(link_src) != f_n_links:
                    f_static_li = set()
                    for u, w in sorted(fstatic):
                        li = link_of.get(u * num_nodes + w)
                        if li is not None:
                            f_static_li.add(li)
                    f_last_static = fstatic
                    f_n_links = len(link_src)
                if fextra:
                    f_blocked_li = set(f_static_li)
                    for u, w in fextra:
                        li = link_of.get(u * num_nodes + w)
                        if li is not None:
                            f_blocked_li.add(li)
                else:
                    f_blocked_li = f_static_li or None
            if simple:
                arrivals = []
                arrivals_append = arrivals.append
            else:
                arrivals.clear()
                reserved.clear()
                used.clear()
            _tx0 = wall_time() if _prof is not None else 0.0
            _esc_dt = 0.0
            if simple and not use_heap:
                for li in active:
                    if f_blocked_li is not None and li in f_blocked_li:
                        fault_stalls += 1
                        fault_blocked_step = True
                        continue
                    i = q_head[li]
                    q_head[li] = q_next[i]
                    q_len[li] -= 1
                    if combine:
                        key = ckeys[i]
                        if key is not None:
                            index = cindex[li]
                            if index.get(key) == i:
                                del index[key]
                    node_load[link_src[li]] -= 1
                    pos[i] += 1
                    arrivals_append(i)
                    if q_len[li] == 0:
                        q_tail[li] = -1
            elif simple:
                for li in active:
                    if f_blocked_li is not None and li in f_blocked_li:
                        fault_stalls += 1
                        fault_blocked_step = True
                        continue
                    i = heappop(q_heap[li]) & idx_mask
                    q_len[li] -= 1
                    if combine:
                        key = ckeys[i]
                        if key is not None:
                            index = cindex[li]
                            if index.get(key) == i:
                                del index[key]
                    node_load[link_src[li]] -= 1
                    pos[i] += 1
                    arrivals_append(i)
            else:
                if fc is not None:
                    # Escape subphase: occupants advance first (absolute
                    # priority on their next link), in occupancy order;
                    # `used` then blocks the bulk heads of those links.
                    # Mirrors the reference engine statement for
                    # statement — same orders, same counters.
                    _esc0 = wall_time() if _prof is not None else 0.0
                    for el in list(fc.escape_at):
                        i = fc.escape_at[el]
                        nl = fc.escape_next[el]
                        if f_blocked_li is not None and nl in f_blocked_li:
                            fault_stalls += 1
                            fault_blocked_step = True
                            continue
                        if nl in used:
                            fc.stall()
                            continue
                        w = link_dst[nl]
                        if dest_id[i] != w:
                            if node_load[w] + reserved.get(w, 0) < capacity:
                                reserved[w] = reserved.get(w, 0) + 1
                            elif fc.available(nl):
                                fc.claim(nl)
                                pending_escape[i] = nl
                            else:
                                fc.stall()
                                continue
                        used.add(nl)
                        fc.vacate(el)
                        pos[i] += 1
                        arrivals_append(i)
                    if _prof is not None:
                        _esc_dt = wall_time() - _esc0
                        _prof.add_phase("escape", _esc_dt)
                    # Bulk subphase: credit-starved heads take the
                    # escape buffer of the link they cross.
                    for li in active:
                        if f_blocked_li is not None and li in f_blocked_li:
                            fault_stalls += 1
                            fault_blocked_step = True
                            continue
                        if li in used:
                            fc.stall()
                            continue
                        if not stalled(li):
                            transmit(li)
                        elif fc.available(li):
                            fc.claim(li)
                            pending_escape[transmit(li, reserve=False)] = li
                        else:
                            fc.stall()
                elif service_rate is None:
                    for li in active:
                        if f_blocked_li is not None and li in f_blocked_li:
                            fault_stalls += 1
                            fault_blocked_step = True
                            continue
                        if stalled(li):
                            continue  # backpressure: hold the link this step
                        transmit(li)
                else:
                    by_node: dict[int, list[int]] = {}
                    for li in active:
                        by_node.setdefault(link_src[li], []).append(li)
                    for _u, links in by_node.items():
                        # Stable sort + activation-ordered `active`: ties
                        # go to the link that became active first.
                        links.sort(key=lambda l: -q_len[l])
                        slots = service_rate
                        for li in links:
                            if slots == 0:
                                break
                            if f_blocked_li is not None and li in f_blocked_li:
                                fault_stalls += 1
                                fault_blocked_step = True
                                continue
                            if capacity is not None and stalled(li):
                                continue  # stalled links don't burn slots
                            transmit(li)
                            slots -= 1
            active = [li for li in active if q_len[li]]
            if _prof is not None:
                _prof.add_phase("transmission", wall_time() - _tx0 - _esc_dt)
            if _rec is not None:
                _rec.record(
                    "engine_step",
                    virtual_clock=t,
                    arrivals=len(arrivals),
                    active_links=len(active),
                    remaining=remaining,
                    fault_stalls=fault_stalls,
                )

            if not arrivals and not pending_times and not fault_blocked_step:
                # No transmission, no future injections, and nothing held
                # back by a (possibly transient) fault: the state is
                # provably static forever.  Report instead of spinning.
                deadlocked = True
                break

            t += 1
            _a0 = wall_time() if _prof is not None else 0.0
            if on_arrival is not None or fc is not None:
                for i in arrivals:
                    place(i, t)
            elif use_heap:
                # Hot path: hook-free arrivals are placed inline, saving
                # a Python call (and the hook/spawn checks) per hop.
                for i in arrivals:
                    li = next(iters[i], None)
                    if li is None:
                        if combine:
                            deliver(i, t)
                        else:
                            arrived[i] = t
                            remaining -= 1
                        continue
                    kb = next(kb_iters[i])
                    if combine:
                        key = ckeys[i]
                        if key is not None:
                            index = cindex[li]
                            if index is None:
                                index = cindex[li] = {}
                            host = index.get(key)
                            if host is not None:
                                ch = children[host]
                                if ch is None:
                                    ch = children[host] = []
                                ch.append(i)
                                combined_flag[i] = True
                                combines += 1
                                continue
                            index[key] = i
                    heappush(q_heap[li], kb | (push_counter << shift_counter))
                    push_counter += 1
                    length = q_len[li] + 1
                    q_len[li] = length
                    if length == 1:
                        active.append(li)
                    u = link_src[li]
                    load = node_load[u] + 1
                    node_load[u] = load
                    if length > max_queue:
                        max_queue = length
                    if load > max_node_load:
                        max_node_load = load
            else:
                for i in arrivals:
                    li = next(iters[i], None)
                    if li is None:
                        if combine:
                            deliver(i, t)
                        else:
                            arrived[i] = t
                            remaining -= 1
                        continue
                    if combine:
                        key = ckeys[i]
                        if key is not None:
                            index = cindex[li]
                            if index is None:
                                index = cindex[li] = {}
                            host = index.get(key)
                            if host is not None:
                                ch = children[host]
                                if ch is None:
                                    ch = children[host] = []
                                ch.append(i)
                                combined_flag[i] = True
                                combines += 1
                                continue
                            index[key] = i
                    tail = q_tail[li]
                    if tail < 0:
                        q_head[li] = i
                    else:
                        q_next[tail] = i
                    q_tail[li] = i
                    q_next[i] = -1
                    length = q_len[li] + 1
                    q_len[li] = length
                    if length == 1:
                        active.append(li)
                    u = link_src[li]
                    load = node_load[u] + 1
                    node_load[u] = load
                    if length > max_queue:
                        max_queue = length
                    if load > max_node_load:
                        max_node_load = load
            if _prof is not None:
                _prof.add_phase("arrival", wall_time() - _a0)

        if _prof is not None:
            _prof.add_mode("event", wall_time() - _t_run0)
        completed = remaining == 0
        track = self.track_paths
        tkey = trace_key if trace_key is not None else node_key
        for i, p in enumerate(all_packets):
            k = pos[i]
            path = path_list[i]
            p.hops = k
            p.arrived_at = arrived[i]
            p.combined = combined_flag[i]
            ch = children[i]
            p.children = [all_packets[j] for j in ch] if ch else None
            p.node = node_key(k, path[k]) if node_key is not None else path[k]
            if track:
                if tkey is not None:
                    p.trace = [tkey(j, path[j]) for j in range(k + 1)]
                else:
                    p.trace = path[: k + 1]
        stats = collect_stats(
            all_packets,
            steps=t,
            max_queue=max_queue,
            completed=completed,
            combines=combines,
            max_node_load=max_node_load,
            credits_stalled=fc.credits_stalled if fc is not None else 0,
            escape_hops=fc.escape_hops if fc is not None else 0,
            fault_stalls=fault_stalls,
            run_mode="event",
        )
        if deadlocked:
            err = DeadlockError(
                stats, detail=no_progress_detail(t, remaining, len(active), fc)
            )
            if _obs is not None:
                err.flight_tail = _obs.flight_tail()
            raise err
        if not completed and raise_on_timeout:
            raise RoutingTimeout(stats)
        return stats

    def _run_batch(
        self,
        all_packets: list[Packet],
        path_arr: np.ndarray,
        last: np.ndarray,
        priorities,
        *,
        links: tuple[np.ndarray, np.ndarray] | None,
        spawn_plan: "list[tuple[int, int, list[int]]] | None" = None,
        num_nodes: int,
        max_steps: int,
        raise_on_timeout: bool,
        node_key,
        trace_key,
        link_faults=None,
        fault_base: int = 0,
    ) -> RoutingStats:
        """Vectorized replay: whole phases as array operations.

        Queue state lives in flat arrays over *virtual links* — a
        (link, priority-class) pair — each holding an intrusive FIFO
        chain of packet indices.  A link's pop takes the head of its
        highest nonempty class (largest priority first, FIFO among ties:
        exactly the reference FurthestFirstQueue order, since two equal
        priorities pop in push order).  The per-link maximum class is
        maintained lazily: pushes raise it with ``np.maximum.at``, pops
        let it go stale and the transmission phase walks it down until
        it hits a nonempty class — amortized O(1) per event, all masked
        vector ops.  FIFO discipline is the one-class special case.

        Reference-order equivalence: links transmit in activation order
        (first arrival first), packets that arrive at one link in one
        step enqueue in transmission order of their source links, and
        both orders are preserved here by stable grouping — see the
        differential tests.

        CRCW combining vectorizes through interned (link, combine-group)
        codes: a link holds at most one resident packet per combine key
        (an arrival matching a resident is absorbed instead of queued),
        so the combine index is a flat ``host_at`` array over the
        interned codes — gathers find hosts, scatters claim and release
        them, and absorption trees are kept as parent pointers plus
        subtree sizes (resolved to the reference engine's delivery
        cascade after the run).

        Constrained mode (``node_capacity``, flow_control "none" or
        "credit") keeps the same queue/arrival machinery and replaces
        only the transmission phase with *batch credit accounting*: the
        active links are classified vectorized into a **sure** majority
        — exempt heads (delivered at the link's target) and links whose
        target provably has credits for every comer this step
        (``load + reserved + incoming_nonexempt <= capacity`` means no
        processing order can starve them) — and a **contended** residue
        replayed scalar in exact reference activation order.  The only
        cross-class coupling is departures out of a contended link's
        target by sure links earlier in the order; those are resolved
        with one vectorized rank query (sorted (src, position) keys +
        ``np.searchsorted``) before the scalar walk, so the walk touches
        contended links only.  Escape-buffer occupancy lives in a
        :class:`CreditState` keyed by dense link id (each directed
        link's id *is* its escape slot), identical to the per-event
        loop, and a no-progress step raises :class:`DeadlockError`.
        """
        n, width = path_arr.shape
        capacity = self.node_capacity
        _obs = self.observer
        _prof = _obs.profile if _obs is not None else None
        _rec = _obs.recorder if _obs is not None else None
        fc = CreditState() if self.flow_control == "credit" else None
        self.last_run_mode = "batch" if capacity is None else "batch-constrained"
        link_dst: np.ndarray | None = None
        if links is not None:
            if len(links) == 3:
                link_mat, link_src, link_dst = links
                link_dst = np.asarray(link_dst, dtype=np.int64)
            else:
                link_mat, link_src = links
            link_mat = np.asarray(link_mat, dtype=np.int64)
            link_src = np.asarray(link_src, dtype=np.int64)
            if link_mat.shape != (n, max(width - 1, 0)):
                raise ValueError("links matrix must align with the path matrix")
            if (
                (capacity is not None or link_faults is not None)
                and link_dst is None
                and width > 1
            ):
                # Derive each link's target by scattering the path
                # matrix over the traversed positions (all writers of a
                # link agree by construction).  Padded positions are
                # excluded: a pad column repeats the destination, and
                # arithmetic id schemes may map that self-loop onto a
                # *real* link's id, which the scatter must not clobber.
                link_dst = np.zeros(link_src.size, dtype=np.int64)
                traversed = (
                    np.arange(width - 1, dtype=np.int64)[None, :]
                    < last[:, None]
                )
                link_dst[link_mat[traversed]] = path_arr[:, 1:][traversed]
        elif width > 1:
            codes = path_arr[:, :-1] * num_nodes + path_arr[:, 1:]
            uniq, inverse = np.unique(codes, return_inverse=True)
            link_src = (uniq // num_nodes).astype(np.int64)
            link_dst = (uniq % num_nodes).astype(np.int64)
            link_mat = inverse.reshape(codes.shape).astype(np.int64)
        else:
            link_src = np.empty(0, dtype=np.int64)
            link_dst = np.empty(0, dtype=np.int64)
            link_mat = np.empty((n, 0), dtype=np.int64)
        n_links = int(link_src.size)
        if capacity is not None and link_dst is None:
            link_dst = np.empty(0, dtype=np.int64)

        if priorities is None:
            n_classes = 1
            cls_mat = None
        else:
            prio_arr = (
                priorities
                if isinstance(priorities, np.ndarray)
                else np.asarray(priorities, dtype=np.int64)
            )
            if prio_arr.shape[0] != n:
                raise ValueError("one priority row per packet required")
            pmin = int(prio_arr.min()) if prio_arr.size else 0
            pmax = int(prio_arr.max()) if prio_arr.size else 0
            n_classes = pmax - pmin + 1
            cls_mat = (prio_arr - pmin).astype(np.int64)

        combine = self.combine
        combines = 0
        spawn_mode = bool(spawn_plan)
        if spawn_mode:
            if combine:
                raise ValueError("spawn_plan and combining are mutually exclusive")
            # Per-parent spawn schedule, sorted by trigger position; a
            # packet's next pending trigger lives in ``nsp`` so the hot
            # loop detects hits with one vector compare.
            sched: dict[int, list] = {}
            dormant = np.zeros(n, dtype=bool)
            for par, q, kids in spawn_plan:
                sched.setdefault(par, []).append((q, list(kids)))
                for c in kids:
                    dormant[c] = True
            for entries in sched.values():
                entries.sort(key=lambda e: e[0])
                for j in range(len(entries) - 1):
                    if entries[j][0] == entries[j + 1][0]:
                        raise ValueError("duplicate spawn position for one parent")
            nsp = np.full(n, -9, dtype=np.int64)
            for par, entries in sched.items():
                nsp[par] = entries[0][0]
            is_root = ~dormant
            injected_at_arr = np.fromiter(
                (p.injected_at for p in all_packets), dtype=np.int64, count=n
            )
            spawn_seq: list[int] = []
        if combine:
            # Dense combine-group ids: packets share a gid iff they share
            # a combine key; keyless packets get singleton gids.
            gid = np.empty(n, dtype=np.int64)
            key_ids: dict = {}
            next_gid = 0
            for i, p in enumerate(all_packets):
                key = p.combine_key
                if key is None:
                    gid[i] = next_gid
                    next_gid += 1
                else:
                    g = key_ids.get(key)
                    if g is None:
                        g = key_ids[key] = next_gid
                        next_gid += 1
                    gid[i] = g
            vc_codes = link_mat * np.int64(max(next_gid, 1)) + gid[:, None]
            vc_uniq, vc_inv = np.unique(vc_codes, return_inverse=True)
            vc_mat = vc_inv.reshape(vc_codes.shape)
            #: resident host per interned (link, gid) code, -1 if none
            host_at = np.full(vc_uniq.size, -1, dtype=np.int64)
            parent = np.full(n, -1, dtype=np.int64)
            subtree = np.ones(n, dtype=np.int64)
            combined_arr = np.zeros(n, dtype=bool)
            child_pairs: list[tuple[np.ndarray, np.ndarray]] = []

        # All-int64 state: values double as fancy indices, and mixed
        # dtypes make numpy recast index arrays (and buffer ufunc.at
        # operands) on every call.
        n_virtual = n_links * n_classes
        q_head = np.full(n_virtual, -1, dtype=np.int64)
        q_tail = np.full(n_virtual, -1, dtype=np.int64)
        q_next = np.full(n, -1, dtype=np.int64)
        # With one class a link's class-count IS its queue length.
        counts = np.zeros(n_virtual, dtype=np.int64) if n_classes > 1 else None
        cls_max = np.zeros(n_links, dtype=np.int64)
        q_len = np.zeros(n_links, dtype=np.int64)
        node_load = np.zeros(num_nodes, dtype=np.int64)
        pos = np.zeros(n, dtype=np.int64)
        arrived = np.full(n, -1, dtype=np.int64)

        #: links with queued packets, in activation order
        active = np.empty(0, dtype=np.int64)
        max_queue = 0
        max_node_load = 0
        fault_stalls = 0
        if link_faults is not None:
            # Fault pairs resolve to dense link ids through the interned
            # code table (built lazily on the first nonempty blocked
            # set); the boolean flag array is rebuilt only when the
            # blocked set actually changes (per timeline segment, plus
            # slow-link phase flips).  A code maps to a *list* of dense
            # ids: arithmetic link interning (mesh ``u*4+direction``,
            # leveled ``u*d+slot``) gives boundary nodes several slots
            # with the same (src, dst) endpoints, and a down wire must
            # block every slot that crosses it.
            f_code_li: dict[int, list[int]] | None = None
            f_flags = np.zeros(n_links, dtype=bool)
            f_cur = np.empty(0, dtype=np.int64)
            f_last_parts: tuple | None = None
        remaining = n - int(dormant.sum()) if spawn_mode else n
        # Scratch buffers for activation bookkeeping, reset after use.
        flag = np.zeros(n_links, dtype=bool)
        n_links_sentinel = np.int64(n + 1)
        first_at = np.full(n_links, n_links_sentinel, dtype=np.int64)
        deadlocked = False
        if capacity is not None:
            # Constrained-mode state: each packet's exit node (for the
            # delivered-at-target capacity exemption), per-step scratch
            # counters (zeroed lazily — only touched entries are reset),
            # and the escape-claim ledger (packet -> link crossed into
            # its escape buffer; resolved to an occupancy at admit time).
            dest_arr = (
                path_arr[np.arange(n), last]
                if n
                else np.empty(0, dtype=np.int64)
            )
            dest_l = dest_arr.tolist()
            link_dst_l = link_dst.tolist()
            inc_np = np.zeros(num_nodes, dtype=np.int64)
            res_np = np.zeros(num_nodes, dtype=np.int64)
            pending_escape: dict[int, int] = {}
            empty_i64 = np.empty(0, dtype=np.int64)
            # Membership scratch flags (reset after use): np.isin sorts
            # its operands, which dwarfs these O(1) scatter/gathers.
            used_flag = np.zeros(n_links, dtype=bool)
            pend_flag = np.zeros(n, dtype=bool)
            # Per-node counters for the scalar contended walk, as plain
            # Python lists (faster than dict.get chains and numpy
            # scalar indexing); only touched entries are reset.
            res_list = [0] * num_nodes
            dep_list = [0] * num_nodes

        inj_times: dict[int, list[int]] = defaultdict(list)
        for i, p in enumerate(all_packets):
            if spawn_mode and dormant[i]:
                continue  # triggered later by its parent, not by time
            inj_times[p.injected_at].append(i)
        pending_times = sorted(inj_times, reverse=True)

        def admit(batch: np.ndarray, t: int):
            """Place a batch of packets (in order): deliver or enqueue."""
            nonlocal active, max_queue, max_node_load, remaining, combines
            k = pos[batch]
            if spawn_mode and (k == nsp[batch]).any():
                # Spawn triggers: expand the batch in place.  Matching
                # the reference hook order, a parent's spawned children
                # (and their own position-0 spawns, recursively) are
                # placed *before* the parent at the same node and step.
                out: list[int] = []

                def emit(i: int, ki: int) -> None:
                    nonlocal remaining
                    entries = sched.get(i)
                    if entries and entries[0][0] == ki:
                        _, kids = entries.pop(0)
                        nsp[i] = entries[0][0] if entries else -9
                        for c in kids:
                            dormant[c] = False
                            injected_at_arr[c] = t
                            remaining += 1
                            spawn_seq.append(c)
                            emit(c, 0)
                    out.append(i)

                for i, ki in zip(batch.tolist(), k.tolist()):
                    if ki == nsp[i]:
                        emit(i, ki)
                    else:
                        out.append(i)
                batch = np.asarray(out, dtype=np.int64)
                k = pos[batch]
            done = k == last[batch]
            done_idx = batch[done]
            if done_idx.size:
                arrived[done_idx] = t
                # A delivered host delivers its whole absorption subtree
                # (the reference engine's deliver cascade).
                remaining -= (
                    int(subtree[done_idx].sum()) if combine else int(done_idx.size)
                )
                batch = batch[~done]
                k = k[~done]
            if not batch.size:
                return
            if combine:
                # Group the batch stably by (link, combine key); each
                # group either absorbs into that code's resident host or
                # promotes its first member to host — exactly the
                # reference engine's arrival-by-arrival semantics, since
                # a code never holds two residents.
                _c0 = wall_time() if _prof is not None else 0.0
                vc = vc_mat[batch, k]
                order0 = np.argsort(
                    vc * np.int64(vc.size) + np.arange(vc.size, dtype=np.int64)
                )
                sv = vc[order0]
                si = batch[order0]
                firsts0 = np.empty(sv.shape, dtype=bool)
                firsts0[0] = True
                firsts0[1:] = sv[1:] != sv[:-1]
                grp = np.cumsum(firsts0) - 1
                ex_host = host_at[sv[firsts0]][grp]
                absorbed_s = (ex_host >= 0) | ~firsts0
                new_host = firsts0 & (ex_host < 0)
                host_at[sv[new_host]] = si[new_host]
                if absorbed_s.any():
                    host_elem = np.where(ex_host >= 0, ex_host, si[firsts0][grp])
                    ch = si[absorbed_s]
                    hs = host_elem[absorbed_s]
                    parent[ch] = hs
                    combined_arr[ch] = True
                    np.add.at(subtree, hs, subtree[ch])
                    combines += int(ch.size)
                    child_pairs.append((hs, ch))
                    keep = np.ones(batch.size, dtype=bool)
                    keep[order0[absorbed_s]] = False
                    batch = batch[keep]
                    k = k[keep]
                    if not batch.size:
                        if _prof is not None:
                            _prof.add_phase("combining", wall_time() - _c0)
                        return
                if _prof is not None:
                    _prof.add_phase("combining", wall_time() - _c0)
            li = link_mat[batch, k]
            if cls_mat is not None:
                cls = cls_mat[batch, k]
                vli = li * n_classes + cls
            else:
                cls = None
                vli = li
            # Stable grouping keeps, per virtual link, the batch's own
            # arrival order — the FIFO tie order of the reference engine.
            # Sorting (vli, position) as one combined key gives stable
            # group order with the default introsort (faster than a
            # stable mergesort on int64).
            order = np.argsort(
                vli * np.int64(li.size) + np.arange(li.size, dtype=np.int64)
            )
            s_v = vli[order]
            s_i = batch[order]
            same = np.empty(s_v.shape, dtype=bool)
            same[0] = False
            same[1:] = s_v[1:] == s_v[:-1]
            firsts = ~same
            lasts = np.empty(s_v.shape, dtype=bool)
            lasts[-1] = True
            lasts[:-1] = ~same[1:]
            # Thread each group's chain, then splice it onto the queue.
            q_next[s_i[lasts]] = -1
            intra_prev = s_i[:-1][same[1:]]
            if intra_prev.size:
                q_next[intra_prev] = s_i[1:][same[1:]]
            f_v = s_v[firsts]
            f_i = s_i[firsts]
            old_tail = q_tail[f_v]
            was_empty = old_tail < 0
            q_head[f_v[was_empty]] = f_i[was_empty]
            q_next[old_tail[~was_empty]] = f_i[~was_empty]
            q_tail[f_v] = s_i[lasts]
            pre_len = q_len[li]  # pre-batch lengths (gather before add)
            np.add.at(q_len, li, 1)
            if counts is not None:
                np.add.at(counts, vli, 1)
                np.maximum.at(cls_max, li, cls)
            srcs = link_src[li]
            np.add.at(node_load, srcs, 1)
            # Max stats only need the touched entries: within the phase
            # lengths/loads only grow, so the post-batch values are the
            # step's peaks (gathers see each link's final value at its
            # last duplicate).
            mq = int(q_len[li].max())
            if mq > max_queue:
                max_queue = mq
            mnl = int(node_load[srcs].max())
            if mnl > max_node_load:
                max_node_load = mnl
            # Newly activated links, ordered by their first arrival.
            was_idle = pre_len == 0
            if was_idle.any():
                idle_links = li[was_idle]
                flag[idle_links] = True
                newly = np.nonzero(flag)[0]
                flag[idle_links] = False  # reset the scratch buffer
                if newly.size > 1:
                    np.minimum.at(
                        first_at, idle_links,
                        np.nonzero(was_idle)[0].astype(np.int64),
                    )
                    newly = newly[np.argsort(first_at[newly], kind="stable")]
                    first_at[idle_links] = n_links_sentinel
                active = np.concatenate([active, newly])

        if _prof is not None:
            # Arrival-phase timing wraps admit(); combining time booked
            # inside it is subtracted so the phase buckets stay disjoint.
            _admit_raw = admit

            def admit(batch: np.ndarray, t: int):
                _a0 = wall_time()
                _c_before = _prof.phase_total("combining")
                _admit_raw(batch, t)
                _prof.add_phase(
                    "arrival",
                    (wall_time() - _a0)
                    - (_prof.phase_total("combining") - _c_before),
                )

        t = 0
        while remaining > 0:
            while pending_times and pending_times[-1] <= t:
                admit(
                    np.asarray(inj_times[pending_times.pop()], dtype=np.int64), t
                )
            if remaining == 0:
                break
            if t >= max_steps:
                break
            if (
                not active.size
                and not pending_times
                and (fc is None or not fc.escape_at)
            ):
                raise RuntimeError(
                    f"{remaining} packets undeliverable: network drained at t={t}"
                )

            fault_blocked_step = False
            f_any = False
            if link_faults is not None:
                parts = link_faults.parts_at(fault_base + t)
                if parts != f_last_parts:
                    fstatic, fextra = parts
                    f_flags[f_cur] = False
                    lis: list[int] = []
                    if fstatic or fextra:
                        if f_code_li is None:
                            f_code_li = {}
                            codes = (link_src * num_nodes + link_dst).tolist()
                            for li, code in enumerate(codes):
                                f_code_li.setdefault(code, []).append(li)
                        for u, w in sorted(fstatic):
                            lis.extend(f_code_li.get(u * num_nodes + w, ()))
                        for u, w in fextra:
                            lis.extend(f_code_li.get(u * num_nodes + w, ()))
                    f_cur = np.asarray(lis, dtype=np.int64)
                    f_flags[f_cur] = True
                    f_last_parts = parts
                f_any = f_cur.size > 0

            _tx0 = wall_time() if _prof is not None else 0.0
            _esc_dt = 0.0
            # Transmission: every active link pops the head of its
            # highest nonempty class (lazy walk-down of stale maxima;
            # the loop narrows to the still-stale subset, so total work
            # is amortized by pushes, not classes x active links).
            if n_classes > 1 and active.size:
                cls = cls_max[active]
                vli = active * n_classes + cls
                stale = np.nonzero(counts[vli] == 0)[0]
                while stale.size:
                    cls[stale] -= 1
                    vli[stale] -= 1
                    stale = stale[counts[vli[stale]] == 0]
                cls_max[active] = cls
            else:
                vli = active
            heads = q_head[vli]
            if capacity is None:
                if f_any and active.size:
                    keep = ~f_flags[active]
                    nblocked = int(active.size) - int(keep.sum())
                else:
                    nblocked = 0
                if nblocked:
                    # Fault-blocked links hold their queues this step;
                    # the unblocked subset transmits exactly as below.
                    fault_stalls += nblocked
                    fault_blocked_step = True
                    vli_s = vli[keep]
                    heads_s = heads[keep]
                    act_s = active[keep]
                    nxt = q_next[heads_s]
                    q_head[vli_s] = nxt
                    q_tail[vli_s[nxt < 0]] = -1
                    if counts is not None:
                        counts[vli_s] -= 1
                    if combine:
                        vc_pop = vc_mat[heads_s, pos[heads_s]]
                        mine = host_at[vc_pop] == heads_s
                        host_at[vc_pop[mine]] = -1
                    q_len[act_s] -= 1
                    np.subtract.at(node_load, link_src[act_s], 1)
                    pos[heads_s] += 1
                    arrivals = heads_s
                    active = active[q_len[active] > 0]
                else:
                    nxt = q_next[heads]
                    q_head[vli] = nxt
                    q_tail[vli[nxt < 0]] = -1
                    if counts is not None:
                        counts[vli] -= 1
                    if combine:
                        # A departing host releases its combine-code
                        # residency.
                        vc_pop = vc_mat[heads, pos[heads]]
                        mine = host_at[vc_pop] == heads
                        host_at[vc_pop[mine]] = -1
                    ql_after = q_len[active] - 1
                    q_len[active] = ql_after
                    np.subtract.at(node_load, link_src[active], 1)
                    pos[heads] += 1
                    arrivals = heads
                    active = active[ql_after > 0]
            else:
                # ---- constrained transmission: batch credit accounting.
                # Escape subphase first, exactly like the reference
                # engine: occupants advance in occupancy order (absolute
                # priority on their next link); `used` then blocks the
                # bulk heads of those links.
                esc_arrivals: list[int] = []
                used: set[int] = set()
                reserved: dict[int, int] = {}
                if fc is not None and fc.escape_at:
                    # node_load is static for the whole subphase (pops
                    # and enqueues happen later), so gather the target
                    # loads once instead of per-occupant scalar reads.
                    # CreditState's dict ops are inlined: this loop runs
                    # once per occupant per step.
                    _esc0 = wall_time() if _prof is not None else 0.0
                    esc_at = fc.escape_at
                    esc_next = fc.escape_next
                    stalls = 0
                    ehops = 0
                    esc_snapshot = list(esc_at.items())
                    nls = [esc_next[el] for el, _ in esc_snapshot]
                    load_at = node_load[link_dst[nls]].tolist() if nls else []
                    for (el, i), nl, ld in zip(esc_snapshot, nls, load_at):
                        if f_any and f_flags[nl]:
                            fault_stalls += 1
                            fault_blocked_step = True
                            continue
                        if nl in used:
                            stalls += 1
                            continue
                        w = link_dst_l[nl]
                        if dest_l[i] != w:
                            if ld + reserved.get(w, 0) < capacity:
                                reserved[w] = reserved.get(w, 0) + 1
                            elif nl not in esc_at:
                                ehops += 1
                                pending_escape[i] = nl
                            else:
                                stalls += 1
                                continue
                        used.add(nl)
                        del esc_at[el]
                        del esc_next[el]
                        esc_arrivals.append(i)
                    fc.credits_stalled += stalls
                    fc.escape_hops += ehops
                    if esc_arrivals:
                        pos[np.asarray(esc_arrivals, dtype=np.int64)] += 1
                    if _prof is not None:
                        _esc_dt = wall_time() - _esc0
                        _prof.add_phase("escape", _esc_dt)
                # Bulk subphase, vectorized: a link is **sure** to
                # transmit when its head exits at the target (capacity
                # exemption) or when the target has room for every
                # comer this step no matter the order — `node_load`
                # only falls and `reserved` grows at most by the other
                # non-exempt in-links, so
                # ``load + reserved + incoming_nonexempt <= capacity``
                # is order-independent.  Everything else is contended
                # and replayed scalar in activation order below.
                if active.size:
                    w_arr = link_dst[active]
                    dec = dest_arr[heads] == w_arr  # exempt heads
                    fb = None
                    if f_any:
                        fb = f_flags[active]
                        nb = int(fb.sum())
                        if nb:
                            # A blocked wire never transmits, exempt head
                            # or not; counted as fault stalls, never as
                            # credit stalls (reference order: the fault
                            # check precedes every other stall reason).
                            fault_stalls += nb
                            fault_blocked_step = True
                            dec &= ~fb
                        else:
                            fb = None
                    if used:
                        used_list = sorted(used)
                        used_flag[used_list] = True
                        blocked = used_flag[active]
                        used_flag[used_list] = False
                        if fb is not None:
                            blocked &= ~fb
                        fc.credits_stalled += int(blocked.sum())
                        nonex = ~dec & ~blocked
                    else:
                        blocked = None
                        nonex = ~dec
                    if fb is not None:
                        nonex &= ~fb
                    tgt = w_arr[nonex]
                    np.add.at(inc_np, tgt, 1)
                    budget_at_w = node_load[w_arr] + inc_np[w_arr]
                    inc_np[tgt] = 0
                    if reserved:
                        for wn, v in reserved.items():
                            res_np[wn] = v
                        budget_at_w += res_np[w_arr]
                        for wn in reserved:
                            res_np[wn] = 0
                    fine = budget_at_w <= capacity
                    contended = nonex & ~fine
                    dec |= fine
                    if blocked is not None:
                        dec &= ~blocked
                    if fb is not None:
                        dec &= ~fb
                    c_idx = np.nonzero(contended)[0]
                    if c_idx.size:
                        # Sure links settle before the scalar walk; the
                        # only effect they have on a contended link is a
                        # departure out of its (congested) target — a
                        # rank query "sure links with src == w before
                        # position p", answered for all contended links
                        # with two vectorized searchsorteds.
                        c_links = active[c_idx]
                        c_w = w_arr[c_idx]
                        c_heads = heads[c_idx]
                        c_src = link_src[c_links]
                        c_load = node_load[c_w]
                        s_idx = np.nonzero(dec)[0]
                        a1 = np.int64(active.size + 1)
                        if s_idx.size:
                            s_key = link_src[active[s_idx]] * a1 + s_idx
                            s_key.sort()
                            c_sdep = np.searchsorted(
                                s_key, c_w * a1 + c_idx
                            ) - np.searchsorted(s_key, c_w * a1)
                        else:
                            c_sdep = np.zeros(c_idx.size, dtype=np.int64)
                        c_w_l = c_w.tolist()
                        c_src_l = c_src.tolist()
                        res_l = res_list
                        dep_l = dep_list
                        if reserved:
                            for wn, v in reserved.items():
                                res_l[wn] = v
                        esc_at = fc.escape_at if fc is not None else None
                        stalls = 0
                        ehops = 0
                        c_dec = []
                        c_append = c_dec.append
                        for li, wn, src, h, sd, ld in zip(
                            c_links.tolist(),
                            c_w_l,
                            c_src_l,
                            c_heads.tolist(),
                            c_sdep.tolist(),
                            c_load.tolist(),
                        ):
                            if ld - sd - dep_l[wn] + res_l[wn] < capacity:
                                res_l[wn] += 1
                                dep_l[src] += 1
                                c_append(True)
                            elif esc_at is not None and li not in esc_at:
                                # Credit-starved head takes the escape
                                # buffer of the link it crosses.
                                ehops += 1
                                pending_escape[h] = li
                                dep_l[src] += 1
                                c_append(True)
                            else:
                                stalls += 1
                                c_append(False)
                        if fc is not None:
                            fc.credits_stalled += stalls
                            fc.escape_hops += ehops
                        # Reset the touched per-node counters.
                        for wn in c_w_l:
                            res_l[wn] = 0
                        for src in c_src_l:
                            dep_l[src] = 0
                        if reserved:
                            for wn in reserved:
                                res_l[wn] = 0
                        dec[c_idx] = c_dec
                    t_sel = np.nonzero(dec)[0]
                    if t_sel.size:
                        tr = active[t_sel]
                        vli_t = vli[t_sel]
                        heads_t = heads[t_sel]
                        nxt = q_next[heads_t]
                        q_head[vli_t] = nxt
                        q_tail[vli_t[nxt < 0]] = -1
                        if counts is not None:
                            counts[vli_t] -= 1
                        if combine:
                            vc_pop = vc_mat[heads_t, pos[heads_t]]
                            mine = host_at[vc_pop] == heads_t
                            host_at[vc_pop[mine]] = -1
                        q_len[tr] -= 1
                        np.subtract.at(node_load, link_src[tr], 1)
                        pos[heads_t] += 1
                        bulk_arrivals = heads_t
                        active = active[q_len[active] > 0]
                    else:
                        bulk_arrivals = empty_i64
                else:
                    bulk_arrivals = empty_i64
                if esc_arrivals:
                    arrivals = np.concatenate(
                        [np.asarray(esc_arrivals, dtype=np.int64), bulk_arrivals]
                    )
                else:
                    arrivals = bulk_arrivals
                if (
                    not arrivals.size
                    and not pending_times
                    and not fault_blocked_step
                ):
                    # No transmission, no future injections, and nothing
                    # held back by a (possibly transient) fault: the
                    # state is provably static forever.  Report instead
                    # of spinning (the reference engine's detector).
                    if _prof is not None:
                        _prof.add_phase(
                            "transmission", wall_time() - _tx0 - _esc_dt
                        )
                    if _rec is not None:
                        _rec.record(
                            "engine_step",
                            virtual_clock=t,
                            arrivals=0,
                            active_links=int(active.size),
                            remaining=remaining,
                            fault_stalls=fault_stalls,
                        )
                    deadlocked = True
                    break

            if _prof is not None:
                _prof.add_phase("transmission", wall_time() - _tx0 - _esc_dt)
            if _rec is not None:
                _rec.record(
                    "engine_step",
                    virtual_clock=t,
                    arrivals=int(arrivals.size),
                    active_links=int(active.size),
                    remaining=remaining,
                    fault_stalls=fault_stalls,
                )
            t += 1
            if capacity is not None and pending_escape:
                # Escape landings occupy their buffer instead of
                # enqueueing; occupancy order is arrival order, exactly
                # the reference engine's place() order.
                _el0 = wall_time() if _prof is not None else 0.0
                pe = list(pending_escape)
                pend_flag[pe] = True
                pmask = pend_flag[arrivals]
                pend_flag[pe] = False
                landed = arrivals[pmask]
                esc_at = fc.escape_at
                esc_next = fc.escape_next
                for i, nl in zip(
                    landed.tolist(), link_mat[landed, pos[landed]].tolist()
                ):
                    el = pending_escape.pop(i)
                    esc_at[el] = i
                    esc_next[el] = nl
                arrivals = arrivals[~pmask]
                if _prof is not None:
                    _prof.add_phase("escape", wall_time() - _el0)
            if arrivals.size:
                admit(arrivals, t)

        completed = remaining == 0
        track = self.track_paths
        tkey = trace_key if trace_key is not None else node_key
        children_map: dict[int, list[int]] = {}
        if combine:
            # Absorbed packets arrive when their absorption root does
            # (the deliver cascade), and hosts get their children lists
            # in absorption order.
            parent_l = parent.tolist()
            arrived_l0 = arrived.tolist()
            for j, par in enumerate(parent_l):
                if par >= 0:
                    root = par
                    while parent_l[root] >= 0:
                        root = parent_l[root]
                    arrived[j] = arrived_l0[root]
            for hs, ch in child_pairs:
                for h, c in zip(hs.tolist(), ch.tolist()):
                    children_map.setdefault(h, []).append(c)
        pos_l = pos.tolist()
        arrived_l = arrived.tolist()
        node_vals = path_arr[np.arange(n), pos].tolist()
        path_rows = path_arr.tolist() if track else None
        combined_l = combined_arr.tolist() if combine else None
        if spawn_mode:
            # Never-triggered packets were never part of the run; stats
            # cover roots (input order) then spawned packets in spawn
            # order — the reference engine's dynamic append order.
            sel = np.nonzero(is_root)[0].tolist() + spawn_seq
            inj_l = injected_at_arr.tolist()
        else:
            sel = range(n)
            inj_l = None
        # Note: without combining, combined/children keep their
        # Packet-constructor defaults — matching the reference engine,
        # which also only touches them through combining.
        stats_packets = []
        for i in sel:
            p = all_packets[i]
            stats_packets.append(p)
            k = pos_l[i]
            a = arrived_l[i]
            nv = node_vals[i]
            p.hops = k
            p.arrived_at = None if a < 0 else a
            p.node = node_key(k, nv) if node_key is not None else nv
            if inj_l is not None:
                p.injected_at = inj_l[i]
            if combine:
                p.combined = combined_l[i]
                ch = children_map.get(i)
                p.children = [all_packets[j] for j in ch] if ch else None
            if track:
                path = path_rows[i]
                if tkey is not None:
                    p.trace = [tkey(j, path[j]) for j in range(k + 1)]
                else:
                    p.trace = path[: k + 1]
        stats = collect_stats(
            stats_packets,
            steps=t,
            max_queue=max_queue,
            completed=completed,
            combines=combines,
            max_node_load=max_node_load,
            credits_stalled=fc.credits_stalled if fc is not None else 0,
            escape_hops=fc.escape_hops if fc is not None else 0,
            fault_stalls=fault_stalls,
            run_mode=self.last_run_mode,
        )
        if deadlocked:
            err = DeadlockError(
                stats,
                detail=no_progress_detail(t, remaining, int(active.size), fc),
            )
            if _obs is not None:
                err.flight_tail = _obs.flight_tail()
            raise err
        if not completed and raise_on_timeout:
            raise RoutingTimeout(stats)
        return stats

    @staticmethod
    def _intern_path(
        path: list[int],
        link_of: dict[int, int],
        link_src: list[int],
        link_dst: list[int],
        num_nodes: int,
    ) -> list[int]:
        """Dense link index per hop of *path*, growing the intern tables."""
        row = []
        append = row.append
        prev = path[0]
        for nxt in path[1:]:
            code = prev * num_nodes + nxt
            li = link_of.get(code)
            if li is None:
                li = link_of[code] = len(link_src)
                link_src.append(prev)
                link_dst.append(nxt)
            append(li)
            prev = nxt
        return row
