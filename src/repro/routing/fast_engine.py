"""Compiled fast path of the synchronous routing engine.

:class:`FastPathEngine` replays the exact queue dynamics of
:class:`repro.routing.engine.SynchronousEngine` — same one-packet-per-link
steps, FIFO link queues, enqueue-time combining, injection times,
timeouts, and insertion-ordered transmission — but over **precompiled
integer trajectories** instead of hashable node keys and a per-hop
``next_hop`` callback:

* each packet i carries ``paths[i]``: the full list of integer node ids
  it will visit (produced by, e.g.,
  :meth:`repro.topology.compiled.CompiledLeveledTopology.build_paths`);
* every directed link a packet will ever cross is interned up front to a
  dense link index (one vectorized ``np.unique`` when all paths have
  equal length), so the hot loop never hashes a node pair;
* link FIFO queues are intrusive: head/tail/next arrays of packet
  *indices* (a packet waits in at most one queue), so pushes and pops
  are pure list arithmetic with no container allocation; CRCW combining
  is O(1) per arrival via a per-link dict from combine key to the
  resident host's index (mirroring the LinkQueue side index);
* per-node load and per-link activity live in flat lists.

Because routers pre-draw all randomness (coin matrices, intermediate
nodes) *before* choosing an engine, the fast and reference engines
consume identical random bits and produce identical
:class:`~repro.routing.metrics.RoutingStats` under a fixed seed; the
differential tests in ``tests/test_fast_engine.py`` assert this
field-for-field on star, shuffle, and butterfly networks.

Engine selection: routers take ``engine="auto" | "fast" | "reference"``;
``"auto"`` resolves through :func:`resolve_engine_mode`, which honours
the ``REPRO_ENGINE`` environment variable and otherwise picks the fast
path.
"""

from __future__ import annotations

import os
from collections import defaultdict
from typing import Callable, Sequence

import numpy as np

from repro.routing.engine import RoutingTimeout
from repro.routing.metrics import RoutingStats, collect_stats
from repro.routing.packet import Packet

ENGINE_MODES = ("auto", "fast", "reference")

#: environment override consulted by ``engine="auto"`` routers
ENGINE_ENV_VAR = "REPRO_ENGINE"


def resolve_engine_mode(mode: str) -> str:
    """Collapse an engine request to ``"fast"`` or ``"reference"``.

    Explicit ``"fast"`` / ``"reference"`` win; ``"auto"`` defers to the
    ``REPRO_ENGINE`` environment variable and finally defaults to the
    fast path.  A set-but-unrecognized ``REPRO_ENGINE`` raises rather
    than silently running an engine the user didn't ask for.
    """
    if mode not in ENGINE_MODES:
        raise ValueError(f"unknown engine mode {mode!r}; pick one of {ENGINE_MODES}")
    if mode != "auto":
        return mode
    env = os.environ.get(ENGINE_ENV_VAR, "").strip().lower()
    if not env:
        return "fast"
    if env in ("fast", "reference"):
        return env
    raise ValueError(
        f"unrecognized {ENGINE_ENV_VAR}={env!r}; use 'fast' or 'reference'"
    )


class FastPathEngine:
    """Synchronous router over precompiled integer paths.

    Parameters mirror the reference engine where applicable; the
    capacity/service-rate variants are *not* supported here — routers
    needing them stay on the reference engine.
    """

    def __init__(self, *, combine: bool = False, track_paths: bool = False) -> None:
        self.combine = combine
        self.track_paths = track_paths

    def run(
        self,
        packets: Sequence[Packet],
        paths: Sequence[Sequence[int]],
        *,
        num_nodes: int,
        max_steps: int,
        raise_on_timeout: bool = False,
        on_arrival: Callable | None = None,
        hook_filter: Callable[[Packet], bool] | None = None,
        node_key: Callable[[int, int], object] | None = None,
        trace_key: Callable[[int, int], object] | None = None,
    ) -> RoutingStats:
        """Route *packets* along *paths* until delivery or *max_steps*.

        ``paths[i]`` is packet i's node-id itinerary including its start;
        the packet is delivered on reaching the last entry.  ``num_nodes``
        bounds the id space (used to intern links and size load tables).
        ``on_arrival(index, packet, key, t)`` mirrors the reference
        engine's hook: called at every node a packet reaches (``key`` is
        the decoded position key) and may return ``[(packet, path), ...]``
        to inject there immediately.  ``hook_filter(packet)``, evaluated
        once when a packet is registered, exempts packets for which the
        hook could never act (it must be a pure function of the packet —
        a False means on_arrival is skipped for every node that packet
        reaches).  ``node_key`` / ``trace_key`` decode
        ``(position, node_id)`` into the hashable keys written back to
        ``packet.node`` / ``packet.trace`` (identity when omitted).
        """
        combine = self.combine
        all_packets: list[Packet] = list(packets)
        path_list: list[list[int]] = [list(p) for p in paths]
        if len(all_packets) != len(path_list):
            raise ValueError("one path per packet required")
        n = len(all_packets)
        pos = [0] * n
        last = [len(p) - 1 for p in path_list]
        arrived: list[int | None] = [None] * n
        combined_flag = [False] * n
        children: list[list[int] | None] = [None] * n
        ckeys: list[tuple | None] = (
            [p.combine_key for p in all_packets] if combine else []
        )
        hooked: list[bool] = []
        if on_arrival is not None:
            hooked = (
                [True] * n
                if hook_filter is None
                else [bool(hook_filter(p)) for p in all_packets]
            )
        node_load = [0] * num_nodes

        # ---- intern every link each path crosses to a dense index ------
        link_of: dict[int, int] = {}
        link_src: list[int] = []
        link_rows: list[list[int]] = []
        lengths = {len(p) for p in path_list}
        if len(lengths) == 1 and lengths != {0} and n:
            # Rectangular trajectory matrix: one np.unique interns all
            # links at C speed (the common case for leveled routes).
            arr = np.asarray(path_list, dtype=np.int64)
            if arr.shape[1] > 1:
                codes = arr[:, :-1] * num_nodes + arr[:, 1:]
                uniq, inverse = np.unique(codes, return_inverse=True)
                link_src = (uniq // num_nodes).tolist()
                link_rows = inverse.reshape(codes.shape).tolist()
                if on_arrival is not None:
                    # Spawned packets intern their links dynamically and
                    # must share the dense id space.
                    link_of = dict(zip(uniq.tolist(), range(uniq.size)))
            else:
                link_rows = [[] for _ in range(n)]
        else:
            for path in path_list:
                link_rows.append(
                    self._intern_path(path, link_of, link_src, num_nodes)
                )

        # Each link's FIFO queue is threaded through the packets
        # themselves (a packet waits in at most one queue): q_head/q_tail
        # hold packet indices, q_next links them.  No per-link containers
        # to allocate, pushes and pops are pure list-index arithmetic.
        n_links = len(link_src)
        q_head = [-1] * n_links
        q_tail = [-1] * n_links
        q_len = [0] * n_links
        q_next = [-1] * n
        is_active = [False] * n_links
        cindex: list[dict | None] = [None] * n_links
        active: list[int] = []

        max_queue = 0
        max_node_load = 0
        combines = 0
        remaining = n

        injections: dict[int, list[int]] = defaultdict(list)
        for i, p in enumerate(all_packets):
            injections[p.injected_at].append(i)
        pending_times = sorted(injections, reverse=True)

        def deliver(i: int, t: int) -> None:
            nonlocal remaining
            stack = [i]
            while stack:
                j = stack.pop()
                if arrived[j] is None:
                    arrived[j] = t
                    remaining -= 1
                ch = children[j]
                if ch:
                    stack.extend(ch)

        def place(i: int, t: int) -> None:
            nonlocal remaining, max_queue, max_node_load, combines
            k = pos[i]
            if on_arrival is not None and hooked[i]:
                here = path_list[i][k]
                key = trace_key(k, here) if trace_key is not None else here
                spawned = on_arrival(i, all_packets[i], key, t)
                if spawned:
                    for q_pkt, q_path in spawned:
                        q_path = list(q_path)
                        if q_path[0] != here:
                            raise ValueError(
                                f"spawned packet {q_pkt.pid} starts at "
                                f"{q_path[0]}, expected {here}"
                            )
                        q_pkt.injected_at = t
                        all_packets.append(q_pkt)
                        path_list.append(q_path)
                        row = self._intern_path(
                            q_path, link_of, link_src, num_nodes
                        )
                        link_rows.append(row)
                        while len(q_head) < len(link_src):
                            q_head.append(-1)
                            q_tail.append(-1)
                            q_len.append(0)
                            is_active.append(False)
                            cindex.append(None)
                        q_next.append(-1)
                        pos.append(0)
                        last.append(len(q_path) - 1)
                        arrived.append(None)
                        combined_flag.append(False)
                        children.append(None)
                        if combine:
                            ckeys.append(q_pkt.combine_key)
                        hooked.append(
                            True if hook_filter is None else bool(hook_filter(q_pkt))
                        )
                        remaining += 1
                        place(len(all_packets) - 1, t)
            if k == last[i]:
                deliver(i, t)
                return
            li = link_rows[i][k]
            if combine:
                key = ckeys[i]
                if key is not None:
                    index = cindex[li]
                    if index is None:
                        index = cindex[li] = {}
                    host = index.get(key)
                    if host is not None:
                        ch = children[host]
                        if ch is None:
                            ch = children[host] = []
                        ch.append(i)
                        combined_flag[i] = True
                        combines += 1
                        return
                    index[key] = i
            tail = q_tail[li]
            if tail < 0:
                q_head[li] = i
            else:
                q_next[tail] = i
            q_tail[li] = i
            q_next[i] = -1
            length = q_len[li] + 1
            q_len[li] = length
            if not is_active[li]:
                is_active[li] = True
                active.append(li)
            u = link_src[li]
            load = node_load[u] + 1
            node_load[u] = load
            if length > max_queue:
                max_queue = length
            if load > max_node_load:
                max_node_load = load

        t = 0
        while remaining > 0:
            while pending_times and pending_times[-1] <= t:
                for i in injections[pending_times.pop()]:
                    place(i, t)
            if remaining == 0:
                break
            if t >= max_steps:
                break
            if not active and not pending_times:
                raise RuntimeError(
                    f"{remaining} packets undeliverable: network drained at t={t}"
                )

            arrivals: list[int] = []
            arrivals_append = arrivals.append
            for li in active:
                i = q_head[li]
                nxt = q_next[i]
                q_head[li] = nxt
                length = q_len[li] - 1
                q_len[li] = length
                if combine:
                    key = ckeys[i]
                    if key is not None:
                        index = cindex[li]
                        if index.get(key) == i:
                            del index[key]
                node_load[link_src[li]] -= 1
                pos[i] += 1
                arrivals_append(i)
                if length == 0:
                    q_tail[li] = -1
                    is_active[li] = False
            active = [li for li in active if is_active[li]]

            t += 1
            for i in arrivals:
                place(i, t)

        completed = remaining == 0
        track = self.track_paths
        tkey = trace_key if trace_key is not None else node_key
        for i, p in enumerate(all_packets):
            k = pos[i]
            path = path_list[i]
            p.hops = k
            p.arrived_at = arrived[i]
            p.combined = combined_flag[i]
            ch = children[i]
            p.children = [all_packets[j] for j in ch] if ch else None
            p.node = node_key(k, path[k]) if node_key is not None else path[k]
            if track:
                if tkey is not None:
                    p.trace = [tkey(j, path[j]) for j in range(k + 1)]
                else:
                    p.trace = path[: k + 1]
        stats = collect_stats(
            all_packets,
            steps=t,
            max_queue=max_queue,
            completed=completed,
            combines=combines,
            max_node_load=max_node_load,
        )
        if not completed and raise_on_timeout:
            raise RoutingTimeout(stats)
        return stats

    @staticmethod
    def _intern_path(
        path: list[int],
        link_of: dict[int, int],
        link_src: list[int],
        num_nodes: int,
    ) -> list[int]:
        """Dense link index per hop of *path*, growing the intern tables."""
        row = []
        append = row.append
        prev = path[0]
        for nxt in path[1:]:
            code = prev * num_nodes + nxt
            li = link_of.get(code)
            if li is None:
                li = link_of[code] = len(link_src)
                link_src.append(prev)
            append(li)
            prev = nxt
        return row
