"""1-D routing on a linear array — the analysis primitive of §3.4.1.

The paper proves Theorem 3.1 by reducing each stage to this problem: node
i holds k_i packets (Σ k_i = n'), each packet picks a destination on the
line, and contention is resolved furthest-destination-first.  The claimed
bound is n' + o(n) steps w.h.p. for random destinations.

Like the routers, :func:`route_linear` takes ``engine="auto" | "fast" |
"reference"``: the monotone walks compile to padded integer trajectories
(:func:`repro.topology.compiled.linear_paths`) and the push-time
furthest-destination-first priorities are a closed form of
``|dest - node|`` along the walk, so the fast engine replays the
reference queue dynamics bit for bit.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.routing.engine import SynchronousEngine
from repro.routing.fast_engine import FastPathEngine, resolve_engine_mode
from repro.routing.metrics import RoutingStats
from repro.routing.packet import Packet, make_packets
from repro.routing.queues import fifo_factory, furthest_first_factory
from repro.topology.compiled import linear_paths
from repro.topology.mesh import LinearArray
from repro.util.rng import as_generator


def route_linear(
    n: int,
    origins: Sequence[int],
    dests: Sequence[int],
    *,
    discipline: str = "furthest_first",
    max_steps: int | None = None,
    engine: str = "auto",
) -> RoutingStats:
    """Route packets on a linear array of *n* nodes.

    ``discipline`` is "furthest_first" (the paper's rule) or "fifo".
    """
    array = LinearArray(n)
    for x in list(origins) + list(dests):
        array.validate_node(int(x))
    if max_steps is None:
        max_steps = 50 * n + 200
    if discipline not in ("furthest_first", "fifo"):
        raise ValueError(f"unknown discipline {discipline!r}")
    mode = resolve_engine_mode(engine)

    origins = list(map(int, origins))
    dests = list(map(int, dests))
    packets = make_packets(origins, dests)
    if mode == "fast":
        plan = linear_paths(origins, dests)
        priorities = None
        if discipline == "furthest_first":
            # Push-time priority of the k-th crossing: distance left
            # from the node the packet is pushed at — |dest - ids[:, k]|.
            priorities = np.abs(
                np.asarray(dests, dtype=np.int64)[:, None] - plan.ids[:, :-1]
            )
        return FastPathEngine().run(
            packets,
            plan.ids,
            num_nodes=n,
            max_steps=max_steps,
            path_lengths=plan.lengths,
            priorities=priorities,
        )

    def priority(p: Packet) -> float:
        return abs(p.dest - p.node)

    factory = (
        furthest_first_factory(priority)
        if discipline == "furthest_first"
        else fifo_factory
    )

    def next_hop(p: Packet):
        if p.node == p.dest:
            return None
        return array.route_next(p.node, p.dest)

    ref = SynchronousEngine(queue_factory=factory)
    return ref.run(packets, next_hop, max_steps=max_steps)


def random_linear_instance(
    n: int, total_packets: int, seed=None
) -> tuple[list[int], list[int]]:
    """The §3.4.1 experiment: n' packets spread over the array, each with a
    uniformly random destination."""
    rng = as_generator(seed)
    origins = rng.integers(0, n, size=total_packets)
    dests = rng.integers(0, n, size=total_packets)
    return origins.tolist(), dests.tolist()
