"""1-D routing on a linear array — the analysis primitive of §3.4.1.

The paper proves Theorem 3.1 by reducing each stage to this problem: node
i holds k_i packets (Σ k_i = n'), each packet picks a destination on the
line, and contention is resolved furthest-destination-first.  The claimed
bound is n' + o(n) steps w.h.p. for random destinations.
"""

from __future__ import annotations

from typing import Sequence

from repro.routing.engine import SynchronousEngine
from repro.routing.metrics import RoutingStats
from repro.routing.packet import Packet, make_packets
from repro.routing.queues import fifo_factory, furthest_first_factory
from repro.topology.mesh import LinearArray
from repro.util.rng import as_generator


def route_linear(
    n: int,
    origins: Sequence[int],
    dests: Sequence[int],
    *,
    discipline: str = "furthest_first",
    max_steps: int | None = None,
) -> RoutingStats:
    """Route packets on a linear array of *n* nodes.

    ``discipline`` is "furthest_first" (the paper's rule) or "fifo".
    """
    array = LinearArray(n)
    for x in list(origins) + list(dests):
        array.validate_node(int(x))
    if max_steps is None:
        max_steps = 50 * n + 200

    def priority(p: Packet) -> float:
        return abs(p.dest - p.node)

    if discipline == "furthest_first":
        factory = furthest_first_factory(priority)
    elif discipline == "fifo":
        factory = fifo_factory
    else:
        raise ValueError(f"unknown discipline {discipline!r}")

    def next_hop(p: Packet):
        if p.node == p.dest:
            return None
        return array.route_next(p.node, p.dest)

    packets = make_packets(list(map(int, origins)), list(map(int, dests)))
    engine = SynchronousEngine(queue_factory=factory)
    return engine.run(packets, next_hop, max_steps=max_steps)


def random_linear_instance(
    n: int, total_packets: int, seed=None
) -> tuple[list[int], list[int]]:
    """The §3.4.1 experiment: n' packets spread over the array, each with a
    uniformly random destination."""
    rng = as_generator(seed)
    origins = rng.integers(0, n, size=total_packets)
    dests = rng.integers(0, n, size=total_packets)
    return origins.tolist(), dests.tolist()
