"""Valiant-style baselines (§1, §2.3.4, [19]).

Two reference points from the paper's discussion:

* :class:`ValiantHypercubeRouter` — Valiant & Brebner's classic 2-phase
  bit-fixing algorithm on the n-cube, the O(log N) yardstick that Ranade's
  emulation builds on.
* :func:`valiant_shuffle_route` — Valiant's scheme evaluated on the d-way
  shuffle under the *serialized* node model (one packet forwarded per node
  per step).  The paper notes this runs in Õ(n log d / log log d) — the
  bottleneck is the balls-in-bins maximum node congestion — whereas
  Algorithm 2.3 under the parallel-link model achieves Õ(n).  Experiment
  E12 measures the growing gap.

Both baselines pre-draw their random intermediates, so every itinerary
is known before routing and ``engine="auto" | "fast" | "reference"``
selects between the reference engine and a compiled replay — including
the serialized (``node_service_rate=1``) shuffle model, which the fast
engine arbitrates exactly like the reference one.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.routing.engine import SynchronousEngine
from repro.routing.fast_engine import FastPathEngine, resolve_engine_mode
from repro.routing.metrics import RoutingStats
from repro.routing.packet import Packet, make_packets
from repro.routing.queues import fifo_factory
from repro.topology.compiled import hypercube_paths, shuffle_unique_paths
from repro.topology.hypercube import Hypercube
from repro.topology.shuffle import DWayShuffle
from repro.util.rng import as_generator


class ValiantHypercubeRouter:
    """Valiant–Brebner 2-phase randomized bit-fixing on the n-cube."""

    def __init__(
        self,
        cube: Hypercube,
        *,
        seed=None,
        randomized: bool = True,
        engine: str = "auto",
    ) -> None:
        self.cube = cube
        self.randomized = randomized
        self.rng = as_generator(seed)
        self.engine_mode = engine
        resolve_engine_mode(engine)  # validate eagerly
        self.engine = SynchronousEngine(queue_factory=fifo_factory)

    def _next_hop(self, p: Packet):
        if p.state is not None:
            if p.node == p.state:
                p.state = None
            else:
                return self.cube.route_next(p.node, p.state)
        if p.node == p.dest:
            return None
        return self.cube.route_next(p.node, p.dest)

    def route(
        self,
        sources: Sequence[int],
        dests: Sequence[int],
        *,
        max_steps: int | None = None,
    ) -> RoutingStats:
        if max_steps is None:
            max_steps = 60 * self.cube.n + 200
        packets = make_packets(list(map(int, sources)), list(map(int, dests)))
        if self.randomized:
            inters = self.rng.integers(self.cube.num_nodes, size=len(packets))
            for p, r in zip(packets, inters):
                p.state = int(r)
        if resolve_engine_mode(self.engine_mode) == "fast":
            plan = hypercube_paths(
                self.cube.n,
                [p.source for p in packets],
                [p.dest for p in packets],
                inters=[p.state for p in packets] if self.randomized else None,
            )
            return FastPathEngine().run(
                packets,
                plan.ids,
                num_nodes=self.cube.num_nodes,
                max_steps=max_steps,
                path_lengths=plan.lengths,
            )
        return self.engine.run(packets, self._next_hop, max_steps=max_steps)

    def route_random_permutation(self, *, max_steps: int | None = None) -> RoutingStats:
        perm = self.rng.permutation(self.cube.num_nodes)
        return self.route(np.arange(self.cube.num_nodes), perm, max_steps=max_steps)


def transpose_permutation(cube: Hypercube) -> np.ndarray:
    """The bit-transpose permutation: the classic adversarial input showing
    why deterministic oblivious routing needs Valiant's random phase."""
    n = cube.n
    half = n // 2
    out = np.empty(cube.num_nodes, dtype=np.int64)
    low_mask = (1 << half) - 1
    for v in range(cube.num_nodes):
        low = v & low_mask
        high = v >> half
        out[v] = (low << (n - half)) | high
    return out


def valiant_shuffle_route(
    shuffle: DWayShuffle,
    sources: Sequence[int],
    dests: Sequence[int],
    *,
    seed=None,
    max_steps: int | None = None,
    engine: str = "auto",
) -> RoutingStats:
    """Valiant's 2-phase scheme on the d-way shuffle, serialized node model.

    Each node forwards at most one packet per step (single out-port), the
    model in which Valiant's Õ(n log d / log log d) bound for the d-way
    shuffle is tight; compare against :class:`~repro.routing
    .shuffle_router.ShuffleRouter` under the parallel-link model.
    """
    rng = as_generator(seed)
    n = shuffle.n
    if max_steps is None:
        max_steps = 500 * n + 500

    def next_hop(p: Packet):
        phase, k, inter = p.state
        if phase == 0:
            if k == n:
                phase, k = 1, 0
                p.state = (1, 0, inter)
            else:
                p.state = (0, k + 1, inter)
                return shuffle.unique_path_next(p.node, inter, k)
        if k == n:
            return None
        p.state = (1, k + 1, inter)
        return shuffle.unique_path_next(p.node, p.dest, k)

    packets = make_packets(list(map(int, sources)), list(map(int, dests)))
    inters = rng.integers(shuffle.num_nodes, size=len(packets))
    for p, r in zip(packets, inters):
        p.state = (0, 0, int(r))
    if resolve_engine_mode(engine) == "fast":
        paths = shuffle_unique_paths(
            shuffle, [p.source for p in packets], [inters, dests]
        )
        fast = FastPathEngine(node_service_rate=1)
        return fast.run(
            packets, paths, num_nodes=shuffle.num_nodes, max_steps=max_steps
        )
    ref = SynchronousEngine(queue_factory=fifo_factory, node_service_rate=1)
    return ref.run(packets, next_hop, max_steps=max_steps)
