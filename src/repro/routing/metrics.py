"""Routing-run metrics: the quantities the paper's theorems bound.

* routing time — step at which the last packet arrives (§2.2.1);
* queue size — max packets ever resident in one link queue;
* delay — per-packet queueing delay (latency minus path length);
* hops — per-packet path length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.routing.packet import Packet
from repro.util.stats import Summary, summarize


@dataclass
class RoutingStats:
    """Outcome of one routing run."""

    steps: int
    delivered: int
    total_packets: int
    max_queue: int
    completed: bool
    delays: list[int] = field(default_factory=list)
    hops: list[int] = field(default_factory=list)
    #: number of packet merges performed (CRCW combining)
    combines: int = 0
    #: peak number of packets resident at any single node (sum of its
    #: outgoing link queues); the per-processor buffer requirement
    max_node_load: int = 0
    #: (link, step) pairs where credit flow control held a transmission
    #: back — a queue head or escape occupant that could not move this
    #: step.  Zero unless ``flow_control="credit"``; identical across
    #: engines under a fixed seed (see docs/flow_control.md).
    credits_stalled: int = 0
    #: hops taken through dedicated per-link escape buffers (the
    #: deadlock-free channel of ``flow_control="credit"``); each one is
    #: a credit-starved head bypassing a full bulk buffer
    escape_hops: int = 0
    #: (link, step) pairs where an injected link fault held a
    #: transmission back — a queued head (or escape occupant) whose
    #: wire was down or in a slow-link off-phase this step.  Zero
    #: unless the run carries a fault schedule; identical across
    #: engines under a fixed seed (see docs/faults.md).
    fault_stalls: int = 0
    #: execution mode that produced this run: ``"reference"`` (the
    #: per-hop readable engine) or one of the fast engine's modes —
    #: ``"batch"``, ``"batch-constrained"``, ``"event"`` (see
    #: ``FastPathEngine.last_run_mode``).  Deliberately excluded from
    #: the engine-differential equality contract: the *numbers* must
    #: match across engines, the mode must not.  The traffic subsystem
    #: aggregates these into a per-epoch dispatch history so online
    #: runs can assert "no silent per-event fallback".
    run_mode: str = ""

    @property
    def routing_time(self) -> int:
        """Alias for ``steps`` matching the paper's vocabulary."""
        return self.steps

    @property
    def max_delay(self) -> int:
        return max(self.delays) if self.delays else 0

    @property
    def mean_delay(self) -> float:
        return sum(self.delays) / len(self.delays) if self.delays else 0.0

    @property
    def max_hops(self) -> int:
        return max(self.hops) if self.hops else 0

    def delay_summary(self) -> Summary:
        return summarize(self.delays)

    def hop_summary(self) -> Summary:
        return summarize(self.hops)

    def normalized_time(self, scale: float) -> float:
        """routing_time / scale — e.g. scale = diameter for Theorem 2.1,
        scale = n for Theorems 3.1-3.2."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        return self.steps / scale

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        flag = "" if self.completed else "  [TIMED OUT]"
        return (
            f"time={self.steps} delivered={self.delivered}/{self.total_packets} "
            f"max_queue={self.max_queue} max_delay={self.max_delay}{flag}"
        )


def collect_stats(
    packets: Sequence[Packet],
    *,
    steps: int,
    max_queue: int,
    completed: bool,
    combines: int = 0,
    max_node_load: int = 0,
    credits_stalled: int = 0,
    escape_hops: int = 0,
    fault_stalls: int = 0,
    run_mode: str = "",
) -> RoutingStats:
    """Assemble a :class:`RoutingStats` from delivered packets."""
    delivered = [p for p in packets if p.delivered]
    return RoutingStats(
        steps=steps,
        delivered=len(delivered),
        total_packets=len(packets),
        max_queue=max_queue,
        completed=completed,
        delays=[p.delay for p in delivered],
        hops=[p.hops for p in delivered],
        combines=combines,
        max_node_load=max_node_load,
        credits_stalled=credits_stalled,
        escape_hops=escape_hops,
        fault_stalls=fault_stalls,
        run_mode=run_mode,
    )
