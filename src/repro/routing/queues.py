"""Link-queue disciplines (§2.2.1).

The paper's algorithms use two arbitration rules:

* **FIFO** — first-in first-out, used by the leveled-network algorithms
  (Theorems 2.1-2.4 explicitly promise FIFO queues, the simplest hardware).
* **Furthest-destination-first** — the priority rule of §3.4's mesh
  algorithm (packets with farther stage targets preempt closer ones).

Both expose the same tiny interface so the engine is discipline-agnostic.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Optional

from repro.routing.packet import Packet


class LinkQueue:
    """Interface: an output queue attached to one directed link."""

    def push(self, packet: Packet) -> None:
        raise NotImplementedError

    def pop(self) -> Packet:
        raise NotImplementedError

    def peek(self) -> Packet:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def find_combinable(self, key) -> Optional[Packet]:
        """A queued packet whose combine key equals *key* (else None)."""
        raise NotImplementedError


class FIFOQueue(LinkQueue):
    """Plain first-in first-out queue."""

    __slots__ = ("_q",)

    def __init__(self) -> None:
        self._q: deque[Packet] = deque()

    def push(self, packet: Packet) -> None:
        self._q.append(packet)

    def pop(self) -> Packet:
        return self._q.popleft()

    def peek(self) -> Packet:
        return self._q[0]

    def __len__(self) -> int:
        return len(self._q)

    def find_combinable(self, key) -> Optional[Packet]:
        for p in self._q:
            if (p.kind, p.address, p.dest) == key:
                return p
        return None


class FurthestFirstQueue(LinkQueue):
    """Priority queue: largest *priority* first, FIFO among ties.

    The priority function is supplied at construction (for the mesh it is
    "distance to the current stage target"); priorities are evaluated at
    push time, matching the paper's model where a packet's urgency is a
    static property of its destination.
    """

    __slots__ = ("_heap", "_counter", "_priority")

    def __init__(self, priority: Callable[[Packet], float]) -> None:
        self._heap: list[tuple[float, int, Packet]] = []
        self._counter = 0
        self._priority = priority

    def push(self, packet: Packet) -> None:
        heapq.heappush(self._heap, (-self._priority(packet), self._counter, packet))
        self._counter += 1

    def pop(self) -> Packet:
        return heapq.heappop(self._heap)[2]

    def peek(self) -> Packet:
        return self._heap[0][2]

    def __len__(self) -> int:
        return len(self._heap)

    def find_combinable(self, key) -> Optional[Packet]:
        for _, _, p in self._heap:
            if (p.kind, p.address, p.dest) == key:
                return p
        return None


def fifo_factory() -> FIFOQueue:
    return FIFOQueue()


def furthest_first_factory(priority: Callable[[Packet], float]):
    """Factory of FurthestFirstQueues sharing one priority function."""

    def make() -> FurthestFirstQueue:
        return FurthestFirstQueue(priority)

    return make
