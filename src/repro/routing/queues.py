"""Link-queue disciplines (§2.2.1).

The paper's algorithms use two arbitration rules:

* **FIFO** — first-in first-out, used by the leveled-network algorithms
  (Theorems 2.1-2.4 explicitly promise FIFO queues, the simplest hardware).
* **Furthest-destination-first** — the priority rule of §3.4's mesh
  algorithm (packets with farther stage targets preempt closer ones).

Both expose the same tiny interface so the engine is discipline-agnostic.

Combining lookups (``find_combinable``) are O(1): a queue keeps a side
index from :attr:`Packet.combine_key` to the resident packets with that
key.  The paper's footnote-3 model performs a merge "in one unit time",
so the simulator should too — the previous linear scan made hotspot
(CRCW) runs quadratic in the queue length.  The index is built lazily on
the first ``find_combinable`` call and maintained on push/pop from then
on, so non-combining runs (which never ask) pay nothing.  Packets
without an ``address`` have no combine key and are not indexed.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Iterable, Optional

from repro.routing.packet import Packet


class LinkQueue:
    """Interface: an output queue attached to one directed link."""

    def push(self, packet: Packet) -> None:
        raise NotImplementedError

    def pop(self) -> Packet:
        raise NotImplementedError

    def peek(self) -> Packet:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def find_combinable(self, key) -> Optional[Packet]:
        """The earliest-queued packet whose combine key equals *key*.

        Returns None when no resident packet carries that key.  Packets
        whose ``address`` is None have no combine key and never match.
        """
        raise NotImplementedError


def _index_build(packets: Iterable[Packet]) -> dict:
    index: dict[tuple, list[Packet]] = {}
    for packet in packets:
        key = packet.combine_key
        if key is not None:
            index.setdefault(key, []).append(packet)
    return index


def _index_add(index: dict, packet: Packet) -> None:
    key = packet.combine_key
    if key is not None:
        index.setdefault(key, []).append(packet)


def _index_remove(index: dict, packet: Packet) -> None:
    key = packet.combine_key
    if key is None:
        return
    bucket = index.get(key)
    if bucket:
        bucket.remove(packet)
        if not bucket:
            del index[key]


class FIFOQueue(LinkQueue):
    """Plain first-in first-out queue."""

    __slots__ = ("_q", "_index")

    def __init__(self) -> None:
        self._q: deque[Packet] = deque()
        self._index: dict | None = None

    def push(self, packet: Packet) -> None:
        self._q.append(packet)
        if self._index is not None:
            _index_add(self._index, packet)

    def pop(self) -> Packet:
        packet = self._q.popleft()
        if self._index is not None:
            _index_remove(self._index, packet)
        return packet

    def peek(self) -> Packet:
        return self._q[0]

    def __len__(self) -> int:
        return len(self._q)

    def find_combinable(self, key) -> Optional[Packet]:
        if self._index is None:
            self._index = _index_build(self._q)
        bucket = self._index.get(key)
        return bucket[0] if bucket else None


class FurthestFirstQueue(LinkQueue):
    """Priority queue: largest *priority* first, FIFO among ties.

    The priority function is supplied at construction (for the mesh it is
    "distance to the current stage target"); priorities are evaluated at
    push time, matching the paper's model where a packet's urgency is a
    static property of its destination.
    """

    __slots__ = ("_heap", "_counter", "_priority", "_index")

    def __init__(self, priority: Callable[[Packet], float]) -> None:
        self._heap: list[tuple[float, int, Packet]] = []
        self._counter = 0
        self._priority = priority
        self._index: dict | None = None

    def push(self, packet: Packet) -> None:
        heapq.heappush(self._heap, (-self._priority(packet), self._counter, packet))
        self._counter += 1
        if self._index is not None:
            _index_add(self._index, packet)

    def pop(self) -> Packet:
        packet = heapq.heappop(self._heap)[2]
        if self._index is not None:
            _index_remove(self._index, packet)
        return packet

    def peek(self) -> Packet:
        return self._heap[0][2]

    def __len__(self) -> int:
        return len(self._heap)

    def find_combinable(self, key) -> Optional[Packet]:
        if self._index is None:
            self._index = _index_build(entry[2] for entry in self._heap)
        bucket = self._index.get(key)
        return bucket[0] if bucket else None


def fifo_factory() -> FIFOQueue:
    return FIFOQueue()


def furthest_first_factory(priority: Callable[[Packet], float]):
    """Factory of FurthestFirstQueues sharing one priority function."""

    def make() -> FurthestFirstQueue:
        return FurthestFirstQueue(priority)

    return make
