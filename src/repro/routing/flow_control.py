"""Credit-based O(1)-queue flow control (Corollary 3.3's protocol layer).

The plain ``node_capacity`` backpressure of §3.4 / [6] bounds every
node's resident packets by c, but it can *wedge*: two nodes full of
packets crossing in opposite directions each wait for the other to free
a slot, and the whole network stalls forever (both engines reproduce the
wedge exactly; see ``tests/test_backpressure.py``).  Corollary 3.3
nevertheless promises PRAM emulation with constant-size queues, which is
only realizable if the constant-queue discipline is *deadlock-free*.
This module supplies that discipline, shared by the reference
:class:`~repro.routing.engine.SynchronousEngine` and the compiled
:class:`~repro.routing.fast_engine.FastPathEngine`:

Credits
-------
A node w with capacity c holds a pool of c buffer credits.  A link
transmission into w consumes one credit (the engines implement the pool
as ``node_load[w] + reserved[w] < c``: resident packets plus the slots
claimed earlier in the same step).  A credit returns to the pool the
moment a packet *dequeues* from w — w forwarding a packet downstream
within the same synchronous step already frees the slot for a later
upstream link, so credits circulate at full rate.  Heads that exit the
network at the link's target are exempt (a delivered packet occupies no
queue space).  This is exactly the reserve-as-you-transmit discipline
introduced in PR 2; ``flow_control="credit"`` keeps it as the *bulk*
class and adds an escape class on top.

Escape channel
--------------
Every directed link carries one dedicated single-packet **escape
buffer** at its receiving end — a constant per-node overhead of
in-degree extra slots (≤ 4 on a mesh, ≤ d on a leveled network), i.e.
still the O(1) of Corollary 3.3; the bulk pool stays capped at
``node_capacity`` and ``max_node_load`` never counts escape occupants.
The head of a credit-starved bulk queue may advance into the escape
buffer of the link it crosses; an escape occupant advances along its
route each step — back into a bulk slot when a credit is free, else
into the next link's escape buffer — and escape occupants have absolute
priority on their next link.

Invariants
----------
I1 (bounded residency)
    Network *arrivals* never push a node's resident bulk packets above
    ``node_capacity``: bulk arrivals reserve credits during the
    transmission phase, escape arrivals occupy only their link's
    dedicated buffer.  Injections are outside the protocol (a source
    that injects k packets at once holds k from step 0 — the injection
    backlog is the PRAM processor's own buffer, not a routing queue),
    so ``max_node_load <= node_capacity`` holds end to end exactly when
    no node injects more than ``node_capacity`` packets at one step, as
    in all one-request-per-processor workloads.
I2 (credit conservation)
    A node's outstanding credits equal capacity minus resident bulk
    packets; every consume (transmit into bulk) is paired with a return
    (dequeue out of bulk), so credits are neither minted nor leaked.
I3 (escape acyclicity)
    All shipped route families traverse links in strictly increasing
    *rank* — dimension order for greedy mesh / linear / hypercube
    routes, (stage, direction, coordinate) for the 3-stage mesh
    algorithm, (pass, level) for leveled networks — so an escape
    occupant only ever waits on escape buffers of strictly larger rank:
    the escape channel-dependency graph is acyclic.
I4 (liveness)
    In any reachable configuration with waiting packets, at least one
    packet moves per step: the maximal-rank escape occupant can always
    advance (I3), and if no escape buffer is occupied, any blocked bulk
    head can enter its link's (free) escape buffer.  Hence credit runs
    on rank-monotone routes never deadlock and finish within the total
    hop count.

Routes that are *not* rank-monotone (an adaptive policy doubling back,
a custom topology with cyclic greedy paths) void I3; the engines'
deadlock detector then raises :class:`DeadlockError` — a no-progress
step with nonempty queues is reported as a diagnostic instead of
spinning to ``max_steps``.

Both engines keep their per-run escape state in a :class:`CreditState`
(link keys are ``(u, w)`` node-key pairs in the reference engine and
dense interned link indices in the fast engine — a 1:1 correspondence,
which is what makes the two implementations bit-for-bit identical under
a fixed seed).  Stalls and escape traversals are surfaced as the
``credits_stalled`` / ``escape_hops`` counters on
:class:`~repro.routing.metrics.RoutingStats`.
"""

from __future__ import annotations

from typing import Hashable

FLOW_CONTROL_MODES = ("none", "credit")


def resolve_flow_control(
    mode: str,
    *,
    node_capacity: int | None = None,
    node_service_rate: int | None = None,
) -> str:
    """Validate a flow-control request against the engine configuration.

    ``"credit"`` needs ``node_capacity`` (credits are buffer slots — an
    unbounded node has nothing to grant) and is not defined together
    with ``node_service_rate`` (the serialized-departure model has its
    own arbitration; no shipped configuration combines them).
    """
    if mode not in FLOW_CONTROL_MODES:
        raise ValueError(
            f"unknown flow_control mode {mode!r}; pick one of {FLOW_CONTROL_MODES}"
        )
    if mode == "credit":
        if node_capacity is None:
            raise ValueError("flow_control='credit' requires node_capacity")
        if node_service_rate is not None:
            raise ValueError(
                "flow_control='credit' is not supported with node_service_rate"
            )
    return mode


class DeadlockError(RuntimeError):
    """A routing step made no progress while packets were still queued.

    Raised by both engines in place of spinning to ``max_steps``: with
    no arrivals, no injections, and no pending injection times, the
    network state is provably static forever.  ``stats`` carries the
    run's :class:`~repro.routing.metrics.RoutingStats` at the moment of
    detection (``completed`` is False; per-packet fields are written
    back, so the blocked packets can be inspected).

    When an :class:`~repro.obs.Observer` with a flight recorder was
    attached to the raising engine, ``flight_tail`` holds the last-K
    recorded step events leading up to the deadlock (oldest first);
    without one it stays ``()``.
    """

    #: flight-recorder tail at raise time (see repro.obs.FlightRecorder)
    flight_tail: tuple = ()

    def __init__(self, stats, detail: str = "") -> None:
        msg = f"routing deadlocked: {stats}"
        if detail:
            msg = f"{msg} ({detail})"
        super().__init__(msg)
        self.stats = stats


def no_progress_detail(
    t: int, remaining: int, queued_links: int, fc: "CreditState | None"
) -> str:
    """Shared diagnostic line for a detected no-progress step.

    Used by the reference engine and both fast-engine modes so a
    :class:`DeadlockError` reads the same whichever simulator raised it.
    """
    detail = (
        f"no progress at t={t} with {remaining} packets queued "
        f"over {queued_links} links"
    )
    if fc is not None and fc.escape_at:
        detail += f" and {len(fc.escape_at)} escape buffers"
    return detail


class CreditState:
    """Per-run escape-buffer state shared by both engines.

    ``escape_at`` maps an occupied link (its escape buffer sits at the
    link's receiving node) to the occupant — a :class:`Packet` in the
    reference engine, a packet index in the fast engine.  Dict insertion
    order *is* the occupancy order, which both engines use as the escape
    subphase's iteration order (occupancies are created by ``place``
    calls, whose order the engines already keep identical).
    ``escape_next`` maps the same link to the occupant's next link.
    """

    __slots__ = ("escape_at", "escape_next", "credits_stalled", "escape_hops")

    def __init__(self) -> None:
        self.escape_at: dict[Hashable, object] = {}
        self.escape_next: dict[Hashable, Hashable] = {}
        self.credits_stalled = 0
        self.escape_hops = 0

    def available(self, link: Hashable) -> bool:
        """Whether *link*'s escape buffer is unoccupied.

        This alone does not rule out a same-step double booking — that
        guard lives in the engines: a claim is always tied to a
        transmission across the buffer's link, the engines' ``used``
        sets allow one transmission per link per step, and they check
        ``used`` before ever consulting this method.  :meth:`occupy`
        still verifies the invariant at place time.
        """
        return link not in self.escape_at

    def claim(self, link: Hashable) -> None:
        """Count an escape traversal of *link*.

        Pure accounting — the occupancy itself lands at place time via
        :meth:`occupy`; see :meth:`available` for why no claim record
        is needed in between.
        """
        self.escape_hops += 1

    def occupy(self, link: Hashable, occupant, next_link: Hashable) -> None:
        if link in self.escape_at:  # pragma: no cover - protocol guard
            raise RuntimeError(f"escape buffer of link {link!r} double-booked")
        self.escape_at[link] = occupant
        self.escape_next[link] = next_link

    def vacate(self, link: Hashable) -> None:
        del self.escape_at[link]
        del self.escape_next[link]

    def stall(self) -> None:
        self.credits_stalled += 1
