"""The 3-stage randomized mesh routing algorithm of §3.4 (Theorem 3.1).

The n x n mesh is partitioned into horizontal slices of ``slice_rows``
rows (Figure 5; the paper picks εn rows with ε = 1/log n).  A packet from
(i, j) to (k, l):

1. moves along column j to a random row i' inside its origin's slice;
2. moves along row i' to column l;
3. moves along column l to row k.

Edge contention is resolved *furthest destination first* — the priority of
a packet is the distance left in its current stage.  Theorem 3.1: each
full run finishes in 2n + o(n) steps w.h.p. with queues O(log n); a
node-capacity variant (à la [6] / Corollary 3.3) brings queues to O(1).

The greedy dimension-order router (no stage 1 randomization) is the
classical baseline that suffers Θ(n²)-ish hot spots on adversarial
many-one patterns.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.routing.engine import SynchronousEngine
from repro.routing.metrics import RoutingStats
from repro.routing.packet import Packet, make_packets
from repro.routing.queues import fifo_factory, furthest_first_factory
from repro.topology.mesh import Mesh2D
from repro.util.rng import as_generator


def default_slice_rows(n: int) -> int:
    """The paper's ε = 1/log n choice: slices of n/log₂(n) rows."""
    if n <= 2:
        return 1
    return max(1, round(n / math.log2(n)))


class MeshRouter:
    """3-stage randomized router with furthest-destination-first queues."""

    def __init__(
        self,
        mesh: Mesh2D,
        *,
        seed=None,
        slice_rows: int | None = None,
        discipline: str = "furthest_first",
        node_capacity: int | None = None,
        track_paths: bool = False,
        combine: bool = False,
    ) -> None:
        self.mesh = mesh
        self.rng = as_generator(seed)
        self.slice_rows = (
            default_slice_rows(mesh.rows) if slice_rows is None else slice_rows
        )
        if self.slice_rows < 1:
            raise ValueError("slice_rows must be >= 1")
        if discipline == "furthest_first":
            factory = furthest_first_factory(self._priority)
        elif discipline == "fifo":
            factory = fifo_factory
        else:
            raise ValueError(f"unknown discipline {discipline!r}")
        self.discipline = discipline
        self.engine = SynchronousEngine(
            queue_factory=factory,
            node_capacity=node_capacity,
            track_paths=track_paths,
            combine=combine,
        )

    # ------------------------------------------------------------------
    def _priority(self, p: Packet) -> float:
        """Distance remaining in the packet's current stage (§3.4:
        'furthest destination first')."""
        stage, i_rand = p.state
        r, c = self.mesh.unpack(p.node)
        dr, dc = self.mesh.unpack(p.dest)
        if stage == 0:
            return abs(i_rand - r)
        if stage == 1:
            return abs(dc - c)
        return abs(dr - r)

    def _next_hop(self, p: Packet):
        stage, i_rand = p.state
        r, c = self.mesh.unpack(p.node)
        dr, dc = self.mesh.unpack(p.dest)
        if stage == 0:
            if r != i_rand:
                return self.mesh.pack(r + (1 if i_rand > r else -1), c)
            stage = 1
            p.state = (1, i_rand)
        if stage == 1:
            if c != dc:
                return self.mesh.pack(r, c + (1 if dc > c else -1))
            stage = 2
            p.state = (2, i_rand)
        if r != dr:
            return self.mesh.pack(r + (1 if dr > r else -1), c)
        return None

    # ------------------------------------------------------------------
    def _assign_random_rows(self, packets: list[Packet]) -> None:
        for p in packets:
            r, _ = self.mesh.unpack(p.source)
            s = self.mesh.slice_of_row(r, self.slice_rows)
            rows = self.mesh.slice_row_range(s, self.slice_rows)
            i_rand = int(self.rng.integers(rows.start, rows.stop))
            p.state = (0, i_rand)

    def route(
        self,
        sources: Sequence[int],
        dests: Sequence[int],
        *,
        max_steps: int | None = None,
        packets: list[Packet] | None = None,
    ) -> RoutingStats:
        if max_steps is None:
            max_steps = 30 * (self.mesh.rows + self.mesh.cols) + 200
        if packets is None:
            packets = make_packets(list(map(int, sources)), list(map(int, dests)))
        self._assign_random_rows(packets)
        return self.engine.run(packets, self._next_hop, max_steps=max_steps)

    def route_permutation(
        self, perm: Sequence[int] | np.ndarray, *, max_steps: int | None = None
    ) -> RoutingStats:
        perm = np.asarray(perm)
        n = self.mesh.num_nodes
        if perm.shape != (n,) or sorted(perm.tolist()) != list(range(n)):
            raise ValueError("perm must be a permutation of all mesh nodes")
        return self.route(np.arange(n), perm, max_steps=max_steps)

    def route_random_permutation(self, *, max_steps: int | None = None) -> RoutingStats:
        return self.route_permutation(
            self.rng.permutation(self.mesh.num_nodes), max_steps=max_steps
        )


class GreedyMeshRouter:
    """Deterministic dimension-order (column-then-row) FIFO baseline."""

    def __init__(self, mesh: Mesh2D, *, node_capacity: int | None = None) -> None:
        self.mesh = mesh
        self.engine = SynchronousEngine(
            queue_factory=fifo_factory, node_capacity=node_capacity
        )

    def _next_hop(self, p: Packet):
        if p.node == p.dest:
            return None
        return self.mesh.route_next(p.node, p.dest)

    def route(
        self,
        sources: Sequence[int],
        dests: Sequence[int],
        *,
        max_steps: int | None = None,
    ) -> RoutingStats:
        if max_steps is None:
            max_steps = 200 * (self.mesh.rows + self.mesh.cols) + 200
        packets = make_packets(list(map(int, sources)), list(map(int, dests)))
        return self.engine.run(packets, self._next_hop, max_steps=max_steps)
