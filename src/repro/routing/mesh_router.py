"""The 3-stage randomized mesh routing algorithm of §3.4 (Theorem 3.1).

The n x n mesh is partitioned into horizontal slices of ``slice_rows``
rows (Figure 5; the paper picks εn rows with ε = 1/log n).  A packet from
(i, j) to (k, l):

1. moves along column j to a random row i' inside its origin's slice;
2. moves along row i' to column l;
3. moves along column l to row k.

Edge contention is resolved *furthest destination first* — the priority of
a packet is the distance left in its current stage.  Theorem 3.1: each
full run finishes in 2n + o(n) steps w.h.p. with queues O(log n); a
node-capacity variant (à la [6] / Corollary 3.3) brings queues to O(1).

The greedy dimension-order router (no stage 1 randomization) is the
classical baseline that suffers Θ(n²)-ish hot spots on adversarial
many-one patterns.

Both routers honour ``engine="auto" | "fast" | "reference"``: the stage-0
random rows are pre-drawn in one batched RNG call before an engine is
chosen, and the whole trajectory (plus its per-hop
furthest-destination-first priorities) is a closed-form function of
(source, i', dest), so the compiled fast path replays the reference
engine's queue dynamics bit for bit.  ``node_capacity`` runs take the
fast engine's vectorized constrained-batch mode (batch credit
accounting); with ``flow_control="credit"`` they realize Corollary
3.3's deadlock-free O(1)-queue discipline (see ``docs/flow_control.md``).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.routing.engine import SynchronousEngine
from repro.routing.fast_engine import FastPathEngine, resolve_engine_mode
from repro.routing.metrics import RoutingStats
from repro.routing.packet import Packet, make_packets
from repro.routing.queues import fifo_factory, furthest_first_factory
from repro.topology.compiled import compile_mesh
from repro.topology.mesh import Mesh2D
from repro.util.rng import as_generator


def default_slice_rows(n: int) -> int:
    """The paper's ε = 1/log n choice: slices of n/log₂(n) rows."""
    if n <= 2:
        return 1
    return max(1, round(n / math.log2(n)))


def _run_fast_mesh(
    mesh: Mesh2D,
    packets: list[Packet],
    *,
    max_steps: int,
    inter_rows=None,
    with_priorities: bool = False,
    combine: bool = False,
    track_paths: bool = False,
    node_capacity: int | None = None,
    flow_control: str = "none",
    link_faults=None,
    fault_base: int = 0,
    observer=None,
):
    """Compile mesh trajectories and replay them on the fast engine.

    Shared by the 3-stage and greedy routers (greedy is the 3-stage plan
    with an empty random stage).  Returns ``(plan, stats)``.
    """
    compiled = compile_mesh(mesh)
    plan = compiled.three_stage(
        [p.source for p in packets],
        [p.dest for p in packets],
        inter_rows,
        with_priorities=with_priorities,
    )
    fast = FastPathEngine(
        combine=combine,
        track_paths=track_paths,
        node_capacity=node_capacity,
        flow_control=flow_control,
        observer=observer,
    )
    # Arithmetic link ids skip the engine's np.unique interning pass in
    # both vectorized modes (unconstrained batch and the constrained
    # batch-credit mode take them; capacity runs also need link_dst for
    # the credit/exemption accounting).
    link_src, link_dst = compiled.link_arrays()
    links = (compiled.link_matrix(plan.ids), link_src, link_dst)
    stats = fast.run(
        packets,
        plan.ids,
        num_nodes=mesh.num_nodes,
        max_steps=max_steps,
        path_lengths=plan.lengths,
        priorities=plan.priorities,
        links=links,
        link_faults=link_faults,
        fault_base=fault_base,
    )
    return plan, stats


class MeshRouter:
    """3-stage randomized router with furthest-destination-first queues.

    Parameters
    ----------
    seed:
        RNG seed/generator for the stage-0 random rows (and permutation
        draws); a fixed seed gives bit-identical results on both engines.
    slice_rows:
        Height of the horizontal slices confining the stage-0 random
        row (default: the paper's n / log2(n)).
    discipline:
        Queue arbitration: ``"furthest_first"`` (§3.4's
        furthest-destination-first, the default) or ``"fifo"``.
    node_capacity:
        Bound on packets resident at one node; upstream links stall
        when a node is full (backpressure, §3.4 / Corollary 3.3).
        ``None`` (default) disables the capacity model.
    flow_control:
        ``"none"`` (default) is plain backpressure — tight capacities
        can wedge crossing flows, surfaced as
        :class:`~repro.routing.flow_control.DeadlockError`;
        ``"credit"`` (requires ``node_capacity``) adds the deadlock-free
        credit/escape protocol of :mod:`repro.routing.flow_control`.
    track_paths:
        Record visited nodes in ``packet.trace`` (reference engine; the
        fast path exposes compiled itineraries via ``last_fast_paths``).
    combine:
        CRCW combining of same-(kind, address, dest) packets at enqueue.
    engine:
        ``"auto"`` (default; fast path, ``REPRO_ENGINE`` overridable),
        ``"fast"``, or ``"reference"`` — see ``docs/architecture.md``.
    """

    def __init__(
        self,
        mesh: Mesh2D,
        *,
        seed=None,
        slice_rows: int | None = None,
        discipline: str = "furthest_first",
        node_capacity: int | None = None,
        flow_control: str = "none",
        track_paths: bool = False,
        combine: bool = False,
        engine: str = "auto",
        link_faults=None,
        fault_base: int = 0,
        observer=None,
    ) -> None:
        self.mesh = mesh
        self.rng = as_generator(seed)
        #: forwarded to whichever engine runs (profiling / flight data)
        self.observer = observer
        self.slice_rows = (
            default_slice_rows(mesh.rows) if slice_rows is None else slice_rows
        )
        if self.slice_rows < 1:
            raise ValueError("slice_rows must be >= 1")
        if discipline == "furthest_first":
            factory = furthest_first_factory(self._priority)
        elif discipline == "fifo":
            factory = fifo_factory
        else:
            raise ValueError(f"unknown discipline {discipline!r}")
        self.discipline = discipline
        self.node_capacity = node_capacity
        self.flow_control = flow_control
        self.combine = combine
        self.track_paths = track_paths
        self.engine_mode = engine
        resolve_engine_mode(engine)  # validate eagerly
        #: after a fast-path run: the packets' compiled (padded) node-id
        #: itineraries as an ``(n, maxlen+1)`` int matrix, aligned with
        #: the routed packet list (None after a reference run).  The
        #: emulation layer reuses these to build reply itineraries
        #: without re-encoding traces; row i is valid up to position
        #: ``packet.hops``.
        self.last_fast_paths: np.ndarray | None = None
        # Mesh link keys are (u, v) packed-node-id pairs in *both*
        # engines, so one identity-translated view serves each; the
        # emulator validates specs against the topology up front.
        self.fault_base = int(fault_base)
        self._fault_view = None
        if link_faults is not None:
            nn = mesh.num_nodes

            def translate(spec):
                u, w = spec
                if not (0 <= u < nn and 0 <= w < nn):
                    raise ValueError(f"link fault spec {spec!r} out of range")
                return ((int(u), int(w)),)

            self._fault_view = link_faults.view(translate)
        self.engine = SynchronousEngine(
            queue_factory=factory,
            node_capacity=node_capacity,
            flow_control=flow_control,
            track_paths=track_paths,
            combine=combine,
            observer=observer,
        )

    # ------------------------------------------------------------------
    def _priority(self, p: Packet) -> float:
        """Distance remaining in the packet's current stage (§3.4:
        'furthest destination first')."""
        stage, i_rand = p.state
        r, c = self.mesh.unpack(p.node)
        dr, dc = self.mesh.unpack(p.dest)
        if stage == 0:
            return abs(i_rand - r)
        if stage == 1:
            return abs(dc - c)
        return abs(dr - r)

    def _next_hop(self, p: Packet):
        stage, i_rand = p.state
        r, c = self.mesh.unpack(p.node)
        dr, dc = self.mesh.unpack(p.dest)
        if stage == 0:
            if r != i_rand:
                return self.mesh.pack(r + (1 if i_rand > r else -1), c)
            stage = 1
            p.state = (1, i_rand)
        if stage == 1:
            if c != dc:
                return self.mesh.pack(r, c + (1 if dc > c else -1))
            stage = 2
            p.state = (2, i_rand)
        if r != dr:
            return self.mesh.pack(r + (1 if dr > r else -1), c)
        return None

    # ------------------------------------------------------------------
    def _assign_random_rows(self, packets: list[Packet]) -> None:
        """Draw every packet's stage-0 random row in one batched RNG call.

        The batch happens *before* an engine is chosen, so both engines
        consume identical random bits (the differential-test contract).
        """
        if not packets:
            return
        src = np.fromiter(
            (p.source for p in packets), dtype=np.int64, count=len(packets)
        )
        rows = src // self.mesh.cols
        lo = (rows // self.slice_rows) * self.slice_rows
        hi = np.minimum(lo + self.slice_rows, self.mesh.rows)
        draws = self.rng.integers(lo, hi)
        for p, i_rand in zip(packets, draws.tolist()):
            p.state = (0, i_rand)

    def route(
        self,
        sources: Sequence[int],
        dests: Sequence[int],
        *,
        max_steps: int | None = None,
        packets: list[Packet] | None = None,
    ) -> RoutingStats:
        if max_steps is None:
            max_steps = 30 * (self.mesh.rows + self.mesh.cols) + 200
        if packets is None:
            packets = make_packets(list(map(int, sources)), list(map(int, dests)))
        self._assign_random_rows(packets)
        self.last_fast_paths = None
        if resolve_engine_mode(self.engine_mode) == "fast":
            return self._run_fast(packets, max_steps)
        return self.engine.run(
            packets,
            self._next_hop,
            max_steps=max_steps,
            link_faults=self._fault_view,
            fault_base=self.fault_base,
        )

    def _run_fast(self, packets: list[Packet], max_steps: int) -> RoutingStats:
        """Compile 3-stage trajectories + priorities; replay them fast."""
        plan, stats = _run_fast_mesh(
            self.mesh,
            packets,
            max_steps=max_steps,
            inter_rows=[p.state[1] for p in packets],
            with_priorities=(self.discipline == "furthest_first"),
            combine=self.combine,
            track_paths=self.track_paths,
            node_capacity=self.node_capacity,
            flow_control=self.flow_control,
            link_faults=self._fault_view,
            fault_base=self.fault_base,
            observer=self.observer,
        )
        self.last_fast_paths = plan.ids
        return stats

    def route_permutation(
        self, perm: Sequence[int] | np.ndarray, *, max_steps: int | None = None
    ) -> RoutingStats:
        perm = np.asarray(perm)
        n = self.mesh.num_nodes
        if perm.shape != (n,) or sorted(perm.tolist()) != list(range(n)):
            raise ValueError("perm must be a permutation of all mesh nodes")
        return self.route(np.arange(n), perm, max_steps=max_steps)

    def route_random_permutation(self, *, max_steps: int | None = None) -> RoutingStats:
        return self.route_permutation(
            self.rng.permutation(self.mesh.num_nodes), max_steps=max_steps
        )


class GreedyMeshRouter:
    """Deterministic dimension-order (column-then-row) FIFO baseline.

    ``node_capacity`` / ``flow_control`` / ``engine`` behave exactly as
    on :class:`MeshRouter` (dimension-order routes are rank-monotone,
    so ``flow_control="credit"`` is deadlock-free here too).
    """

    def __init__(
        self,
        mesh: Mesh2D,
        *,
        node_capacity: int | None = None,
        flow_control: str = "none",
        engine: str = "auto",
        observer=None,
    ) -> None:
        self.mesh = mesh
        self.node_capacity = node_capacity
        self.flow_control = flow_control
        self.engine_mode = engine
        self.observer = observer
        resolve_engine_mode(engine)  # validate eagerly
        self.engine = SynchronousEngine(
            queue_factory=fifo_factory,
            node_capacity=node_capacity,
            flow_control=flow_control,
            observer=observer,
        )

    def _next_hop(self, p: Packet):
        if p.node == p.dest:
            return None
        return self.mesh.route_next(p.node, p.dest)

    def route(
        self,
        sources: Sequence[int],
        dests: Sequence[int],
        *,
        max_steps: int | None = None,
    ) -> RoutingStats:
        if max_steps is None:
            max_steps = 200 * (self.mesh.rows + self.mesh.cols) + 200
        packets = make_packets(list(map(int, sources)), list(map(int, dests)))
        if resolve_engine_mode(self.engine_mode) == "fast":
            _plan, stats = _run_fast_mesh(
                self.mesh,
                packets,
                max_steps=max_steps,
                node_capacity=self.node_capacity,
                flow_control=self.flow_control,
                observer=self.observer,
            )
            return stats
        return self.engine.run(packets, self._next_hop, max_steps=max_steps)
