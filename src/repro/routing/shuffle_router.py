"""Algorithm 2.3 — randomized routing on the d-way shuffle (§2.3.5).

Phase 1 sends each packet along the unique n-link path to a random
intermediate node; phase 2 follows the unique n-link path to the true
destination.  Every packet crosses exactly 2n (directed, physical) shuffle
links; both phases share those links, so contention is modeled physically.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.routing.engine import SynchronousEngine
from repro.routing.fast_engine import FastPathEngine, resolve_engine_mode
from repro.routing.metrics import RoutingStats
from repro.routing.packet import Packet, make_packets
from repro.routing.queues import fifo_factory
from repro.topology.compiled import shuffle_unique_paths
from repro.topology.shuffle import DWayShuffle
from repro.util.rng import as_generator


class ShuffleRouter:
    """Two-phase unique-path router on the physical d-way shuffle.

    Intermediates are pre-drawn, so a packet's whole 2n-hop itinerary is
    known up front; with ``engine="auto"``/``"fast"`` the itineraries are
    compiled by digit arithmetic (one vectorized pass per hop index) and
    replayed on :class:`~repro.routing.fast_engine.FastPathEngine`,
    reproducing the reference engine's results exactly.
    """

    def __init__(
        self,
        shuffle: DWayShuffle,
        *,
        seed=None,
        randomized: bool = True,
        engine: str = "auto",
    ) -> None:
        self.shuffle = shuffle
        self.randomized = randomized
        self.rng = as_generator(seed)
        self.engine_mode = engine
        resolve_engine_mode(engine)  # validate eagerly
        self.engine = SynchronousEngine(queue_factory=fifo_factory)

    def _next_hop(self, p: Packet):
        # state = (phase, hops_in_phase, intermediate)
        phase, k, inter = p.state
        n = self.shuffle.n
        if phase == 0:
            if k == n:
                phase, k = 1, 0  # arrived at the intermediate; fall through
                p.state = (1, 0, inter)
            else:
                p.state = (0, k + 1, inter)
                return self.shuffle.unique_path_next(p.node, inter, k)
        if k == n:
            return None  # completed the second unique path: delivered
        p.state = (1, k + 1, inter)
        return self.shuffle.unique_path_next(p.node, p.dest, k)

    def route(
        self,
        sources: Sequence[int],
        dests: Sequence[int],
        *,
        max_steps: int | None = None,
    ) -> RoutingStats:
        if max_steps is None:
            max_steps = 60 * self.shuffle.n + 200
        packets = make_packets(list(map(int, sources)), list(map(int, dests)))
        inters = None
        if self.randomized:
            inters = self.rng.integers(self.shuffle.num_nodes, size=len(packets))
            for p, r in zip(packets, inters):
                p.state = (0, 0, int(r))
        else:
            # Ablation baseline: one deterministic unique-path pass straight
            # to the destination (no Valiant phase 1).
            for p in packets:
                p.state = (1, 0, None)
        if resolve_engine_mode(self.engine_mode) == "fast":
            return self._run_fast(packets, inters, max_steps)
        return self.engine.run(packets, self._next_hop, max_steps=max_steps)

    def _run_fast(self, packets, inters, max_steps: int) -> RoutingStats:
        """Compile every packet's digit-insertion itinerary; replay fast.

        Hop k of a unique-path phase inserts the target's k-th least
        significant digit at the front, so the whole trajectory matrix
        falls out of n (or 2n) vectorized shift-and-insert operations
        (:func:`repro.topology.compiled.shuffle_unique_paths`).
        """
        sh = self.shuffle
        dests = np.fromiter(
            (p.dest for p in packets), dtype=np.int64, count=len(packets)
        )
        targets = ([inters] if inters is not None else []) + [dests]
        paths = shuffle_unique_paths(
            sh, [p.node for p in packets], targets
        )
        fast = FastPathEngine()
        return fast.run(
            packets, paths, num_nodes=sh.num_nodes, max_steps=max_steps
        )

    def route_permutation(
        self, perm: Sequence[int] | np.ndarray, *, max_steps: int | None = None
    ) -> RoutingStats:
        perm = np.asarray(perm)
        n = self.shuffle.num_nodes
        if perm.shape != (n,) or sorted(perm.tolist()) != list(range(n)):
            raise ValueError("perm must be a permutation of all shuffle nodes")
        return self.route(np.arange(n), perm, max_steps=max_steps)

    def route_random_permutation(self, *, max_steps: int | None = None) -> RoutingStats:
        return self.route_permutation(
            self.rng.permutation(self.shuffle.num_nodes), max_steps=max_steps
        )

    def route_n_relation(
        self, *, h: int | None = None, max_steps: int | None = None
    ) -> RoutingStats:
        """Random partial n-relation routing (Corollary 2.2)."""
        from repro.util.rng import random_h_relation

        h = h if h is not None else self.shuffle.n
        s, d = random_h_relation(self.rng, self.shuffle.num_nodes, h)
        return self.route(s, d, max_steps=max_steps)
