"""Algorithm 2.2 — randomized permutation routing on the n-star (§2.3.3-2.3.4).

Phase 1 sends each packet along a greedy minimal path to a uniformly
random intermediate node; phase 2 continues greedily to the true
destination.  Queues are FIFO per directed physical link, and — unlike the
logical leveled view — both phases contend for the same physical links,
which is the honest physical-machine simulation of Theorem 2.2.

A deterministic greedy (single-phase) router is included as the ablation
baseline: oblivious greedy routing without Valiant randomization suffers
on structured permutations, which is *why* phase 1 exists.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.routing.engine import SynchronousEngine
from repro.routing.fast_engine import FastPathEngine, resolve_engine_mode
from repro.routing.metrics import RoutingStats
from repro.routing.packet import Packet, make_packets
from repro.routing.queues import fifo_factory
from repro.topology.star import StarGraph
from repro.util.rng import as_generator


class StarRouter:
    """Two-phase randomized router on the physical n-star graph.

    Intermediates are pre-drawn and the greedy cycle algorithm is
    deterministic, so each packet's itinerary is known before routing;
    with ``engine="auto"``/``"fast"`` the itineraries are precompiled and
    replayed on :class:`~repro.routing.fast_engine.FastPathEngine`,
    reproducing the reference engine's results exactly.
    """

    def __init__(
        self,
        star: StarGraph,
        *,
        seed=None,
        randomized: bool = True,
        engine: str = "auto",
    ) -> None:
        self.star = star
        self.randomized = randomized
        self.rng = as_generator(seed)
        self.engine_mode = engine
        resolve_engine_mode(engine)  # validate eagerly
        self.engine = SynchronousEngine(queue_factory=fifo_factory)

    def _next_hop(self, p: Packet):
        # state = intermediate node id, or None once phase 2 has begun
        if p.state is not None:
            if p.node == p.state:
                p.state = None  # reached the intermediate: start phase 2
            else:
                return self.star.route_next(p.node, p.state)
        if p.node == p.dest:
            return None
        return self.star.route_next(p.node, p.dest)

    def route(
        self,
        sources: Sequence[int],
        dests: Sequence[int],
        *,
        max_steps: int | None = None,
    ) -> RoutingStats:
        if max_steps is None:
            max_steps = 60 * self.star.diameter + 200
        packets = make_packets(list(map(int, sources)), list(map(int, dests)))
        if self.randomized:
            inters = self.rng.integers(self.star.num_nodes, size=len(packets))
            for p, r in zip(packets, inters):
                p.state = int(r)
        if resolve_engine_mode(self.engine_mode) == "fast":
            return self._run_fast(packets, max_steps)
        return self.engine.run(packets, self._next_hop, max_steps=max_steps)

    def _run_fast(self, packets, max_steps: int) -> RoutingStats:
        """Precompute greedy itineraries (via intermediates); replay fast."""
        route_next = self.star.route_next
        paths = []
        for p in packets:
            cur = p.node
            path = [cur]
            inter = p.state
            if inter is not None:
                while cur != inter:
                    cur = route_next(cur, inter)
                    path.append(cur)
            while cur != p.dest:
                cur = route_next(cur, p.dest)
                path.append(cur)
            paths.append(path)
        fast = FastPathEngine()
        return fast.run(
            packets, paths, num_nodes=self.star.num_nodes, max_steps=max_steps
        )

    def route_permutation(
        self, perm: Sequence[int] | np.ndarray, *, max_steps: int | None = None
    ) -> RoutingStats:
        perm = np.asarray(perm)
        n = self.star.num_nodes
        if perm.shape != (n,) or sorted(perm.tolist()) != list(range(n)):
            raise ValueError("perm must be a permutation of all star nodes")
        return self.route(np.arange(n), perm, max_steps=max_steps)

    def route_random_permutation(self, *, max_steps: int | None = None) -> RoutingStats:
        return self.route_permutation(
            self.rng.permutation(self.star.num_nodes), max_steps=max_steps
        )

    def route_n_relation(self, *, h: int | None = None, max_steps: int | None = None) -> RoutingStats:
        """Random partial n-relation routing (Corollary 2.1)."""
        from repro.util.rng import random_h_relation

        h = h if h is not None else self.star.n
        s, d = random_h_relation(self.rng, self.star.num_nodes, h)
        return self.route(s, d, max_steps=max_steps)


def adversarial_star_permutation(star: StarGraph) -> np.ndarray:
    """A structured permutation that punishes non-randomized greedy routing.

    Every node routes to its "reversal-rotation" image: the permutation
    label reversed.  Reversal concentrates traffic through the identity
    region of the graph under the greedy cycle algorithm, creating hot
    links — the classical motivation for Valiant's random phase.
    """
    n = star.n
    out = np.empty(star.num_nodes, dtype=np.int64)
    for v in range(star.num_nodes):
        perm = star.label(v)
        out[v] = star.node_id(tuple(reversed(perm)))
    return out
