"""Packets: the unit of communication in every routing algorithm (§2.2.1).

A packet is a (source, destination) pair plus bookkeeping: the engine
tracks hops, queueing delay, and (optionally) the traversed path; the
emulation layer adds an address/payload and a combining tree (children
absorbed at merge points, Theorem 2.6's "log d direction bits" realized as
remembered merge structure).
"""

from __future__ import annotations

from typing import Any, Hashable


class Packet:
    """A routable packet.

    ``node`` is the engine-level position key (an int for flat topologies,
    a tuple like ``(pass, level, row)`` for leveled networks).  ``state``
    is scratch space owned by the routing policy (phase counters, chosen
    intermediate nodes, ...).
    """

    __slots__ = (
        "pid",
        "source",
        "dest",
        "node",
        "kind",
        "address",
        "payload",
        "state",
        "hops",
        "injected_at",
        "arrived_at",
        "trace",
        "children",
        "combined",
    )

    def __init__(
        self,
        pid: int,
        source: Hashable,
        dest: Hashable,
        *,
        kind: str = "data",
        address: int | None = None,
        payload: Any = None,
    ) -> None:
        self.pid = pid
        self.source = source
        self.dest = dest
        self.node = source
        self.kind = kind
        self.address = address
        self.payload = payload
        self.state: Any = None
        self.hops = 0
        self.injected_at = 0
        self.arrived_at: int | None = None
        self.trace: list[Hashable] | None = None
        self.children: list["Packet"] | None = None
        self.combined = False  # True once absorbed into a host packet

    # ---- combining (Theorem 2.6) ---------------------------------------
    @property
    def combine_key(self) -> tuple | None:
        """Key under which this packet may merge with others, or None.

        Packets carrying no ``address`` never combine (a data packet has
        nothing to deduplicate); packets agree on a key exactly when they
        request the same (kind, address, destination) triple.
        """
        if self.address is None:
            return None
        return (self.kind, self.address, self.dest)

    def absorb(self, other: "Packet") -> None:
        """Merge *other* into this packet (concurrent access combining).

        The absorbed packet stops traversing the network; it is recorded as
        a child so replies can fan back out along the combining tree.
        """
        if other.combined:
            raise ValueError(f"packet {other.pid} already combined")
        other.combined = True
        if self.children is None:
            self.children = []
        self.children.append(other)

    def all_represented(self) -> list["Packet"]:
        """This packet plus every packet merged into it, recursively."""
        out = [self]
        stack = list(self.children or ())
        while stack:
            p = stack.pop()
            out.append(p)
            stack.extend(p.children or ())
        return out

    # ---- metrics --------------------------------------------------------
    @property
    def delivered(self) -> bool:
        return self.arrived_at is not None

    @property
    def latency(self) -> int:
        """Total steps from injection to arrival."""
        if self.arrived_at is None:
            raise ValueError(f"packet {self.pid} not delivered")
        return self.arrived_at - self.injected_at

    @property
    def delay(self) -> int:
        """Queueing delay: latency minus path length (§2.2.1)."""
        return self.latency - self.hops

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = f"@{self.node}" if not self.delivered else f"done(t={self.arrived_at})"
        return f"Packet({self.pid}, {self.source}->{self.dest}, {status})"


def make_packets(
    sources,
    dests,
    *,
    kind: str = "data",
    addresses=None,
    payloads=None,
) -> list[Packet]:
    """Build a packet per (source, dest) pair with sequential ids."""
    sources = list(sources)
    dests = list(dests)
    if len(sources) != len(dests):
        raise ValueError("sources and dests must have equal length")
    packets = []
    for i, (s, d) in enumerate(zip(sources, dests)):
        addr = None if addresses is None else addresses[i]
        pay = None if payloads is None else payloads[i]
        packets.append(
            Packet(i, s, d, kind=kind, address=addr, payload=pay)
        )
    return packets
