"""Packet routing: the synchronous engine plus the paper's algorithms.

* Algorithm 2.1 — :class:`LeveledRouter` (universal, on leveled networks)
* Algorithm 2.2 — :class:`StarRouter` (n-star graph)
* Algorithm 2.3 — :class:`ShuffleRouter` (d-way shuffle)
* §3.4 — :class:`MeshRouter` (3-stage, furthest-destination-first)
* baselines — :class:`GreedyRouter`, :class:`GreedyMeshRouter`,
  :class:`ValiantHypercubeRouter`, :func:`valiant_shuffle_route`
"""

from repro.routing.batcher import bitonic_route, bitonic_stage_count
from repro.routing.engine import RoutingTimeout, SynchronousEngine, route_with_function
from repro.routing.fast_engine import FastPathEngine, resolve_engine_mode
from repro.routing.flow_control import (
    FLOW_CONTROL_MODES,
    CreditState,
    DeadlockError,
    resolve_flow_control,
)
from repro.routing.greedy import GreedyRouter
from repro.routing.leveled_router import LeveledRouter
from repro.routing.linear import random_linear_instance, route_linear
from repro.routing.mesh_router import GreedyMeshRouter, MeshRouter, default_slice_rows
from repro.routing.metrics import RoutingStats, collect_stats
from repro.routing.packet import Packet, make_packets
from repro.routing.queues import (
    FIFOQueue,
    FurthestFirstQueue,
    fifo_factory,
    furthest_first_factory,
)
from repro.routing.shuffle_router import ShuffleRouter
from repro.routing.star_router import StarRouter, adversarial_star_permutation
from repro.routing.valiant import (
    ValiantHypercubeRouter,
    transpose_permutation,
    valiant_shuffle_route,
)

__all__ = [
    "FIFOQueue",
    "FLOW_CONTROL_MODES",
    "CreditState",
    "DeadlockError",
    "FastPathEngine",
    "FurthestFirstQueue",
    "GreedyMeshRouter",
    "GreedyRouter",
    "LeveledRouter",
    "MeshRouter",
    "Packet",
    "RoutingStats",
    "RoutingTimeout",
    "ShuffleRouter",
    "StarRouter",
    "SynchronousEngine",
    "ValiantHypercubeRouter",
    "adversarial_star_permutation",
    "bitonic_route",
    "bitonic_stage_count",
    "collect_stats",
    "default_slice_rows",
    "fifo_factory",
    "furthest_first_factory",
    "make_packets",
    "random_linear_instance",
    "resolve_engine_mode",
    "resolve_flow_control",
    "route_linear",
    "route_with_function",
    "transpose_permutation",
    "valiant_shuffle_route",
]
