"""Batcher's sorting-based (non-oblivious) routing — the §2.2.1 contrast.

"Batcher's sorting algorithms are examples of non-oblivious routing
algorithms.  They require Θ(log² N) routing time for the cube class
networks or 7n routing time for the n x n mesh-connected arrays and hence
are not optimal and only work for permutation routing although they
possess the advantage that they need not have queues."

This module implements bitonic-sort permutation routing on the hypercube:
packets are sorted by destination with compare-exchange operations along
cube dimensions; each compare-exchange is one physical link traversal, so
routing time is exactly the network's stage count

    stages(k) = k (k + 1) / 2          (k = log2 N)

with queue size 1 (a node never holds more than one packet).  It realizes
every property the paper lists: non-oblivious, permutation-only,
queue-free, and Θ(log² N) — asymptotically worse than Valiant/Algorithm
2.1's Õ(log N), let alone the star/shuffle's sub-logarithmic Õ(diameter).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.routing.metrics import RoutingStats
from repro.topology.hypercube import Hypercube


def bitonic_stage_count(k: int) -> int:
    """Compare-exchange rounds of a bitonic sorter over 2**k keys."""
    return k * (k + 1) // 2


def bitonic_route(
    cube: Hypercube, perm: Sequence[int] | np.ndarray
) -> RoutingStats:
    """Route the permutation by bitonic-sorting packets by destination.

    Returns a :class:`RoutingStats` with ``steps`` equal to the number of
    compare-exchange rounds (each round moves packets across one cube
    dimension simultaneously) and ``max_queue`` = 1.
    """
    n = cube.num_nodes
    k = cube.n
    dest = np.asarray(perm, dtype=np.int64)
    if dest.shape != (n,) or sorted(dest.tolist()) != list(range(n)):
        raise ValueError("bitonic routing handles exactly one packet per node "
                         "with distinct destinations (permutation routing)")

    # keys[i] = destination of the packet currently at node i
    keys = dest.copy()
    stages = 0
    idx = np.arange(n)
    for phase in range(1, k + 1):
        for sub in range(phase - 1, -1, -1):
            stride = 1 << sub
            partner = idx ^ stride
            # ascending blocks of size 2**phase (standard bitonic network)
            ascending = (idx & (1 << phase)) == 0
            lower = (idx & stride) == 0
            with_partner = keys[partner]
            keep_min = lower == ascending
            new_keys = np.where(
                keep_min,
                np.minimum(keys, with_partner),
                np.maximum(keys, with_partner),
            )
            keys = new_keys
            stages += 1

    if not np.array_equal(keys, idx):
        raise RuntimeError("bitonic network failed to sort the permutation")

    hops = [stages] * n
    return RoutingStats(
        steps=stages,
        delivered=n,
        total_packets=n,
        max_queue=1,
        completed=True,
        delays=[0] * n,
        hops=hops,
    )


def bitonic_vs_valiant_times(k: int, valiant_steps: int) -> dict[str, float]:
    """Comparison record used by the bench: Θ(log² N) vs measured Õ(log N)."""
    return {
        "log2N": k,
        "batcher_steps": bitonic_stage_count(k),
        "valiant_steps": valiant_steps,
        "ratio": bitonic_stage_count(k) / max(1, valiant_steps),
    }
