"""Generic deterministic greedy (oblivious) router on any Topology.

The simplest baseline: every packet follows ``topology.route_next`` with
FIFO link queues.  Oblivious and deterministic — exactly the class of
algorithms whose worst case motivates Valiant randomization (§2.2.1).

Because the itinerary is a pure function of (source, dest), the whole
population's paths can be precompiled and replayed on the fast engine
(``engine="auto" | "fast" | "reference"``): meshes, linear arrays, and
hypercubes get fully vectorized builders, any other topology walks
``route_next`` once per packet up front.  ``node_capacity`` backpressure
is honoured by both engines, and ``flow_control="credit"`` enables the
deadlock-free credit/escape protocol — sound for dimension-ordered
routes (mesh, linear array, hypercube), whose link ranks are monotone
(:mod:`repro.routing.flow_control` invariant I3); a topology with cyclic
greedy paths may instead surface a ``DeadlockError`` diagnostic.
"""

from __future__ import annotations

from typing import Sequence

from repro.routing.engine import SynchronousEngine
from repro.routing.fast_engine import FastPathEngine, resolve_engine_mode
from repro.routing.metrics import RoutingStats
from repro.routing.packet import Packet, make_packets
from repro.routing.queues import fifo_factory
from repro.topology.base import Topology
from repro.topology.compiled import compile_mesh, hypercube_paths, linear_paths
from repro.topology.hypercube import Hypercube
from repro.topology.mesh import LinearArray, Mesh2D


class GreedyRouter:
    """Deterministic greedy router over an arbitrary topology.

    Parameters
    ----------
    node_capacity:
        Bound on packets resident at one node (backpressure); ``None``
        disables the capacity model.
    flow_control:
        ``"none"`` (default) or ``"credit"`` (requires
        ``node_capacity``): the deadlock-free credit/escape protocol of
        :mod:`repro.routing.flow_control` — sound on rank-monotone
        routes (mesh, linear array, hypercube); cyclic greedy paths may
        surface a :class:`~repro.routing.flow_control.DeadlockError`.
    engine:
        ``"auto"`` (default), ``"fast"``, or ``"reference"``.  The fast
        path runs vectorized batch (constrained batch under
        ``node_capacity``) on mesh/linear/hypercube topologies and the
        per-event compiled loop on ragged ``route_next`` walks.
    """

    def __init__(
        self,
        topology: Topology,
        *,
        node_capacity: int | None = None,
        flow_control: str = "none",
        engine: str = "auto",
    ) -> None:
        self.topology = topology
        self.node_capacity = node_capacity
        self.flow_control = flow_control
        self.engine_mode = engine
        resolve_engine_mode(engine)  # validate eagerly
        self.engine = SynchronousEngine(
            queue_factory=fifo_factory,
            node_capacity=node_capacity,
            flow_control=flow_control,
        )

    def _next_hop(self, p: Packet):
        if p.node == p.dest:
            return None
        nxt = self.topology.route_next(p.node, p.dest)
        if nxt == p.node:
            raise RuntimeError(f"greedy route stalled for packet {p.pid} at {p.node}")
        return nxt

    def route(
        self,
        sources: Sequence[int],
        dests: Sequence[int],
        *,
        max_steps: int | None = None,
    ) -> RoutingStats:
        if max_steps is None:
            max_steps = 100 * max(1, self.topology.diameter) + 200
        packets = make_packets(list(map(int, sources)), list(map(int, dests)))
        if resolve_engine_mode(self.engine_mode) == "fast":
            return self._run_fast(packets, max_steps)
        return self.engine.run(packets, self._next_hop, max_steps=max_steps)

    def _run_fast(self, packets: list[Packet], max_steps: int) -> RoutingStats:
        """Precompile greedy itineraries; replay them on the fast engine.

        Mesh / linear-array / hypercube paths come out of the vectorized
        builders in :mod:`repro.topology.compiled`; any other topology
        falls back to walking ``route_next`` per packet (still one walk
        up front instead of one call per packet per step).
        """
        topo = self.topology
        sources = [p.source for p in packets]
        dests = [p.dest for p in packets]
        fast = FastPathEngine(
            node_capacity=self.node_capacity, flow_control=self.flow_control
        )
        kwargs: dict = {}
        if isinstance(topo, Mesh2D):
            plan = compile_mesh(topo).three_stage(sources, dests)
            paths, kwargs["path_lengths"] = plan.ids, plan.lengths
        elif isinstance(topo, LinearArray):
            plan = linear_paths(sources, dests)
            paths, kwargs["path_lengths"] = plan.ids, plan.lengths
        elif isinstance(topo, Hypercube):
            plan = hypercube_paths(topo.n, sources, dests)
            paths, kwargs["path_lengths"] = plan.ids, plan.lengths
        else:
            paths = [topo.greedy_path(p.source, p.dest) for p in packets]
        return fast.run(
            packets,
            paths,
            num_nodes=topo.num_nodes,
            max_steps=max_steps,
            **kwargs,
        )
