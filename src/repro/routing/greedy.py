"""Generic deterministic greedy (oblivious) router on any Topology.

The simplest baseline: every packet follows ``topology.route_next`` with
FIFO link queues.  Oblivious and deterministic — exactly the class of
algorithms whose worst case motivates Valiant randomization (§2.2.1).
"""

from __future__ import annotations

from typing import Sequence

from repro.routing.engine import SynchronousEngine
from repro.routing.metrics import RoutingStats
from repro.routing.packet import Packet, make_packets
from repro.routing.queues import fifo_factory
from repro.topology.base import Topology


class GreedyRouter:
    """Deterministic greedy router over an arbitrary topology."""

    def __init__(self, topology: Topology, *, node_capacity: int | None = None) -> None:
        self.topology = topology
        self.engine = SynchronousEngine(
            queue_factory=fifo_factory, node_capacity=node_capacity
        )

    def _next_hop(self, p: Packet):
        if p.node == p.dest:
            return None
        nxt = self.topology.route_next(p.node, p.dest)
        if nxt == p.node:
            raise RuntimeError(f"greedy route stalled for packet {p.pid} at {p.node}")
        return nxt

    def route(
        self,
        sources: Sequence[int],
        dests: Sequence[int],
        *,
        max_steps: int | None = None,
    ) -> RoutingStats:
        if max_steps is None:
            max_steps = 100 * max(1, self.topology.diameter) + 200
        packets = make_packets(list(map(int, sources)), list(map(int, dests)))
        return self.engine.run(packets, self._next_hop, max_steps=max_steps)
