"""Synchronous store-and-forward routing engine.

This is the machine model of §2.2.1 made executable:

* time advances in unit steps;
* each directed link transmits **one** packet per step (a node drives all
  of its out-links simultaneously — the MIMD model of §3.1);
* packets wait in per-link output queues; the queue discipline arbitrates
  contention (FIFO for Theorems 2.1-2.4, furthest-destination-first for
  §3.4);
* *routing time* is the step at which the last packet arrives; *delay* is
  time waited in queues; *queue size* is tracked both per link (the
  theorems' "queue needed for each link") and per node (§2.2.1's
  definition of queue size).

The engine is topology-agnostic: a routing algorithm is just a
``next_hop(packet) -> node-key | None`` policy.  Node keys are arbitrary
hashables, which lets leveled networks use ``(pass, level, row)`` keys
while flat topologies use plain ints.

Combining (Theorem 2.6) is supported at enqueue time: when an arriving
packet finds a queued packet with the same (kind, address, destination) it
is absorbed — "any number of incoming packets, which have the same
destination, from different links can be combined into one packet in one
unit time" (footnote 3).

Node-capacity backpressure (§3.4 / Corollary 3.3, à la [6]) is enforced
*during* the transmission phase: each link that transmits toward a node
reserves one of that node's arrival slots for the step, so later links
aiming at the same node see the claimed slots and stall.  With capacity c
a node therefore never holds more than c resident packets
(``max_node_load <= node_capacity``), no matter how many in-links it has.
Heads that exit the network at the link's target (head.dest == target)
are exempt — a delivered packet occupies no queue space — and when
``node_service_rate`` also caps departures, capacity-stalled links do not
consume service slots: a node's slots go to links that can actually send.

Plain backpressure can wedge crossing flows (two full nodes each waiting
on the other); ``flow_control="credit"`` layers the deadlock-free
credit/escape protocol of :mod:`repro.routing.flow_control` on top: a
credit-starved queue head may advance into the crossed link's dedicated
escape buffer, and escape occupants (absolute priority on their next
link) drain back into bulk slots or forward along the escape chain.  On
rank-monotone routes the escape channel-dependency graph is acyclic, so
progress is guaranteed.  Either way, a step that moves nothing while
packets are still queued raises :class:`DeadlockError` instead of
spinning to ``max_steps``.

Reference engine vs. fast path
------------------------------
This module is the **reference** engine: maximally general (arbitrary
hashable node keys, dynamic ``next_hop`` policies, backpressure, service
rates, ``on_arrival`` injection) and written for readability.  The
routers for leveled / shuffle / star / butterfly networks also have a
**fast path** (:mod:`repro.routing.fast_engine` over
:mod:`repro.topology.compiled`) that precompiles every packet's
trajectory to dense integer node ids and replays the very same queue
dynamics on flat data structures.  The two are step-for-step equivalent
under a fixed seed (see ``tests/test_fast_engine.py``); routers select
the fast path automatically when their configuration allows it.  Force a
specific engine with the routers' ``engine="reference"`` /
``engine="fast"`` argument, or globally via the ``REPRO_ENGINE``
environment variable (checked whenever a router is left on ``"auto"``).

Transmission order is deterministic: active links transmit in the order
they last became active (insertion order), never in hash order, so runs
reproduce exactly across processes and interpreter builds.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Hashable, Iterable, Optional, Sequence

from repro.obs.clock import wall_time
from repro.routing.flow_control import (
    CreditState,
    DeadlockError,
    no_progress_detail,
    resolve_flow_control,
)
from repro.routing.metrics import RoutingStats, collect_stats
from repro.routing.packet import Packet
from repro.routing.queues import LinkQueue, fifo_factory

NextHop = Callable[[Packet], Optional[Hashable]]


class RoutingTimeout(RuntimeError):
    """Raised (optionally) when a run exceeds its step budget."""

    def __init__(self, stats: RoutingStats) -> None:
        super().__init__(f"routing did not complete: {stats}")
        self.stats = stats


class SynchronousEngine:
    """Reusable synchronous router.

    Parameters
    ----------
    queue_factory:
        Zero-argument callable building a fresh :class:`LinkQueue` per
        link (default FIFO).
    combine:
        Enable CRCW packet combining for packets carrying an ``address``.
    node_capacity:
        If set, a node refuses new arrivals beyond this many resident
        packets: upstream links stall (backpressure).  Arrival slots are
        reserved as links transmit within a step, so the cap holds even
        against simultaneous arrivals from many in-links (heads delivered
        at the target are exempt, see :meth:`_is_exit`).  Models the O(1)
        queue variants of §3.4 / [6].
    flow_control:
        ``"none"`` (default) is plain backpressure; ``"credit"`` adds
        the deadlock-free escape channel of
        :mod:`repro.routing.flow_control` (requires ``node_capacity``).
    exit_dest:
        Optional ``packet -> node key`` mapping a packet to the node at
        which it exits the network, for the capacity exemption.  Needed
        when ``packet.dest`` is not itself an engine node key (leveled
        routes address destinations by row while the engine keys are
        ``(pass, column, row)`` triples).  Defaults to ``packet.dest``.
    capacity_key:
        Optional canonicalization of link-target keys for capacity
        accounting, for topologies where two engine keys alias one
        physical node (the leveled wrap identifies ``(0, L, r)`` with
        ``(1, 0, r)``).  Identity when omitted.
    track_paths:
        Record every visited node key in ``packet.trace`` (needed to fan
        replies back along combining trees).
    observer:
        Optional :class:`repro.obs.Observer`.  When it carries a
        :class:`~repro.obs.PhaseProfile`, the step loop accumulates
        per-phase wall time (transmission / arrival / escape /
        combining) and each run is attributed to the ``"reference"``
        dispatch mode; when it carries a flight recorder, per-step
        events are recorded and a :class:`DeadlockError` leaves with
        the recorder's tail attached.  Wall-clock values are recorded,
        never branched on, so routing results are bit-identical with
        and without an observer.
    """

    def __init__(
        self,
        *,
        queue_factory: Callable[[], LinkQueue] = fifo_factory,
        combine: bool = False,
        node_capacity: int | None = None,
        node_service_rate: int | None = None,
        flow_control: str = "none",
        exit_dest: Callable[[Packet], Hashable] | None = None,
        capacity_key: Callable[[Hashable], Hashable] | None = None,
        track_paths: bool = False,
        observer=None,
    ) -> None:
        self.queue_factory = queue_factory
        self.combine = combine
        self.node_capacity = node_capacity
        self.node_service_rate = node_service_rate
        self.flow_control = resolve_flow_control(
            flow_control,
            node_capacity=node_capacity,
            node_service_rate=node_service_rate,
        )
        self.exit_dest = exit_dest
        self.capacity_key = capacity_key
        self.track_paths = track_paths
        self.observer = observer

    # ------------------------------------------------------------------
    def run(
        self,
        packets: Sequence[Packet],
        next_hop: NextHop,
        *,
        max_steps: int,
        raise_on_timeout: bool = False,
        on_arrival: Callable[[Packet], "list[Packet] | None"] | None = None,
        link_faults=None,
        fault_base: int = 0,
    ) -> RoutingStats:
        """Route *packets* until all are delivered or *max_steps* elapse.

        ``on_arrival(p)``, if given, runs at every node *p* reaches and may
        return new packets to inject there immediately (their ``node`` must
        equal ``p.node``).  This implements reply fan-out along combining
        trees: a reply that reaches a merge point spawns the replies of the
        packets absorbed there (Theorem 2.6's direction bits).

        ``link_faults`` is an optional
        :class:`~repro.faults.runtime.LinkFaultView` whose keys are this
        run's ``(u, w)`` link keys: a blocked link holds its queue (and
        any escape occupant crossing it) exactly like a zero-credit
        link, counted in ``fault_stalls``.  Blocked states are sampled
        at the *global* virtual step ``fault_base + t``, so a multi-run
        emulation step sees one consistent timeline.
        """
        queues: dict[tuple[Hashable, Hashable], LinkQueue] = {}
        node_load: dict[Hashable, int] = defaultdict(int)
        # Insertion-ordered set (dict) of links with queued packets: the
        # transmission phase iterates it, so using a plain set would make
        # transmission order — and thus RNG consumption, combining, and
        # service-rate tie-breaks — depend on hash order.
        active: dict[tuple[Hashable, Hashable], None] = {}
        fc = CreditState() if self.flow_control == "credit" else None
        # Packets that claimed an escape buffer at transmit time; place()
        # turns the claim into an occupancy (or drops it on delivery).
        pending_escape: dict[Packet, tuple[Hashable, Hashable]] = {}

        obs = self.observer
        prof = obs.profile if obs is not None else None
        rec = obs.recorder if obs is not None else None
        _t_run0 = wall_time() if prof is not None else 0.0

        max_queue = 0
        max_node_load = 0
        combines = 0
        fault_stalls = 0
        deadlocked = False
        all_packets = list(packets)
        remaining = len(all_packets)

        injections: dict[int, list[Packet]] = defaultdict(list)
        for p in all_packets:
            injections[p.injected_at].append(p)
        pending_times = sorted(injections, reverse=True)

        def enqueue(p: Packet, u: Hashable, w: Hashable) -> None:
            nonlocal max_queue, max_node_load, combines
            key = (u, w)
            q = queues.get(key)
            if q is None:
                q = queues[key] = self.queue_factory()
            if self.combine:
                ckey = p.combine_key
                if ckey is not None:
                    _c0 = wall_time() if prof is not None else 0.0
                    host = q.find_combinable(ckey)
                    if host is not None:
                        host.absorb(p)
                        combines += 1
                        if prof is not None:
                            prof.add_phase("combining", wall_time() - _c0)
                        return
                    if prof is not None:
                        prof.add_phase("combining", wall_time() - _c0)
            q.push(p)
            active[key] = None
            node_load[u] += 1
            if len(q) > max_queue:
                max_queue = len(q)
            if node_load[u] > max_node_load:
                max_node_load = node_load[u]

        def deliver(p: Packet, t: int) -> None:
            nonlocal remaining
            for rep in p.all_represented():
                if rep.arrived_at is None:
                    rep.arrived_at = t
                    remaining -= 1

        def place(p: Packet, t: int) -> None:
            """Compute p's next hop from its current node; enqueue/deliver."""
            nonlocal remaining
            if self.track_paths:
                if p.trace is None:
                    p.trace = [p.node]
                else:
                    p.trace.append(p.node)
            if on_arrival is not None:
                spawned = on_arrival(p)
                if spawned:
                    for q in spawned:
                        if q.node != p.node:
                            raise ValueError(
                                f"spawned packet {q.pid} at {q.node}, "
                                f"expected {p.node}"
                            )
                        q.injected_at = t
                        all_packets.append(q)
                        remaining += 1
                        place(q, t)
            w = next_hop(p)
            if w is None:
                if fc is not None:
                    pending_escape.pop(p, None)
                deliver(p, t)
            elif fc is not None and (el := pending_escape.pop(p, None)) is not None:
                # The packet crossed link `el` into its escape buffer;
                # it advances from there (skipping bulk queues and
                # combining) until a credit frees up or it exits.
                fc.occupy(el, p, (p.node, w))
            else:
                enqueue(p, p.node, w)

        t = 0
        while remaining > 0:
            # inject packets whose time has come
            while pending_times and pending_times[-1] <= t:
                for p in injections[pending_times.pop()]:
                    place(p, t)
            if remaining == 0:
                break
            if t >= max_steps:
                break
            if (
                not active
                and not pending_times
                and (fc is None or not fc.escape_at)
            ):
                raise RuntimeError(
                    f"{remaining} packets undeliverable: network drained at t={t}"
                )

            # transmission phase: every active link sends one packet
            # (unless node_service_rate caps departures per node, the
            # serialized model used by the Valiant-comparison baseline)
            arrivals: list[Packet] = []
            newly_empty: list[tuple[Hashable, Hashable]] = []
            capacity = self.node_capacity
            blocked: frozenset = frozenset()
            if link_faults is not None:
                fstatic, fextra = link_faults.parts_at(fault_base + t)
                blocked = fstatic.union(fextra) if fextra else fstatic
            fault_blocked_step = False
            _tx0 = wall_time() if prof is not None else 0.0
            _esc_dt = 0.0
            if capacity is None and self.node_service_rate is None:
                # Unconstrained hot loop: no capacity bookkeeping at all.
                for key in active:
                    if blocked and key in blocked:
                        fault_stalls += 1
                        fault_blocked_step = True
                        continue
                    q = queues[key]
                    p = q.pop()
                    node_load[key[0]] -= 1
                    p.node = key[1]
                    p.hops += 1
                    arrivals.append(p)
                    if len(q) == 0:
                        newly_empty.append(key)
            else:
                # Arrival slots already claimed at each node this step.
                # The capacity check must see them: checking only the
                # pre-step node_load would let every in-link of a full
                # node transmit in the same step (N arrivals past a
                # capacity-1 node).
                reserved: dict[Hashable, int] = defaultdict(int)
                ck = self.capacity_key
                exit_dest = self.exit_dest

                def exit_node(p: Packet) -> Hashable:
                    return p.dest if exit_dest is None else exit_dest(p)

                def stalled(key: tuple[Hashable, Hashable]) -> bool:
                    dest_node = key[1] if ck is None else ck(key[1])
                    if node_load[dest_node] + reserved[dest_node] < capacity:
                        return False
                    return not self._is_exit(queues[key], key)

                def transmit(
                    key: tuple[Hashable, Hashable], reserve: bool = True
                ) -> Packet:
                    # reserve=False is the escape landing: the packet
                    # crosses into the link's dedicated escape buffer,
                    # so it claims no bulk slot at the target.
                    q = queues[key]
                    p = q.pop()
                    node_load[key[0]] -= 1
                    if reserve and capacity is not None and exit_node(p) != key[1]:
                        reserved[key[1] if ck is None else ck(key[1])] += 1
                    p.node = key[1]
                    p.hops += 1
                    arrivals.append(p)
                    if len(q) == 0:
                        newly_empty.append(key)
                    return p

                if fc is not None:
                    # Escape subphase: occupants advance first (absolute
                    # priority on their next link), in occupancy order.
                    # `used` then blocks the bulk heads of those links.
                    _esc0 = wall_time() if prof is not None else 0.0
                    used: set[tuple[Hashable, Hashable]] = set()
                    for el in list(fc.escape_at):
                        p = fc.escape_at[el]
                        nl = fc.escape_next[el]
                        if blocked and nl in blocked:
                            fault_stalls += 1
                            fault_blocked_step = True
                            continue
                        if nl in used:
                            fc.stall()
                            continue
                        w = nl[1]
                        if exit_node(p) != w:
                            a = w if ck is None else ck(w)
                            if node_load[a] + reserved[a] < capacity:
                                reserved[a] += 1  # drain back into bulk
                            elif fc.available(nl):
                                fc.claim(nl)
                                pending_escape[p] = nl
                            else:
                                fc.stall()
                                continue
                        used.add(nl)
                        fc.vacate(el)
                        p.node = w
                        p.hops += 1
                        arrivals.append(p)
                    if prof is not None:
                        _esc_dt = wall_time() - _esc0
                        prof.add_phase("escape", _esc_dt)
                    # Bulk subphase: credit-starved heads take the escape
                    # buffer of the link they cross instead of stalling.
                    for key in active:
                        if blocked and key in blocked:
                            fault_stalls += 1
                            fault_blocked_step = True
                            continue
                        if key in used:
                            fc.stall()
                            continue
                        if not stalled(key):
                            transmit(key)
                        elif fc.available(key):
                            fc.claim(key)
                            pending_escape[transmit(key, reserve=False)] = key
                        else:
                            fc.stall()
                elif self.node_service_rate is None:
                    for key in active:
                        if blocked and key in blocked:
                            fault_stalls += 1
                            fault_blocked_step = True
                            continue
                        if stalled(key):
                            continue  # backpressure: hold the link this step
                        transmit(key)
                else:
                    by_node: dict[Hashable, list] = defaultdict(list)
                    for key in active:
                        by_node[key[0]].append(key)
                    for node, keys in by_node.items():
                        # Stable sort + insertion-ordered `active`: ties go
                        # to the link that became active first.
                        keys.sort(key=lambda k: -len(queues[k]))
                        slots = self.node_service_rate
                        for key in keys:
                            if slots == 0:
                                break
                            # A fault-blocked or capacity-stalled link must
                            # not burn one of the node's service slots while
                            # a ready link idles.
                            if blocked and key in blocked:
                                fault_stalls += 1
                                fault_blocked_step = True
                                continue
                            if capacity is not None and stalled(key):
                                continue
                            transmit(key)
                            slots -= 1
            for key in newly_empty:
                active.pop(key, None)
            if prof is not None:
                prof.add_phase("transmission", wall_time() - _tx0 - _esc_dt)
            if rec is not None:
                rec.record(
                    "engine_step",
                    virtual_clock=t,
                    arrivals=len(arrivals),
                    active_links=len(active),
                    remaining=remaining,
                    fault_stalls=fault_stalls,
                )

            if not arrivals and not pending_times and not fault_blocked_step:
                # No transmission, no future injections, and no link held
                # back by a (possibly transient) fault: the state is
                # provably static forever.  Report instead of spinning.
                # A fault-blocked step instead just burns time — the
                # schedule may revive the wire.
                deadlocked = True
                break

            t += 1
            if prof is not None:
                _a0 = wall_time()
                _c_before = prof.phase_total("combining")
                for p in arrivals:
                    place(p, t)
                prof.add_phase(
                    "arrival",
                    (wall_time() - _a0)
                    - (prof.phase_total("combining") - _c_before),
                )
            else:
                for p in arrivals:
                    place(p, t)

        completed = remaining == 0
        stats = collect_stats(
            all_packets,
            steps=t,
            max_queue=max_queue,
            completed=completed,
            combines=combines,
            max_node_load=max_node_load,
            credits_stalled=fc.credits_stalled if fc is not None else 0,
            escape_hops=fc.escape_hops if fc is not None else 0,
            fault_stalls=fault_stalls,
            run_mode="reference",
        )
        if prof is not None:
            prof.add_mode("reference", wall_time() - _t_run0)
        if deadlocked:
            err = DeadlockError(
                stats, detail=no_progress_detail(t, remaining, len(active), fc)
            )
            if obs is not None:
                err.flight_tail = obs.flight_tail()
            raise err
        if not completed and raise_on_timeout:
            raise RoutingTimeout(stats)
        return stats

    def _is_exit(self, q: LinkQueue, key) -> bool:
        """Heads destined to final delivery never stall on capacity.

        A packet that will be *delivered* at the target node does not
        occupy queue space there, so backpressure must let it through;
        we approximate by checking whether the head's destination equals
        the link's target node (via ``exit_dest`` when the two live in
        different key spaces).
        """
        head = q.peek()
        dest = head.dest if self.exit_dest is None else self.exit_dest(head)
        return dest == key[1]


def route_with_function(
    packets: Iterable[Packet],
    next_hop: NextHop,
    *,
    max_steps: int,
    queue_factory: Callable[[], LinkQueue] = fifo_factory,
    combine: bool = False,
    node_capacity: int | None = None,
    node_service_rate: int | None = None,
    flow_control: str = "none",
    track_paths: bool = False,
) -> RoutingStats:
    """One-shot convenience wrapper around :class:`SynchronousEngine`."""
    engine = SynchronousEngine(
        queue_factory=queue_factory,
        combine=combine,
        node_capacity=node_capacity,
        node_service_rate=node_service_rate,
        flow_control=flow_control,
        track_paths=track_paths,
    )
    return engine.run(list(packets), next_hop, max_steps=max_steps)
