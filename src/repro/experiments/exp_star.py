"""E2 — Theorem 2.2 / Corollary 2.1: routing on the n-star graph.

Measured on the physical star graph (both phases share links) and on the
logical leveled network of Figure 3.  Includes the deterministic-greedy
ablation showing why the Valiant phase matters on structured inputs.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.harness import rows_to_table, run_sweep
from repro.routing.leveled_router import LeveledRouter
from repro.routing.star_router import StarRouter, adversarial_star_permutation
from repro.topology.leveled import StarLogicalLeveled
from repro.topology.star import StarGraph
from repro.util.tables import Table


def _star_trial(rng, *, n: int, randomized: bool, workload: str) -> dict:
    star = StarGraph(n)
    router = StarRouter(star, seed=rng, randomized=randomized)
    if workload == "random":
        perm = rng.permutation(star.num_nodes)
    elif workload == "adversarial":
        perm = adversarial_star_permutation(star)
    else:
        raise ValueError(workload)
    stats = router.route_permutation(perm)
    assert stats.completed
    diam = star.diameter
    return {
        "N": star.num_nodes,
        "diam": diam,
        "time": stats.steps,
        "time/diam": stats.steps / diam,
        "max_queue": stats.max_queue,
    }


def run_e2(
    ns=(4, 5, 6),
    *,
    trials: int = 3,
    seed=17,
) -> Table:
    grid = [{"n": n, "randomized": True, "workload": "random"} for n in ns]
    rows = run_sweep(_star_trial, grid, trials=trials, seed=seed)
    return rows_to_table(
        rows,
        ["n"],
        [("N", "max"), ("diam", "max"), ("time", "mean"), ("time/diam", "mean"), ("max_queue", "max")],
        title="E2  Theorem 2.2: randomized permutation routing on the n-star (Algorithm 2.2)",
        caption=(
            "Claim: Õ(n) — time within a constant factor of the diameter "
            "⌊3(n-1)/2⌋, FIFO queues O(n)."
        ),
    )


def run_e2_relation(ns=(4, 5), *, trials: int = 3, seed=18) -> Table:
    def trial(rng, *, n: int) -> dict:
        star = StarGraph(n)
        router = StarRouter(star, seed=rng)
        stats = router.route_n_relation()
        assert stats.completed
        return {
            "time": stats.steps,
            "time/diam": stats.steps / star.diameter,
            "max_queue": stats.max_queue,
        }

    rows = run_sweep(trial, [{"n": n} for n in ns], trials=trials, seed=seed)
    return rows_to_table(
        rows,
        ["n"],
        [("time", "mean"), ("time/diam", "mean"), ("max_queue", "max")],
        title="E2b  Corollary 2.1: partial n-relation routing on the n-star",
        caption="Claim: partial n-relations also route in Õ(n).",
    )


def run_e2_ablation(n: int = 5, *, trials: int = 3, seed=19) -> Table:
    grid = [
        {"n": n, "randomized": True, "workload": "random"},
        {"n": n, "randomized": False, "workload": "random"},
        {"n": n, "randomized": True, "workload": "adversarial"},
        {"n": n, "randomized": False, "workload": "adversarial"},
    ]
    rows = run_sweep(_star_trial, grid, trials=trials, seed=seed)
    return rows_to_table(
        rows,
        ["randomized", "workload"],
        [("time", "mean"), ("time/diam", "mean"), ("max_queue", "max")],
        title="E2c  Ablation: Valiant randomization vs deterministic greedy on the star",
        caption=(
            "At these sizes the star's greedy paths are short and "
            "low-contention, so randomization's ~2x path cost is visible "
            "while its worst-case insurance is not; the hypercube "
            "transpose benchmark (bench_valiant_comparison) shows the "
            "failure mode randomization exists to prevent."
        ),
    )


def run_e2_logical(ns=(4, 5), *, trials: int = 3, seed=20) -> Table:
    def trial(rng, *, n: int) -> dict:
        net = StarLogicalLeveled(n)
        router = LeveledRouter(net, intermediate="node", seed=rng)
        stats = router.route_permutation(rng.permutation(net.column_size))
        assert stats.completed
        return {
            "levels": net.num_levels,
            "time": stats.steps,
            "time/2L": stats.steps / (2 * net.num_levels),
            "max_queue": stats.max_queue,
        }

    rows = run_sweep(trial, [{"n": n} for n in ns], trials=trials, seed=seed)
    return rows_to_table(
        rows,
        ["n"],
        [("levels", "max"), ("time", "mean"), ("time/2L", "mean"), ("max_queue", "max")],
        title="E2d  Figure 3: routing on the star's logical leveled network",
        caption="The logical network realizes Theorem 2.1 with ℓ = 2(n-1), d = n.",
    )
