"""E7/E8/E9 — the mesh results: Theorems 3.1, 3.2, 3.3 (+ ablations).

E7: the 3-stage routing algorithm's time → 2n + o(n), queue O(log n).
E8: full EREW emulation → 4n + o(n).
E9: locality → 6δ + o(δ), independent of n.
Ablations: furthest-first vs FIFO; slice height ε; O(1)-queue variant;
the §3.4.1 linear-array primitive.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.theory import (
    MESH_EMULATION_CLAIM,
    MESH_LOCALITY_CLAIM,
    MESH_ROUTING_CLAIM,
)
from repro.emulation.mesh import MeshEmulator, locality_slice_rows
from repro.experiments.harness import rows_to_table, run_sweep
from repro.pram.trace import local_step_for_mesh, permutation_step
from repro.routing.linear import random_linear_instance, route_linear
from repro.routing.mesh_router import MeshRouter
from repro.topology.mesh import Mesh2D
from repro.util.tables import Table


def run_e7(ns=(8, 16, 24, 32), *, trials: int = 3, seed=41, discipline="furthest_first") -> Table:
    def trial(rng, *, n: int) -> dict:
        mesh = Mesh2D.square(n)
        router = MeshRouter(mesh, seed=rng, discipline=discipline)
        stats = router.route_permutation(rng.permutation(n * n))
        assert stats.completed
        return {
            "time": stats.steps,
            "time/n": stats.steps / n,
            "bound(2n+o)": MESH_ROUTING_CLAIM.bound(n),
            "max_queue": stats.max_queue,
            "queue/log2n": stats.max_queue / math.log2(n),
        }

    rows = run_sweep(trial, [{"n": n} for n in ns], trials=trials, seed=seed)
    return rows_to_table(
        rows,
        ["n"],
        [
            ("time", "mean"),
            ("time/n", "mean"),
            ("bound(2n+o)", "mean"),
            ("max_queue", "max"),
            ("queue/log2n", "max"),
        ],
        title="E7  Theorem 3.1: 3-stage mesh routing in 2n + o(n), queue O(log n)",
        caption="Check: time/n → 2 from above as n grows; queue/log2(n) bounded.",
    )


def run_e8(ns=(8, 16, 24), *, trials: int = 3, seed=42) -> Table:
    def trial(rng, *, n: int) -> dict:
        emu = MeshEmulator(Mesh2D.square(n), address_space=4 * n * n, seed=rng)
        step = permutation_step(n * n, 4 * n * n, seed=rng)
        cost = emu.emulate_step(step)
        return {
            "time": cost.total_steps,
            "time/n": cost.total_steps / n,
            "bound(4n+o)": MESH_EMULATION_CLAIM.bound(n),
            "request": cost.request_steps,
            "reply": cost.reply_steps,
            "rehashes": cost.rehashes,
        }

    rows = run_sweep(trial, [{"n": n} for n in ns], trials=trials, seed=seed)
    return rows_to_table(
        rows,
        ["n"],
        [
            ("time", "mean"),
            ("time/n", "mean"),
            ("bound(4n+o)", "mean"),
            ("request", "mean"),
            ("reply", "mean"),
            ("rehashes", "max"),
        ],
        title="E8  Theorem 3.2: EREW PRAM step on the mesh in 4n + o(n)",
        caption=(
            "Two phases of 2n + o(n) each.  Check: time/n → 4 from above; "
            "rehashes ≈ 0."
        ),
    )


def run_e9(deltas=(2, 4, 8), n: int = 24, *, trials: int = 3, seed=43) -> Table:
    def trial(rng, *, delta: int) -> dict:
        emu = MeshEmulator(
            Mesh2D.square(n),
            address_space=n * n,
            placement="direct",
            slice_rows=locality_slice_rows(delta),
            seed=rng,
        )
        step = local_step_for_mesh(n, delta, seed=rng)
        cost = emu.emulate_step(step)
        return {
            "time": cost.total_steps,
            "time/delta": cost.total_steps / delta,
            "bound(6d+o)": MESH_LOCALITY_CLAIM.bound(delta),
            "global_4n": 4 * n,
        }

    rows = run_sweep(trial, [{"delta": d} for d in deltas], trials=trials, seed=seed)
    return rows_to_table(
        rows,
        ["delta"],
        [
            ("time", "mean"),
            ("time/delta", "mean"),
            ("bound(6d+o)", "mean"),
            ("global_4n", "mean"),
        ],
        title=f"E9  Theorem 3.3: δ-local requests on a {n}x{n} mesh in 6δ + o(δ)",
        caption=(
            "Check: time scales with δ, not n (compare the 4n column); "
            "time/δ bounded by ~6 plus lower-order terms."
        ),
    )


def run_e7_discipline_ablation(n: int = 16, *, trials: int = 3, seed=44) -> Table:
    def trial(rng, *, discipline: str) -> dict:
        mesh = Mesh2D.square(n)
        router = MeshRouter(mesh, seed=rng, discipline=discipline)
        stats = router.route_permutation(rng.permutation(n * n))
        assert stats.completed
        return {"time": stats.steps, "time/n": stats.steps / n, "max_queue": stats.max_queue}

    rows = run_sweep(
        trial,
        [{"discipline": "furthest_first"}, {"discipline": "fifo"}],
        trials=trials,
        seed=seed,
    )
    return rows_to_table(
        rows,
        ["discipline"],
        [("time", "mean"), ("time/n", "mean"), ("max_queue", "max")],
        title="E7b  Ablation: furthest-destination-first vs FIFO (n=16)",
        caption=(
            "Theorem 3.1's analysis needs furthest-first; at permutation "
            "load the queues stay tiny and FIFO measures identically — "
            "the discipline is insurance for heavy/adversarial stages, "
            "not a steady-state speedup."
        ),
    )


def run_e7_slice_ablation(n: int = 16, *, trials: int = 3, seed=45) -> Table:
    def trial(rng, *, slice_rows: int) -> dict:
        mesh = Mesh2D.square(n)
        router = MeshRouter(mesh, seed=rng, slice_rows=slice_rows)
        stats = router.route_permutation(rng.permutation(n * n))
        assert stats.completed
        return {"time": stats.steps, "time/n": stats.steps / n, "max_queue": stats.max_queue}

    choices = [1, max(1, round(n / math.log2(n))), n // 2, n]
    rows = run_sweep(
        trial, [{"slice_rows": s} for s in dict.fromkeys(choices)], trials=trials, seed=seed
    )
    return rows_to_table(
        rows,
        ["slice_rows"],
        [("time", "mean"), ("time/n", "mean"), ("max_queue", "max")],
        title="E7c  Ablation: stage-1 slice height (ε n) on a 16x16 mesh",
        caption=(
            "ε = 1/log n (the paper's choice) balances stage-1 cost o(n) "
            "against stage-2 congestion; ε = 1 doubles the route."
        ),
    )


def run_e7_queue_variant(n: int = 16, *, trials: int = 3, seed=46) -> Table:
    def trial(rng, *, cap) -> dict:
        mesh = Mesh2D.square(n)
        router = MeshRouter(mesh, seed=rng, node_capacity=cap)
        stats = router.route_permutation(rng.permutation(n * n))
        assert stats.completed
        return {
            "time": stats.steps,
            "time/n": stats.steps / n,
            "max_node_load": stats.max_node_load,
        }

    rows = run_sweep(
        trial, [{"cap": None}, {"cap": 8}, {"cap": 4}], trials=trials, seed=seed
    )
    return rows_to_table(
        rows,
        ["cap"],
        [("time", "mean"), ("time/n", "mean"), ("max_node_load", "max")],
        title="E7d  O(1)-queue variant (backpressure), cf. [6] / Corollary 3.3",
        caption="Bounded node buffers preserve 2n + o(n) while capping queues.",
    )


def run_linear_primitive(ns=(32, 64, 128), *, trials: int = 3, seed=47) -> Table:
    def trial(rng, *, n: int) -> dict:
        origins, dests = random_linear_instance(n, n, seed=rng)
        stats = route_linear(n, origins, dests)
        assert stats.completed
        return {"time": stats.steps, "time/n": stats.steps / n, "max_queue": stats.max_queue}

    rows = run_sweep(trial, [{"n": n} for n in ns], trials=trials, seed=seed)
    return rows_to_table(
        rows,
        ["n"],
        [("time", "mean"), ("time/n", "mean"), ("max_queue", "max")],
        title="E7e  §3.4.1 primitive: n' random packets on a linear array in n' + o(n)",
        caption="Furthest-destination-first keeps the 1-D stage time near n.",
    )
