"""Experiment harness: seeded trial sweeps producing paper-style tables.

The paper proves bounds instead of reporting measurements, so the
reproduction's "tables" are one row per parameter setting with measured
means/maxima next to the claimed bound.  Every sweep is reproducible from
a single seed (trials get independent child generators).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from repro.util.rng import spawn_generators
from repro.util.stats import summarize
from repro.util.tables import Table


@dataclass
class TrialResult:
    """Metrics from one trial of one parameter setting."""

    metrics: dict[str, float] = field(default_factory=dict)


@dataclass
class SweepRow:
    params: dict
    #: metric name -> list of per-trial values
    samples: dict[str, list[float]] = field(default_factory=dict)

    def mean(self, key: str) -> float:
        vals = self.samples[key]
        return sum(vals) / len(vals)

    def max(self, key: str) -> float:
        return max(self.samples[key])

    def summary(self, key: str):
        return summarize(self.samples[key])


def run_sweep(
    trial_fn: Callable[..., Mapping[str, float]],
    param_grid: Sequence[Mapping],
    *,
    trials: int = 3,
    seed=0,
) -> list[SweepRow]:
    """Run ``trial_fn(rng=..., **params)`` *trials* times per setting.

    ``trial_fn`` returns a mapping of metric name -> value.
    """
    rows = []
    for i, params in enumerate(param_grid):
        row = SweepRow(params=dict(params))
        gens = spawn_generators((seed, i).__hash__() & 0x7FFFFFFF, trials)
        for rng in gens:
            metrics = trial_fn(rng=rng, **params)
            for key, value in metrics.items():
                row.samples.setdefault(key, []).append(float(value))
        rows.append(row)
    return rows


def run_online_sweep(
    driver_fn: Callable,
    param_grid: Sequence[Mapping],
    *,
    epochs: int,
    trials: int = 1,
    seed=0,
    skip_epochs: int | None = None,
) -> list[SweepRow]:
    """Sweep online-traffic scenarios like :func:`run_sweep` sweeps trials.

    ``driver_fn(rng=..., **params)`` must build a *fresh* driver (an
    object with ``run(epochs)`` returning a report exposing
    ``steady_state(skip_epochs=...)`` — in practice an
    :class:`repro.traffic.OnlineEmulator`) seeded from the supplied
    generator; each trial's steady-state summary becomes one sample per
    metric, so :func:`rows_to_table` renders traffic sweeps exactly
    like batch sweeps (and trial seeding is :func:`run_sweep`'s, so
    online and batch sweeps under one seed stay comparable).
    """

    def trial(rng, **params):
        return driver_fn(rng=rng, **params).run(epochs).steady_state(
            skip_epochs=skip_epochs
        )

    return run_sweep(trial, param_grid, trials=trials, seed=seed)


def rows_to_table(
    rows: Iterable[SweepRow],
    param_cols: Sequence[str],
    metric_cols: Sequence[tuple[str, str]],
    *,
    title: str,
    caption: str | None = None,
) -> Table:
    """Render sweep rows.  ``metric_cols`` entries are (metric, agg) with
    agg in {"mean", "max"}."""
    headers = list(param_cols) + [f"{m}({a})" for m, a in metric_cols]
    table = Table(headers, title=title)
    for row in rows:
        cells = [row.params[p] for p in param_cols]
        for metric, agg in metric_cols:
            cells.append(row.mean(metric) if agg == "mean" else row.max(metric))
        table.add_row(cells)
    if caption:
        table.set_caption(caption)
    return table
