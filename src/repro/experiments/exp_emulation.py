"""E6/E10 — emulation slowdowns (Theorems 2.5/2.6) and baselines.

E6: PRAM-step emulation cost, normalized by network diameter, on the
star's logical network, the n-way shuffle, and generic leveled networks —
for EREW traces and CRCW hot spots (combining).

E10: our mesh emulator vs Karlin–Upfal 4-phase vs the Ranade-style
butterfly machinery, on identical workloads; plus the paper's cited
constants for context.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.theory import karlin_upfal_phase_ratio, ranade_mesh_constant
from repro.emulation.karlin_upfal import KarlinUpfalMeshEmulator
from repro.emulation.leveled import LeveledEmulator
from repro.emulation.mesh import MeshEmulator
from repro.emulation.ranade import RanadeEmulator
from repro.experiments.harness import rows_to_table, run_sweep
from repro.pram.trace import ReadRequest, StepTrace, hotspot_step, permutation_step
from repro.topology.leveled import (
    DAryButterflyLeveled,
    ShuffleLeveled,
    StarLogicalLeveled,
)
from repro.topology.mesh import Mesh2D
from repro.util.tables import Table


def _networks(kind: str, size):
    if kind == "star":
        return StarLogicalLeveled(size), "node"
    if kind == "shuffle":
        return ShuffleLeveled.n_way(size), "coin"
    if kind == "butterfly":
        return DAryButterflyLeveled(2, size), "coin"
    raise ValueError(kind)


def run_e6(
    settings=(("star", 4), ("star", 5), ("shuffle", 3), ("butterfly", 5), ("butterfly", 7)),
    *,
    trials: int = 3,
    seed=51,
) -> Table:
    def trial(rng, *, kind: str, size: int) -> dict:
        net, mode = _networks(kind, size)
        m = 8 * net.column_size
        emu = LeveledEmulator(net, address_space=m, intermediate=mode, seed=rng)
        step = permutation_step(net.column_size, m, seed=rng)
        cost = emu.emulate_step(step)
        return {
            "N": net.column_size,
            "diam(2L)": emu.scale,
            "time": cost.total_steps,
            "time/diam": cost.total_steps / emu.scale,
            "rehashes": cost.rehashes,
        }

    grid = [{"kind": k, "size": s} for k, s in settings]
    rows = run_sweep(trial, grid, trials=trials, seed=seed)
    return rows_to_table(
        rows,
        ["kind", "size"],
        [
            ("N", "max"),
            ("diam(2L)", "max"),
            ("time", "mean"),
            ("time/diam", "mean"),
            ("rehashes", "max"),
        ],
        title="E6  Theorems 2.5/2.6 + Cor 2.3-2.6: one EREW PRAM step in Õ(diameter)",
        caption=(
            "Emulation cost normalized by the 2L round-trip stays a small "
            "constant across network families and sizes — the paper's "
            "sub-logarithmic emulation (star: 2L = 4(n-1) ≪ log₂ n!)."
        ),
    )


def run_e6_crcw(
    settings=(("butterfly", 5), ("star", 4), ("shuffle", 3)),
    *,
    trials: int = 3,
    seed=52,
) -> Table:
    def trial(rng, *, kind: str, size: int) -> dict:
        net, mode = _networks(kind, size)
        m = 8 * net.column_size
        emu = LeveledEmulator(net, address_space=m, intermediate=mode, mode="crcw", seed=rng)
        step = hotspot_step(net.column_size, m, hot_addresses=1, hot_fraction=1.0, seed=rng)
        cost = emu.emulate_step(step)
        return {
            "N": net.column_size,
            "time": cost.total_steps,
            "time/diam": cost.total_steps / emu.scale,
            "combines": cost.combines,
        }

    grid = [{"kind": k, "size": s} for k, s in settings]
    rows = run_sweep(trial, grid, trials=trials, seed=seed)
    return rows_to_table(
        rows,
        ["kind", "size"],
        [("N", "max"), ("time", "mean"), ("time/diam", "mean"), ("combines", "mean")],
        title="E6b  Theorem 2.6: CRCW hot spot (all N processors read one cell)",
        caption=(
            "Combining keeps the hot-spot step at Õ(diameter) — without it "
            "the module's link alone would need N steps."
        ),
    )


def run_e6_combining_ablation(size: int = 5, *, trials: int = 3, seed=53) -> Table:
    """Hot-spot cost with combining on vs off (off = requests serialized)."""

    def trial(rng, *, combining: bool) -> dict:
        net = DAryButterflyLeveled(2, size)
        m = 8 * net.column_size
        step = hotspot_step(net.column_size, m, hot_addresses=1, hot_fraction=1.0, seed=rng)
        if combining:
            emu = LeveledEmulator(net, address_space=m, mode="crcw", seed=rng)
            cost = emu.emulate_step(step)
            return {"time": cost.total_steps, "combines": cost.combines}
        # control: route the same hot-spot requests with combining disabled
        from repro.hashing.family import HashFamily
        from repro.routing.leveled_router import LeveledRouter
        from repro.routing.packet import Packet

        h = HashFamily(m, net.column_size, 2 * net.num_levels).sample(rng)
        router = LeveledRouter(net, seed=rng, combine=False)
        packets = [
            Packet(i, (0, 0, r.pid), int(h(r.addr)), kind="read", address=r.addr)
            for i, r in enumerate(step.reads)
        ]
        stats = router.route_packets(
            packets, max_steps=100 * net.num_levels + 4 * net.column_size
        )
        assert stats.completed
        return {"time": 2 * stats.steps, "combines": 0}  # + symmetric replies

    rows = run_sweep(
        trial, [{"combining": True}, {"combining": False}], trials=trials, seed=seed
    )
    return rows_to_table(
        rows,
        ["combining"],
        [("time", "mean"), ("combines", "mean")],
        title="E6c  Ablation: combining on/off for an N-reader hot spot",
        caption="Without combining the hot module serializes ~N packets.",
    )


def run_e10(n: int = 16, *, trials: int = 3, seed=54) -> Table:
    """Ours vs Karlin–Upfal on the same mesh; Ranade machinery on its
    butterfly; paper-cited constants for context."""

    def _loaded_step(rng, rows_: int, m: int, h: int) -> StepTrace:
        addrs = rng.choice(m, size=h * rows_, replace=False)
        return StepTrace(
            reads=[ReadRequest(i % rows_, int(a)) for i, a in enumerate(addrs)]
        )

    def trial(rng, *, scheme: str) -> dict:
        if scheme in ("ours", "karlin-upfal"):
            mesh = Mesh2D.square(n)
            m = 4 * n * n
            step = permutation_step(n * n, m, seed=rng)
            cls = MeshEmulator if scheme == "ours" else KarlinUpfalMeshEmulator
            emu = cls(mesh, address_space=m, seed=rng)
            cost = emu.emulate_step(step)
            return {"time": cost.total_steps, "norm_const": cost.total_steps / n}
        # Ranade merge machinery vs our leveled emulator on the SAME
        # loaded EREW step and matched butterfly substrates, both
        # normalized by the 2k diameter (load h requests per processor).
        k, h = 6, 6
        rows_ = 1 << k
        m = 16 * rows_
        step = _loaded_step(rng, rows_, m, h)
        if scheme == "ranade-butterfly":
            emu = RanadeEmulator(k, address_space=m, seed=rng)
            cost = emu.emulate_step(step)
            return {"time": cost.total_steps, "norm_const": cost.total_steps / emu.scale}
        lev = LeveledEmulator(DAryButterflyLeveled(2, k), m, seed=rng)
        cost = lev.emulate_step(step)
        return {"time": cost.total_steps, "norm_const": cost.total_steps / lev.scale}

    rows = run_sweep(
        trial,
        [
            {"scheme": "ours"},
            {"scheme": "karlin-upfal"},
            {"scheme": "ranade-butterfly"},
            {"scheme": "leveled-butterfly"},
        ],
        trials=trials,
        seed=seed,
    )
    table = rows_to_table(
        rows,
        ["scheme"],
        [("time", "mean"), ("norm_const", "mean")],
        title="E10  §1/§3.3: constant-factor comparison of emulation schemes",
    )
    table.set_caption(
        "Mesh rows (unit load): ours ≈ 4·n vs Karlin–Upfal ≈ 8·n "
        f"(predicted ratio {karlin_upfal_phase_ratio():.0f}).  Butterfly "
        "rows (load 6 requests/processor, same workload): the Ranade "
        "merge machinery's time/diameter constant exceeds the direct "
        "leveled emulator's; the paper cites "
        f"≈{ranade_mesh_constant():.0f} for Ranade's bound on the mesh."
    )
    return table
