"""E5/E11 — the hashing claims: Lemma 2.2 and Corollaries 3.1-3.3.

E5 compares the measured overflow probability (some module receiving more
than γ = cℓ requests) against the Lemma 2.2 counting bound, and reports
the hash description size (§2.1: O(L log M) bits).

E11 measures the three §3.3 load corollaries.
"""

from __future__ import annotations

import math

import numpy as np

from repro.experiments.harness import rows_to_table, run_sweep
from repro.hashing.family import HashFamily
from repro.hashing.loads import (
    bucket_loads,
    collection_load,
    corollary31_reference,
    corollary32_reference,
    corollary33_reference,
    empirical_overflow_rate,
    lemma22_bound,
    max_load,
)
from repro.util.tables import Table


def run_e5(
    settings=((256, 16, 8), (1024, 64, 8), (4096, 64, 12)),
    *,
    trials: int = 40,
    seed=31,
) -> Table:
    """settings: (address_space M, modules N, degree S ~ cL)."""
    table = Table(
        ["M", "N", "S", "gamma", "measured_Pr", "lemma22_bound", "hash_bits"],
        title="E5  Lemma 2.2: probability some module receives >= γ of N live requests",
    )
    for m, n_modules, s in settings:
        family = HashFamily(m, n_modules, s)
        s_size = n_modules  # |S| <= N live requests, worst case N
        gamma = 2 * s  # γ = cℓ with the same c used for S
        measured = empirical_overflow_rate(
            family, s_size, gamma, trials=trials, seed=seed
        )
        bound = lemma22_bound(s_size, n_modules, delta=s, gamma=gamma, p=family.p)
        bits = family.sample(seed).description_bits()
        table.add_row([m, n_modules, s, gamma, measured, bound, bits])
    table.set_caption(
        "Claim: Pr <= N·C(|S|,δ)·⌈P/N⌉^δ / (C(γ,δ)·P^δ); measured rate must "
        "not exceed the bound.  hash_bits = S·⌈log2 P⌉ = O(L log M)."
    )
    return table


def run_e11_cor31(ns=(256, 1024, 4096), *, trials: int = 5, seed=32) -> Table:
    def trial(rng, *, n: int) -> dict:
        family = HashFamily(4 * n, n, degree_param=8)
        h = family.sample(rng)
        ml = max_load(h, np.arange(n))
        return {"max_load": ml, "reference": corollary31_reference(n)}

    rows = run_sweep(trial, [{"n": n} for n in ns], trials=trials, seed=seed)
    return rows_to_table(
        rows,
        ["n"],
        [("max_load", "mean"), ("max_load", "max"), ("reference", "mean")],
        title="E11a  Corollary 3.1: N items into N buckets -> max load O(log N / log log N)",
        caption="Measured max load grows like the log N / log log N reference.",
    )


def run_e11_cor32(ns=(16, 32, 64), beta: float = 2.0, *, trials: int = 5, seed=33) -> Table:
    def trial(rng, *, n: int) -> dict:
        family = HashFamily(4 * n * n, int(beta * n), degree_param=8)
        h = family.sample(rng)
        ml = max_load(h, np.arange(n * n))
        return {
            "max_load": ml,
            "n/beta": n / beta,
            "bound": corollary32_reference(n, beta),
        }

    rows = run_sweep(trial, [{"n": n} for n in ns], trials=trials, seed=seed)
    return rows_to_table(
        rows,
        ["n"],
        [("max_load", "max"), ("n/beta", "mean"), ("bound", "mean")],
        title="E11b  Corollary 3.2: n² items into βn buckets -> max <= n/β + O(n^{3/4})",
        caption="Measured max load stays below the n/β + n^{3/4} curve.",
    )


def run_e11_cor33(ns=(256, 1024, 4096), *, trials: int = 5, seed=34) -> Table:
    def trial(rng, *, n: int) -> dict:
        family = HashFamily(4 * n, n, degree_param=8)
        h = family.sample(rng)
        k = max(1, int(math.log2(n)))
        buckets = rng.choice(n, size=k, replace=False)
        load = collection_load(h, np.arange(n), buckets)
        return {"collection_load": load, "log2N": k, "ref_O(logN)": corollary33_reference(n)}

    rows = run_sweep(trial, [{"n": n} for n in ns], trials=trials, seed=seed)
    return rows_to_table(
        rows,
        ["n"],
        [("log2N", "mean"), ("collection_load", "max"), ("ref_O(logN)", "mean")],
        title="E11c  Corollary 3.3: any log N buckets receive O(log N) items w.h.p.",
        caption="Measured total load over a random log N-bucket collection.",
    )


def run_e5_degree_ablation(m: int = 1024, n_modules: int = 64, *, trials: int = 30, seed=35) -> Table:
    """Ablation: polynomial degree S = 1 (linear) vs S = cL — the tail of
    the max load shrinks as the family's independence grows."""
    table = Table(
        ["S", "mean_max_load", "p95_max_load", "worst_max_load"],
        title="E5b  Ablation: hash polynomial degree vs max-load tail",
    )
    from repro.util.rng import spawn_generators

    for s in (1, 2, 4, 8, 16):
        family = HashFamily(m, n_modules, s)
        loads = []
        for rng in spawn_generators(seed + s, trials):
            h = family.sample(rng)
            loads.append(max_load(h, np.arange(n_modules)))
        loads.sort()
        table.add_row(
            [
                s,
                sum(loads) / len(loads),
                loads[int(0.95 * (len(loads) - 1))],
                loads[-1],
            ]
        )
    table.set_caption(
        "S = cL (the paper's choice) buys Lemma 2.2's exponential tail. "
        "S=1 is a constant polynomial — every address lands in one module "
        "(max load = all items); S>=2 restores balance, and larger S "
        "tightens the worst-case tail."
    )
    return table
