"""E1/E4 — Theorems 2.1 & 2.4 on generic leveled networks.

E1: permutation routing time on degree-d, L-level butterfly-style leveled
networks with L = Θ(d); the claim is Õ(ℓ): normalized time (steps / 2L)
stays flat as the network grows, queues O(ℓ).

E4: partial cℓ-relation routing under the same normalization.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.harness import rows_to_table, run_sweep
from repro.routing.leveled_router import LeveledRouter
from repro.topology.leveled import DAryButterflyLeveled
from repro.util.tables import Table


def _permutation_trial(rng, *, d: int, levels: int, mode: str) -> dict:
    net = DAryButterflyLeveled(d, levels)
    router = LeveledRouter(net, intermediate=mode, seed=rng)
    stats = router.route_permutation(rng.permutation(net.column_size))
    assert stats.completed
    return {
        "time": stats.steps,
        "time/2L": stats.steps / (2 * levels),
        "max_queue": stats.max_queue,
        "queue/L": stats.max_queue / levels,
        "max_delay": stats.max_delay,
    }


def run_e1(
    settings=((2, 4), (2, 6), (2, 8), (3, 4), (3, 5), (4, 4)),
    *,
    trials: int = 3,
    seed=11,
    mode: str = "coin",
) -> Table:
    grid = [{"d": d, "levels": L, "mode": mode} for d, L in settings]
    rows = run_sweep(_permutation_trial, grid, trials=trials, seed=seed)
    table = rows_to_table(
        rows,
        ["d", "levels"],
        [("time", "mean"), ("time/2L", "mean"), ("max_queue", "max"), ("queue/L", "max")],
        title="E1  Theorem 2.1: permutation routing on leveled networks (Algorithm 2.1)",
        caption=(
            "Claim: Õ(ℓ) time with FIFO queues of size O(ℓ).  Check: "
            "time/2L flat in network size; queue/L bounded."
        ),
    )
    return table


def _relation_trial(rng, *, d: int, levels: int, h: int) -> dict:
    net = DAryButterflyLeveled(d, levels)
    router = LeveledRouter(net, seed=rng)
    n = net.column_size
    sources = np.repeat(np.arange(n), h)
    dests = np.concatenate([rng.permutation(n) for _ in range(h)])
    stats = router.route_h_relation(sources, dests)
    assert stats.completed
    return {
        "time": stats.steps,
        "time/2L": stats.steps / (2 * levels),
        "time/(h*2L)": stats.steps / (h * 2 * levels),
        "max_queue": stats.max_queue,
    }


def run_e4(
    settings=((2, 5, 5), (2, 6, 6), (3, 4, 4), (2, 6, 12)),
    *,
    trials: int = 3,
    seed=13,
) -> Table:
    grid = [{"d": d, "levels": L, "h": h} for d, L, h in settings]
    rows = run_sweep(_relation_trial, grid, trials=trials, seed=seed)
    return rows_to_table(
        rows,
        ["d", "levels", "h"],
        [("time", "mean"), ("time/(h*2L)", "mean"), ("max_queue", "max")],
        title="E4  Theorem 2.4: partial ℓ-relation routing (h = cℓ packets per node)",
        caption=(
            "Claim: any partial ℓ-relation finishes in Õ(ℓ).  Check: time "
            "scales with h·ℓ, normalized time/(h·2L) roughly constant."
        ),
    )
