"""E3/E12 — Theorem 2.3 / Corollary 2.2 on the d-way shuffle, plus the
Valiant-model comparison the paper highlights in §2.3.4.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.harness import rows_to_table, run_sweep
from repro.routing.shuffle_router import ShuffleRouter
from repro.routing.valiant import valiant_shuffle_route
from repro.topology.shuffle import DWayShuffle
from repro.util.tables import Table


def run_e3(settings=((2, 4), (2, 6), (3, 3), (2, 8), (3, 4)), *, trials: int = 3, seed=23) -> Table:
    def trial(rng, *, d: int, n: int) -> dict:
        sh = DWayShuffle(d, n)
        router = ShuffleRouter(sh, seed=rng)
        stats = router.route_permutation(rng.permutation(sh.num_nodes))
        assert stats.completed
        return {
            "N": sh.num_nodes,
            "time": stats.steps,
            "time/n": stats.steps / n,
            "max_queue": stats.max_queue,
        }

    grid = [{"d": d, "n": n} for d, n in settings]
    rows = run_sweep(trial, grid, trials=trials, seed=seed)
    return rows_to_table(
        rows,
        ["d", "n"],
        [("N", "max"), ("time", "mean"), ("time/n", "mean"), ("max_queue", "max")],
        title="E3  Theorem 2.3: permutation routing on the d-way shuffle (Algorithm 2.3)",
        caption="Claim: Õ(n) — time a constant multiple of the diameter n.",
    )


def run_e3_relation(settings=((2, 4), (3, 3)), *, trials: int = 3, seed=24) -> Table:
    def trial(rng, *, d: int, n: int) -> dict:
        sh = DWayShuffle(d, n)
        router = ShuffleRouter(sh, seed=rng)
        stats = router.route_n_relation(h=n)
        assert stats.completed
        return {"time": stats.steps, "time/n": stats.steps / n, "max_queue": stats.max_queue}

    grid = [{"d": d, "n": n} for d, n in settings]
    rows = run_sweep(trial, grid, trials=trials, seed=seed)
    return rows_to_table(
        rows,
        ["d", "n"],
        [("time", "mean"), ("time/n", "mean"), ("max_queue", "max")],
        title="E3b  Corollary 2.2: partial n-relation routing on the d-way shuffle",
        caption="Claim: partial n-relations route in Õ(n).",
    )


def run_e12(ns=(2, 3, 4), *, trials: int = 3, seed=25) -> Table:
    """Algorithm 2.3 (parallel-link model) vs Valiant's scheme under the
    serialized node model, on the n-way shuffle.

    §2.3.4: "For the n-way shuffle graph, Valiant's algorithm runs in time
    Õ(n log n / log log n) and hence is not optimal."  The measured ratio
    serialized/parallel should grow with n.
    """

    def trial(rng, *, n: int) -> dict:
        sh = DWayShuffle.n_way(n)
        perm = rng.permutation(sh.num_nodes)
        ours = ShuffleRouter(sh, seed=rng).route_permutation(perm)
        ser = valiant_shuffle_route(
            sh, np.arange(sh.num_nodes), perm, seed=rng
        )
        assert ours.completed and ser.completed
        import math

        predicted = math.log(max(3, n)) / math.log(math.log(max(3, n)) + 1e-9) if n >= 3 else 1.0
        return {
            "N": sh.num_nodes,
            "ours": ours.steps,
            "valiant": ser.steps,
            "ratio": ser.steps / ours.steps,
        }

    rows = run_sweep(trial, [{"n": n} for n in ns], trials=trials, seed=seed)
    return rows_to_table(
        rows,
        ["n"],
        [("N", "max"), ("ours", "mean"), ("valiant", "mean"), ("ratio", "mean")],
        title="E12  §2.3.4: optimal Õ(n) routing vs Valiant's Õ(n log n / log log n)",
        caption=(
            "Serialized-node Valiant routing falls behind Algorithm 2.3 "
            "as n grows (ratio tracks log n / log log n)."
        ),
    )
