"""F1-F5 — the paper's figures, regenerated as structural artifacts.

The figures are diagrams, not data plots; we regenerate the underlying
structures, verify their defining invariants, and render small ASCII
summaries:

* Figure 1 — the generic ℓ-level, degree-d leveled network template;
* Figure 2 — the 3-star and 4-star graphs;
* Figure 3 — the logical leveled network of the 3-star;
* Figure 4 — the 2-way shuffle (n = 2);
* Figure 5 — the mesh partitioned into horizontal slices.
"""

from __future__ import annotations

from repro.routing.mesh_router import default_slice_rows
from repro.topology.leveled import DAryButterflyLeveled, StarLogicalLeveled
from repro.topology.mesh import Mesh2D
from repro.topology.shuffle import DWayShuffle
from repro.topology.star import StarGraph


def figure1_leveled_template(d: int = 2, levels: int = 3) -> str:
    net = DAryButterflyLeveled(d, levels)
    lines = [
        f"Figure 1: leveled network, {net.num_columns} columns x {net.column_size} nodes, degree {d}",
    ]
    for level in range(net.num_levels):
        sample = net.out_neighbors(level, 0)
        lines.append(f"  level {level}: node 0 -> {sorted(sample)}")
    # unique-path invariant
    path = net.unique_path(0, net.column_size - 1)
    lines.append(f"  unique path 0 -> {net.column_size - 1}: {path}")
    return "\n".join(lines)


def figure2_star_graphs() -> str:
    lines = ["Figure 2: (a) 3-star, (b) 4-star"]
    for n in (3, 4):
        star = StarGraph(n)
        lines.append(
            f"  {n}-star: {star.num_nodes} nodes, degree {star.degree}, "
            f"diameter {star.diameter}"
        )
        sym = lambda p: "".join(chr(ord("A") + x) for x in p)  # noqa: E731
        for v in range(min(star.num_nodes, 6)):
            nbrs = ", ".join(sym(star.label(w)) for w in star.neighbors(v))
            lines.append(f"    {sym(star.label(v))} -- {nbrs}")
    return "\n".join(lines)


def figure3_star_logical(n: int = 3) -> str:
    net = StarLogicalLeveled(n)
    lines = [
        f"Figure 3: logical leveled network of the {n}-star — "
        f"{net.num_levels} levels (2 per stage), degree {net.degree}",
    ]
    star = net.star
    sym = lambda p: "".join(chr(ord("A") + x) for x in p)  # noqa: E731
    src, dst = 1, star.num_nodes - 1
    path = net.unique_path(src, dst)
    rendered = " -> ".join(sym(star.label(v)) for v in path)
    lines.append(f"  canonical path {sym(star.label(src))} => {sym(star.label(dst))}:")
    lines.append(f"    {rendered}")
    for stage in range(n - 1):
        lines.append(
            f"  stage {stage + 1}: fixes symbol position {n - 1 - stage} "
            f"(subgraphs G^{stage + 1} of size {star.num_nodes // _falling(n, stage + 1)})"
        )
    return "\n".join(lines)


def _falling(n: int, i: int) -> int:
    out = 1
    for j in range(i):
        out *= n - j
    return out


def figure4_two_way_shuffle() -> str:
    sh = DWayShuffle.n_way(2)
    lines = [
        f"Figure 4: n-way shuffle with n = 2 — {sh.num_nodes} nodes, "
        f"diameter {sh.diameter}",
    ]
    for v in range(sh.num_nodes):
        label = "".join(map(str, sh.label(v)))
        succ = ", ".join(
            "".join(map(str, sh.label(w))) for w in sh.shuffle_neighbors(v)
        )
        lines.append(f"  {label} -> {succ}")
    return "\n".join(lines)


def figure5_mesh_slices(n: int = 16) -> str:
    mesh = Mesh2D.square(n)
    rows = default_slice_rows(n)
    n_slices = -(-n // rows)
    lines = [
        f"Figure 5: {n}x{n} mesh partitioned into {n_slices} horizontal "
        f"slices of {rows} rows (ε = 1/log₂ n)",
    ]
    for s in range(n_slices):
        rng = mesh.slice_row_range(s, rows)
        lines.append(f"  slice {s}: rows {rng.start}..{rng.stop - 1}")
    return "\n".join(lines)


def all_figures() -> str:
    return "\n\n".join(
        [
            figure1_leveled_template(),
            figure2_star_graphs(),
            figure3_star_logical(),
            figure4_two_way_shuffle(),
            figure5_mesh_slices(),
        ]
    )
