"""Experiment suite: one module per claim family; see DESIGN.md §4."""

from repro.experiments.harness import SweepRow, rows_to_table, run_sweep
from repro.experiments.exp_leveled import run_e1, run_e4
from repro.experiments.exp_star import (
    run_e2,
    run_e2_ablation,
    run_e2_logical,
    run_e2_relation,
)
from repro.experiments.exp_shuffle import run_e3, run_e3_relation, run_e12
from repro.experiments.exp_hash import (
    run_e5,
    run_e5_degree_ablation,
    run_e11_cor31,
    run_e11_cor32,
    run_e11_cor33,
)
from repro.experiments.exp_mesh import (
    run_e7,
    run_e7_discipline_ablation,
    run_e7_queue_variant,
    run_e7_slice_ablation,
    run_e8,
    run_e9,
    run_linear_primitive,
)
from repro.experiments.exp_emulation import (
    run_e6,
    run_e6_combining_ablation,
    run_e6_crcw,
    run_e10,
)
from repro.experiments.exp_figures import all_figures

ALL_EXPERIMENTS = {
    "E1": run_e1,
    "E2": run_e2,
    "E2b": run_e2_relation,
    "E2c": run_e2_ablation,
    "E2d": run_e2_logical,
    "E3": run_e3,
    "E3b": run_e3_relation,
    "E4": run_e4,
    "E5": run_e5,
    "E5b": run_e5_degree_ablation,
    "E6": run_e6,
    "E6b": run_e6_crcw,
    "E6c": run_e6_combining_ablation,
    "E7": run_e7,
    "E7b": run_e7_discipline_ablation,
    "E7c": run_e7_slice_ablation,
    "E7d": run_e7_queue_variant,
    "E7e": run_linear_primitive,
    "E8": run_e8,
    "E9": run_e9,
    "E10": run_e10,
    "E11a": run_e11_cor31,
    "E11b": run_e11_cor32,
    "E11c": run_e11_cor33,
    "E12": run_e12,
}

__all__ = [
    "ALL_EXPERIMENTS",
    "SweepRow",
    "all_figures",
    "rows_to_table",
    "run_sweep",
]
