"""Fault specifications: what breaks, and when.

Two declarative inputs describe a faulty machine:

* :class:`FaultPlan` — *static* faults in the sense of the
  static-fault PRAM model (PAPERS.md): a fixed set of memory modules
  and/or processors dead from virtual step 0.
* :class:`FaultSchedule` — *timed* faults: module kill/revive and link
  down/up events pinned to **virtual-clock steps** (the same network
  steps the emulators' telemetry counts), plus optional per-link
  latency inflation (a slow link transmits only every ``period``-th
  step).  A schedule embeds a plan for its static part.

Both are plain data — no randomness, no state.  The runtime
interpretation (detection lag, remapping, engine stalls) lives in
:mod:`repro.faults.runtime`.

Link naming
-----------
Link specs are topology-level names, translated to engine keys by the
router that consumes them:

* mesh — ``(u, v)``: the directed wire from node id ``u`` to adjacent
  node id ``v``;
* leveled network — ``(col, u_row, v_row)``: the directed wire from
  row ``u_row`` in column ``col`` to row ``v_row`` in column
  ``col + 1`` (it is blocked on *both* passes of the two-pass
  emulation scheme, matching a physical cable cut).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

__all__ = [
    "FaultConfigError",
    "FaultEvent",
    "FaultPlan",
    "FaultSchedule",
    "RehashStormError",
]


class FaultConfigError(ValueError):
    """A fault specification that cannot be realized (e.g. every
    module dead, or an out-of-range module id)."""


class RehashStormError(RuntimeError):
    """Request routing kept failing until the rehash budget ran out.

    Raised by the emulators instead of a bare ``RuntimeError`` when a
    step exhausts ``max_rehashes`` *and* the generous last-resort
    budget.  Carries enough diagnostics for a service loop
    (:class:`~repro.traffic.OnlineEmulator`) to charge the wasted
    steps, count the storm, and retry or dead-letter the batch.

    When an :class:`~repro.obs.Observer` with a flight recorder was
    attached to the raising emulator, ``flight_tail`` holds the last-K
    recorded step events leading up to the storm (oldest first).
    """

    #: flight-recorder tail at raise time (see repro.obs.FlightRecorder)
    flight_tail: tuple = ()

    def __init__(
        self,
        message: str,
        *,
        rehashes: int = 0,
        stall_steps: int = 0,
        deadlock_retries: int = 0,
        fault_failfasts: int = 0,
        run_modes: tuple[str, ...] = (),
    ) -> None:
        super().__init__(message)
        #: rehashes burned before giving up
        self.rehashes = rehashes
        #: network steps spent on the failed routing attempts
        self.stall_steps = stall_steps
        #: attempts that ended in a flow-control ``DeadlockError``
        self.deadlock_retries = deadlock_retries
        #: attempts skipped because the hash aimed at a known-dead module
        self.fault_failfasts = fault_failfasts
        #: engine mode of every attempt that actually routed
        self.run_modes = tuple(run_modes)


#: event kinds a schedule may contain, in the order they are applied
#: when several share a step
EVENT_KINDS = (
    "kill_module",
    "revive_module",
    "link_down",
    "link_up",
    "slow_link",
    "restore_link",
)


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault transition at virtual-clock step ``step``."""

    step: int
    kind: str
    #: module id for module events; link spec tuple for link events
    target: object
    #: ``slow_link`` only: transmit every ``period``-th step (>= 2)
    period: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise FaultConfigError(
                f"unknown fault event kind {self.kind!r}; "
                f"pick one of {EVENT_KINDS}"
            )
        if self.step < 0:
            raise FaultConfigError("fault event step must be >= 0")
        if self.kind == "slow_link":
            if self.period is None or self.period < 2:
                raise FaultConfigError("slow_link needs period >= 2")
        elif self.period is not None:
            raise FaultConfigError(f"{self.kind} takes no period")

    def describe(self) -> str:
        """Stable human/JSON-friendly label, e.g. ``kill_module(12)@50``."""
        extra = f", period={self.period}" if self.period is not None else ""
        return f"{self.kind}({self.target}{extra})@{self.step}"


@dataclass(frozen=True)
class FaultPlan:
    """Static faults: dead from virtual step 0, forever.

    Matches the static-fault model: the fault set is fixed before the
    computation starts and known to the emulator (no detection lag), so
    dead modules are remapped out of the address hash up front and dead
    processors hand their requests to a live proxy.
    """

    dead_modules: frozenset[int] = frozenset()
    dead_processors: frozenset[int] = frozenset()

    def __init__(
        self,
        *,
        dead_modules: Iterable[int] = (),
        dead_processors: Iterable[int] = (),
    ) -> None:
        object.__setattr__(self, "dead_modules", frozenset(map(int, dead_modules)))
        object.__setattr__(
            self, "dead_processors", frozenset(map(int, dead_processors))
        )
        for m in self.dead_modules | self.dead_processors:
            if m < 0:
                raise FaultConfigError("fault ids must be >= 0")

    def __bool__(self) -> bool:
        return bool(self.dead_modules or self.dead_processors)


@dataclass
class FaultSchedule:
    """Timed faults on top of an optional static plan.

    Build one with the fluent helpers::

        sched = (
            FaultSchedule()
            .kill_module(50, 12)
            .revive_module(400, 12)
            .link_down(100, (3, 4))
            .link_up(160, (3, 4))
            .slow_link(0, (8, 9), period=3)
        )

    Steps are **virtual-clock steps** — the cumulative network-step
    clock the emulators advance (``Emulator.virtual_clock``, which the
    online driver's ``TrafficReport`` exposes per epoch), *not* epoch
    indices.  Events at the same step apply in :data:`EVENT_KINDS`
    order (kills before revives, downs before ups), so a same-step
    kill+revive leaves the module alive.
    """

    plan: FaultPlan = field(default_factory=FaultPlan)
    events: list[FaultEvent] = field(default_factory=list)

    # -- fluent builders ------------------------------------------------
    def add(self, event: FaultEvent) -> "FaultSchedule":
        self.events.append(event)
        return self

    def kill_module(self, step: int, module: int) -> "FaultSchedule":
        return self.add(FaultEvent(int(step), "kill_module", int(module)))

    def revive_module(self, step: int, module: int) -> "FaultSchedule":
        return self.add(FaultEvent(int(step), "revive_module", int(module)))

    def link_down(self, step: int, link: tuple) -> "FaultSchedule":
        return self.add(FaultEvent(int(step), "link_down", tuple(link)))

    def link_up(self, step: int, link: tuple) -> "FaultSchedule":
        return self.add(FaultEvent(int(step), "link_up", tuple(link)))

    def slow_link(self, step: int, link: tuple, *, period: int) -> "FaultSchedule":
        return self.add(
            FaultEvent(int(step), "slow_link", tuple(link), period=int(period))
        )

    def restore_link(self, step: int, link: tuple) -> "FaultSchedule":
        return self.add(FaultEvent(int(step), "restore_link", tuple(link)))

    # -- views ----------------------------------------------------------
    @property
    def module_events(self) -> list[FaultEvent]:
        out = [e for e in self.events if e.kind in ("kill_module", "revive_module")]
        return sorted(out, key=_event_order)

    @property
    def link_events(self) -> list[FaultEvent]:
        out = [
            e
            for e in self.events
            if e.kind in ("link_down", "link_up", "slow_link", "restore_link")
        ]
        return sorted(out, key=_event_order)

    def __bool__(self) -> bool:
        return bool(self.plan) or bool(self.events)


def _event_order(e: FaultEvent) -> tuple[int, int]:
    return (e.step, EVENT_KINDS.index(e.kind))
