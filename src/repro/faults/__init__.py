"""Seeded, deterministic fault injection for the PRAM emulation stack.

Specs (:class:`FaultPlan`, :class:`FaultSchedule`) are plain data;
:class:`FaultState` interprets them at emulation time (detection lag,
dead-module remap, link-fault views).  See ``docs/faults.md``.
"""

from repro.faults.plan import (
    FaultConfigError,
    FaultEvent,
    FaultPlan,
    FaultSchedule,
    RehashStormError,
)
from repro.faults.runtime import FaultState, LinkFaultTimeline, LinkFaultView

__all__ = [
    "FaultConfigError",
    "FaultEvent",
    "FaultPlan",
    "FaultSchedule",
    "FaultState",
    "LinkFaultTimeline",
    "LinkFaultView",
    "RehashStormError",
]
