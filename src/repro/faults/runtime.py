"""Runtime interpretation of fault specs: liveness, remaps, link views.

:class:`FaultState` is the emulator-side object.  It distinguishes the
**truth** (which modules are dead at virtual step *t*, per the
schedule) from what the emulation layer has **detected**
(``known_dead``):

* Static faults (:class:`~repro.faults.plan.FaultPlan`) are known from
  step 0 — the static-fault model assumes the fault set is given — so
  they are remapped out of the address hash immediately.
* A scheduled *kill* is invisible until a request actually aims at the
  dead module: the attempt fails fast (no routing steps — the module's
  home switch NACKs), the emulator *acknowledges* the kill, folds the
  module into the remap, and rehashes (the paper's §2.1 recovery path).
* A *revive* is visible at the next emulated step (the module
  re-registers): ``refresh`` drops it from ``known_dead`` and the
  remap sends its addresses home again.

Remapping is deterministic and engine-independent: a dead module's
addresses move to the next live module id (cyclically), so both
engines see identical destinations and differential tests stay
bit-identical.

Link faults never reroute — a down link simply refuses to transmit, so
queued packets wait exactly like a zero-credit link (counted in the
new ``fault_stalls`` stat).  :class:`LinkFaultView` resolves "is this
wire blocked at global step t?" in the consuming engine's own key
space via a router-supplied translation.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, Iterable

import numpy as np

from repro.faults.plan import (
    EVENT_KINDS,
    FaultConfigError,
    FaultEvent,
    FaultPlan,
    FaultSchedule,
)

__all__ = ["FaultState", "LinkFaultTimeline", "LinkFaultView"]


def _remap_array(n: int, dead: frozenset[int], what: str) -> np.ndarray:
    """id -> serving id: identity for live ids, next live id (cyclic)
    for dead ones."""
    remap = np.arange(n, dtype=np.int64)
    if not dead:
        return remap
    live = np.array(
        sorted(set(range(n)) - dead), dtype=np.int64
    )
    if live.size == 0:
        raise FaultConfigError(f"all {n} {what}s dead — nothing left to serve")
    for m in sorted(dead):
        i = int(np.searchsorted(live, m))
        remap[m] = int(live[i]) if i < live.size else int(live[0])
    return remap


class LinkFaultTimeline:
    """Piecewise-constant link state over virtual time.

    Built from a schedule's link events; queried through per-engine
    :class:`LinkFaultView` objects.  A link has two orthogonal
    attributes: *down* (``link_down``/``link_up``) and a slowdown
    *period* (``slow_link``/``restore_link``; the link transmits only
    at global steps ``t % period == 0``).
    """

    def __init__(self, events: Iterable[FaultEvent]) -> None:
        events = list(events)
        # state per link: [down: bool, period: int | None]
        state: dict[tuple, list] = {}
        steps = sorted({e.step for e in events})
        self._starts: list[int] = []
        #: per segment: (down link specs frozenset, ((spec, period), ...))
        self._segments: list[tuple[frozenset, tuple]] = []
        by_step: dict[int, list[FaultEvent]] = {}
        for e in events:
            by_step.setdefault(e.step, []).append(e)
        # segment 0 covers [0, first_event_step): no faults
        if not steps or steps[0] > 0:
            self._starts.append(0)
            self._segments.append((frozenset(), ()))
        for s in steps:
            for e in sorted(by_step[s], key=lambda e: EVENT_KINDS.index(e.kind)):
                cur = state.setdefault(e.target, [False, None])
                if e.kind == "link_down":
                    cur[0] = True
                elif e.kind == "link_up":
                    cur[0] = False
                elif e.kind == "slow_link":
                    cur[1] = e.period
                elif e.kind == "restore_link":
                    cur[1] = None
            down = frozenset(k for k, (d, _p) in state.items() if d)
            slow = tuple(
                sorted(
                    (k, p)
                    for k, (d, p) in state.items()
                    if p is not None and not d
                )
            )
            self._starts.append(s)
            self._segments.append((down, slow))

    def segment_at(self, t: int) -> tuple[frozenset, tuple]:
        """(down specs, slow (spec, period) pairs) in force at step t."""
        i = bisect_right(self._starts, t) - 1
        return self._segments[max(i, 0)]

    @property
    def has_slow_links(self) -> bool:
        return any(slow for _down, slow in self._segments)

    def view(self, translate: Callable[[tuple], tuple]) -> "LinkFaultView":
        """Engine-facing view; ``translate(spec)`` yields engine keys."""
        return LinkFaultView(self, translate)


class LinkFaultView:
    """Per-engine resolution of the timeline into engine link keys.

    ``parts_at(t)`` returns ``(static, extra)``: *static* is a
    frozenset of keys down for the whole current segment — **identity
    stable** within a segment, so engines may cache derived structures
    on ``static is last_static`` — and *extra* is the (usually empty)
    tuple of keys blocked at exactly this step by a slow-link phase.
    """

    def __init__(
        self, timeline: LinkFaultTimeline, translate: Callable[[tuple], tuple]
    ) -> None:
        self._timeline = timeline
        self._translate = translate
        self._last_seg: tuple | None = None
        self._last: tuple[frozenset, tuple] = (frozenset(), ())

    def parts_at(self, t: int) -> tuple[frozenset, tuple]:
        seg = self._timeline.segment_at(t)
        if seg is not self._last_seg:
            down, slow = seg
            static = frozenset(
                k for spec in sorted(down) for k in self._translate(spec)
            )
            slow_keys = tuple(
                (tuple(self._translate(spec)), period) for spec, period in slow
            )
            self._last_seg = seg
            self._last = (static, slow_keys)
        static, slow_keys = self._last
        if not slow_keys:
            return static, ()
        extra = tuple(
            k for keys, period in slow_keys if t % period for k in keys
        )
        return static, extra


class FaultState:
    """Mutable runtime fault state shared by an emulator's phases."""

    def __init__(
        self,
        spec: FaultPlan | FaultSchedule | None,
        *,
        num_modules: int,
        num_processors: int,
    ) -> None:
        if spec is None:
            spec = FaultSchedule()
        if isinstance(spec, FaultPlan):
            spec = FaultSchedule(plan=spec)
        if not isinstance(spec, FaultSchedule):
            raise TypeError(
                f"faults must be a FaultPlan or FaultSchedule, got {type(spec)!r}"
            )
        self.schedule = spec
        self.num_modules = int(num_modules)
        self.num_processors = int(num_processors)
        plan = spec.plan
        for m in plan.dead_modules:
            if m >= self.num_modules:
                raise FaultConfigError(f"dead module {m} out of range")
        for p in plan.dead_processors:
            if p >= self.num_processors:
                raise FaultConfigError(f"dead processor {p} out of range")
        self._static_dead = frozenset(plan.dead_modules)
        self.dead_processors = frozenset(plan.dead_processors)
        self._proc_remap = _remap_array(
            self.num_processors, self.dead_processors, "processor"
        )
        # truth snapshots: dead-module set after each distinct event step
        self._truth_steps: list[int] = []
        self._truth_sets: list[frozenset[int]] = []
        cur = set(self._static_dead)
        for e in spec.module_events:
            if not isinstance(e.target, int) or e.target >= self.num_modules:
                raise FaultConfigError(f"module event target {e.target!r} out of range")
            if e.kind == "kill_module":
                cur.add(e.target)
            else:
                cur.discard(e.target)
            if len(cur) >= self.num_modules:
                raise FaultConfigError(
                    f"schedule kills all {self.num_modules} modules at step {e.step}"
                )
            if self._truth_steps and self._truth_steps[-1] == e.step:
                self._truth_sets[-1] = frozenset(cur)
            else:
                self._truth_steps.append(e.step)
                self._truth_sets.append(frozenset(cur))
        #: what the emulation layer has detected (drives the remap)
        self.known_dead: frozenset[int] = self._static_dead
        self._remap = _remap_array(self.num_modules, self.known_dead, "module")
        link_events = spec.link_events
        self.link_timeline: LinkFaultTimeline | None = (
            LinkFaultTimeline(link_events) if link_events else None
        )

    # -- flags ----------------------------------------------------------
    @property
    def has_module_faults(self) -> bool:
        return bool(self._static_dead or self._truth_steps)

    @property
    def has_processor_faults(self) -> bool:
        return bool(self.dead_processors)

    @property
    def has_link_faults(self) -> bool:
        return self.link_timeline is not None

    # -- module liveness ------------------------------------------------
    def dead_modules_at(self, step: int) -> frozenset[int]:
        """Ground truth: modules dead at virtual step ``step``."""
        i = bisect_right(self._truth_steps, step) - 1
        if i < 0:
            return self._static_dead
        return self._truth_sets[i]

    def undetected_dead(self, step: int) -> frozenset[int]:
        return self.dead_modules_at(step) - self.known_dead

    def refresh(self, step: int) -> frozenset[int]:
        """Make revives visible: drop modules that are alive again at
        ``step`` from ``known_dead``.  Returns the revived set."""
        revived = self.known_dead - self.dead_modules_at(step)
        if revived:
            self.known_dead = self.known_dead - revived
            self._remap = _remap_array(self.num_modules, self.known_dead, "module")
        return revived

    def acknowledge(self, step: int) -> frozenset[int]:
        """Detect: fold every module actually dead at ``step`` into
        ``known_dead`` (and the remap).  Returns the newly detected set."""
        newly = self.undetected_dead(step)
        if newly:
            self.known_dead = self.known_dead | newly
            self._remap = _remap_array(self.num_modules, self.known_dead, "module")
        return newly

    # -- remaps ---------------------------------------------------------
    def map_modules(self, modules: np.ndarray) -> np.ndarray:
        """Vectorized module remap under the *detected* fault set."""
        return self._remap[modules]

    def map_module(self, module: int) -> int:
        return int(self._remap[module])

    def map_processors(self, pids: np.ndarray) -> np.ndarray:
        return self._proc_remap[pids]

    def map_processor(self, pid: int) -> int:
        return int(self._proc_remap[pid])

    # -- link views -----------------------------------------------------
    def link_view(self, translate: Callable[[tuple], tuple]) -> LinkFaultView | None:
        if self.link_timeline is None:
            return None
        return self.link_timeline.view(translate)

    # -- annotations ----------------------------------------------------
    def events_between(self, lo: int, hi: int) -> list[str]:
        """Schedule events with ``lo <= step < hi``, as stable labels
        (telemetry annotations on the epoch series)."""
        out = [
            e.describe()
            for e in self.schedule.events
            if lo <= e.step < hi
        ]
        out.sort()
        return out
