"""The paper's delay analysis, executable (§2.2.2, Theorem 2.4's proof).

Two artifacts:

* the generating-function tail bound on a packet's total queueing delay
  in the universal routing algorithm — the heart of Theorem 2.4;
* the queue-line lemma (Fact 2.1) as a *checker* that can audit an actual
  routing run: for a nonrepeating scheme, no packet's delay may exceed
  the number of packets whose paths overlap its own.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.routing.packet import Packet


def per_level_delay_pgf_coeff(levels: int, degree: int, p: int) -> float:
    """Upper bound on Prob(d_i = p): (1/p!) (ℓ/d)^p  (proof of Thm 2.4).

    d_i is the number of packets delaying a given packet for the first
    time at level i; the bound is uniform over levels.
    """
    if p < 0:
        raise ValueError("p must be >= 0")
    ratio = levels / degree
    return math.exp(p * math.log(ratio) - math.lgamma(p + 1)) if ratio > 0 else (
        1.0 if p == 0 else 0.0
    )


def total_delay_tail(levels: int, degree: int, delta: int) -> float:
    """Upper bound on Prob(total delay >= δ) for one packet.

    The per-level generating function is e^{(ℓ/d) x}; over ℓ levels the
    total-delay PGF is e^{s x} with s = ℓ²/d, so
    Prob(delay = p) <= s^p / p! and the tail is bounded by the classic
    Poisson-style estimate (e s / δ)^δ for δ > s.
    """
    if delta <= 0:
        return 1.0
    s = levels * levels / degree
    if delta <= s:
        return 1.0
    return min(1.0, math.exp(delta * (1.0 + math.log(s / delta))))


def routing_time_bound(levels: int, degree: int, failure_prob: float) -> float:
    """Smallest T = 2ℓ + δ with total_delay_tail(δ) * (packets) <= target.

    A direct, computable version of "Õ(ℓ) steps with probability
    >= 1 - N^{-α}": path length 2ℓ plus the δ at which the union-bounded
    tail drops below *failure_prob* (union over the N = column packets).
    """
    if not 0 < failure_prob < 1:
        raise ValueError("failure_prob must be in (0,1)")
    n_packets = degree**levels if degree > 1 else levels
    delta = 1
    while delta < 10_000:
        if total_delay_tail(levels, degree, delta) * n_packets <= failure_prob:
            return 2 * levels + delta
        delta += 1
    raise RuntimeError("tail bound did not converge")  # pragma: no cover


# ---------------------------------------------------------------------------
# Queue-line lemma (Fact 2.1)
# ---------------------------------------------------------------------------

@dataclass
class QueueLineViolation:
    pid: int
    delay: int
    overlaps: int


def _links_of(trace: Sequence) -> set[tuple]:
    return {(a, b) for a, b in zip(trace, trace[1:])}


def queue_line_check(packets: Sequence[Packet]) -> list[QueueLineViolation]:
    """Audit Fact 2.1 on a finished run with tracked paths.

    For every delivered packet x, its delay must be <= the number of other
    packets whose paths share at least one (directed) link with x's path —
    provided the routing scheme is nonrepeating.  Returns the violations
    (empty list = lemma holds on this run).
    """
    infos = []
    for p in packets:
        if not p.delivered or p.trace is None:
            continue
        infos.append((p, _links_of(p.trace)))
    violations = []
    for p, links in infos:
        if not links:
            continue
        overlaps = sum(
            1 for q, qlinks in infos if q is not p and links & qlinks
        )
        if p.delay > overlaps:
            violations.append(QueueLineViolation(p.pid, p.delay, overlaps))
    return violations


def is_nonrepeating(packets: Sequence[Packet]) -> bool:
    """Check Definition 2.1 on a run: once two paths diverge after sharing
    a link, they never share a link again."""
    infos = [
        (p, p.trace)
        for p in packets
        if p.delivered and p.trace is not None and len(p.trace) > 1
    ]
    for i, (p, tp) in enumerate(infos):
        lp = list(zip(tp, tp[1:]))
        set_p = set(lp)
        index_p = {link: idx for idx, link in enumerate(lp)}
        for q, tq in infos[i + 1 :]:
            lq = list(zip(tq, tq[1:]))
            shared = [link for link in lq if link in set_p]
            if len(shared) <= 1:
                continue
            # positions of shared links must be contiguous *and* order-
            # preserving in both paths for the pair to be nonrepeating
            pos_p = [index_p[link] for link in shared]
            pos_q = [idx for idx, link in enumerate(lq) if link in set_p]
            if pos_p != list(range(pos_p[0], pos_p[0] + len(shared))):
                return False
            if pos_q != list(range(pos_q[0], pos_q[0] + len(shared))):
                return False
            if sorted(pos_p) != pos_p:
                return False
    return True
