"""Closed-form predictions from the paper, for predicted-vs-measured tables.

Every theorem's claim is encoded as a reference curve so experiments can
print "claimed bound" next to "measured" and EXPERIMENTS.md can record the
comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


# ---- network facts (§2.3.4, §2.3.5, §1) -----------------------------------

def star_diameter(n: int) -> int:
    """⌊3(n-1)/2⌋ (Akers-Harel-Krishnamurthy, quoted in §2.3.4)."""
    return (3 * (n - 1)) // 2


def star_nodes(n: int) -> int:
    return math.factorial(n)


def shuffle_diameter(n: int) -> int:
    return n


def shuffle_nodes(d: int, n: int) -> int:
    return d**n

def hypercube_diameter(n: int) -> int:
    return n


def sublogarithmic_gap(n: int, network: str = "star") -> float:
    """diameter / log2(N): < 1 and shrinking for star and n-way shuffle —
    the property that makes Theorem 2.6 beat O(log N) emulations."""
    if network == "star":
        return star_diameter(n) / math.log2(star_nodes(n))
    if network == "shuffle":
        return shuffle_diameter(n) / math.log2(shuffle_nodes(n, n))
    if network == "hypercube":
        return 1.0
    raise ValueError(f"unknown network {network!r}")


# ---- claimed time bounds ---------------------------------------------------

@dataclass(frozen=True)
class Claim:
    """A theorem's quantitative claim: measured <= constant * scale + slack."""

    name: str
    constant: float
    #: o(·) slack expressed as slack_coeff * scale**slack_power
    slack_coeff: float = 0.0
    slack_power: float = 0.75

    def bound(self, scale: float) -> float:
        return self.constant * scale + self.slack_coeff * scale**self.slack_power

    def holds(self, measured: float, scale: float) -> bool:
        return measured <= self.bound(scale)


#: Theorem 3.1 — each mesh routing phase: 2n + o(n)
MESH_ROUTING_CLAIM = Claim("Theorem 3.1 (2n + o(n))", 2.0, slack_coeff=6.0)
#: Theorem 3.2 — EREW step on the mesh: 4n + o(n)
MESH_EMULATION_CLAIM = Claim("Theorem 3.2 (4n + o(n))", 4.0, slack_coeff=12.0)
#: Theorem 3.3 — locality: 6δ + o(δ)
MESH_LOCALITY_CLAIM = Claim("Theorem 3.3 (6d + o(d))", 6.0, slack_coeff=12.0)
#: §3.4.1 — linear array with furthest-first: n' + o(n)
LINEAR_ARRAY_CLAIM = Claim("§3.4.1 (n' + o(n))", 1.0, slack_coeff=6.0)


def leveled_routing_claim(constant: float = 8.0) -> Claim:
    """Theorems 2.1-2.4: Õ(ℓ) — time <= c * (2ℓ) for a modest c.

    The paper leaves the constant implicit ("Õ"); the experiments fit it
    and check it stays flat as ℓ grows.
    """
    return Claim("Theorem 2.1/2.4 (Õ(ℓ))", constant)


def ranade_mesh_constant() -> float:
    """The paper's quoted constant for Ranade's technique on the mesh
    (§1, §3: 'The underlying constant is roughly 100')."""
    return 100.0


def karlin_upfal_phase_ratio() -> float:
    """KU uses 4 routing phases to our 2 (§3.3): predicted time ratio 2."""
    return 2.0


# ---- shape checking --------------------------------------------------------

def flatness(values: list[float], *, tolerance: float = 0.35) -> bool:
    """True when a sequence of normalized times has no growth trend beyond
    *tolerance* (relative increase from the first to the last element).

    Used to assert "time / diameter stays bounded" across a size sweep.
    """
    if len(values) < 2:
        return True
    lo = min(values)
    if lo <= 0:
        raise ValueError("normalized times must be positive")
    return values[-1] <= values[0] * (1 + tolerance) or values[-1] <= max(values[:-1])


def fitted_constant(scales: list[float], times: list[float]) -> float:
    """Least-squares slope of time vs scale — the measured leading
    constant (e.g. ≈4 for Theorem 3.2)."""
    from repro.util.stats import linear_fit

    a, _b = linear_fit(scales, times)
    return a
