"""PRAM conflict/race analysis: infer and verify access-mode semantics.

The paper's emulation theorems are parameterized by the PRAM variant —
Theorem 2.5 emulates EREW directly, Theorem 2.6 buys CRCW via combining —
so a program that silently violates its declared :class:`AccessMode`
invalidates whichever bound it is run under.  This module turns that
contract into a checkable artifact:

* :class:`ConflictChecker` consumes :class:`~repro.pram.trace.StepTrace`
  records (post-hoc over a whole :class:`~repro.pram.trace.MemoryTrace`,
  or incrementally step by step as a run sanitizer) and emits structured
  :class:`RaceReport` entries — one per (step, address) conflict, naming
  the step, the address, the participating pids, and the conflict kind.
* :func:`infer_mode` reduces the reports to the *minimal* variant that
  legalizes the trace (EREW < CREW < CRCW, plus which
  :class:`WritePolicy` values remain sound for the observed writes).
* :func:`classify_program` pre-runs a :class:`~repro.pram.programs.ProgramSpec`
  on a permissive machine (mode enforcement off) and verifies the
  declared mode/policy against the inferred one — the machinery behind
  the "every library program is classified" test gate.  The registry it
  sweeps includes the application programs from :mod:`repro.apps`
  (connected components, bisimulation), whose addresses are
  data-dependent — the trace-level check is what certifies them, since
  the static scan cannot; ``BENCH_apps.json`` re-asserts the ``exact``
  verdict per benchmark row.
* :class:`SymbolicAddressScan` is the static half: it inspects the
  program's AST and proves exclusivity for address expressions that are
  affine in ``pid`` (``Read(pid + stride)``, ``Write(2 * pid, ...)``),
  flags pid-independent expressions as shared, and reports everything
  else as data-dependent.  Full symbolic execution of arbitrary Python
  generators is not tractable; the scan is advisory and the trace-level
  checker is the ground truth for a given input.

The incremental entry point is exposed on the machine itself as
``PRAM.run(check_races=...)`` (see :mod:`repro.pram.machine`).
"""

from __future__ import annotations

import ast
import enum
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from repro.pram.trace import MemoryTrace, StepTrace
from repro.pram.variants import AccessMode, ConcurrentAccessError, WritePolicy

__all__ = [
    "ConflictChecker",
    "ConflictKind",
    "ProgramClassification",
    "RaceError",
    "RaceReport",
    "SymbolicAddressScan",
    "TraceAnalysis",
    "classify_all_programs",
    "classify_program",
    "find_violations",
    "infer_mode",
    "mode_allows",
    "prerun_trace",
    "scan_program_addresses",
]


class ConflictKind(enum.Enum):
    """What collided at one (step, address)."""

    READ_READ = "read-read"  #: >1 concurrent readers, no writer
    READ_WRITE = "read-write"  #: >=1 reader and >=1 writer
    WRITE_WRITE = "write-write"  #: >1 concurrent writers


#: weakest AccessMode that legalizes each conflict kind
REQUIRED_MODE = {
    ConflictKind.READ_READ: AccessMode.CREW,
    ConflictKind.READ_WRITE: AccessMode.CRCW,
    ConflictKind.WRITE_WRITE: AccessMode.CRCW,
}

_MODE_RANK = {AccessMode.EREW: 0, AccessMode.CREW: 1, AccessMode.CRCW: 2}


def mode_allows(declared: AccessMode, required: AccessMode) -> bool:
    """True when *declared* is at least as permissive as *required*."""
    return _MODE_RANK[declared] >= _MODE_RANK[required]


@dataclass(frozen=True)
class RaceReport:
    """One same-step conflict at one address."""

    step: int
    addr: int
    kind: ConflictKind
    readers: tuple[int, ...] = ()
    writers: tuple[int, ...] = ()
    #: for WRITE_WRITE: did every writer carry the same value?  (If so
    #: the conflict is still COMMON-legal.)  None for other kinds.
    values_agree: bool | None = None

    @property
    def pids(self) -> tuple[int, ...]:
        """All participating processors, sorted and deduplicated."""
        return tuple(sorted(set(self.readers) | set(self.writers)))

    @property
    def required_mode(self) -> AccessMode:
        return REQUIRED_MODE[self.kind]

    def describe(self) -> str:
        parts = [f"step {self.step}: {self.kind.value} on address {self.addr}"]
        if self.readers:
            parts.append(f"readers={list(self.readers)}")
        if self.writers:
            parts.append(f"writers={list(self.writers)}")
        if self.kind is ConflictKind.WRITE_WRITE:
            parts.append(
                "values agree" if self.values_agree else "values diverge"
            )
        return " ".join(parts)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


@dataclass
class TraceAnalysis:
    """Everything the checker learned from one trace."""

    reports: list[RaceReport]
    steps_analyzed: int
    #: weakest AccessMode under which every step is legal
    minimal_mode: AccessMode
    #: True when every WRITE_WRITE conflict is value-agreeing, i.e.
    #: WritePolicy.COMMON would not raise on this trace
    common_compatible: bool

    @property
    def has_conflicts(self) -> bool:
        return bool(self.reports)

    def conflicts_of_kind(self, kind: ConflictKind) -> list[RaceReport]:
        return [r for r in self.reports if r.kind is kind]

    def violations(
        self, mode: AccessMode, write_policy: WritePolicy | None = None
    ) -> list[RaceReport]:
        """Reports illegal under *mode* (and, for CRCW, *write_policy*)."""
        return find_violations(self.reports, mode, write_policy)


class RaceError(ConcurrentAccessError):
    """Raised by the ``check_races`` sanitizer; carries the reports.

    When an :class:`~repro.obs.Observer` with a flight recorder was
    attached to the raising machine, ``flight_tail`` holds the last-K
    recorded step events leading up to the race (oldest first).
    """

    #: flight-recorder tail at raise time (see repro.obs.FlightRecorder)
    flight_tail: tuple = ()

    def __init__(self, message: str, reports: Sequence[RaceReport]) -> None:
        super().__init__(message)
        self.reports = list(reports)


class ConflictChecker:
    """Detect same-step conflicts in PRAM memory traces.

    Stateless across steps: feed it :class:`StepTrace` records in any
    order (each carries no cross-step state) via :meth:`check_step`, or
    a whole trace via :meth:`analyze`.
    """

    def check_step(self, step_index: int, step: StepTrace) -> list[RaceReport]:
        """All conflicts in one step, ordered by address."""
        readers: dict[int, list[int]] = {}
        writers: dict[int, list[tuple[int, object]]] = {}
        for r in step.reads:
            readers.setdefault(r.addr, []).append(r.pid)
        for w in step.writes:
            writers.setdefault(w.addr, []).append((w.pid, w.value))

        reports: list[RaceReport] = []
        for addr in sorted(set(readers) | set(writers)):
            rd = sorted(readers.get(addr, []))
            wr = writers.get(addr, [])
            wr_pids = tuple(sorted(p for p, _v in wr))
            if len(wr) > 1:
                values = {v for _p, v in wr}
                reports.append(
                    RaceReport(
                        step=step_index,
                        addr=addr,
                        kind=ConflictKind.WRITE_WRITE,
                        readers=tuple(rd),
                        writers=wr_pids,
                        values_agree=len(values) <= 1,
                    )
                )
            if wr and rd:
                reports.append(
                    RaceReport(
                        step=step_index,
                        addr=addr,
                        kind=ConflictKind.READ_WRITE,
                        readers=tuple(rd),
                        writers=wr_pids,
                    )
                )
            if len(rd) > 1 and not wr:
                reports.append(
                    RaceReport(
                        step=step_index,
                        addr=addr,
                        kind=ConflictKind.READ_READ,
                        readers=tuple(rd),
                    )
                )
        return reports

    def analyze(self, trace: Iterable[StepTrace]) -> TraceAnalysis:
        """Scan a whole trace and summarize the minimal legal variant."""
        reports: list[RaceReport] = []
        n = 0
        for i, step in enumerate(trace):
            reports.extend(self.check_step(i, step))
            n += 1
        return TraceAnalysis(
            reports=reports,
            steps_analyzed=n,
            minimal_mode=infer_mode(reports),
            common_compatible=all(
                r.values_agree
                for r in reports
                if r.kind is ConflictKind.WRITE_WRITE
            ),
        )

    def verify(
        self,
        trace: Iterable[StepTrace],
        mode: AccessMode,
        write_policy: WritePolicy | None = None,
    ) -> list[RaceReport]:
        """Reports that violate the declared *mode* (and COMMON policy)."""
        return self.analyze(trace).violations(mode, write_policy)


def find_violations(
    reports: Iterable[RaceReport],
    mode: AccessMode,
    write_policy: WritePolicy | None = None,
) -> list[RaceReport]:
    """The subset of *reports* illegal under *mode* (plus, when the
    declared policy is COMMON, value-divergent write/write conflicts)."""
    out: list[RaceReport] = []
    for r in reports:
        if not mode_allows(mode, r.required_mode):
            out.append(r)
        elif (
            r.kind is ConflictKind.WRITE_WRITE
            and write_policy is WritePolicy.COMMON
            and not r.values_agree
        ):
            out.append(r)
    return out


def infer_mode(reports: Iterable[RaceReport]) -> AccessMode:
    """The weakest AccessMode under which every report is legal."""
    mode = AccessMode.EREW
    for r in reports:
        need = r.required_mode
        if _MODE_RANK[need] > _MODE_RANK[mode]:
            mode = need
        if mode is AccessMode.CRCW:
            break
    return mode


# ---------------------------------------------------------------------------
# ProgramSpec classification (permissive pre-run + declared-mode check)
# ---------------------------------------------------------------------------

@dataclass
class ProgramClassification:
    """Outcome of verifying one ProgramSpec against its pre-run trace."""

    name: str
    declared_mode: AccessMode
    declared_policy: WritePolicy
    inferred_mode: AccessMode
    analysis: TraceAnalysis
    #: reports illegal under the declared mode/policy (empty = sound)
    violations: list[RaceReport]
    #: "exact" (declared == inferred), "over-declared" (declared is
    #: strictly stronger than needed — legal, but the program would run
    #: under a cheaper emulation theorem), or "violation"
    verdict: str

    @property
    def ok(self) -> bool:
        return not self.violations


def prerun_trace(spec, *, max_steps: int = 100_000) -> MemoryTrace:
    """Run *spec*'s program on a permissive machine and return the trace.

    The machine runs with mode enforcement off (CRCW-shaped, the spec's
    own write policy, COMMON divergence resolved lowest-pid instead of
    raising), so even a program that would crash its declared machine
    yields a complete trace for analysis.  Reads feed the program's
    control flow exactly as on the declared machine whenever the program
    is in fact mode-sound, so for sound programs the pre-run trace *is*
    the real trace.
    """
    from repro.pram.machine import PRAM  # local import: machine imports us

    pram = PRAM(
        spec.n_procs,
        spec.memory_size,
        mode=spec.mode,
        write_policy=spec.write_policy,
        combine_op=spec.combine_op,
        init=spec.init,
        enforce_mode=False,
    )
    pram.load(spec.program)
    pram.run(max_steps=max_steps)
    return pram.trace


def classify_program(spec, *, max_steps: int = 100_000) -> ProgramClassification:
    """Pre-run *spec* and verify its declared mode against the trace."""
    trace = prerun_trace(spec, max_steps=max_steps)
    analysis = ConflictChecker().analyze(trace)
    violations = analysis.violations(spec.mode, spec.write_policy)
    if violations:
        verdict = "violation"
    elif analysis.minimal_mode is spec.mode:
        verdict = "exact"
    else:
        verdict = "over-declared"
    return ProgramClassification(
        name=spec.name,
        declared_mode=spec.mode,
        declared_policy=spec.write_policy,
        inferred_mode=analysis.minimal_mode,
        analysis=analysis,
        violations=violations,
        verdict=verdict,
    )


def classify_all_programs(
    builders: Mapping[str, Callable] | None = None,
) -> dict[str, ProgramClassification]:
    """Classify every library program (default: ``ALL_PROGRAM_BUILDERS``)."""
    if builders is None:
        from repro.pram.programs import ALL_PROGRAM_BUILDERS

        builders = ALL_PROGRAM_BUILDERS
    return {name: classify_program(build()) for name, build in builders.items()}


# ---------------------------------------------------------------------------
# Symbolic address scan (static, advisory)
# ---------------------------------------------------------------------------

class AddressClass(enum.Enum):
    """Static classification of one Read/Write address expression."""

    EXCLUSIVE = "exclusive"  #: affine in pid, nonzero coefficient
    SHARED = "shared"  #: pid-independent (same cell for every pid)
    DATA_DEPENDENT = "data-dependent"  #: depends on values read at runtime


@dataclass(frozen=True)
class AddressSite:
    """One ``Read(...)``/``Write(...)`` call site in the program source."""

    lineno: int
    op: str  #: "read" or "write"
    source: str
    klass: AddressClass


@dataclass
class SymbolicAddressScan:
    """Static audit of a program's address expressions.

    ``proves_exclusive`` is True only when *every* site is affine in
    ``pid`` with a nonzero pid coefficient — a sound (if conservative)
    proof that no two processors ever name the same address, i.e. the
    program is EREW-safe on every input regardless of control flow.
    """

    sites: list[AddressSite] = field(default_factory=list)
    #: the scan parsed the program source successfully
    parsed: bool = True

    @property
    def proves_exclusive(self) -> bool:
        return (
            self.parsed
            and bool(self.sites)
            and all(s.klass is AddressClass.EXCLUSIVE for s in self.sites)
        )

    @property
    def shared_sites(self) -> list[AddressSite]:
        return [s for s in self.sites if s.klass is AddressClass.SHARED]


def _affine_pid_coeff(node: ast.expr, pid_name: str) -> tuple[int, bool] | None:
    """(pid coefficient, exact) for an affine-in-pid expression, else None.

    Handles ``pid``, integer constants, closure names (coefficient 0 but
    *inexact* — their value is unknown, so a surrounding multiply cannot
    be proven nonzero), unary +/-, and +, -, * with at most one
    pid-dependent factor.
    """
    if isinstance(node, ast.Name):
        if node.id == pid_name:
            return 1, True
        return 0, False  # closure/global constant: pid-free, value unknown
    if isinstance(node, ast.Constant):
        if isinstance(node.value, int) and not isinstance(node.value, bool):
            return 0, True
        return None
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.UAdd, ast.USub)):
        inner = _affine_pid_coeff(node.operand, pid_name)
        if inner is None:
            return None
        coeff, exact = inner
        return (-coeff if isinstance(node.op, ast.USub) else coeff), exact
    if isinstance(node, ast.BinOp):
        left = _affine_pid_coeff(node.left, pid_name)
        right = _affine_pid_coeff(node.right, pid_name)
        if left is None or right is None:
            return None
        (lc, lex), (rc, rex) = left, right
        if isinstance(node.op, ast.Add):
            return lc + rc, lex and rex
        if isinstance(node.op, ast.Sub):
            return lc - rc, lex and rex
        if isinstance(node.op, ast.Mult):
            # affine only when one side is pid-free
            if lc == 0 and lex:
                # exact integer constant on the left scales the right
                const = _const_int(node.left)
                if const is not None and rc != 0:
                    return const * rc, rex
                return (0, lex and rex) if rc == 0 else None
            if rc == 0 and rex:
                const = _const_int(node.right)
                if const is not None and lc != 0:
                    return const * lc, lex
                return (0, lex and rex) if lc == 0 else None
            if lc == 0 and rc == 0:
                return 0, False  # product of two unknowns: pid-free
            return None
        return None
    return None


def _const_int(node: ast.expr) -> int | None:
    """Literal integer value of *node* (through unary +/-), else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int) \
            and not isinstance(node.value, bool):
        return node.value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.UAdd, ast.USub)):
        inner = _const_int(node.operand)
        if inner is None:
            return None
        return -inner if isinstance(node.op, ast.USub) else inner
    return None


def scan_program_addresses(program: Callable | str) -> SymbolicAddressScan:
    """Statically classify every Read/Write address in *program*'s source.

    *program* is a program callable (source recovered via
    :func:`inspect.getsource` — so it must live in a real file) or the
    source text itself (for tooling over code that has no file, e.g.
    generated programs).

    Tractability boundary: expressions are classified EXCLUSIVE only
    when provably affine in the generator's first parameter (the pid)
    with a literal nonzero coefficient; pid-free expressions are SHARED;
    everything else — subscripts, names bound inside the function,
    calls — is DATA_DEPENDENT and left to the trace checker.
    """
    scan = SymbolicAddressScan()
    try:
        if isinstance(program, str):
            source = textwrap.dedent(program)
        else:
            source = textwrap.dedent(inspect.getsource(program))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError):
        scan.parsed = False
        return scan

    func = next(
        (
            n
            for n in ast.walk(tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ),
        None,
    )
    if func is None or not func.args.args:
        scan.parsed = False
        return scan
    pid_name = func.args.args[0].arg

    # names assigned inside the function body are runtime values, not
    # closure constants: treat any address mentioning them as data-dependent
    local_names: set[str] = {a.arg for a in func.args.args[1:]}
    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.For)):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, ast.For):
                targets = [node.target]
            elif node.target is not None:
                targets = [node.target]
            for t in targets:
                for sub in ast.walk(t):
                    if isinstance(sub, ast.Name):
                        local_names.add(sub.id)

    def classify(addr: ast.expr) -> AddressClass:
        for sub in ast.walk(addr):
            if isinstance(sub, ast.Name) and sub.id in local_names:
                return AddressClass.DATA_DEPENDENT
        affine = _affine_pid_coeff(addr, pid_name)
        if affine is None:
            return AddressClass.DATA_DEPENDENT
        coeff, exact = affine
        if coeff != 0 and exact:
            return AddressClass.EXCLUSIVE
        if coeff == 0:
            return AddressClass.SHARED
        return AddressClass.DATA_DEPENDENT

    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("Read", "Write")
            and node.args
        ):
            addr = node.args[0]
            scan.sites.append(
                AddressSite(
                    lineno=node.lineno,
                    op=node.func.id.lower(),
                    source=ast.unparse(addr),
                    klass=classify(addr),
                )
            )
    scan.sites.sort(key=lambda s: s.lineno)
    return scan
