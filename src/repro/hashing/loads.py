"""Bucket-load measurement and the paper's load bounds.

Lemma 2.2 (Karlin–Upfal) bounds the probability that a random h ∈ H maps
≥ γ of the ≤ N live addresses S to one module; the paper instantiates
γ = cℓ to conclude that, w.h.p., the request routing problem is a partial
cℓ-relation (so Theorem 2.4 applies).  §3.3's Fact and Corollaries 3.1-3.3
give the mesh-specific load facts.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.hashing.family import PolynomialHash


def bucket_loads(h, addresses: Sequence[int] | np.ndarray, n_buckets: int | None = None) -> np.ndarray:
    """Histogram of module loads for the given live address set."""
    if n_buckets is None:
        n_buckets = h.n_modules
    mapped = h.map(np.asarray(addresses))
    return np.bincount(mapped, minlength=n_buckets)


def max_load(h, addresses) -> int:
    """Largest number of live addresses mapped to one module."""
    loads = bucket_loads(h, addresses)
    return int(loads.max()) if loads.size else 0


def _log_comb(n: float, k: float) -> float:
    """log C(n, k) via lgamma (n may be large)."""
    if k < 0 or k > n:
        return float("-inf")
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )


def lemma22_bound(
    s_size: int, n_modules: int, delta: int, gamma: int, p: int
) -> float:
    """Upper bound on Pr[some module gets >= gamma of the s_size requests].

    Following the proof of Lemma 2.2: every h mapping γ ≥ δ elements of S
    to module L is pinned down by each of its C(γ, δ) δ-subsets (a degree-
    (δ-1) polynomial is determined by δ points), and there are at most
    C(|S|, δ) · ceil(P/N)^δ admissible point sets, out of P^δ polynomials:

        Pr[one module] ≤ C(|S|, δ) · ceil(P/N)^δ / (C(γ, δ) · P^δ)

    multiplied by N for the union over modules.
    """
    if gamma < delta:
        return 1.0  # the counting argument needs γ ≥ δ
    if s_size < gamma:
        return 0.0  # cannot map more elements than exist
    log_num = _log_comb(s_size, delta) + delta * math.log(math.ceil(p / n_modules))
    log_den = _log_comb(gamma, delta) + delta * math.log(p)
    log_pr = math.log(n_modules) + log_num - log_den
    return min(1.0, math.exp(log_pr))


def empirical_overflow_rate(
    family, s_size: int, gamma: int, trials: int, seed=None
) -> float:
    """Fraction of sampled hash functions with some module load >= gamma.

    The live set S is taken as addresses 0..s_size-1 (the bound is uniform
    over S, so a fixed S is a fair test).
    """
    from repro.util.rng import spawn_generators

    addresses = np.arange(s_size)
    hits = 0
    for rng in spawn_generators(seed, trials):
        h = family.sample(rng)
        if max_load(h, addresses) >= gamma:
            hits += 1
    return hits / trials


# ---- §3.3 Fact and corollaries ------------------------------------------

def fact_max_load_bound(n_items: int, log2_shrink: int) -> float:
    """§3.3 Fact [4]: mapping N items into N/2^i buckets, the max bucket
    load k_i satisfies (roughly) k_i ≲ 2^i + O(sqrt(2^i log N) + log N).

    Returns the reference value 2^i + 4*sqrt(2^i * ln N) + 4*ln N used by
    the experiments as the "claimed" curve.
    """
    mean = 2.0**log2_shrink
    ln_n = math.log(max(2, n_items))
    return mean + 4.0 * math.sqrt(mean * ln_n) + 4.0 * ln_n


def corollary31_reference(n_items: int) -> float:
    """Corollary 3.1: N items into N buckets → max load O(log N / log log N)."""
    ln_n = math.log(max(3, n_items))
    return ln_n / math.log(ln_n)


def corollary32_reference(n: int, beta: float) -> float:
    """Corollary 3.2: n² items into βn buckets → max ≤ n/β + O(n^{3/4})."""
    return n / beta + n**0.75


def corollary33_reference(n_items: int) -> float:
    """Corollary 3.3: any fixed collection of log N buckets receives
    O(log N) items w.h.p."""
    return math.log(max(2, n_items))


def collection_load(h, addresses, buckets: Sequence[int]) -> int:
    """Total items hashed into the given collection of buckets."""
    mapped = h.map(np.asarray(addresses))
    mask = np.isin(mapped, np.asarray(list(buckets)))
    return int(mask.sum())
