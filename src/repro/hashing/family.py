"""The Karlin–Upfal universal hash family H of §2.1.

    H = { h : h(x) = ((Σ_{0≤i<S} a_i x^i) mod P) mod N }

with P prime, P >= M (the PRAM address-space size), coefficients a_i drawn
uniformly from Z_P, and degree parameter S = cL where L is the diameter of
the emulating network.  Each member needs only O(L log M) bits to describe
— the property the paper highlights as making the scheme practical.

Evaluation is NumPy-vectorized (Horner with a reduction mod P at every
step keeps intermediates below 2**63 whenever P < 2**31; larger address
spaces fall back to exact Python integers).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.util.primes import next_prime
from repro.util.rng import as_generator

_VECTOR_P_LIMIT = 1 << 31


class PolynomialHash:
    """One member h ∈ H: a degree-(S-1) polynomial over Z_P, reduced mod N."""

    def __init__(self, coeffs: Sequence[int], p: int, n_modules: int) -> None:
        if not coeffs:
            raise ValueError("need at least one coefficient")
        if n_modules < 1:
            raise ValueError("need at least one memory module")
        self.coeffs = [int(c) % p for c in coeffs]
        self.p = int(p)
        self.n_modules = int(n_modules)
        self._vec_coeffs = (
            np.asarray(self.coeffs, dtype=np.int64) if p < _VECTOR_P_LIMIT else None
        )

    @property
    def degree_param(self) -> int:
        """S: the number of coefficients (polynomial degree + 1)."""
        return len(self.coeffs)

    def __call__(self, x: int) -> int:
        """h(x) for a single address."""
        acc = 0
        for a in reversed(self.coeffs):
            acc = (acc * x + a) % self.p
        return acc % self.n_modules

    def map(self, xs: np.ndarray | Sequence[int]) -> np.ndarray:
        """Vectorized h over an address array (Horner, mod at each step).

        Exactly equal to ``[h(x) for x in xs]`` — the vectorized path
        reduces mod P at every Horner step, so with P < 2**31 every
        intermediate fits int64.  This is the one-call-per-step form the
        emulation layer uses; evaluating addresses one at a time through
        ``__call__`` costs an O(S) Python loop per address.
        """
        if self._vec_coeffs is not None:
            vals = np.asarray(xs, dtype=np.int64) % self.p
            acc = np.zeros_like(vals)
            for a in self._vec_coeffs[::-1]:
                acc = (acc * vals + a) % self.p
            return acc % self.n_modules
        return np.array([self(int(x)) for x in np.asarray(xs)], dtype=np.int64)

    def description_bits(self) -> int:
        """Bits to broadcast this hash function: S * ceil(log2 P).

        The paper: "each hash function in H needs only O(L log M) bits to
        describe. This makes our scheme practical."
        """
        return self.degree_param * max(1, math.ceil(math.log2(self.p)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PolynomialHash(S={self.degree_param}, P={self.p}, "
            f"N={self.n_modules})"
        )


class HashFamily:
    """The family H for a given (M, N, S); draws random members.

    Parameters
    ----------
    address_space:
        M — number of shared-memory cells of the emulated PRAM.
    n_modules:
        N — memory modules of the emulating network.
    degree_param:
        S — number of coefficients; the paper picks S = cL for network
        diameter L (use :func:`degree_for_diameter`).
    """

    def __init__(self, address_space: int, n_modules: int, degree_param: int) -> None:
        if address_space < 1:
            raise ValueError("address space must be positive")
        if n_modules < 1:
            raise ValueError("need at least one module")
        if degree_param < 1:
            raise ValueError("degree parameter S must be >= 1")
        self.address_space = address_space
        self.n_modules = n_modules
        self.degree_param = degree_param
        self.p = next_prime(max(address_space, n_modules, 2))

    def sample(self, seed=None) -> PolynomialHash:
        """Draw h uniformly from H (one batched draw for all S coefficients)."""
        rng = as_generator(seed)
        coeffs = rng.integers(self.p, size=self.degree_param)
        return PolynomialHash(coeffs.tolist(), self.p, self.n_modules)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HashFamily(M={self.address_space}, N={self.n_modules}, "
            f"S={self.degree_param}, P={self.p})"
        )


def degree_for_diameter(diameter: int, c: float = 1.0) -> int:
    """S = cL (the paper's choice 'S = cL for some constant c')."""
    return max(1, round(c * diameter))


class IdealRandomHash:
    """Ablation baseline: a fully random map (what Valiant-style analyses
    assume; unimplementable at scale — needs M log N description bits)."""

    def __init__(self, address_space: int, n_modules: int, seed=None) -> None:
        rng = as_generator(seed)
        self.table = rng.integers(0, n_modules, size=address_space)
        self.n_modules = n_modules

    def __call__(self, x: int) -> int:
        return int(self.table[x])

    def map(self, xs) -> np.ndarray:
        return self.table[np.asarray(xs)]

    def description_bits(self) -> int:
        return int(len(self.table) * max(1, math.ceil(math.log2(self.n_modules))))
