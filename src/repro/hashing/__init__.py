"""Shared-memory address hashing (§2.1, Lemma 2.2, §3.3)."""

from repro.hashing.family import (
    HashFamily,
    IdealRandomHash,
    PolynomialHash,
    degree_for_diameter,
)
from repro.hashing.loads import (
    bucket_loads,
    collection_load,
    corollary31_reference,
    corollary32_reference,
    corollary33_reference,
    empirical_overflow_rate,
    fact_max_load_bound,
    lemma22_bound,
    max_load,
)

__all__ = [
    "HashFamily",
    "IdealRandomHash",
    "PolynomialHash",
    "bucket_loads",
    "collection_load",
    "corollary31_reference",
    "corollary32_reference",
    "corollary33_reference",
    "degree_for_diameter",
    "empirical_overflow_rate",
    "fact_max_load_bound",
    "lemma22_bound",
    "max_load",
]
