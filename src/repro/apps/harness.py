"""Application harness: run a PRAM app through the full emulation stack.

One call — :func:`run_app` — takes a :class:`ProgramSpec` built by
:mod:`repro.apps.programs` plus its oracle labeling, picks a network
just big enough for the program (smallest binary butterfly /
squarest mesh), replays the program's trace through the chosen
engine (optionally behind a :class:`~repro.sharding.ShardedEmulator`
fleet), and returns one flat :class:`AppRun` record: emulated slowdown,
the paper's predicted O(log n) overhead for that network, combining hit
rate, and the two correctness bits (trace-replay memory agreement and
oracle agreement).

The slowdown readings are the paper's claim made concrete: on a leveled
network ``scale`` is the diameter Θ(log n), so
``normalized_slowdown = slowdown / scale`` staying O(1) *is* the
O(log n)-overhead theorem; on the mesh ``scale`` is the side length and
the same ratio tracks the Θ(√n) bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.emulation.leveled import LeveledEmulator
from repro.emulation.mesh import MeshEmulator
from repro.emulation.replay import replay_program
from repro.pram.variants import AccessMode
from repro.sharding import ShardedEmulator
from repro.topology.leveled import DAryButterflyLeveled
from repro.topology.mesh import Mesh2D

NETWORKS = ("leveled", "mesh")


@dataclass(frozen=True)
class AppRun:
    """One application pushed once through the emulation stack."""

    app: str
    network: str
    engine: str
    emulator_mode: str
    n_shards: int
    n_processors: int
    pram_steps: int
    #: mean network steps per PRAM step
    slowdown: float
    #: network scale (leveled: diameter Θ(log n); mesh: side Θ(√n))
    scale: float
    #: slowdown / scale — the ratio the paper's theorems bound by O(1)
    normalized_slowdown: float
    #: log2 of the emulating network's processor count, the paper's
    #: predicted overhead exponent for leveled networks
    predicted_log: float
    requests: int
    combines: int
    #: fraction of routed requests absorbed by CRCW combining
    combining_hit_rate: float
    #: engine dispatch modes seen across the run (sorted, deduplicated)
    run_modes: tuple[str, ...]
    #: trace replay reproduced the native PRAM memory cell for cell
    memory_matches: bool
    #: emulated label region equals the sequential oracle's labeling
    oracle_match: bool


def leveled_for(n_procs: int, **kwargs) -> DAryButterflyLeveled:
    """Smallest binary butterfly with at least *n_procs* columns."""
    levels = 1
    while 2**levels < max(2, n_procs):
        levels += 1
    return DAryButterflyLeveled(2, levels, **kwargs)


def mesh_for(n_procs: int) -> Mesh2D:
    """Smallest square mesh with at least *n_procs* nodes."""
    return Mesh2D.square(max(2, math.isqrt(max(1, n_procs - 1)) + 1))


def build_emulator(
    network: str,
    n_procs: int,
    address_space: int,
    *,
    emulator_mode: str = "crcw",
    engine: str = "auto",
    seed=0,
    n_shards: int = 1,
    faults=None,
    observer=None,
):
    """A just-big-enough emulator (or shard fleet) for an application.

    ``observer`` (a :class:`repro.obs.Observer`) is threaded through the
    whole stack — the emulator, its routers and engines, and (for
    fleets) the scatter/gather front end plus every shard — so one
    argument lights up metrics, tracing, profiling, and flight data
    end to end.
    """
    if network not in NETWORKS:
        raise ValueError(f"unknown network {network!r}; pick from {NETWORKS}")

    def shard(index: int, shard_seed: int):
        if network == "leveled":
            return LeveledEmulator(
                leveled_for(n_procs),
                address_space,
                mode=emulator_mode,
                seed=shard_seed,
                engine=engine,
                faults=faults,
                observer=observer,
            )
        return MeshEmulator(
            mesh_for(n_procs),
            address_space,
            mode=emulator_mode,
            seed=shard_seed,
            engine=engine,
            faults=faults,
            observer=observer,
        )

    if n_shards == 1:
        return shard(0, seed)
    if faults is not None:
        raise ValueError("pass per-shard faults via a custom factory")
    return ShardedEmulator(
        shard, n_shards, address_space, seed=seed, observer=observer
    )


def run_app(
    spec,
    expected: list,
    *,
    network: str = "leveled",
    engine: str = "auto",
    emulator_mode: str | None = None,
    seed=0,
    n_shards: int = 1,
    max_steps: int = 100_000,
    observer=None,
) -> AppRun:
    """Replay *spec* end to end and score it against *expected* labels.

    ``expected`` is the oracle output for the memory region ``[0,
    len(expected))`` — both applications keep their result array there.
    ``emulator_mode`` defaults to the weakest network mode the program's
    declared :class:`AccessMode` permits.

    Passing a :class:`repro.obs.Observer` lights up the whole stack:
    afterwards ``observer.metrics.snapshot()`` holds the service
    counters, ``observer.tracer.to_chrome_trace()`` the Perfetto-ready
    span timeline (native run, every route attempt, rehash episodes,
    reply phases, verification), and ``observer.profile.to_dict()`` the
    per-dispatch-mode / per-phase engine wall-time breakdown.
    """
    if emulator_mode is None:
        emulator_mode = "erew" if spec.mode is AccessMode.EREW else "crcw"
    emulator = build_emulator(
        network,
        spec.n_procs,
        spec.memory_size,
        emulator_mode=emulator_mode,
        engine=engine,
        seed=seed,
        n_shards=n_shards,
        observer=observer,
    )
    result = replay_program(spec, emulator, max_steps=max_steps)
    got = [emulator.memory.read(i) for i in range(len(expected))]
    report = result.report
    n_processors = getattr(emulator, "n_processors", None)
    if n_processors is None:
        n_processors = emulator.mesh.num_nodes  # MeshEmulator
    requests = sum(c.requests for c in report.costs)
    modes: set[str] = set()
    for c in report.costs:
        modes.update(c.run_modes)
    return AppRun(
        app=spec.name,
        network=network,
        engine=engine,
        emulator_mode=emulator_mode,
        n_shards=n_shards,
        n_processors=n_processors,
        pram_steps=report.pram_steps,
        slowdown=result.slowdown,
        scale=report.scale,
        normalized_slowdown=result.slowdown / report.scale,
        predicted_log=math.log2(max(2, n_processors)),
        requests=requests,
        combines=report.total_combines,
        combining_hit_rate=(
            report.total_combines / requests if requests else 0.0
        ),
        run_modes=tuple(sorted(modes)),
        memory_matches=result.memory_matches,
        oracle_match=got == list(expected),
    )
