"""Real PRAM applications: connected components and bisimulation.

The first workloads in the repo whose memory traffic is *data
dependent* — which cells a processor touches next round depends on
values other processors wrote last round — and the first whose
correctness is pinned by external sequential oracles
(:mod:`repro.apps.oracles`) rather than engine-vs-engine agreement.

**Connected components** (:func:`connected_components`) follows the
min-label hooking + shortcutting scheme of Liu–Tarjan–Zhong: every
round, each edge tries to *hook* the larger of its endpoints' labels
down to the smaller (a CRCW combining-``min`` write resolves concurrent
hooks on the same label cell), then every vertex *shortcuts* one level
(``f(v) ← f(f(v))``).  The label array is monotone nonincreasing with
``f(x) ≤ x`` invariant, so the fixpoint labels every vertex with the
minimum vertex id of its component.

**Bisimulation** (:func:`bisimulation`) is the signature-refinement
coarsest-partition scheme of Martens et al., specialized to
deterministic total LTSs: each round every state folds (own block,
successor blocks) into an exact base-(n+1) key, elects the minimum
state id per key through one combining-``min`` write into a
direct-addressed signature table, and adopts the winner as its new
block.  Each round computes exactly the sequential refinement map, so
the fixpoint is strong bisimilarity with min-member block names.

Both detect convergence with a pair of *toggling* flag cells — round k
clears flag ``(k+1) % 2`` for the next round while changers combine
into flag ``k % 2`` — so the unbounded round loop needs no separate
reset step and every processor leaves in lockstep.

:func:`matching_components` is the EREW-clean specialization (disjoint
edges make every access exclusive), and
:func:`broken_erew_components` deliberately mis-declares the CRCW
program as EREW for the race-detector tests.
"""

from __future__ import annotations

import dataclasses

from repro.apps.graphs import LTS, Graph
from repro.apps.oracles import bisimulation_oracle, connected_components_oracle
from repro.pram.machine import PRAM, Read, Write
from repro.pram.variants import AccessMode, WritePolicy

# NOTE: ProgramSpec is imported inside each builder, not at module top —
# repro.pram.programs merges APP_PROGRAM_BUILDERS into its registry at
# import time, so a top-level import here would be circular.


def connected_components(graph: Graph) -> "ProgramSpec":
    """CRCW-COMBINE(min) connected components; labels = component minima.

    Memory layout: ``[0, n)`` labels f (init ``f(v) = v``); ``[n, n+m)``
    edge sources; ``[n+m, n+2m)`` edge targets; two toggling flag cells
    at ``n+2m``.  ``max(n, m)`` processors: processor p plays edge p in
    the hook phase and vertex p in the shortcut phase.  Each round is 10
    lockstep steps (4 hook + 3 shortcut + 3 flag).
    """
    from repro.pram.programs import ProgramSpec

    n, m = graph.n, graph.m
    flag = n + 2 * m
    expected = connected_components_oracle(graph)

    def program(pid: int, nprocs: int):
        if pid < m:
            eu = yield Read(n + pid)
            ev = yield Read(n + m + pid)
        else:
            yield None
            yield None
        rnd = 0
        while True:
            changed = False
            # hook: pull the larger label down to the smaller one; the
            # guard lo < fhi keeps f monotone nonincreasing (combine-min
            # resolves concurrent hooks on the same cell)
            if pid < m:
                fu = yield Read(eu)
                fv = yield Read(ev)
                if fu != fv:
                    lo, hi = (fu, fv) if fu < fv else (fv, fu)
                    fhi = yield Read(hi)
                    if lo < fhi:
                        yield Write(hi, lo)
                        changed = True
                    else:
                        yield None
                else:
                    yield None
                    yield None
            else:
                for _ in range(4):
                    yield None
            # shortcut: f(v) <- f(f(v)) halves pointer chains
            if pid < n:
                c = yield Read(pid)
                root = yield Read(c)
                if root != c:
                    yield Write(pid, root)
                    changed = True
                else:
                    yield None
            else:
                for _ in range(3):
                    yield None
            # toggling convergence flags: clear next round's cell, then
            # changers combine into this round's cell, then all read it
            # and leave together on a quiet round
            if pid == 0:
                yield Write(flag + (rnd + 1) % 2, 0)
            else:
                yield None
            if changed:
                yield Write(flag + rnd % 2, 1)
            else:
                yield None
            done = yield Read(flag + rnd % 2)
            if not done:
                return
            rnd += 1

    def verify(pram: PRAM) -> None:
        got = [pram.memory.read(v) for v in range(n)]
        assert got == expected, f"components {got} != {expected}"

    init: dict[int, object] = {v: v for v in range(n)}
    for i, (u, v) in enumerate(graph.edges):
        init[n + i] = u
        init[n + m + i] = v
    init[flag] = 0
    init[flag + 1] = 0

    return ProgramSpec(
        name="connected-components",
        n_procs=max(n, m),
        memory_size=flag + 2,
        mode=AccessMode.CRCW,
        write_policy=WritePolicy.COMBINE,
        combine_op="min",
        program=program,
        init=init,
        verify=verify,
    )


def matching_components(graph: Graph) -> "ProgramSpec":
    """EREW connected components for graphs with pairwise-disjoint edges.

    With every vertex in at most one edge, hooks touch pairwise-distinct
    cells and the shortcut read is skipped when a vertex already holds
    its own label — every access is exclusive, so the CRCW machinery of
    :func:`connected_components` is unnecessary.  Two fixed hook +
    shortcut rounds (a matching converges after one; the second is the
    quiet read-only pass), no flag phase.
    """
    from repro.pram.programs import ProgramSpec

    n, m = graph.n, graph.m
    degree = [0] * n
    for u, v in graph.edges:
        degree[u] += 1
        degree[v] += 1
    if any(d > 1 for d in degree):
        raise ValueError("matching_components needs pairwise-disjoint edges")
    expected = connected_components_oracle(graph)

    def program(pid: int, nprocs: int):
        if pid < m:
            eu = yield Read(n + pid)
            ev = yield Read(n + m + pid)
        else:
            yield None
            yield None
        for _ in range(2):
            if pid < m:
                fu = yield Read(eu)
                fv = yield Read(ev)
                if fu != fv:
                    lo, hi = (fu, fv) if fu < fv else (fv, fu)
                    fhi = yield Read(hi)
                    if lo < fhi:
                        yield Write(hi, lo)
                    else:
                        yield None
                else:
                    yield None
                    yield None
            else:
                for _ in range(4):
                    yield None
            if pid < n:
                c = yield Read(pid)
                # skipping the root lookup when c == pid is what keeps
                # this EREW: matched partners would otherwise read the
                # same parent cell concurrently
                if c != pid:
                    root = yield Read(c)
                    if root != c:
                        yield Write(pid, root)
                    else:
                        yield None
                else:
                    yield None
                    yield None
            else:
                for _ in range(3):
                    yield None

    def verify(pram: PRAM) -> None:
        got = [pram.memory.read(v) for v in range(n)]
        assert got == expected, f"components {got} != {expected}"

    init: dict[int, object] = {v: v for v in range(n)}
    for i, (u, v) in enumerate(graph.edges):
        init[n + i] = u
        init[n + m + i] = v

    return ProgramSpec(
        name="matching-components",
        n_procs=max(n, m),
        memory_size=n + 2 * m,
        mode=AccessMode.EREW,
        program=program,
        init=init,
        verify=verify,
    )


def broken_erew_components(graph: Graph) -> "ProgramSpec":
    """:func:`connected_components` mis-declared as EREW.

    Deliberately broken — the hook phase reads endpoint labels
    concurrently and the flag phase write-combines — so the race
    sanitizer (``PRAM.run(check_races=True)``) must reject it.  Not
    registered in the program library.
    """
    spec = connected_components(graph)
    return dataclasses.replace(
        spec,
        name="broken-erew-components",
        mode=AccessMode.EREW,
        write_policy=WritePolicy.COMMON,
    )


def bisimulation(lts: LTS) -> "ProgramSpec":
    """CRCW-COMBINE(min) coarsest partition; labels = class minima.

    Memory layout: ``[0, n)`` block labels (init observations);
    ``[n, n + nL)`` the transition table row-major; a direct-addressed
    signature table of ``(n+1)**(L+1)`` cells; two toggling flag cells.
    One processor per state; each round is L+7 lockstep steps.

    The signature key ``fold(b, successor blocks)`` in radix n+1 is
    exact (injective), so there are no collisions to resolve, and a
    state always reads a table cell written *this* round (it wrote the
    cell itself one step earlier) — stale entries from prior rounds are
    never consulted and the table needs no reset phase.
    """
    from repro.pram.programs import ProgramSpec

    n, n_labels = lts.n_states, lts.n_labels
    radix = n + 1
    table = n + n * n_labels
    flag = table + radix ** (n_labels + 1)
    expected = bisimulation_oracle(lts)

    def program(pid: int, nprocs: int):
        succ = []
        for a in range(n_labels):
            succ.append((yield Read(n + pid * n_labels + a)))
        rnd = 0
        while True:
            b = yield Read(pid)
            key = b
            for t in succ:
                tb = yield Read(t)
                key = key * radix + tb
            # elect the minimum state id of this signature class
            yield Write(table + key, pid)
            winner = yield Read(table + key)
            changed = winner != b
            if changed:
                yield Write(pid, winner)
            else:
                yield None
            if pid == 0:
                yield Write(flag + (rnd + 1) % 2, 0)
            else:
                yield None
            if changed:
                yield Write(flag + rnd % 2, 1)
            else:
                yield None
            done = yield Read(flag + rnd % 2)
            if not done:
                return
            rnd += 1

    def verify(pram: PRAM) -> None:
        got = [pram.memory.read(s) for s in range(n)]
        assert got == expected, f"partition {got} != {expected}"

    init: dict[int, object] = {s: lts.obs[s] for s in range(n)}
    for s in range(n):
        for a in range(n_labels):
            init[n + s * n_labels + a] = lts.delta[s][a]
    init[flag] = 0
    init[flag + 1] = 0

    return ProgramSpec(
        name="bisimulation",
        n_procs=n,
        memory_size=flag + 2,
        mode=AccessMode.CRCW,
        write_policy=WritePolicy.COMBINE,
        combine_op="min",
        program=program,
        init=init,
        verify=verify,
    )


def _default_connected_components() -> "ProgramSpec":
    from repro.apps.graphs import gnp_graph

    return connected_components(gnp_graph(12, 0.25, seed=7))


def _default_matching_components() -> "ProgramSpec":
    from repro.apps.graphs import matching_graph

    return matching_components(matching_graph(12, seed=5))


def _default_bisimulation() -> "ProgramSpec":
    from repro.apps.graphs import random_lts

    return bisimulation(random_lts(8, 2, seed=11))


#: merged into repro.pram.programs.ALL_PROGRAM_BUILDERS — the defaults
#: must classify "exact" like every library program (pinned by tests)
APP_PROGRAM_BUILDERS = {
    "connected-components": _default_connected_components,
    "matching-components": _default_matching_components,
    "bisimulation": _default_bisimulation,
}
