"""Real PRAM applications run end to end through the emulation stack.

The layer above :mod:`repro.pram`: actual algorithms (connected
components, bisimulation) with data-dependent access patterns, seeded
input families (:mod:`repro.apps.graphs`), independent sequential
oracles (:mod:`repro.apps.oracles`), and a one-call harness
(:mod:`repro.apps.harness`) that replays an application on either
network/engine and scores the emulated slowdown against the paper's
O(log n) prediction.
"""

from repro.apps.graphs import (
    LTS,
    Graph,
    bounded_degree_graph,
    cycle_lts,
    gnp_graph,
    matching_graph,
    path_graph,
    random_lts,
    star_graph,
)
from repro.apps.oracles import bisimulation_oracle, connected_components_oracle
from repro.apps.programs import (
    APP_PROGRAM_BUILDERS,
    bisimulation,
    broken_erew_components,
    connected_components,
    matching_components,
)

# The harness sits *above* the emulation stack, which itself imports
# the PRAM program library — and that library merges this package's
# builders at its own import time.  Re-exporting the harness lazily
# keeps `repro.apps` importable from either end of that chain.
_HARNESS_EXPORTS = (
    "AppRun",
    "build_emulator",
    "leveled_for",
    "mesh_for",
    "run_app",
)


def __getattr__(name: str):
    if name in _HARNESS_EXPORTS:
        from repro.apps import harness

        return getattr(harness, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "APP_PROGRAM_BUILDERS",
    "AppRun",
    "Graph",
    "LTS",
    "bisimulation",
    "bisimulation_oracle",
    "bounded_degree_graph",
    "broken_erew_components",
    "build_emulator",
    "connected_components",
    "connected_components_oracle",
    "cycle_lts",
    "gnp_graph",
    "leveled_for",
    "matching_components",
    "matching_graph",
    "mesh_for",
    "path_graph",
    "random_lts",
    "run_app",
    "star_graph",
]
