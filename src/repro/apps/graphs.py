"""Seeded graph and labeled-transition-system families for the app layer.

Every family is a pure function of its parameters and an integer seed
(:func:`repro.util.rng.as_generator`), so an application benchmark row —
graph, PRAM trace, emulated cost — replays bit for bit.  Families cover
the access-pattern extremes the synthetic generators never produce:

* :func:`gnp_graph` — Erdős–Rényi G(n, p): irregular, data-dependent
  hook targets;
* :func:`bounded_degree_graph` — a random graph with a degree cap:
  sparse, long components;
* :func:`star_graph` / :func:`path_graph` — the adversarial shapes for
  label propagation (maximum fan-in, maximum diameter);
* :func:`matching_graph` — a random perfect matching, the one family
  whose connected-components pass is EREW-clean (disjoint accesses);
* :func:`random_lts` / :func:`cycle_lts` — deterministic labeled
  transition systems (every state has one successor per label) for the
  coarsest-partition / bisimulation workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.rng import as_generator


@dataclass(frozen=True)
class Graph:
    """An undirected graph on vertices [0, n); edges are (u, v), u < v."""

    n: int
    edges: tuple[tuple[int, int], ...]

    def __post_init__(self) -> None:
        for u, v in self.edges:
            if not (0 <= u < v < self.n):
                raise ValueError(f"edge {(u, v)!r} invalid for n={self.n}")

    @property
    def m(self) -> int:
        return len(self.edges)


@dataclass(frozen=True)
class LTS:
    """A deterministic labeled transition system.

    ``delta[s][a]`` is the unique a-successor of state s (total: every
    state has exactly one transition per label), and ``obs[s]`` is the
    initial observation partition (the bisimulation's base blocks).
    Observations must fit the block-id range [0, n_states].
    """

    n_states: int
    n_labels: int
    delta: tuple[tuple[int, ...], ...]
    obs: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.delta) != self.n_states or len(self.obs) != self.n_states:
            raise ValueError("delta/obs length must equal n_states")
        for s, row in enumerate(self.delta):
            if len(row) != self.n_labels:
                raise ValueError(f"state {s}: need {self.n_labels} successors")
            for t in row:
                if not 0 <= t < self.n_states:
                    raise ValueError(f"state {s}: successor {t} out of range")
        for s, o in enumerate(self.obs):
            if not 0 <= o <= self.n_states:
                raise ValueError(f"state {s}: observation {o} out of range")


# ---------------------------------------------------------------------------
# graph families
# ---------------------------------------------------------------------------

def gnp_graph(n: int, p: float, seed=None, *, max_edges: int | None = None) -> Graph:
    """Erdős–Rényi G(n, p); ``max_edges`` caps m (first edges kept in a
    seeded shuffle order, so the cap is deterministic too)."""
    if n < 1:
        raise ValueError("need n >= 1")
    if not 0.0 <= p <= 1.0:
        raise ValueError("need 0 <= p <= 1")
    rng = as_generator(seed)
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    coins = rng.random(len(pairs))
    edges = [pair for pair, c in zip(pairs, coins) if c < p]
    if max_edges is not None and len(edges) > max_edges:
        order = rng.permutation(len(edges))[:max_edges]
        edges = [edges[i] for i in sorted(order.tolist())]
    return Graph(n, tuple(edges))


def bounded_degree_graph(n: int, degree: int, seed=None) -> Graph:
    """A random graph where every vertex has at most *degree* neighbors."""
    if degree < 1:
        raise ValueError("need degree >= 1")
    rng = as_generator(seed)
    deg = [0] * n
    edges: set[tuple[int, int]] = set()
    # n * degree proposal rounds: enough attempts to fill most slots
    # while staying a pure function of the seed.
    for _ in range(n * degree):
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u == v:
            continue
        u, v = (u, v) if u < v else (v, u)
        if (u, v) in edges or deg[u] >= degree or deg[v] >= degree:
            continue
        edges.add((u, v))
        deg[u] += 1
        deg[v] += 1
    return Graph(n, tuple(sorted(edges)))


def star_graph(n: int) -> Graph:
    """K_{1,n-1}: every hook round funnels into vertex 0 (maximum fan-in)."""
    if n < 1:
        raise ValueError("need n >= 1")
    return Graph(n, tuple((0, v) for v in range(1, n)))


def path_graph(n: int) -> Graph:
    """The n-vertex path: label propagation needs Θ(log n) doubling rounds."""
    if n < 1:
        raise ValueError("need n >= 1")
    return Graph(n, tuple((v, v + 1) for v in range(n - 1)))


def matching_graph(n: int, seed=None) -> Graph:
    """A random perfect matching on n vertices (n even): the disjoint
    access pattern that keeps connected components EREW-legal."""
    if n < 2 or n % 2:
        raise ValueError("need an even n >= 2")
    rng = as_generator(seed)
    order = rng.permutation(n).tolist()
    pairs = [
        (min(order[i], order[i + 1]), max(order[i], order[i + 1]))
        for i in range(0, n, 2)
    ]
    return Graph(n, tuple(sorted(pairs)))


# ---------------------------------------------------------------------------
# LTS families
# ---------------------------------------------------------------------------

def random_lts(
    n_states: int, n_labels: int, seed=None, *, n_obs: int = 2
) -> LTS:
    """Uniform deterministic LTS: random successors, random observations.

    Random transition structure produces rich bisimulation classes —
    many states collapse, some stay singletons — which is exactly the
    irregular signature-table traffic the workload exists to create.
    """
    if n_states < 1 or n_labels < 1:
        raise ValueError("need n_states >= 1 and n_labels >= 1")
    if not 1 <= n_obs <= n_states + 1:
        raise ValueError("need 1 <= n_obs <= n_states + 1")
    rng = as_generator(seed)
    delta = tuple(
        tuple(int(t) for t in rng.integers(n_states, size=n_labels))
        for _ in range(n_states)
    )
    obs = tuple(int(o) for o in rng.integers(n_obs, size=n_states))
    return LTS(n_states, n_labels, delta, obs)


def cycle_lts(n_states: int, n_labels: int = 1, *, marked: int = 1) -> LTS:
    """A single cycle with *marked* observation-1 states: the refinement
    chain runs Θ(n) rounds on one marked state — the worst case for the
    round loop, mirroring the path graph for connected components."""
    if n_states < 1 or n_labels < 1:
        raise ValueError("need n_states >= 1 and n_labels >= 1")
    if not 0 <= marked <= n_states:
        raise ValueError("need 0 <= marked <= n_states")
    delta = tuple(
        tuple((s + 1) % n_states for _ in range(n_labels))
        for s in range(n_states)
    )
    obs = tuple(1 if s < marked else 0 for s in range(n_states))
    return LTS(n_states, n_labels, delta, obs)
