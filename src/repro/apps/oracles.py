"""Independent sequential oracles for the PRAM applications.

These are the first correctness anchors in the repo that are *not* the
emulation stack checking itself: classic textbook algorithms — path-
compressed union-find and signature-based partition refinement — whose
outputs the emulated PRAM runs must match label for label.

Both oracles canonicalize the same way the PRAM programs converge:

* connected components label every vertex with the **minimum vertex id**
  of its component;
* bisimulation labels every state with the **minimum state id** of its
  bisimulation class.

so agreement is plain list equality, no isomorphism check needed.
"""

from __future__ import annotations

from repro.apps.graphs import LTS, Graph


def connected_components_oracle(graph: Graph) -> list[int]:
    """Union-find connected components; label = min vertex id in component."""
    parent = list(range(graph.n))

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    for u, v in graph.edges:
        ru, rv = find(u), find(v)
        if ru != rv:
            # union by min id keeps the root the component minimum
            lo, hi = (ru, rv) if ru < rv else (rv, ru)
            parent[hi] = lo
    return [find(v) for v in range(graph.n)]


def bisimulation_oracle(lts: LTS) -> list[int]:
    """Coarsest-partition refinement; label = min state id in class.

    Classic signature refinement: start from the observation partition
    and repeatedly split blocks by the tuple (own block, blocks of the
    one a-successor per label) until stable.  For deterministic total
    LTSs this computes exactly strong bisimilarity.
    """
    block = list(lts.obs)
    while True:
        signatures = [
            (block[s], tuple(block[t] for t in lts.delta[s]))
            for s in range(lts.n_states)
        ]
        representative: dict[tuple, int] = {}
        for s in range(lts.n_states):
            sig = signatures[s]
            if sig not in representative or s < representative[sig]:
                representative[sig] = s
        new_block = [representative[signatures[s]] for s in range(lts.n_states)]
        if new_block == block:
            return block
        block = new_block
