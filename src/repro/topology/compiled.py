"""Integer-compiled topologies: the data layer of the fast path.

The reference engine discovers each hop by calling ``next_hop`` /
``out_neighbors`` / ``unique_next`` per packet per step.  At interesting
scales that per-hop topology math (and, for leveled networks, tuple
hashing) dominates the run time.  This module precompiles whole packet
populations' trajectories with a handful of vectorized operations:

* :class:`CompiledLeveledTopology` — dense integer form of a
  :class:`LeveledNetwork` (both passes of Algorithm 2.1);
* :class:`CompiledMesh2D` — the 3-stage randomized mesh trajectories of
  §3.4 (and their furthest-destination-first priorities) plus greedy
  dimension-order paths, as padded matrices + lengths;
* :func:`linear_paths`, :func:`hypercube_paths`,
  :func:`shuffle_unique_paths` — the linear array, Valiant–Brebner
  bit-fixing, and d-way-shuffle digit-insertion itineraries.

Leveled compilation in detail:

* every engine position gets a flat **node id** — position k on a
  packet's 2L-hop journey lies in "unrolled column" k (the two passes of
  Algorithm 2.1 laid end to end, with the last column of pass 1
  identified with the first column of pass 2, exactly the paper's
  wrap-around), so ``id = k * N + row`` with k in [0, 2L];
* per-level **out-neighbor tables** (``(N, d)`` arrays) replace
  ``out_neighbors`` calls, so a pre-drawn coin becomes one array gather;
* :meth:`build_paths` rolls a whole packet population's trajectories
  forward level by level with ``unique_next_batch`` — the entire routing
  plan for N packets is produced by ~2L vectorized operations.

The plan is then replayed by :class:`repro.routing.fast_engine.FastPathEngine`,
which never touches the topology again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.topology.leveled import LeveledNetwork


class CompiledLeveledTopology:
    """Dense integer view of a :class:`LeveledNetwork` (both passes)."""

    def __init__(self, net: LeveledNetwork) -> None:
        # Note: nets with uniform_out_degree=False compile fine for
        # node-mode routing (unique-path arithmetic only); out_table —
        # needed by coin mode — raises for them via out_neighbor_table.
        self.net = net
        self.L = net.num_levels
        self.N = net.column_size
        #: one unrolled column per path position 0..2L
        self.num_node_ids = (2 * self.L + 1) * self.N
        self._out_tables: dict[int, np.ndarray] = {}

    # ---- id <-> key ----------------------------------------------------
    def out_table(self, level: int) -> np.ndarray:
        table = self._out_tables.get(level)
        if table is None:
            table = self._out_tables[level] = self.net.out_neighbor_table(level)
        return table

    def encode_key(self, key: tuple[int, int, int]) -> int:
        """(pass, column, row) -> node id.

        The wrap identification makes this well defined: ``(0, L, r)``
        and ``(1, 0, r)`` are the same physical node and map to the same
        id ``L * N + r``.
        """
        pass_idx, col, row = key
        return (pass_idx * self.L + col) * self.N + row

    def node_key(self, position: int, node_id: int) -> tuple[int, int, int]:
        """Node-style key at a path *position*: what ``packet.node`` holds.

        The reference engine rewrites the wrap node to its pass-2 alias
        before enqueueing, so position L decodes to ``(1, 0, row)``.
        """
        row = node_id - position * self.N
        if position < self.L:
            return (0, position, row)
        return (1, position - self.L, row)

    def trace_key(self, position: int, node_id: int) -> tuple[int, int, int]:
        """Trace-style key: what ``packet.trace`` records at *position*.

        Traces capture the node key *before* the wrap rewrite, so
        position L decodes to ``(0, L, row)``.
        """
        row = node_id - position * self.N
        if position <= self.L:
            return (0, position, row)
        return (1, position - self.L, row)

    def reply_key(self, _position: int, node_id: int) -> tuple[int, int, int]:
        """Position-independent decode for reply-phase paths.

        Reply paths walk traces in reverse, so positions no longer track
        columns.  Trace keys never contain ``(1, 0, row)`` (the wrap is
        recorded as ``(0, L, row)``), which makes the decode unambiguous.
        """
        col_idx, row = divmod(node_id, self.N)
        if col_idx <= self.L:
            return (0, col_idx, row)
        return (1, col_idx - self.L, row)

    # ---- trajectory compilation ----------------------------------------
    def build_paths(
        self,
        source_rows: Sequence[int],
        dests: Sequence[int],
        *,
        coins: np.ndarray | None = None,
        inters: Sequence[int] | None = None,
    ) -> np.ndarray:
        """Compile every packet's full 2L-hop node-id trajectory.

        Phase 1 either follows pre-drawn *coins* (an ``(n, L)`` array of
        bridge choices, Algorithm 2.1) or the unique path to a chosen
        intermediate row per packet (*inters*, Algorithms 2.2/2.3);
        phase 2 always follows the unique path to ``dests``.  Returns an
        ``(n, 2L + 1)`` node-id matrix (row i is packet i's itinerary;
        every leveled trajectory has the same length, so there is no
        padding).
        """
        if (coins is None) == (inters is None):
            raise ValueError("need exactly one of coins= or inters=")
        L, N = self.L, self.N
        rows = np.asarray(source_rows, dtype=np.int64)
        n = len(rows)
        cols = np.empty((n, 2 * L + 1), dtype=np.int64)
        cols[:, 0] = rows
        if coins is not None:
            for level in range(L):
                rows = self.out_table(level)[rows, coins[:, level]]
                cols[:, level + 1] = rows
        else:
            inters_arr = np.asarray(inters, dtype=np.int64)
            for level in range(L):
                rows = self.net.unique_next_batch(level, rows, inters_arr)
                cols[:, level + 1] = rows
        dests_arr = np.asarray(dests, dtype=np.int64)
        for level in range(L):
            rows = self.net.unique_next_batch(level, rows, dests_arr)
            cols[:, L + 1 + level] = rows
        if not np.array_equal(rows, dests_arr):
            bad = int(np.nonzero(rows != dests_arr)[0][0])
            raise RuntimeError(
                f"packet {bad} finished pass 2 at row {int(rows[bad])} "
                f"!= dest {int(dests_arr[bad])}"
            )
        ids = cols + (np.arange(2 * L + 1, dtype=np.int64) * N)[None, :]
        return ids

    # ---- arithmetic link ids -------------------------------------------
    # Crossing k runs from unrolled column k to column k + 1, and a
    # uniform-degree node has exactly d out-links, so directed link
    # (u, v) gets the dense id ``u * d + j`` (j = v's index in u's
    # out-neighbor table) with no interning pass — the fast engine's
    # np.unique over a whole trajectory matrix is its most expensive
    # setup step at scale.  The id space doubles as the escape-slot
    # layout of ``flow_control="credit"``: every directed link owns one
    # escape buffer, keyed by this id in the constrained batch mode.
    # The wrap aliasing is inherited from the node ids themselves:
    # ``(0, L, r)`` and ``(1, 0, r)`` share id ``L * N + r``, so
    # capacity accounting (and the link ids built from it) sees one
    # physical node per wrap pair with no extra alias table.

    def link_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Cached ``(link_src, link_dst)`` tables for the arithmetic ids.

        Sized ``2L * N * d`` (last-column ids have no out-links).
        Parallel links — two out-table slots of one node naming the same
        neighbor — keep only their first slot's id in use
        (:meth:`link_matrix` resolves every crossing to the first
        matching slot, mirroring how the reference engine's ``(u, w)``
        keys collapse parallel links); the duplicate ids exist in the
        table but are never referenced.  Requires uniform out-degree.
        """
        cached = getattr(self, "_link_arrays", None)
        if cached is None:
            L, N, d = self.L, self.N, self.net.degree
            dst_cols = []
            for k in range(2 * L):
                level = k if k < L else k - L
                dst_cols.append((k + 1) * N + self.out_table(level))
            dst = np.concatenate(dst_cols, axis=0).reshape(-1)
            src = np.repeat(np.arange(2 * L * N, dtype=np.int64), d)
            cached = self._link_arrays = (src, dst.astype(np.int64))
        return cached

    def link_matrix(self, ids: np.ndarray) -> np.ndarray:
        """Arithmetic link id per hop of a compiled trajectory matrix."""
        L, N, d = self.L, self.N, self.net.degree
        ids = np.asarray(ids, dtype=np.int64)
        out = np.empty((ids.shape[0], 2 * L), dtype=np.int64)
        for k in range(2 * L):
            level = k if k < L else k - L
            rows = ids[:, k] - k * N
            nxt_rows = ids[:, k + 1] - (k + 1) * N
            j = np.argmax(
                self.out_table(level)[rows] == nxt_rows[:, None], axis=1
            )
            out[:, k] = ids[:, k] * d + j
        return out


def compile_leveled(net: LeveledNetwork) -> CompiledLeveledTopology:
    """Compiled view of *net*, cached on the network instance."""
    compiled = getattr(net, "_compiled_topology", None)
    if compiled is None:
        compiled = CompiledLeveledTopology(net)
        net._compiled_topology = compiled
    return compiled


# ======================================================================
# Flat-topology trajectory builders (mesh, linear array, hypercube,
# shuffle).  These produce padded rectangular matrices: row i repeats
# packet i's destination past position ``lengths[i]``, which the fast
# engine never traverses (it delivers at ``path_lengths``).  Keeping the
# matrix rectangular lets one np.unique intern every link at C speed.
# ======================================================================


@dataclass
class TrajectoryPlan:
    """A compiled routing plan for one packet population.

    ``ids[i, k]`` is the node id of packet i at position k; positions
    beyond ``lengths[i]`` repeat the destination (padding).
    ``priorities[i, k]``, when compiled, is the §3.4
    furthest-destination-first priority of packet i's k-th link crossing
    — the distance left in its current stage, exactly the value the
    reference :class:`~repro.routing.mesh_router.MeshRouter` computes at
    push time.
    """

    ids: np.ndarray
    lengths: np.ndarray
    priorities: np.ndarray | None = None


class CompiledMesh2D:
    """Vectorized trajectory compiler for a :class:`Mesh2D`.

    The 3-stage randomized route of §3.4 (Theorem 3.1) — column to a
    random row, row to the destination column, column to the destination
    row — is a pure function of (source, random row, destination), so a
    whole population's trajectories fall out of a few broadcast clips:
    position k's row/column is the stage-wise saturating walk
    ``start + clip(k - stage_offset, 0, stage_len) * step``.  Greedy
    dimension-order (column-then-row) paths are the degenerate plan with
    an empty stage 0 (the random row equals the source row).
    """

    def __init__(self, mesh) -> None:
        self.mesh = mesh

    def three_stage(
        self,
        sources: Sequence[int],
        dests: Sequence[int],
        inter_rows: Sequence[int] | None = None,
        *,
        with_priorities: bool = False,
    ) -> TrajectoryPlan:
        """Compile 3-stage (or, with ``inter_rows=None``, greedy XY) paths.

        ``inter_rows`` holds each packet's pre-drawn stage-0 random row
        i'; omitting it pins i' to the source row, which degenerates the
        plan to the deterministic dimension-order baseline.
        """
        cols_n = self.mesh.cols
        src = np.asarray(sources, dtype=np.int64)
        dst = np.asarray(dests, dtype=np.int64)
        r0, c0 = np.divmod(src, cols_n)
        dr, dc = np.divmod(dst, cols_n)
        ir = r0 if inter_rows is None else np.asarray(inter_rows, dtype=np.int64)
        la = np.abs(ir - r0)
        sa = np.sign(ir - r0)
        lb = np.abs(dc - c0)
        sb = np.sign(dc - c0)
        lc = np.abs(dr - ir)
        sc = np.sign(dr - ir)
        lengths = la + lb + lc
        maxlen = int(lengths.max()) if src.size else 0
        k = np.arange(maxlen + 1, dtype=np.int64)[None, :]
        # ids accumulated in place: row*cols + col with one live temporary.
        ids = np.clip(k, 0, la[:, None])
        ids *= sa[:, None]
        seg = np.clip(k - (la + lb)[:, None], 0, lc[:, None])
        seg *= sc[:, None]
        ids += seg
        ids += r0[:, None]
        ids *= cols_n
        np.clip(k - la[:, None], 0, lb[:, None], out=seg)
        seg *= sb[:, None]
        ids += seg
        ids += c0[:, None]
        priorities = None
        if with_priorities:
            # Priority of link crossing k = distance left in the stage
            # containing k: la-k in stage 0, (la+lb)-k in stage 1,
            # (la+lb+lc)-k in stage 2 — empty stages skip naturally.
            kk = np.arange(maxlen, dtype=np.int64)[None, :]
            ab = (la + lb)[:, None]
            priorities = np.where(
                kk < la[:, None],
                la[:, None] - kk,
                np.where(kk < ab, ab - kk, lengths[:, None] - kk),
            )
            # Entries past a packet's length are never pushed; clamp them
            # so packed heap keys stay well-formed anyway.
            priorities = np.maximum(priorities, 0)
        return TrajectoryPlan(ids, lengths, priorities)


    # ---- arithmetic link ids -----------------------------------------
    # A mesh node has at most 4 out-links, so directed link (u, v) gets
    # the dense id ``u * 4 + direction`` with no interning pass at all —
    # the fast engine's np.unique over a whole trajectory matrix is the
    # single most expensive setup step at scale, and meshes don't need it.
    _DIR_EAST, _DIR_WEST, _DIR_SOUTH, _DIR_NORTH = 0, 1, 2, 3

    def link_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Cached (link_src, link_dst) tables for the 4N arithmetic ids.

        Boundary directions that have no physical link get ids too; they
        are never referenced by a real trajectory, so their dst entries
        are only placeholders.
        """
        cached = getattr(self, "_link_arrays", None)
        if cached is None:
            num = self.mesh.num_nodes
            src = np.repeat(np.arange(num, dtype=np.int64), 4)
            delta = np.tile(
                np.asarray([1, -1, self.mesh.cols, -self.mesh.cols]), num
            )
            dst = np.clip(src + delta, 0, num - 1)
            cached = self._link_arrays = (src, dst)
        return cached

    def link_matrix(self, ids: np.ndarray) -> np.ndarray:
        """Arithmetic link id per hop of a padded trajectory matrix."""
        cols = self.mesh.cols
        u = ids[:, :-1]
        diff = ids[:, 1:] - u
        direction = np.zeros_like(diff)
        direction[diff == -1] = self._DIR_WEST
        direction[diff == cols] = self._DIR_SOUTH
        direction[diff == -cols] = self._DIR_NORTH
        return u * 4 + direction


def compile_mesh(mesh) -> CompiledMesh2D:
    """Compiled view of *mesh*, cached on the mesh instance."""
    compiled = getattr(mesh, "_compiled_topology", None)
    if compiled is None:
        compiled = CompiledMesh2D(mesh)
        mesh._compiled_topology = compiled
    return compiled


def linear_paths(sources: Sequence[int], dests: Sequence[int]) -> TrajectoryPlan:
    """Monotone walks on a linear array, as a padded plan."""
    src = np.asarray(sources, dtype=np.int64)
    dst = np.asarray(dests, dtype=np.int64)
    lengths = np.abs(dst - src)
    step = np.sign(dst - src)
    maxlen = int(lengths.max()) if src.size else 0
    k = np.arange(maxlen + 1, dtype=np.int64)[None, :]
    ids = src[:, None] + np.clip(k, 0, lengths[:, None]) * step[:, None]
    return TrajectoryPlan(ids, lengths)


def compact_paths(arr: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Remove in-place repeats from each row of a trajectory matrix.

    Phase-structured builders (e.g. two-phase bit fixing) emit one column
    per potential hop, so packets that finish a phase early repeat their
    position mid-row; the engine would traverse those repeats as
    self-loop links.  This squeezes every row to its true itinerary and
    re-pads at the end with the destination, returning ``(ids, lengths)``.
    """
    n, width = arr.shape
    if width == 0:
        raise ValueError("trajectory matrix needs at least one column")
    keep = np.ones(arr.shape, dtype=bool)
    keep[:, 1:] = arr[:, 1:] != arr[:, :-1]
    idx = np.cumsum(keep, axis=1) - 1
    lengths = idx[:, -1].copy()
    maxlen = int(lengths.max()) if n else 0
    out = np.repeat(arr[:, -1][:, None], maxlen + 1, axis=1)
    rows = np.broadcast_to(np.arange(n)[:, None], arr.shape)
    out[rows[keep], idx[keep]] = arr[keep]
    return out, lengths


def hypercube_paths(
    n_dims: int,
    sources: Sequence[int],
    dests: Sequence[int],
    inters: Sequence[int] | None = None,
) -> TrajectoryPlan:
    """Valiant–Brebner e-cube itineraries on the binary n-cube.

    Phase 1 (when ``inters`` is given) fixes differing bits
    lowest-dimension first toward the random intermediate, phase 2
    continues to the destination — the same order as
    :meth:`Hypercube.route_next`, vectorized one dimension at a time.
    """
    cur = np.asarray(sources, dtype=np.int64).copy()
    columns = [cur.copy()]
    targets = ([] if inters is None else [inters]) + [dests]
    for target in targets:
        target = np.asarray(target, dtype=np.int64)
        for _ in range(n_dims):
            diff = cur ^ target
            cur = cur ^ (diff & -diff)
            columns.append(cur.copy())
    ids, lengths = compact_paths(np.stack(columns, axis=1))
    return TrajectoryPlan(ids, lengths)


def shuffle_unique_paths(
    shuffle, sources: Sequence[int], targets: "list[Sequence[int]]"
) -> np.ndarray:
    """Digit-insertion itineraries on the d-way shuffle, one per packet.

    Hop k of a unique-path phase inserts the target's k-th least
    significant digit at the front (§2.3.5), so each phase is n
    vectorized shift-and-insert operations; consecutive equal nodes are
    *real* self-loop hops in this model (the reference engine routes
    through them), so the matrix is exact — no compaction, no padding.
    """
    d, msb = shuffle.d, shuffle.num_nodes // shuffle.d
    cur = np.asarray(sources, dtype=np.int64)
    columns = [cur]
    for target in targets:
        target = np.asarray(target, dtype=np.int64)
        for k in range(shuffle.n):
            cur = cur // d + ((target // d**k) % d) * msb
            columns.append(cur)
    return np.stack(columns, axis=1)
