"""Integer-compiled leveled topologies: the data layer of the fast path.

The reference engine addresses a leveled network's nodes with
``(pass, column, row)`` tuples and discovers each hop by calling
``out_neighbors`` / ``unique_next`` per packet per step.  At interesting
scales (N >= 4096 rows) that tuple hashing and per-hop topology math
dominates the run time.  This module compiles a :class:`LeveledNetwork`
once into dense integer form:

* every engine position gets a flat **node id** — position k on a
  packet's 2L-hop journey lies in "unrolled column" k (the two passes of
  Algorithm 2.1 laid end to end, with the last column of pass 1
  identified with the first column of pass 2, exactly the paper's
  wrap-around), so ``id = k * N + row`` with k in [0, 2L];
* per-level **out-neighbor tables** (``(N, d)`` arrays) replace
  ``out_neighbors`` calls, so a pre-drawn coin becomes one array gather;
* :meth:`build_paths` rolls a whole packet population's trajectories
  forward level by level with ``unique_next_batch`` — the entire routing
  plan for N packets is produced by ~2L vectorized operations.

The plan is then replayed by :class:`repro.routing.fast_engine.FastPathEngine`,
which never touches the topology again.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.topology.leveled import LeveledNetwork


class CompiledLeveledTopology:
    """Dense integer view of a :class:`LeveledNetwork` (both passes)."""

    def __init__(self, net: LeveledNetwork) -> None:
        # Note: nets with uniform_out_degree=False compile fine for
        # node-mode routing (unique-path arithmetic only); out_table —
        # needed by coin mode — raises for them via out_neighbor_table.
        self.net = net
        self.L = net.num_levels
        self.N = net.column_size
        #: one unrolled column per path position 0..2L
        self.num_node_ids = (2 * self.L + 1) * self.N
        self._out_tables: dict[int, np.ndarray] = {}

    # ---- id <-> key ----------------------------------------------------
    def out_table(self, level: int) -> np.ndarray:
        table = self._out_tables.get(level)
        if table is None:
            table = self._out_tables[level] = self.net.out_neighbor_table(level)
        return table

    def encode_key(self, key: tuple[int, int, int]) -> int:
        """(pass, column, row) -> node id.

        The wrap identification makes this well defined: ``(0, L, r)``
        and ``(1, 0, r)`` are the same physical node and map to the same
        id ``L * N + r``.
        """
        pass_idx, col, row = key
        return (pass_idx * self.L + col) * self.N + row

    def node_key(self, position: int, node_id: int) -> tuple[int, int, int]:
        """Node-style key at a path *position*: what ``packet.node`` holds.

        The reference engine rewrites the wrap node to its pass-2 alias
        before enqueueing, so position L decodes to ``(1, 0, row)``.
        """
        row = node_id - position * self.N
        if position < self.L:
            return (0, position, row)
        return (1, position - self.L, row)

    def trace_key(self, position: int, node_id: int) -> tuple[int, int, int]:
        """Trace-style key: what ``packet.trace`` records at *position*.

        Traces capture the node key *before* the wrap rewrite, so
        position L decodes to ``(0, L, row)``.
        """
        row = node_id - position * self.N
        if position <= self.L:
            return (0, position, row)
        return (1, position - self.L, row)

    def reply_key(self, _position: int, node_id: int) -> tuple[int, int, int]:
        """Position-independent decode for reply-phase paths.

        Reply paths walk traces in reverse, so positions no longer track
        columns.  Trace keys never contain ``(1, 0, row)`` (the wrap is
        recorded as ``(0, L, row)``), which makes the decode unambiguous.
        """
        col_idx, row = divmod(node_id, self.N)
        if col_idx <= self.L:
            return (0, col_idx, row)
        return (1, col_idx - self.L, row)

    # ---- trajectory compilation ----------------------------------------
    def build_paths(
        self,
        source_rows: Sequence[int],
        dests: Sequence[int],
        *,
        coins: np.ndarray | None = None,
        inters: Sequence[int] | None = None,
    ) -> list[list[int]]:
        """Compile every packet's full 2L-hop node-id trajectory.

        Phase 1 either follows pre-drawn *coins* (an ``(n, L)`` array of
        bridge choices, Algorithm 2.1) or the unique path to a chosen
        intermediate row per packet (*inters*, Algorithms 2.2/2.3);
        phase 2 always follows the unique path to ``dests``.
        """
        if (coins is None) == (inters is None):
            raise ValueError("need exactly one of coins= or inters=")
        L, N = self.L, self.N
        rows = np.asarray(source_rows, dtype=np.int64)
        n = len(rows)
        cols = np.empty((n, 2 * L + 1), dtype=np.int64)
        cols[:, 0] = rows
        if coins is not None:
            for level in range(L):
                rows = self.out_table(level)[rows, coins[:, level]]
                cols[:, level + 1] = rows
        else:
            inters_arr = np.asarray(inters, dtype=np.int64)
            for level in range(L):
                rows = self.net.unique_next_batch(level, rows, inters_arr)
                cols[:, level + 1] = rows
        dests_arr = np.asarray(dests, dtype=np.int64)
        for level in range(L):
            rows = self.net.unique_next_batch(level, rows, dests_arr)
            cols[:, L + 1 + level] = rows
        if not np.array_equal(rows, dests_arr):
            bad = int(np.nonzero(rows != dests_arr)[0][0])
            raise RuntimeError(
                f"packet {bad} finished pass 2 at row {int(rows[bad])} "
                f"!= dest {int(dests_arr[bad])}"
            )
        ids = cols + (np.arange(2 * L + 1, dtype=np.int64) * N)[None, :]
        return ids.tolist()


def compile_leveled(net: LeveledNetwork) -> CompiledLeveledTopology:
    """Compiled view of *net*, cached on the network instance."""
    compiled = getattr(net, "_compiled_topology", None)
    if compiled is None:
        compiled = CompiledLeveledTopology(net)
        net._compiled_topology = compiled
    return compiled
