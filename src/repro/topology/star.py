"""The n-star graph (Definitions 2.4-2.5; Akers, Harel & Krishnamurthy).

Nodes are the n! permutations of the symbols ``0..n-1`` (the paper uses
``1..n``); node u is adjacent to ``SWAP_j(u)`` for ``j = 1..n-1``, where
``SWAP_j`` exchanges the symbol in position 0 with the symbol in position j.
Degree n-1, diameter ``floor(3(n-1)/2)`` — sub-logarithmic in N = n!, which
is what makes the paper's emulation result interesting.

Permutations are encoded as dense ids via the Lehmer code so the routing
engine sees plain integers.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

from repro.topology.base import Topology


@lru_cache(maxsize=32)
def _factorials(n: int) -> tuple[int, ...]:
    f = [1] * (n + 1)
    for i in range(1, n + 1):
        f[i] = f[i - 1] * i
    return tuple(f)


def perm_rank(perm: Sequence[int]) -> int:
    """Lehmer-code rank of *perm* (a permutation of 0..n-1) in [0, n!)."""
    n = len(perm)
    fact = _factorials(n)
    available = list(range(n))
    rank = 0
    for i, p in enumerate(perm):
        idx = available.index(p)
        rank += idx * fact[n - 1 - i]
        available.pop(idx)
    return rank


def perm_unrank(rank: int, n: int) -> tuple[int, ...]:
    """Inverse of :func:`perm_rank`."""
    fact = _factorials(n)
    if not 0 <= rank < fact[n]:
        raise ValueError(f"rank {rank} out of range [0, {fact[n]})")
    available = list(range(n))
    out = []
    for i in range(n):
        f = fact[n - 1 - i]
        idx, rank = divmod(rank, f)
        out.append(available.pop(idx))
    return tuple(out)


def swap_j(perm: tuple[int, ...], j: int) -> tuple[int, ...]:
    """SWAP_j (Definition 2.4): exchange positions 0 and j (1 <= j < n)."""
    if not 1 <= j < len(perm):
        raise ValueError(f"j={j} out of range [1, {len(perm)})")
    lst = list(perm)
    lst[0], lst[j] = lst[j], lst[0]
    return tuple(lst)


def star_distance_to_identity(perm: Sequence[int]) -> int:
    """Exact star-graph distance from *perm* to the identity.

    Classical formula (Akers & Krishnamurthy): write the permutation as a
    product of cycles; with m = number of non-fixed symbols and k = number of
    nontrivial cycles, the distance is ``m + k`` when position 0 is fixed and
    ``m + k - 2`` when position 0 lies on a nontrivial cycle.
    """
    n = len(perm)
    seen = [False] * n
    m = 0
    k = 0
    for start in range(n):
        if seen[start] or perm[start] == start:
            seen[start] = True
            continue
        k += 1
        cur = start
        while not seen[cur]:
            seen[cur] = True
            m += 1
            cur = perm[cur]
    if m == 0:
        return 0
    return m + k - (2 if perm[0] != 0 else 0)


def greedy_move_to_identity(perm: tuple[int, ...]) -> int:
    """The j of the next SWAP_j on a minimal path from *perm* to identity.

    The "cycle algorithm": if the front symbol s = perm[0] is not 0, send it
    home (SWAP_s); otherwise bring any out-of-place symbol to the front
    (smallest such position, for determinism).  Returns 0 when perm is the
    identity (no move).
    """
    s = perm[0]
    if s != 0:
        return s
    for j in range(1, len(perm)):
        if perm[j] != j:
            return j
    return 0


class StarGraph(Topology):
    """The n-star graph S_n."""

    name = "star"

    def __init__(self, n: int) -> None:
        if n < 2:
            raise ValueError("star graph needs n >= 2")
        self.n = n
        self._fact = _factorials(n)
        self._num_nodes = self._fact[n]

    # ---- Topology interface -------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def degree(self) -> int:
        return self.n - 1

    @property
    def diameter(self) -> int:
        return (3 * (self.n - 1)) // 2

    def neighbors(self, v: int) -> list[int]:
        perm = perm_unrank(v, self.n)
        return [perm_rank(swap_j(perm, j)) for j in range(1, self.n)]

    def label(self, v: int) -> tuple[int, ...]:
        return perm_unrank(v, self.n)

    def node_id(self, label: Sequence[int]) -> int:
        return perm_rank(tuple(label))

    # ---- routing -------------------------------------------------------
    def _relative(self, cur: tuple[int, ...], dest: tuple[int, ...]) -> tuple[int, ...]:
        """dest^{-1} ∘ cur: the permutation that must be sorted to identity.

        SWAP_j acts on positions, i.e. neighbors are cur∘τ_{0j}; composing
        with dest^{-1} on the left commutes with that action, so routing
        cur → dest is the same move sequence as routing rel → identity.
        """
        inv = [0] * self.n
        for pos, sym in enumerate(dest):
            inv[sym] = pos
        return tuple(inv[s] for s in cur)

    def route_next(self, cur: int, dest: int) -> int:
        if cur == dest:
            return cur
        cur_p = perm_unrank(cur, self.n)
        dest_p = perm_unrank(dest, self.n)
        rel = self._relative(cur_p, dest_p)
        j = greedy_move_to_identity(rel)
        if j == 0:
            return cur
        return perm_rank(swap_j(cur_p, j))

    def distance(self, u: int, v: int) -> int:
        rel = self._relative(perm_unrank(u, self.n), perm_unrank(v, self.n))
        return star_distance_to_identity(rel)

    # ---- substructure (Definition 2.6, used by the logical network) ----
    def stage_subgraph_key(self, v: int, i: int) -> tuple[int, ...]:
        """The last i symbols of node v's label.

        All nodes sharing this key form one i-th stage subgraph G^i (an
        (n-i)-star).  ``i = 0`` gives the whole graph.
        """
        if not 0 <= i < self.n:
            raise ValueError(f"stage i={i} out of range [0, {self.n})")
        return perm_unrank(v, self.n)[self.n - i :]

    def critical_point(self, v: int, i: int) -> int:
        """The critical point of v at stage i (§2.3.4).

        At stage i the G^i's partition G^{i-1}; node v's unique neighbor
        lying in a *different* G^i is ``SWAP_{n-i}(v)`` (the swap that
        changes the i-th symbol from the end).
        """
        if not 1 <= i < self.n:
            raise ValueError(f"stage i={i} out of range [1, {self.n})")
        perm = perm_unrank(v, self.n)
        return perm_rank(swap_j(perm, self.n - i))
