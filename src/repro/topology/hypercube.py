"""The binary n-cube (hypercube), the paper's reference point (§1).

N = 2**n nodes, degree n, diameter n = Θ(log N).  Ranade's butterfly
emulation implies an O(log N) PRAM emulation here; the star graph and
n-way shuffle beat this because their diameters are sub-logarithmic.
"""

from __future__ import annotations

from repro.topology.base import Topology


class Hypercube(Topology):
    """Binary n-cube on 2**n nodes; e-cube (dimension-order) routing."""

    name = "hypercube"

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("hypercube needs n >= 1 dimensions")
        self.n = n
        self._num_nodes = 1 << n

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def degree(self) -> int:
        return self.n

    @property
    def diameter(self) -> int:
        return self.n

    def neighbors(self, v: int) -> list[int]:
        return [v ^ (1 << i) for i in range(self.n)]

    def label(self, v: int) -> str:
        return format(v, f"0{self.n}b")

    def node_id(self, label) -> int:
        if isinstance(label, str):
            return int(label, 2)
        return int(label)

    def route_next(self, cur: int, dest: int) -> int:
        """Fix differing bits lowest-dimension first (e-cube routing)."""
        diff = cur ^ dest
        if diff == 0:
            return cur
        lowest = diff & -diff
        return cur ^ lowest

    def distance(self, u: int, v: int) -> int:
        return (u ^ v).bit_count()
