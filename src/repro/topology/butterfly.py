"""The binary butterfly, substrate of Ranade's emulation [13].

A butterfly of order k has (k+1) columns of 2**k rows.  Node (c, r) for
c < k links to (c+1, r) ("straight") and (c+1, r ^ 2**c) ("cross"); fixing
bit c of the row at column c induces the unique path property: exactly one
path of length k from any column-0 node to any column-k node.

Ranade places PRAM processors and memory modules on the column-0 /
column-k rims (we use column 0 for processors and column k for modules);
the paper cites this network as the classical O(log N) emulation to beat.
"""

from __future__ import annotations

from typing import Sequence

from repro.topology.base import Topology


class Butterfly(Topology):
    """Butterfly of order k: (k+1) * 2**k nodes."""

    name = "butterfly"

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("butterfly needs order k >= 1")
        self.k = k
        self.rows = 1 << k
        self._num_nodes = (k + 1) * self.rows

    # ---- id <-> (column, row) ------------------------------------------
    def pack(self, col: int, row: int) -> int:
        if not 0 <= col <= self.k:
            raise ValueError(f"column {col} out of range [0, {self.k}]")
        if not 0 <= row < self.rows:
            raise ValueError(f"row {row} out of range [0, {self.rows})")
        return col * self.rows + row

    def unpack(self, v: int) -> tuple[int, int]:
        return divmod(v, self.rows)

    def label(self, v: int) -> tuple[int, int]:
        return self.unpack(v)

    def node_id(self, label: Sequence[int]) -> int:
        col, row = label
        return self.pack(col, row)

    # ---- Topology interface -------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def degree(self) -> int:
        return 4 if self.k > 1 else 2

    @property
    def diameter(self) -> int:
        # Worst case: column 0 to column k fixing all bits, 2k for
        # rim-to-rim-and-back pairs within the same column.
        return 2 * self.k

    def forward_neighbors(self, v: int) -> list[int]:
        """Column c -> column c+1 links (empty at the last column)."""
        col, row = self.unpack(v)
        if col == self.k:
            return []
        return [self.pack(col + 1, row), self.pack(col + 1, row ^ (1 << col))]

    def backward_neighbors(self, v: int) -> list[int]:
        col, row = self.unpack(v)
        if col == 0:
            return []
        return [self.pack(col - 1, row), self.pack(col - 1, row ^ (1 << (col - 1)))]

    def neighbors(self, v: int) -> list[int]:
        return self.forward_neighbors(v) + self.backward_neighbors(v)

    def forward_next(self, v: int, dest_row: int) -> int:
        """Unique-path next hop toward row *dest_row* in the last column."""
        col, row = self.unpack(v)
        if col >= self.k:
            raise ValueError("already at the last column")
        bit = 1 << col
        new_row = (row & ~bit) | (dest_row & bit)
        return self.pack(col + 1, new_row)

    def backward_next(self, v: int, dest_row: int) -> int:
        """Unique-path next hop toward row *dest_row* in column 0."""
        col, row = self.unpack(v)
        if col <= 0:
            raise ValueError("already at the first column")
        bit = 1 << (col - 1)
        new_row = (row & ~bit) | (dest_row & bit)
        return self.pack(col - 1, new_row)

    def route_next(self, cur: int, dest: int) -> int:
        """Greedy: walk toward the destination column, fixing row bits that
        the remaining columns allow; exact for rim-to-rim routes."""
        if cur == dest:
            return cur
        ccol, crow = self.unpack(cur)
        dcol, drow = self.unpack(dest)
        if ccol < dcol:
            bit = 1 << ccol
            return self.pack(ccol + 1, (crow & ~bit) | (drow & bit))
        if ccol > dcol:
            bit = 1 << (ccol - 1)
            return self.pack(ccol - 1, (crow & ~bit) | (drow & bit))
        # Same column, different row: step forward then back (or back then
        # forward at the rim).  Move toward the side with the lowest
        # differing bit still fixable.
        diff = crow ^ drow
        low = (diff & -diff).bit_length() - 1
        if ccol <= low:
            return self.pack(ccol + 1, crow)
        return self.pack(ccol - 1, (crow & ~(1 << (ccol - 1))) | (drow & (1 << (ccol - 1))))
