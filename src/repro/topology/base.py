"""Abstract topology interface shared by all interconnection networks."""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from typing import Hashable, Iterable, Sequence


class Topology(ABC):
    """A static point-to-point interconnection network.

    Nodes are dense integers ``0 .. num_nodes-1``.  Subclasses provide label
    codecs (``label``/``node_id``) for human-meaningful identities
    (permutations, digit strings, grid coordinates).

    The contract needed by the routing engine is deliberately small:
    ``neighbors`` (bidirectional links, as in the paper's models) and
    ``route_next`` (the deterministic greedy next hop used by oblivious
    routing algorithms).
    """

    #: short name used in experiment tables
    name: str = "topology"

    @property
    @abstractmethod
    def num_nodes(self) -> int:
        """Number of nodes N."""

    @property
    @abstractmethod
    def degree(self) -> int:
        """Maximum node degree d."""

    @property
    @abstractmethod
    def diameter(self) -> int:
        """Exact network diameter."""

    @abstractmethod
    def neighbors(self, v: int) -> Sequence[int]:
        """Nodes adjacent to *v* (links are bidirectional)."""

    @abstractmethod
    def route_next(self, cur: int, dest: int) -> int:
        """Deterministic greedy next hop from *cur* toward *dest*.

        Must satisfy ``route_next(dest, dest) == dest`` and strictly
        decrease ``distance(cur, dest)`` along the path it induces.
        """

    # ---- label codecs -------------------------------------------------
    def label(self, v: int) -> Hashable:
        """Human-readable label of node *v* (default: the id itself)."""
        return v

    def node_id(self, label: Hashable) -> int:
        """Inverse of :meth:`label`."""
        if not isinstance(label, int):
            raise TypeError(f"{type(self).__name__} uses integer labels")
        return label

    # ---- derived helpers ----------------------------------------------
    def distance(self, u: int, v: int) -> int:
        """Length of the greedy route from u to v.

        Subclasses override with closed forms when the greedy route is not
        provably shortest; the default walks :meth:`route_next`.
        """
        steps = 0
        cur = u
        limit = 4 * max(1, self.diameter) + 4
        while cur != v:
            nxt = self.route_next(cur, v)
            if nxt == cur:
                raise RuntimeError(f"route stalled at {cur} toward {v}")
            cur = nxt
            steps += 1
            if steps > limit:
                raise RuntimeError(f"route from {u} to {v} exceeded {limit} hops")
        return steps

    def greedy_path(self, u: int, v: int) -> list[int]:
        """Node sequence of the greedy route, inclusive of both endpoints."""
        path = [u]
        cur = u
        limit = 4 * max(1, self.diameter) + 4
        while cur != v:
            cur = self.route_next(cur, v)
            path.append(cur)
            if len(path) > limit + 1:
                raise RuntimeError(f"greedy path from {u} to {v} did not converge")
        return path

    def bfs_distance(self, u: int, v: int) -> int:
        """Exact shortest-path distance by BFS (reference for tests)."""
        if u == v:
            return 0
        seen = {u}
        frontier = deque([(u, 0)])
        while frontier:
            node, dist = frontier.popleft()
            for w in self.neighbors(node):
                if w == v:
                    return dist + 1
                if w not in seen:
                    seen.add(w)
                    frontier.append((w, dist + 1))
        raise ValueError(f"{v} unreachable from {u}")

    def bfs_eccentricity(self, u: int) -> int:
        """Largest BFS distance from *u*; used to validate `diameter`."""
        seen = {u}
        frontier = deque([(u, 0)])
        ecc = 0
        while frontier:
            node, dist = frontier.popleft()
            ecc = max(ecc, dist)
            for w in self.neighbors(node):
                if w not in seen:
                    seen.add(w)
                    frontier.append((w, dist + 1))
        if len(seen) != self.num_nodes:
            raise ValueError(f"graph disconnected from {u}")
        return ecc

    def all_nodes(self) -> range:
        return range(self.num_nodes)

    def validate_node(self, v: int) -> None:
        if not 0 <= v < self.num_nodes:
            raise ValueError(f"node {v} out of range [0, {self.num_nodes})")

    def edges(self) -> Iterable[tuple[int, int]]:
        """All directed edges (u, v)."""
        for u in self.all_nodes():
            for v in self.neighbors(u):
                yield (u, v)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(N={self.num_nodes}, d={self.degree}, "
            f"diam={self.diameter})"
        )
