"""Mesh-connected computers (§3.1) and the linear array (§3.4.1).

The MCC is an n x n grid of processors with bidirectional links; in one
step a processor computes locally and exchanges one packet with each of its
<= 4 neighbors (the MIMD model of [19], [6], [8], [9], [12]).  The linear
array is the 1-D analysis primitive used to prove Theorem 3.1.
"""

from __future__ import annotations

from typing import Sequence

from repro.topology.base import Topology


class Mesh2D(Topology):
    """An ``rows x cols`` mesh; node id = r * cols + c."""

    name = "mesh"

    def __init__(self, rows: int, cols: int | None = None) -> None:
        if cols is None:
            cols = rows
        if rows < 1 or cols < 1:
            raise ValueError("mesh needs positive dimensions")
        self.rows = rows
        self.cols = cols

    @classmethod
    def square(cls, n: int) -> "Mesh2D":
        return cls(n, n)

    # ---- id <-> coordinates --------------------------------------------
    def pack(self, r: int, c: int) -> int:
        if not (0 <= r < self.rows and 0 <= c < self.cols):
            raise ValueError(f"({r},{c}) outside {self.rows}x{self.cols} mesh")
        return r * self.cols + c

    def unpack(self, v: int) -> tuple[int, int]:
        return divmod(v, self.cols)

    def label(self, v: int) -> tuple[int, int]:
        return self.unpack(v)

    def node_id(self, label: Sequence[int]) -> int:
        r, c = label
        return self.pack(r, c)

    # ---- Topology interface -------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.rows * self.cols

    @property
    def degree(self) -> int:
        return 4

    @property
    def diameter(self) -> int:
        return (self.rows - 1) + (self.cols - 1)

    def neighbors(self, v: int) -> list[int]:
        r, c = self.unpack(v)
        out = []
        if r > 0:
            out.append(v - self.cols)
        if r < self.rows - 1:
            out.append(v + self.cols)
        if c > 0:
            out.append(v - 1)
        if c < self.cols - 1:
            out.append(v + 1)
        return out

    def route_next(self, cur: int, dest: int) -> int:
        """Dimension-order (column-first) greedy routing."""
        cr, cc = self.unpack(cur)
        dr, dc = self.unpack(dest)
        if cc != dc:
            return self.pack(cr, cc + (1 if dc > cc else -1))
        if cr != dr:
            return self.pack(cr + (1 if dr > cr else -1), cc)
        return cur

    def distance(self, u: int, v: int) -> int:
        ur, uc = self.unpack(u)
        vr, vc = self.unpack(v)
        return abs(ur - vr) + abs(uc - vc)

    # ---- slices (Figure 5) ----------------------------------------------
    def slice_of_row(self, r: int, slice_rows: int) -> int:
        """Index of the horizontal slice containing row r, for slices of
        ``slice_rows`` rows each (the partitioning of Figure 5)."""
        if slice_rows < 1:
            raise ValueError("slice_rows must be >= 1")
        return r // slice_rows

    def slice_row_range(self, slice_idx: int, slice_rows: int) -> range:
        """Rows belonging to the given slice (last slice may be short)."""
        lo = slice_idx * slice_rows
        if lo >= self.rows:
            raise ValueError(f"slice {slice_idx} is empty")
        return range(lo, min(lo + slice_rows, self.rows))


class LinearArray(Topology):
    """A 1-D array of n nodes; the building block of §3.4.1's analysis."""

    name = "linear"

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("linear array needs n >= 1")
        self.n = n

    @property
    def num_nodes(self) -> int:
        return self.n

    @property
    def degree(self) -> int:
        return 2

    @property
    def diameter(self) -> int:
        return self.n - 1

    def neighbors(self, v: int) -> list[int]:
        out = []
        if v > 0:
            out.append(v - 1)
        if v < self.n - 1:
            out.append(v + 1)
        return out

    def route_next(self, cur: int, dest: int) -> int:
        if cur == dest:
            return cur
        return cur + (1 if dest > cur else -1)

    def distance(self, u: int, v: int) -> int:
        return abs(u - v)
