"""Leveled networks (Definition in §2.3.1, Figure 1).

A leveled network has columns c_0 .. c_L of N nodes each (we index the L
*edge layers* 0..L-1 between consecutive columns).  Links exist only
between adjacent columns; every node has at most d out-links; and from any
node of the first column there is exactly one path of length L to any node
of the last column (the *unique path* property).

Routing phase 2 of the universal algorithm (Algorithm 2.1) follows that
unique path.  Networks like the shuffle and the wrapped butterfly identify
the last column with the first, so a packet that reaches the last column
can re-enter at column 0 of a second *pass*; both the hypercube/butterfly
("cube class") and the paper's headline networks (star graph via its
logical network of Figure 3, n-way shuffle via Figure 4) fit this mold.

Concrete families here:

* :class:`DAryButterflyLeveled` — the canonical degree-d, L-level network
  with N = d**L rows and graph-theoretically unique paths; setting
  L = Θ(d) gives the paper's "ℓ = O(d)" regime.
* :class:`ShuffleLeveled` — the logical leveled view of the d-way shuffle.
* :class:`StarLogicalLeveled` — the logical network of the n-star graph
  (Figure 3): 2(n-1) stages of "bring the needed symbol to the front, then
  place it", degree n (n-1 swaps + 1 self link).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.topology.shuffle import DWayShuffle
from repro.topology.star import StarGraph, perm_rank, perm_unrank, swap_j


class LeveledNetwork(ABC):
    """Abstract leveled network: L edge layers over columns of N nodes."""

    #: short name used in experiment tables
    name: str = "leveled"
    #: True when the length-L path between first/last column pairs is
    #: graph-theoretically unique (butterfly, shuffle); False when
    #: ``unique_next`` merely selects a canonical path (star logical net).
    has_unique_paths: bool = True
    #: True when every node at every level has exactly ``degree``
    #: out-links (all built-in families).  Routers then pre-draw the
    #: phase-1 coin flips of Algorithm 2.1 in one batched RNG call, and
    #: the compiled fast path can build dense out-neighbor tables.
    uniform_out_degree: bool = True

    @property
    @abstractmethod
    def num_levels(self) -> int:
        """L: number of edge layers (columns = L + 1)."""

    @property
    @abstractmethod
    def column_size(self) -> int:
        """N: nodes per column."""

    @property
    @abstractmethod
    def degree(self) -> int:
        """d: maximum out-degree of a node."""

    @abstractmethod
    def out_neighbors(self, level: int, node: int) -> Sequence[int]:
        """Column-(level+1) nodes reachable from *node* in column *level*."""

    @abstractmethod
    def unique_next(self, level: int, node: int, dest: int) -> int:
        """Next hop on the (canonical) unique path toward last-column *dest*."""

    # ---- batched forms (compiled fast path) -----------------------------
    def out_neighbor_table(self, level: int) -> np.ndarray:
        """Dense ``(N, degree)`` array: row r lists out_neighbors(level, r).

        Column order matches :meth:`out_neighbors` so a pre-drawn coin c
        selects the same bridge as ``out_neighbors(level, r)[c]``.
        Subclasses override with closed-form vectorized constructions;
        this generic fallback loops once per row.
        """
        self.validate_level(level)
        if not self.uniform_out_degree:
            raise ValueError(
                f"{type(self).__name__} has non-uniform out-degree; "
                "no dense out-neighbor table exists"
            )
        table = np.empty((self.column_size, self.degree), dtype=np.int64)
        for row in range(self.column_size):
            table[row] = self.out_neighbors(level, row)
        return table

    def unique_next_batch(
        self, level: int, rows: np.ndarray, dests: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`unique_next` over parallel row/dest arrays.

        The generic fallback memoizes on (row, dest) — with hotspot
        traffic many packets share a destination, so repeated canonical
        next-hop computations collapse to one.  Families with arithmetic
        unique paths (butterfly, shuffle) override with closed forms.
        """
        self.validate_level(level)
        rows_l = np.asarray(rows, dtype=np.int64).tolist()
        dests_l = np.asarray(dests, dtype=np.int64).tolist()
        out = np.empty(len(rows_l), dtype=np.int64)
        memo: dict[tuple[int, int], int] = {}
        unique_next = self.unique_next
        for i, (r, dd) in enumerate(zip(rows_l, dests_l)):
            key = (r, dd)
            nxt = memo.get(key)
            if nxt is None:
                nxt = memo[key] = unique_next(level, r, dd)
            out[i] = nxt
        return out

    # ---- derived --------------------------------------------------------
    @property
    def num_columns(self) -> int:
        return self.num_levels + 1

    @property
    def total_nodes(self) -> int:
        """ℓN in the paper's counting (here (L+1) * N)."""
        return self.num_columns * self.column_size

    def unique_path(self, src: int, dest: int) -> list[int]:
        """Column-by-column node sequence of the canonical path."""
        path = [src]
        cur = src
        for level in range(self.num_levels):
            cur = self.unique_next(level, cur, dest)
            path.append(cur)
        if cur != dest:
            raise RuntimeError(
                f"unique path from {src} ended at {cur}, expected {dest}"
            )
        return path

    def validate_level(self, level: int) -> None:
        if not 0 <= level < self.num_levels:
            raise ValueError(f"level {level} out of range [0, {self.num_levels})")

    def validate_node(self, node: int) -> None:
        if not 0 <= node < self.column_size:
            raise ValueError(f"node {node} out of range [0, {self.column_size})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(L={self.num_levels}, N={self.column_size}, "
            f"d={self.degree})"
        )


class DAryButterflyLeveled(LeveledNetwork):
    """Degree-d butterfly-style leveled network with N = d**L rows.

    At edge layer i, node x connects to every node obtained by rewriting
    d-ary digit i of x; the unique path to *dest* rewrites digit i to
    dest's digit i.  This is the natural generalization of the binary
    butterfly and the canonical witness for Theorem 2.1's "leveled network
    of ℓ levels with degree d".
    """

    name = "dary-butterfly"
    has_unique_paths = True

    def __init__(self, d: int, levels: int) -> None:
        if d < 2:
            raise ValueError("need digit base d >= 2")
        if levels < 1:
            raise ValueError("need at least one level")
        self.d = d
        self._levels = levels
        self._n = d**levels

    @property
    def num_levels(self) -> int:
        return self._levels

    @property
    def column_size(self) -> int:
        return self._n

    @property
    def degree(self) -> int:
        return self.d

    def _digit_base(self, level: int) -> int:
        return self.d**level

    def out_neighbors(self, level: int, node: int) -> list[int]:
        self.validate_level(level)
        base = self._digit_base(level)
        low = node % base
        rest = node - (node % (base * self.d)) + low
        return [rest + digit * base for digit in range(self.d)]

    def unique_next(self, level: int, node: int, dest: int) -> int:
        self.validate_level(level)
        base = self._digit_base(level)
        dest_digit = (dest // base) % self.d
        low = node % base
        rest = node - (node % (base * self.d)) + low
        return rest + dest_digit * base

    def out_neighbor_table(self, level: int) -> np.ndarray:
        self.validate_level(level)
        base = self._digit_base(level)
        x = np.arange(self._n, dtype=np.int64)
        rest = x - x % (base * self.d) + x % base
        return rest[:, None] + np.arange(self.d, dtype=np.int64)[None, :] * base

    def unique_next_batch(
        self, level: int, rows: np.ndarray, dests: np.ndarray
    ) -> np.ndarray:
        self.validate_level(level)
        base = self._digit_base(level)
        rows = np.asarray(rows, dtype=np.int64)
        dest_digit = (np.asarray(dests, dtype=np.int64) // base) % self.d
        rest = rows - rows % (base * self.d) + rows % base
        return rest + dest_digit * base


class ShuffleLeveled(LeveledNetwork):
    """Logical leveled view of the d-way shuffle (Figure 4).

    Every edge layer applies one shuffle move (shift right, insert a digit
    at the front); after L = n layers the label is fully rewritten, so the
    insertion sequence — hence the path — is uniquely determined by the
    destination.
    """

    name = "shuffle-leveled"
    has_unique_paths = True

    def __init__(self, d: int, n: int) -> None:
        self.shuffle = DWayShuffle(d, n)

    @classmethod
    def n_way(cls, n: int) -> "ShuffleLeveled":
        return cls(n, n)

    @property
    def num_levels(self) -> int:
        return self.shuffle.n

    @property
    def column_size(self) -> int:
        return self.shuffle.num_nodes

    @property
    def degree(self) -> int:
        return self.shuffle.d

    def out_neighbors(self, level: int, node: int) -> list[int]:
        self.validate_level(level)
        return self.shuffle.shuffle_neighbors(node)

    def unique_next(self, level: int, node: int, dest: int) -> int:
        self.validate_level(level)
        return self.shuffle.unique_path_next(node, dest, level)

    def out_neighbor_table(self, level: int) -> np.ndarray:
        self.validate_level(level)
        sh = self.shuffle
        shifted = np.arange(sh.num_nodes, dtype=np.int64) // sh.d
        return (
            shifted[:, None]
            + np.arange(sh.d, dtype=np.int64)[None, :] * (sh.num_nodes // sh.d)
        )

    def unique_next_batch(
        self, level: int, rows: np.ndarray, dests: np.ndarray
    ) -> np.ndarray:
        self.validate_level(level)
        sh = self.shuffle
        digit = (np.asarray(dests, dtype=np.int64) // sh.d**level) % sh.d
        return np.asarray(rows, dtype=np.int64) // sh.d + digit * (
            sh.num_nodes // sh.d
        )


class StarLogicalLeveled(LeveledNetwork):
    """Logical leveled network of the n-star graph (Figure 3).

    Stage i (i = 0 .. n-2) moves a packet into the correct i+1-th stage
    subgraph G^{i+1} (Definition 2.6) by fixing the symbol at position
    n-1-i to the destination's symbol.  Each stage costs at most two
    physical star moves — "bring the needed symbol to the front" then
    "place it" — so the logical network has 2(n-1) edge layers.  Each node
    offers its n-1 SWAP links plus a self link (a node may act as a switch
    and forward without moving), giving logical degree n = Θ(diameter),
    the paper's "leveled network in which ℓ = O(d)" regime.

    The canonical path is destination-dependent (the graph itself admits
    many layered paths), so ``has_unique_paths`` is False: uniqueness here
    is a property of the *selection rule*, exactly how the paper uses it.
    """

    name = "star-logical"
    has_unique_paths = False

    def __init__(self, n: int) -> None:
        self.star = StarGraph(n)
        self.n = n
        self._nbr_table: np.ndarray | None = None
        self._perm_table: np.ndarray | None = None
        self._pos_table: np.ndarray | None = None

    @property
    def num_levels(self) -> int:
        return 2 * (self.n - 1)

    @property
    def column_size(self) -> int:
        return self.star.num_nodes

    @property
    def degree(self) -> int:
        return self.n  # n-1 swaps + self link

    def out_neighbors(self, level: int, node: int) -> list[int]:
        self.validate_level(level)
        return [node] + self.star.neighbors(node)

    def out_neighbor_table(self, level: int) -> np.ndarray:
        # The star's logical links are the same at every stage, so one
        # table (self link + n-1 swaps per node) serves all levels.
        self.validate_level(level)
        if self._nbr_table is None:
            table = np.empty((self.column_size, self.n), dtype=np.int64)
            for node in range(self.column_size):
                table[node, 0] = node
                table[node, 1:] = self.star.neighbors(node)
            self._nbr_table = table
        return self._nbr_table

    def unique_next(self, level: int, node: int, dest: int) -> int:
        self.validate_level(level)
        stage, substep = divmod(level, 2)
        pos = self.n - 1 - stage  # the position this stage pins down
        cur_p = perm_unrank(node, self.n)
        dest_p = perm_unrank(dest, self.n)
        sym = dest_p[pos]
        if cur_p[pos] == sym:
            return node  # already in the right subgraph: forward as switch
        if substep == 0:
            if cur_p[0] == sym:
                return node  # symbol staged at the front; place next layer
            loc = cur_p.index(sym)
            return perm_rank(swap_j(cur_p, loc))
        # substep 1: the symbol is at the front (substep 0 guarantees it).
        if cur_p[0] != sym:
            raise RuntimeError(
                "canonical star path invariant violated: "
                f"symbol {sym} not staged at front of {cur_p}"
            )
        return perm_rank(swap_j(cur_p, pos))

    # ---- batched canonical paths (compiled fast path) -------------------
    def _symbol_tables(self) -> tuple[np.ndarray, np.ndarray]:
        """``(perm, pos)`` lookup tables over all N = n! nodes.

        ``perm[v, i]`` is the symbol at position i of node v's label and
        ``pos[v, s]`` the position of symbol s (the inverse row).  One
        O(N n) Lehmer sweep replaces the per-pair unrank/rank arithmetic
        the generic ``unique_next_batch`` fallback had to memoize.
        """
        if self._perm_table is None:
            n = self.n
            N = self.column_size
            perm = np.empty((N, n), dtype=np.int64)
            for v in range(N):
                perm[v] = perm_unrank(v, n)
            pos = np.empty_like(perm)
            np.put_along_axis(
                pos, perm, np.arange(n, dtype=np.int64)[None, :], axis=1
            )
            self._perm_table = perm
            self._pos_table = pos
        return self._perm_table, self._pos_table

    def unique_next_batch(
        self, level: int, rows: np.ndarray, dests: np.ndarray
    ) -> np.ndarray:
        """Table-based batch form of :meth:`unique_next`.

        Every SWAP_j image is already tabulated in the neighbor table
        (column j is SWAP_j, column 0 the self link), so one stage of
        the canonical path is three gathers: the needed symbol, its
        position in each current label, and the corresponding swap —
        no Lehmer ranking per (row, dest) pair.
        """
        self.validate_level(level)
        stage, substep = divmod(level, 2)
        pos = self.n - 1 - stage  # the position this stage pins down
        rows = np.asarray(rows, dtype=np.int64)
        dests = np.asarray(dests, dtype=np.int64)
        perm, pos_of = self._symbol_tables()
        nbr = self.out_neighbor_table(level)  # column j = SWAP_j image
        sym = perm[dests, pos]
        settled = perm[rows, pos] == sym  # right subgraph: forward as switch
        if substep == 0:
            # Bring sym to the front: swap with its position (a no-op
            # self link when it is already staged there, loc == 0).
            loc = pos_of[rows, sym]
            out = nbr[rows, loc]
        else:
            # Place the staged front symbol (substep 0 guarantees it).
            if not np.all(settled | (perm[rows, 0] == sym)):
                raise RuntimeError(
                    "canonical star path invariant violated: "
                    f"symbol not staged at front before level {level}"
                )
            out = nbr[rows, pos]
        return np.where(settled, rows, out)
