"""Interconnection-network topologies (the paper's §2.3.1, §2.3.4, §2.3.5, §3.1).

Every topology exposes dense integer node ids, label codecs, neighbor
enumeration, deterministic greedy routing, and exact distances, so the
routing engine can stay topology-agnostic.
"""

from repro.topology.base import Topology
from repro.topology.star import StarGraph
from repro.topology.shuffle import DWayShuffle
from repro.topology.hypercube import Hypercube
from repro.topology.butterfly import Butterfly
from repro.topology.mesh import LinearArray, Mesh2D
from repro.topology.leveled import (
    DAryButterflyLeveled,
    LeveledNetwork,
    ShuffleLeveled,
    StarLogicalLeveled,
)
from repro.topology.compiled import CompiledLeveledTopology, compile_leveled

__all__ = [
    "Butterfly",
    "CompiledLeveledTopology",
    "DAryButterflyLeveled",
    "DWayShuffle",
    "Hypercube",
    "LeveledNetwork",
    "LinearArray",
    "Mesh2D",
    "ShuffleLeveled",
    "StarGraph",
    "StarLogicalLeveled",
    "Topology",
    "compile_leveled",
]
