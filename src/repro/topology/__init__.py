"""Interconnection-network topologies (the paper's §2.3.1, §2.3.4, §2.3.5, §3.1).

Every topology exposes dense integer node ids, label codecs, neighbor
enumeration, deterministic greedy routing, and exact distances, so the
routing engine can stay topology-agnostic.
"""

from repro.topology.base import Topology
from repro.topology.star import StarGraph
from repro.topology.shuffle import DWayShuffle
from repro.topology.hypercube import Hypercube
from repro.topology.butterfly import Butterfly
from repro.topology.mesh import LinearArray, Mesh2D
from repro.topology.leveled import (
    DAryButterflyLeveled,
    LeveledNetwork,
    ShuffleLeveled,
    StarLogicalLeveled,
)
from repro.topology.compiled import (
    CompiledLeveledTopology,
    CompiledMesh2D,
    TrajectoryPlan,
    compact_paths,
    compile_leveled,
    compile_mesh,
    hypercube_paths,
    linear_paths,
    shuffle_unique_paths,
)

__all__ = [
    "Butterfly",
    "CompiledLeveledTopology",
    "CompiledMesh2D",
    "DAryButterflyLeveled",
    "DWayShuffle",
    "Hypercube",
    "LeveledNetwork",
    "LinearArray",
    "Mesh2D",
    "ShuffleLeveled",
    "StarGraph",
    "StarLogicalLeveled",
    "Topology",
    "TrajectoryPlan",
    "compact_paths",
    "compile_leveled",
    "compile_mesh",
    "hypercube_paths",
    "linear_paths",
    "shuffle_unique_paths",
]
