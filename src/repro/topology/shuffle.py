"""The d-way shuffle network (§2.3.5).

N = d**n nodes, each labelled by n d-ary digits ``d_n d_{n-1} ... d_1``
(most-significant first).  Node ``d_n ... d_1`` links to ``l d_n ... d_2``
for every digit l: the label shifts right (dropping the least significant
digit) and an arbitrary new digit enters at the front.  There is a unique
path of exactly n links between any ordered pair of nodes: shift in the
destination's digits, least significant first.  Choosing d = n gives the
*n-way shuffle* with N = n**n nodes and diameter n = Θ(log N / log log N) —
sub-logarithmic, like the star graph.

Links here are directed by construction; following the paper's parallel
model we treat the union with the reverse links as the physical network but
route *forward* along shuffle edges only (both routing phases use forward
edges, re-entering the "first column" of the logical leveled view).
"""

from __future__ import annotations

from typing import Sequence

from repro.topology.base import Topology


class DWayShuffle(Topology):
    """The d-way shuffle on d**n nodes."""

    name = "shuffle"

    def __init__(self, d: int, n: int) -> None:
        if d < 2:
            raise ValueError("shuffle needs digit base d >= 2")
        if n < 1:
            raise ValueError("shuffle needs n >= 1 digits")
        self.d = d
        self.n = n
        self._num_nodes = d**n
        self._msb = d ** (n - 1)

    @classmethod
    def n_way(cls, n: int) -> "DWayShuffle":
        """The n-way shuffle (d = n), the paper's headline instance."""
        return cls(n, n)

    # ---- Topology interface -------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def degree(self) -> int:
        return self.d

    @property
    def diameter(self) -> int:
        return self.n

    def shuffle_neighbors(self, v: int) -> list[int]:
        """Forward (directed) shuffle edges out of v."""
        shifted = v // self.d
        return [shifted + l * self._msb for l in range(self.d)]

    def neighbors(self, v: int) -> list[int]:
        """Physical neighborhood: forward edges plus their reverses."""
        fwd = self.shuffle_neighbors(v)
        # Reverse edges: u such that v in shuffle_neighbors(u), i.e.
        # u // d == v mod d**(n-1) shifted ... equivalently
        # u = (v mod msb) * d + l for all digits l.
        back_base = (v % self._msb) * self.d
        back = [back_base + l for l in range(self.d)]
        seen: dict[int, None] = {}
        for w in fwd + back:
            if w != v and w not in seen:
                seen[w] = None
        return list(seen)

    def label(self, v: int) -> tuple[int, ...]:
        """Digits most-significant first (paper's d_n .. d_1)."""
        digits = []
        for _ in range(self.n):
            digits.append(v % self.d)
            v //= self.d
        return tuple(reversed(digits))

    def node_id(self, label: Sequence[int]) -> int:
        if len(label) != self.n:
            raise ValueError(f"label needs {self.n} digits")
        v = 0
        for digit in label:
            if not 0 <= digit < self.d:
                raise ValueError(f"digit {digit} out of range [0, {self.d})")
            v = v * self.d + digit
        return v

    # ---- unique-path routing -------------------------------------------
    def digit(self, v: int, k: int) -> int:
        """k-th least significant digit of v's label (k = 0 .. n-1)."""
        return (v // (self.d**k)) % self.d

    def hop(self, cur: int, insert: int) -> int:
        """One shuffle move: shift right, insert digit at the front."""
        if not 0 <= insert < self.d:
            raise ValueError(f"digit {insert} out of range [0, {self.d})")
        return cur // self.d + insert * self._msb

    def unique_path_next(self, cur: int, dest: int, hops_done: int) -> int:
        """Next node on the unique n-link path from the original source.

        After k hops the label holds the k inserted digits on top of the
        source's high digits; hop k (0-indexed) must insert destination
        digit k (least significant first) so that after n hops the label
        equals *dest* exactly.
        """
        if not 0 <= hops_done < self.n:
            raise ValueError(f"hops_done={hops_done} out of [0, {self.n})")
        return self.hop(cur, self.digit(dest, hops_done))

    def unique_path(self, src: int, dest: int) -> list[int]:
        """The full unique n-link path, endpoints inclusive."""
        path = [src]
        cur = src
        for k in range(self.n):
            cur = self.unique_path_next(cur, dest, k)
            path.append(cur)
        return path

    def route_next(self, cur: int, dest: int) -> int:
        """Greedy shortest forward route (suffix-overlap shortcut).

        A length-k route is the tail of the canonical n-hop path, so its
        first hop inserts destination digit n-k (the hop-(n-k) insertion).
        """
        if cur == dest:
            return cur
        k = self.distance(cur, dest)
        return self.hop(cur, self.digit(dest, self.n - k))

    def distance(self, u: int, v: int) -> int:
        """Shortest forward-path length: min k with v's low n-k digits equal
        to u's high n-k digits (k = n always works)."""
        for k in range(self.n + 1):
            if v % (self.d ** (self.n - k)) == u // (self.d**k):
                return k
        return self.n  # pragma: no cover - k = n always matches
