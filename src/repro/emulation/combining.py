"""Reply fan-out along combining trees (Theorem 2.6, footnote 3).

When concurrent requests to the same address are combined on the way to
the memory module, the single reply must fan back out so that *every*
requesting processor receives its value.  The paper stores "log d
direction bits" at each merge; we keep the equivalent information as the
absorbed packets' traversed prefixes.

Given a delivered request packet (the *host*, carrying its combining tree)
this module builds the reply packets and the spawn rule:

* the host's reply walks the host's path in reverse;
* when a reply reaches the node where a child was absorbed, the child's
  reply is spawned there and walks the child's own prefix in reverse;
* recursively for children of children.

Requests routed with ``track_paths=True`` have everything needed.
"""

from __future__ import annotations

from typing import Hashable

from repro.routing.packet import Packet


def reverse_path_of(request: Packet) -> list[Hashable]:
    """Remaining reply path for *request*: its trace reversed, excluding
    the node the reply starts at (= the trace's last entry)."""
    if request.trace is None:
        raise ValueError(
            f"packet {request.pid} has no trace; route requests with "
            "track_paths=True to enable reply fan-out"
        )
    return list(reversed(request.trace))[1:]


def make_reply(request: Packet, pid: int, value=None) -> Packet:
    """Build the reply packet for a delivered (host) request packet.

    The reply's ``state`` is ``(path, index, request)``: the reverse path
    to walk, the current position, and the originating request (for
    locating children).  ``dest`` is the requester's source node.
    """
    reply = Packet(
        pid,
        request.node,
        request.source,
        kind="reply",
        address=request.address,
        payload=value,
    )
    reply.state = (reverse_path_of(request), 0, request)
    return reply


def reply_next_hop(reply: Packet):
    """Engine next-hop policy: follow the stored reverse path."""
    path, idx, request = reply.state
    if idx >= len(path):
        return None
    reply.state = (path, idx + 1, request)
    return path[idx]


class ReplySpawner:
    """``on_arrival`` hook spawning child replies at merge points."""

    def __init__(self) -> None:
        self._next_pid = 10_000_000  # disjoint from request pids
        self._done: set[int] = set()  # child request pids already spawned
        self.spawned = 0

    def _fresh_pid(self) -> int:
        self._next_pid += 1
        return self._next_pid

    def __call__(self, reply: Packet):
        if reply.kind != "reply":
            return None
        _path, _idx, request = reply.state
        children = request.children
        if not children:
            return None
        here = reply.node
        out = []
        for child in children:
            # A mesh reply may revisit a node (stage-0/stage-2 overlap in
            # the same column), so guard against double-spawning.
            if child.pid in self._done:
                continue
            if child.trace and child.trace[-1] == here:
                child_reply = make_reply(child, self._fresh_pid(), reply.payload)
                child_reply.node = here
                out.append(child_reply)
                self._done.add(child.pid)
                self.spawned += 1
        return out or None


def build_replies(hosts: list[Packet], values: dict[int, object], pid_base: int = 0):
    """Reply packets for delivered hosts; values keyed by host pid."""
    replies = []
    for i, host in enumerate(hosts):
        replies.append(make_reply(host, pid_base + i, values.get(host.pid)))
    return replies
