"""Reply fan-out along combining trees (Theorem 2.6, footnote 3).

When concurrent requests to the same address are combined on the way to
the memory module, the single reply must fan back out so that *every*
requesting processor receives its value.  The paper stores "log d
direction bits" at each merge; we keep the equivalent information as the
absorbed packets' traversed prefixes.

Given a delivered request packet (the *host*, carrying its combining tree)
this module builds the reply packets and the spawn rule:

* the host's reply walks the host's path in reverse;
* when a reply reaches the node where a child was absorbed, the child's
  reply is spawned there and walks the child's own prefix in reverse;
* recursively for children of children.

Requests routed with ``track_paths=True`` have everything needed.
"""

from __future__ import annotations

from typing import Callable, Hashable

import numpy as np

from repro.routing.fast_engine import FastPathEngine
from repro.routing.packet import Packet


def reverse_path_of(request: Packet) -> list[Hashable]:
    """Remaining reply path for *request*: its trace reversed, excluding
    the node the reply starts at (= the trace's last entry)."""
    if request.trace is None:
        raise ValueError(
            f"packet {request.pid} has no trace; route requests with "
            "track_paths=True to enable reply fan-out"
        )
    return list(reversed(request.trace))[1:]


def make_reply(request: Packet, pid: int, value=None) -> Packet:
    """Build the reply packet for a delivered (host) request packet.

    The reply's ``state`` is ``(path, index, request)``: the reverse path
    to walk, the current position, and the originating request (for
    locating children).  ``dest`` is the requester's source node.
    """
    reply = Packet(
        pid,
        request.node,
        request.source,
        kind="reply",
        address=request.address,
        payload=value,
    )
    reply.state = (reverse_path_of(request), 0, request)
    return reply


def reply_next_hop(reply: Packet):
    """Engine next-hop policy: follow the stored reverse path."""
    path, idx, request = reply.state
    if idx >= len(path):
        return None
    reply.state = (path, idx + 1, request)
    return path[idx]


class ReplySpawner:
    """``on_arrival`` hook spawning child replies at merge points.

    The spawn rule — every absorbed child's reply is born where the
    child was merged, carrying the parent reply's value — lives here for
    *both* engines.  ``reply_factory`` and ``merge_key`` parameterize
    the representation: the defaults build trace-based replies for the
    reference engine; the fast reply path supplies integer-path
    equivalents (see ``LeveledEmulator._route_replies_fast``) while
    sharing the pid assignment, double-spawn guard, and counters.
    """

    def __init__(self, *, reply_factory=None, merge_key=None) -> None:
        self._next_pid = 10_000_000  # disjoint from request pids
        self._done: set[int] = set()  # child request pids already spawned
        self._groups: dict[int, dict] = {}  # id(request) -> merge key -> kids
        self._make = reply_factory if reply_factory is not None else make_reply
        self._merge_key = (
            merge_key if merge_key is not None else self._trace_merge_key
        )
        self.spawned = 0

    @staticmethod
    def _trace_merge_key(child: Packet):
        """Where *child*'s reply must spawn: its absorption node."""
        return child.trace[-1] if child.trace else None

    def _fresh_pid(self) -> int:
        self._next_pid += 1
        return self._next_pid

    def _spawn(self, child: Packet, here, payload) -> Packet:
        child_reply = self._make(child, self._fresh_pid(), payload)
        child_reply.node = here
        self._done.add(child.pid)
        self.spawned += 1
        return child_reply

    def __call__(self, reply: Packet):
        return self.spawn_at(reply, reply.node) or None

    def spawn_at(self, reply: Packet, here) -> "list[Packet]":
        """Child replies to inject at node *here* (linear scan form)."""
        if reply.kind != "reply":
            return []
        request = reply.state[2]
        children = request.children
        if not children:
            return []
        out = []
        for child in children:
            # A mesh reply may revisit a node (stage-0/stage-2 overlap in
            # the same column), so guard against double-spawning.
            if child.pid in self._done:
                continue
            if self._merge_key(child) == here:
                out.append(self._spawn(child, here, reply.payload))
        return out

    def spawn_grouped(self, reply: Packet, here) -> "list[Packet]":
        """Like :meth:`spawn_at`, but children are bucketed by merge key
        once per request — O(children) total instead of a full scan at
        every node the reply visits.  Same spawns in the same order; the
        fast reply path uses this because large combining trees make the
        repeated scan quadratic.
        """
        if reply.kind != "reply":
            return []
        request = reply.state[2]
        children = request.children
        if not children:
            return []
        groups = self._groups.get(id(request))
        if groups is None:
            groups = {}
            for child in children:
                if child.pid in self._done:
                    continue
                key = self._merge_key(child)
                if key is not None:
                    groups.setdefault(key, []).append(child)
            self._groups[id(request)] = groups
        kids = groups.pop(here, None)
        if not kids:
            return []
        return [self._spawn(child, here, reply.payload) for child in kids]


def build_replies(hosts: list[Packet], values: dict[int, object], pid_base: int = 0):
    """Reply packets for delivered hosts; values keyed by host pid."""
    replies = []
    for i, host in enumerate(hosts):
        replies.append(make_reply(host, pid_base + i, values.get(host.pid)))
    return replies


class _SpawnTally:
    """Duck-typed stand-in for :class:`ReplySpawner` bookkeeping."""

    def __init__(self, spawned: int) -> None:
        self.spawned = spawned


def route_replies_fast(
    hosts: list[Packet],
    values: dict[int, object],
    packets: list[Packet],
    int_paths,
    *,
    budget: int,
    num_nodes: int,
    node_key: Callable[[int, int], object] | None = None,
    observer=None,
):
    """Run the reply fan-out on the compiled fast engine.

    Shared by the leveled and mesh emulators.  A reply's itinerary is
    its request's compiled integer path in reverse (up to the hop where
    the request stopped — delivery for hosts, absorption for combined
    children), so no trace keys are encoded or decoded.

    The whole combining forest is materialized up front: every absorbed
    request's reply, its padded reverse itinerary, and the *spawn plan*
    — a child reply activates when its parent reply first reaches the
    child's absorption node, which is a static property of the compiled
    paths (the first occurrence of the merge node on the parent's
    reverse path, exactly where :class:`ReplySpawner` would fire).  That
    keeps the entire reply phase on the engine's vectorized batch mode;
    replies whose trigger never fires (parent timed out) are excluded
    from the stats just as if they had never been spawned.

    ``int_paths`` is aligned with *packets* (the routed request
    population, combined children included); padded rows are fine
    because only the prefix up to ``packet.hops`` is read.

    Returns ``(stats, spawn_tally, root_replies)``.
    """
    index_of = {p.pid: i for i, p in enumerate(packets)}
    int_arr = np.asarray(int_paths, dtype=np.int64)

    def reply_factory(request: Packet, pid: int, payload) -> Packet:
        # Trace-free analogue of make_reply: the itinerary lives in the
        # engine's integer paths; state keeps the originating request.
        reply = Packet(
            pid,
            request.node,
            request.source,
            kind="reply",
            address=request.address,
            payload=payload,
        )
        reply.state = (None, 0, request)
        return reply

    # Breadth-first over the combining forest: roots in host order, then
    # every absorbed child's reply (children of one request stay in
    # absorption order, ReplySpawner's bucket order).
    all_replies: list[Packet] = []
    req_of: list[Packet] = []
    parent_reply: list[int] = []
    for i, host in enumerate(hosts):
        all_replies.append(reply_factory(host, i, values.get(host.pid)))
        req_of.append(host)
        parent_reply.append(-1)
    next_pid = 10_000_000
    qidx = 0
    while qidx < len(all_replies):
        for child in req_of[qidx].children or ():
            next_pid += 1
            all_replies.append(
                reply_factory(child, next_pid, all_replies[qidx].payload)
            )
            req_of.append(child)
            parent_reply.append(qidx)
        qidx += 1
    roots = all_replies[: len(hosts)]
    m = len(all_replies)

    rows = np.fromiter((index_of[r.pid] for r in req_of), dtype=np.int64, count=m)
    hops = np.fromiter((r.hops for r in req_of), dtype=np.int64, count=m)
    width = int(hops.max()) + 1
    rev = np.clip(hops[:, None] - np.arange(width), 0, None)
    reply_mat = int_arr[rows[:, None], rev]

    spawn_plan: list[tuple[int, int, list[int]]] = []
    if m > len(hosts):
        child_idx = np.arange(len(hosts), m)
        par = np.asarray(parent_reply[len(hosts) :], dtype=np.int64)
        merge_nodes = int_arr[rows[child_idx], hops[child_idx]]
        hit = reply_mat[par] == merge_nodes[:, None]
        hit &= np.arange(width)[None, :] <= hops[par][:, None]
        if not hit.any(axis=1).all():
            raise RuntimeError("merge node missing from a parent reply path")
        qpos = hit.argmax(axis=1)
        buckets: dict[tuple[int, int], list[int]] = {}
        for c, pr, q in zip(child_idx.tolist(), par.tolist(), qpos.tolist()):
            buckets.setdefault((pr, q), []).append(c)
        spawn_plan = [(pr, q, kids) for (pr, q), kids in buckets.items()]

    fast = FastPathEngine(observer=observer)
    stats = fast.run(
        all_replies,
        reply_mat,
        num_nodes=num_nodes,
        max_steps=budget,
        path_lengths=hops,
        spawn_plan=spawn_plan or None,
        node_key=node_key,
    )
    return stats, _SpawnTally(stats.total_packets - len(hosts)), roots
