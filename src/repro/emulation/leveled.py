"""PRAM emulation on leveled networks (§2.1, §2.4; Theorems 2.5 & 2.6).

The pipeline per PRAM step:

1. every request's address is hashed with the Karlin–Upfal h ∈ H to a
   memory module (a last-column row);
2. request packets are routed by the universal algorithm (Algorithm 2.1 /
   2.2 / 2.3 via :class:`LeveledRouter`), combining concurrent accesses in
   CRCW mode (Theorem 2.6);
3. modules perform the memory operations — reads see pre-step memory,
   write conflicts resolve per :class:`WritePolicy`;
4. read replies fan back out along the reversed request paths, splitting
   at the combining-tree merge points.

If the request phase misses its time allotment, a new hash function is
chosen and the step restarts — "if within the allotted time the
communication has not been completed, a designated processor chooses a new
hash function, and all the M memory locations are remapped" (§2.1).
Rehash events are counted; Lemma 2.2 predicts they are vanishingly rare.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.emulation.base import AttemptLog, Emulator, StepCost
from repro.emulation.combining import (
    ReplySpawner,
    build_replies,
    reply_next_hop,
    route_replies_fast,
)
from repro.faults import FaultState, RehashStormError
from repro.hashing.family import HashFamily, degree_for_diameter
from repro.obs import NULL_OBSERVER
from repro.pram.memory import SharedMemory
from repro.pram.trace import StepTrace
from repro.pram.variants import WritePolicy, resolve_writes
from repro.routing.engine import SynchronousEngine
from repro.routing.fast_engine import resolve_engine_mode
from repro.routing.flow_control import DeadlockError, resolve_flow_control
from repro.routing.leveled_router import LeveledRouter
from repro.routing.packet import Packet
from repro.topology.compiled import compile_leveled
from repro.topology.leveled import LeveledNetwork
from repro.util.rng import as_generator


class LeveledEmulator(Emulator):
    """Emulate a PRAM on a leveled network.

    Parameters
    ----------
    net:
        The emulating leveled network (star logical net, shuffle, d-ary
        butterfly, ...); processors are column-0 rows, memory modules are
        last-column rows.
    address_space:
        M — the emulated PRAM's shared-memory size.
    mode:
        "erew" routes requests without combining (Theorem 2.5);
        "crcw" enables combining + tree fan-out replies (Theorem 2.6).
    intermediate:
        Phase-1 flavor of the universal algorithm ("coin" = Algorithm 2.1,
        "node" = Algorithms 2.2/2.3).
    rehash_factor:
        Time allotment per routing phase, as a multiple of the 2L path
        length; exceeding it triggers a rehash.
    node_capacity / flow_control:
        Bounded per-node buffering for the *request* phase (reply
        fan-out runs unconstrained in both engines, mirroring the mesh
        emulator's CRCW reply contract); ``flow_control="credit"``
        enables the deadlock-free escape protocol of
        :mod:`repro.routing.flow_control`, and a wedged attempt
        (``DeadlockError``) is treated like a missed allotment: rehash
        and retry.  On the fast engine, capacity requests take the
        vectorized constrained-batch mode (batch credit accounting).
    engine:
        Routing simulator: "auto" (default; compiled fast path, see
        :mod:`repro.routing.fast_engine`), "fast", or "reference".  Both
        request and reply phases honour the choice and produce identical
        step costs under a fixed seed.
    """

    def __init__(
        self,
        net: LeveledNetwork,
        address_space: int,
        *,
        mode: Literal["erew", "crcw"] = "crcw",
        write_policy: WritePolicy = WritePolicy.ARBITRARY,
        combine_op: str = "sum",
        intermediate: Literal["coin", "node"] = "coin",
        hash_c: float = 1.0,
        rehash_factor: float = 8.0,
        max_rehashes: int = 8,
        node_capacity: int | None = None,
        flow_control: str = "none",
        seed=None,
        validate: bool = True,
        engine: str = "auto",
        faults=None,
        observer=None,
    ) -> None:
        if mode not in ("erew", "crcw"):
            raise ValueError(f"unknown mode {mode!r}")
        self.net = net
        self.mode = mode
        #: repro.obs observer forwarded to every router/engine this
        #: emulator builds; None stays a no-op (see Emulator.observer)
        self.observer = observer
        self.engine_mode = engine
        resolve_engine_mode(engine)  # validate eagerly
        self.write_policy = write_policy
        self.combine_op = combine_op
        self.intermediate = intermediate
        self.node_capacity = node_capacity
        self.flow_control = resolve_flow_control(
            flow_control, node_capacity=node_capacity
        )
        self.rehash_factor = rehash_factor
        self.max_rehashes = max_rehashes
        self.validate = validate
        self.rng = as_generator(seed)
        self.memory = SharedMemory(address_space)

        diameter = 2 * net.num_levels  # request path length in the network
        self.family = HashFamily(
            address_space, net.column_size, degree_for_diameter(diameter, hash_c)
        )
        self.hash = self.family.sample(self.rng)
        self.rehash_count = 0
        # Fault model: modules are last-column rows, processors are
        # column-0 rows.  Link specs are (col, u_row, v_row) wires.
        self.faults = FaultState(
            faults,
            num_modules=net.column_size,
            num_processors=net.column_size,
        )
        if self.faults.link_timeline is not None:
            for e in self.faults.schedule.link_events:
                c, u, v = e.target
                L, N = net.num_levels, net.column_size
                if not (0 <= c < L and 0 <= u < N and 0 <= v < N):
                    raise ValueError(f"link fault spec {e.target!r} out of range")
        #: global virtual-network clock: advanced by each emulated step's
        #: ``total_steps + stall_steps`` so the fault schedule is sampled
        #: on one continuous timeline across steps and phases
        self.virtual_clock = 0

    # ------------------------------------------------------------------
    @property
    def scale(self) -> float:
        """2L: one pass through the leveled structure each way."""
        return 2.0 * self.net.num_levels

    @property
    def n_processors(self) -> int:
        return self.net.column_size

    def rehash(self) -> None:
        """Draw a fresh hash function (the §2.1 recovery action)."""
        self.hash = self.family.sample(self.rng)
        self.rehash_count += 1

    def module_of(self, addr: int) -> int:
        """Module currently serving ``addr`` (dead modules remapped)."""
        return self.faults.map_module(int(self.hash(addr)))

    # ------------------------------------------------------------------
    def _build_request_packets(self, step: StepTrace) -> list[Packet]:
        # One vectorized hash evaluation covers the whole step: the
        # scalar PolynomialHash.__call__ is O(S) = O(L) per address, so
        # hashing per request used to cost O(requests * L) Python-level
        # Horner loops per attempt.
        addrs = [r.addr for r in step.reads]
        addrs += [w.addr for w in step.writes]
        if not addrs:
            return []
        module_arr = self.hash.map(np.asarray(addrs, dtype=np.int64))
        if self.faults.known_dead:
            # Addresses hashed to a detected-dead module are served by
            # its deterministic surrogate (next live module, cyclic) —
            # engine-independent, so differential runs stay identical.
            module_arr = self.faults.map_modules(module_arr)
        modules = module_arr.tolist()
        remap_procs = self.faults.has_processor_faults
        packets: list[Packet] = []
        pid = 0
        for r in step.reads:
            if r.pid >= self.n_processors:
                raise ValueError(
                    f"processor {r.pid} exceeds network size {self.n_processors}"
                )
            src = self.faults.map_processor(r.pid) if remap_procs else r.pid
            p = Packet(
                pid,
                (0, 0, src),
                int(modules[pid]),
                kind="read",
                address=r.addr,
            )
            packets.append(p)
            pid += 1
        for w in step.writes:
            if w.pid >= self.n_processors:
                raise ValueError(
                    f"processor {w.pid} exceeds network size {self.n_processors}"
                )
            src = self.faults.map_processor(w.pid) if remap_procs else w.pid
            p = Packet(
                pid,
                (0, 0, src),
                int(modules[pid]),
                kind="write",
                address=w.addr,
                payload=w.value,
            )
            packets.append(p)
            pid += 1
        return packets

    def _route_requests(self, step: StepTrace, mode: str):
        """Route the step's requests; rehash + retry on timeout.

        Traces are only recorded on the reference engine — the fast reply
        phase rebuilds reverse itineraries from the router's compiled
        integer paths instead.
        """
        L = self.net.num_levels
        # Allotment below the 2L path length guarantees timeouts; that is
        # intentional (tests force rehash storms this way).
        allotment = max(int(self.rehash_factor * 2 * L), 1)
        log = AttemptLog()

        # The fast engine only engages when trajectories are compilable
        # (node mode, or coin mode on a uniform-degree network); when the
        # router will fall back to the reference engine, traces must be
        # recorded because the reply phase then has no integer paths.
        fast_engages = mode == "fast" and (
            self.intermediate == "node" or self.net.uniform_out_degree
        )

        def make_router(fault_base: int):
            return LeveledRouter(
                self.net,
                intermediate=self.intermediate,
                seed=self.rng,
                combine=(self.mode == "crcw"),
                node_capacity=self.node_capacity,
                flow_control=self.flow_control,
                track_paths=not fast_engages,
                engine=mode,
                link_faults=self.faults.link_timeline,
                fault_base=fault_base,
                observer=self.observer,
            )

        obs = self.observer if self.observer is not None else NULL_OBSERVER
        for attempt in range(self.max_rehashes + 1):
            # Each attempt starts where the previous one gave up: failed
            # steps accumulate into the global fault timeline.
            fault_base = self.virtual_clock + log.stall_steps
            packets = self._prepare_attempt(step, fault_base, log)
            router = make_router(fault_base)
            wedged = False
            with obs.span(
                "route_attempt",
                category="request",
                virtual_clock=fault_base,
                attempt=attempt,
                requests=len(packets),
            ) as sp:
                try:
                    stats = router.route_packets(packets, max_steps=allotment)
                except DeadlockError as exc:
                    # A wedged attempt is just a failed attempt: a rehash
                    # redraws the trajectories.
                    stats = exc.stats
                    wedged = True
                sp.virtual_end = fault_base + stats.steps
            log.run_modes.append(stats.run_mode)
            log.fault_stalls += stats.fault_stalls
            if stats.completed:
                return router, packets, stats, log
            log.stall_steps += stats.steps
            if wedged:
                log.deadlock_retries += 1
            if attempt < self.max_rehashes:
                with obs.span(
                    "rehash",
                    category="recovery",
                    virtual_clock=self.virtual_clock + log.stall_steps,
                    attempt=attempt,
                    wedged=wedged,
                ):
                    self.rehash()
                log.rehashes += 1
                obs.count("emulator_rehashes_total", network="leveled")
                obs.record(
                    "rehash",
                    virtual_clock=self.virtual_clock + log.stall_steps,
                    attempt=attempt,
                    wedged=wedged,
                )
        # Last resort: generous budget so the emulation still terminates.
        fault_base = self.virtual_clock + log.stall_steps
        packets = self._prepare_attempt(step, fault_base, log)
        router = make_router(fault_base)
        with obs.span(
            "route_attempt",
            category="request",
            virtual_clock=fault_base,
            attempt=self.max_rehashes + 1,
            last_resort=True,
        ) as sp:
            stats = router.route_packets(packets, max_steps=400 * L + 1000)
            sp.virtual_end = fault_base + stats.steps
        log.run_modes.append(stats.run_mode)
        log.fault_stalls += stats.fault_stalls
        if not stats.completed:
            if self.faults.schedule:
                err = RehashStormError(
                    "request routing failed even after rehashes "
                    "(fault schedule active)",
                    rehashes=log.rehashes,
                    stall_steps=log.stall_steps + stats.steps,
                    deadlock_retries=log.deadlock_retries,
                    fault_failfasts=log.fault_failfasts,
                    run_modes=tuple(log.run_modes),
                )
                err.flight_tail = obs.flight_tail()
                raise err
            raise RuntimeError("request routing failed even after rehashes")
        return router, packets, stats, log

    # ------------------------------------------------------------------
    def emulate_step(self, step: StepTrace) -> StepCost:
        if self.mode == "erew" and not step.is_erew():
            raise ValueError(
                "EREW emulator given a step with concurrent accesses; "
                "use mode='crcw'"
            )

        mode = resolve_engine_mode(self.engine_mode)
        router, packets, req_stats, log = self._route_requests(step, mode)
        run_modes = log.run_modes
        hosts = [p for p in packets if not p.combined]

        # Memory semantics: reads see pre-step state, then writes land.
        read_hosts = [p for p in hosts if p.kind == "read"]
        values = {p.pid: self.memory.read(p.address) for p in read_hosts}
        write_hosts = [p for p in hosts if p.kind == "write"]
        by_addr: dict[int, list[tuple[int, object]]] = {}
        for host in write_hosts:
            for w in host.all_represented():
                # w.source == (0, 0, processor id); conflict resolution
                # must use the PRAM processor id, not the packet id.
                by_addr.setdefault(w.address, []).append((w.source[2], w.payload))
        for addr, writers in by_addr.items():
            self.memory.write(
                addr, resolve_writes(sorted(writers), self.write_policy, self.combine_op)
            )

        # Reply phase (reads only): reverse paths + combining-tree fan-out.
        reply_steps = 0
        max_queue = req_stats.max_queue
        credits_stalled = req_stats.credits_stalled
        obs = self.observer if self.observer is not None else NULL_OBSERVER
        if read_hosts:
            L = self.net.num_levels
            budget = int(self.rehash_factor * 4 * L) + 1000
            with obs.span(
                "reply_phase",
                category="reply",
                virtual_clock=self.virtual_clock + req_stats.steps,
                replies=len(read_hosts),
            ) as sp:
                if mode == "fast" and router.last_fast_paths is not None:
                    reply_stats, spawner, replies = self._route_replies_fast(
                        read_hosts, values, packets, router.last_fast_paths, budget
                    )
                else:
                    replies = build_replies(read_hosts, values)
                    spawner = ReplySpawner()
                    engine = SynchronousEngine(observer=self.observer)
                    reply_stats = engine.run(
                        replies,
                        reply_next_hop,
                        max_steps=budget,
                        on_arrival=spawner,
                    )
                sp.virtual_end = (
                    self.virtual_clock + req_stats.steps + reply_stats.steps
                )
            if not reply_stats.completed:
                raise RuntimeError("reply routing did not complete")
            reply_steps = reply_stats.steps
            max_queue = max(max_queue, reply_stats.max_queue)
            credits_stalled += reply_stats.credits_stalled
            run_modes.append(reply_stats.run_mode)
            if self.validate:
                self._check_replies(step, packets, spawner, replies)

        cost = StepCost(
            request_steps=req_stats.steps,
            reply_steps=reply_steps,
            rehashes=log.rehashes,
            combines=req_stats.combines,
            max_queue=max_queue,
            requests=step.num_requests,
            credits_stalled=credits_stalled,
            stall_steps=log.stall_steps,
            fault_stalls=log.fault_stalls,
            deadlock_retries=log.deadlock_retries,
            run_modes=tuple(run_modes),
        )
        self.virtual_clock += cost.total_steps + cost.stall_steps
        obs.count("pram_steps_total", network="leveled")
        obs.count("network_steps_total", cost.total_steps, network="leveled")
        obs.observe("step_total_steps", cost.total_steps, network="leveled")
        return cost

    def _route_replies_fast(self, hosts, values, packets, int_paths, budget: int):
        """Reply fan-out on the compiled fast engine (shared helper)."""
        compiled = compile_leveled(self.net)
        return route_replies_fast(
            hosts,
            values,
            packets,
            int_paths,
            budget=budget,
            num_nodes=compiled.num_node_ids,
            node_key=compiled.reply_key,
            observer=self.observer,
        )

    def _check_replies(self, step, packets, spawner, root_replies) -> None:
        """Every read request must have produced a correctly-valued reply."""
        n_reads = len(step.reads)
        total_replies = len(root_replies) + spawner.spawned
        if total_replies != n_reads:
            raise AssertionError(
                f"{n_reads} reads but {total_replies} replies delivered"
            )
