"""Replay real PRAM programs on network emulators, end to end.

This is the full pipeline the paper promises: write a PRAM algorithm once,
run it on the abstract machine, and execute the *same* computation on a
physical network at Õ(diameter) cost per step — with bit-identical memory
results.  ``replay_program`` runs a :class:`ProgramSpec` natively to get
the reference trace and final memory, replays the trace on the chosen
emulator (seeded identically for memory semantics), and checks the two
executions agree cell by cell.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.emulation.base import EmulationReport, Emulator
from repro.obs import NULL_OBSERVER
from repro.pram.machine import PRAM
from repro.pram.programs import ProgramSpec
from repro.pram.variants import AccessMode


@dataclass
class ReplayResult:
    """Outcome of an emulated program execution."""

    report: EmulationReport
    pram: PRAM
    memory_matches: bool
    cells_checked: int

    @property
    def slowdown(self) -> float:
        """Mean network steps per PRAM step (the emulation cost)."""
        return self.report.mean_step_time


def configure_emulator_for(spec: ProgramSpec, emulator: Emulator) -> None:
    """Align the emulator's write semantics and memory with the program.

    Works on a :class:`~repro.sharding.ShardedEmulator` too: write
    semantics are pushed to every shard (the front end itself never
    resolves writes) and init values route through the sharded memory
    facade to their owning shards.
    """
    targets = getattr(emulator, "shards", None) or [emulator]
    for target in targets:
        target.write_policy = spec.write_policy
        target.combine_op = spec.combine_op
    if spec.mode is not AccessMode.EREW and getattr(emulator, "mode", None) == "erew":
        raise ValueError(
            f"{spec.name} needs concurrent access; build the emulator with "
            "mode='crcw'"
        )
    for addr, value in spec.init.items():
        emulator.memory.write(int(addr), value)


def replay_program(
    spec: ProgramSpec,
    emulator: Emulator,
    *,
    max_steps: int = 100_000,
) -> ReplayResult:
    """Run *spec* natively, replay its trace on *emulator*, verify memory.

    The emulator must span at least ``spec.n_procs`` processors and
    ``spec.memory_size`` addresses.
    """
    n_available = getattr(emulator, "n_processors", None)
    if n_available is None:
        n_available = emulator.mesh.num_nodes  # MeshEmulator
    if spec.n_procs > n_available:
        raise ValueError(
            f"{spec.name} needs {spec.n_procs} processors; the network has "
            f"{n_available}"
        )
    if spec.memory_size > emulator.memory.size:
        raise ValueError(
            f"{spec.name} needs {spec.memory_size} cells; the emulator has "
            f"{emulator.memory.size}"
        )

    obs = getattr(emulator, "observer", None)
    if obs is None:
        obs = NULL_OBSERVER
    with obs.span("native_run", category="app", program=spec.name):
        pram = spec.run(max_steps=max_steps)  # native reference (also verifies)
    configure_emulator_for(spec, emulator)
    with obs.span(
        "emulate_trace",
        category="app",
        virtual_clock=getattr(emulator, "virtual_clock", None),
        program=spec.name,
        pram_steps=len(pram.trace.steps),
    ) as sp:
        report = emulator.emulate_trace(pram.trace)
        sp.virtual_end = getattr(emulator, "virtual_clock", None)

    with obs.span("verify_memory", category="app", program=spec.name):
        matches = True
        for addr in range(spec.memory_size):
            if emulator.memory.read(addr) != pram.memory.read(addr):
                matches = False
                break
    return ReplayResult(
        report=report,
        pram=pram,
        memory_matches=matches,
        cells_checked=spec.memory_size,
    )
