"""A Ranade-style butterfly emulation baseline ([13], §1, §3).

Ranade's algorithm routes PRAM requests through a butterfly with
*sorted merge forwarding*: every node holds one FIFO per input link and
may only forward the smallest-keyed packet — and only once **all** of its
input streams are "ready" (nonempty, or closed by an end-of-stream
marker).  Equal-key packets combine when their stream heads meet.  This
conservative synchronization is what guarantees Ranade's O(log N) bound
with FIFO queues, and it is also why the hidden constant is large: nodes
spend most steps stalled waiting for slower input streams, and the step
serves request + reply passes.

The paper's point (§1, §3): applied to a mesh this machinery gives O(n)
with a constant around 100, so a direct 4n + o(n) algorithm wins by a
wide margin.  We reproduce the *mechanism* on its native butterfly and
compare normalized constants (time / diameter) against the paper's
emulators; see EXPERIMENTS.md (E10) for the substitution notes.

Only EREW traces are measured through this baseline (combining still
works, but reply fan-out for hot spots is not modeled here).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Sequence

from repro.emulation.base import Emulator, StepCost
from repro.hashing.family import HashFamily
from repro.pram.memory import SharedMemory
from repro.pram.trace import StepTrace
from repro.pram.variants import WritePolicy, resolve_writes
from repro.util.rng import as_generator

_EOS = object()  # end-of-stream marker


class _MergePacket:
    __slots__ = ("key", "dest_row", "payload", "merged", "delivered_at")

    def __init__(self, key, dest_row: int, payload) -> None:
        self.key = key
        self.dest_row = dest_row
        self.payload = payload
        self.merged: list["_MergePacket"] = []
        self.delivered_at: int | None = None


class RanadeEmulator(Emulator):
    """Merge-forwarding butterfly emulation of an EREW PRAM."""

    def __init__(
        self,
        k: int,
        address_space: int,
        *,
        buffer_size: int = 2,
        write_policy: WritePolicy = WritePolicy.ARBITRARY,
        combine_op: str = "sum",
        seed=None,
        max_pass_steps: int | None = None,
    ) -> None:
        if k < 1:
            raise ValueError("butterfly order k must be >= 1")
        if buffer_size < 1:
            raise ValueError("buffer_size must be >= 1")
        self.k = k
        self.rows = 1 << k
        self.buffer_size = buffer_size
        self.write_policy = write_policy
        self.combine_op = combine_op
        self.rng = as_generator(seed)
        self.memory = SharedMemory(address_space)
        self.family = HashFamily(address_space, self.rows, max(2, k))
        self.hash = self.family.sample(self.rng)
        self.max_pass_steps = max_pass_steps or (4000 * k + 4000)

    @property
    def scale(self) -> float:
        """2k: a request pass plus a reply pass through the butterfly."""
        return 2.0 * self.k

    @property
    def n_processors(self) -> int:
        return self.rows

    # ------------------------------------------------------------------
    def _merge_pass(
        self,
        injections: dict[int, list[_MergePacket]],
        bit_at_stage: Callable[[int], int],
    ) -> int:
        """Run one sorted-merge pass through k stages; returns step count.

        ``injections[row]`` is that first-stage node's (pre-sorted) stream.
        Each stage-s node (s, r) forwards toward stage s+1, rewriting bit
        ``bit_at_stage(s)`` of the row to the packet destination's bit.

        Ranade's *ghost* mechanism is modeled as per-port key watermarks:
        an empty input port does not block the merge once its upstream has
        promised (via a ghost) that no key below the candidate will ever
        arrive on it.  Ghosts and EOS markers travel regardless of buffer
        capacity; real packets respect ``buffer_size``.
        """
        k, rows, cap = self.k, self.rows, self.buffer_size
        INF = (float("inf"),)
        NEG = (float("-inf"),)

        def in_ports(s: int, r: int) -> list[int]:
            b = 1 << bit_at_stage(s - 1)
            return sorted({r, r ^ b})

        buffers: dict[tuple[int, int], dict[int, deque]] = {}
        # watermark[(s, r, port)]: lower bound on all future keys from port
        watermark: dict[tuple[int, int, int], tuple] = {}
        total = 0
        for r in range(rows):
            stream = sorted(injections.get(r, []), key=lambda p: p.key)
            buffers[(0, r)] = {-1: deque(stream)}
            watermark[(0, r, -1)] = INF  # injection stream is complete
            total += len(stream)
        for s in range(1, k + 1):
            for r in range(rows):
                buffers[(s, r)] = {port: deque() for port in in_ports(s, r)}
                for port in in_ports(s, r):
                    watermark[(s, r, port)] = NEG

        delivered = 0
        t = 0

        def tree_size(p: _MergePacket) -> int:
            return 1 + sum(tree_size(m) for m in p.merged)

        while delivered < total:
            if t >= self.max_pass_steps:
                raise RuntimeError(
                    f"Ranade pass exceeded {self.max_pass_steps} steps "
                    f"({delivered}/{total} delivered)"
                )
            # per-port occupancy snapshot: a full sibling port must never
            # block the (smaller-key) packet another port is waiting for
            occupancy = {
                (node, port): len(q)
                for node, ports in buffers.items()
                for port, q in ports.items()
            }
            moves: list[tuple[_MergePacket, tuple[int, int], int]] = []
            ghost_moves: list[tuple[tuple[int, int], int, tuple]] = []
            for s in range(k):
                b = 1 << bit_at_stage(s)
                for r in range(rows):
                    node = (s, r)
                    ports = buffers[node]
                    # the strongest promise this node can make downstream:
                    # min over ports of (head key | watermark when empty)
                    bounds = [
                        q[0].key if q else watermark[(s, r, port)]
                        for port, q in ports.items()
                    ]
                    promise = min(bounds)
                    emitted = False
                    nonempty = [(q[0].key, port) for port, q in ports.items() if q]
                    if nonempty and min(nonempty)[0] == promise:
                        key, port = min(nonempty)
                        pkt = ports[port][0]
                        nxt_r = (r & ~b) | (pkt.dest_row & b)
                        target = (s + 1, nxt_r)
                        if s + 1 > k - 1 or occupancy[(target, r)] < cap:
                            ports[port].popleft()
                            for op, q in ports.items():
                                if op != port and q and q[0].key == pkt.key:
                                    pkt.merged.append(q.popleft())
                            moves.append((pkt, target, r))
                            # the emitted key is also a promise to BOTH
                            # successors (the ghost to the other side)
                            for nr in (r, r ^ b):
                                ghost_moves.append(((s + 1, nr), r, key))
                            emitted = True
                    if not emitted:
                        # stalled or drained: propagate the promise as a
                        # ghost (EOS when promise is INF and queues empty)
                        for nr in (r, r ^ b):
                            ghost_moves.append(((s + 1, nr), r, promise))
            t += 1
            for pkt, target, from_row in moves:
                s_t, _r_t = target
                if s_t == k:
                    pkt.delivered_at = t
                    delivered += tree_size(pkt)
                    for m in pkt.merged:
                        m.delivered_at = t
                else:
                    buffers[target][from_row].append(pkt)
            for target, from_row, key in ghost_moves:
                s_t, r_t = target
                if s_t <= k - 1:
                    wkey = (s_t, r_t, from_row)
                    if watermark[wkey] < key:
                        watermark[wkey] = key
        return t

    # ------------------------------------------------------------------
    def emulate_step(self, step: StepTrace) -> StepCost:
        if not step.is_erew():
            raise ValueError("the Ranade baseline is measured on EREW traces")

        # Forward pass: requests keyed by (module row, address).
        injections: dict[int, list[_MergePacket]] = {}
        reads = []
        writes = []
        for r in step.reads:
            module = int(self.hash(r.addr))
            pkt = _MergePacket((module, r.addr, "r"), module, (r.pid, r.addr, None))
            injections.setdefault(r.pid % self.rows, []).append(pkt)
            reads.append(pkt)
        for w in step.writes:
            module = int(self.hash(w.addr))
            pkt = _MergePacket((module, w.addr, "w"), module, (w.pid, w.addr, w.value))
            injections.setdefault(w.pid % self.rows, []).append(pkt)
            writes.append(pkt)

        request_steps = self._merge_pass(injections, lambda s: s)

        # Memory operations.
        read_values = {}
        for pkt in reads:
            pid, addr, _ = pkt.payload
            read_values[id(pkt)] = self.memory.read(addr)
        by_addr: dict[int, list[tuple[int, object]]] = {}
        for pkt in writes:
            pid, addr, val = pkt.payload
            by_addr.setdefault(addr, []).append((pid, val))
        for addr, writers in by_addr.items():
            self.memory.write(
                addr,
                resolve_writes(sorted(writers), self.write_policy, self.combine_op),
            )

        # Reply pass (reads only): mirrored butterfly, keyed by requester.
        reply_steps = 0
        if reads:
            reply_inj: dict[int, list[_MergePacket]] = {}
            for pkt in reads:
                pid, addr, _ = pkt.payload
                module = pkt.dest_row
                reply = _MergePacket(
                    (pid % self.rows, addr, "v"),
                    pid % self.rows,
                    read_values[id(pkt)],
                )
                reply_inj.setdefault(module, []).append(reply)
            reply_steps = self._merge_pass(
                reply_inj, lambda s: self.k - 1 - s
            )

        return StepCost(
            request_steps=request_steps,
            reply_steps=reply_steps,
            rehashes=0,
            combines=0,
            max_queue=self.buffer_size,
            requests=step.num_requests,
        )
