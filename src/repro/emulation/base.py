"""Emulator interfaces and reports (§2.4, §3.3).

One PRAM instruction is emulated as: hash the touched addresses to
modules, route request packets, perform the memory operations, route read
replies back.  An :class:`EmulationReport` records the network cost of
every emulated step so experiments can check the paper's bounds
(Theorems 2.5/2.6: Õ(ℓ); Theorem 3.2: 4n + o(n); Theorem 3.3: 6δ + o(δ)).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Sequence

from repro.pram.trace import MemoryTrace, StepTrace
from repro.util.stats import Summary, summarize


@dataclass
class StepCost:
    """Network cost of emulating one PRAM step."""

    request_steps: int
    reply_steps: int
    rehashes: int = 0
    combines: int = 0
    max_queue: int = 0
    requests: int = 0
    #: credit-flow-control stalls summed over the step's routing phases
    #: (zero unless ``flow_control="credit"``); the traffic subsystem
    #: turns these into a per-epoch time series
    credits_stalled: int = 0
    #: engine execution mode of every routing run performed for this
    #: step, in order: each request attempt (rehash retries included)
    #: followed by the reply phase.  Values are
    #: :attr:`repro.routing.metrics.RoutingStats.run_mode` strings;
    #: online runs assert on these that rectangular epochs never fall
    #: back to the per-event loop.
    run_modes: tuple[str, ...] = ()

    @property
    def total_steps(self) -> int:
        return self.request_steps + self.reply_steps


@dataclass
class EmulationReport:
    """Aggregate outcome of emulating a trace."""

    costs: list[StepCost] = field(default_factory=list)
    #: reference scale (network diameter or mesh side) for normalization
    scale: float = 1.0

    def add(self, cost: StepCost) -> None:
        self.costs.append(cost)

    @property
    def pram_steps(self) -> int:
        return len(self.costs)

    @property
    def total_network_steps(self) -> int:
        return sum(c.total_steps for c in self.costs)

    @property
    def total_rehashes(self) -> int:
        return sum(c.rehashes for c in self.costs)

    @property
    def total_combines(self) -> int:
        return sum(c.combines for c in self.costs)

    @property
    def max_queue(self) -> int:
        return max((c.max_queue for c in self.costs), default=0)

    @property
    def mean_step_time(self) -> float:
        if not self.costs:
            return 0.0
        return self.total_network_steps / len(self.costs)

    @property
    def max_step_time(self) -> int:
        return max((c.total_steps for c in self.costs), default=0)

    def normalized_step_times(self) -> list[float]:
        """Per-step total time divided by the reference scale — the
        quantity the theorems bound by a constant."""
        return [c.total_steps / self.scale for c in self.costs]

    def step_time_summary(self) -> Summary:
        return summarize(c.total_steps for c in self.costs)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EmulationReport(steps={self.pram_steps}, "
            f"mean={self.mean_step_time:.1f}, max={self.max_step_time}, "
            f"scale={self.scale}, rehashes={self.total_rehashes})"
        )


class Emulator(ABC):
    """A machine that executes PRAM memory traces on a network."""

    @abstractmethod
    def emulate_step(self, step: StepTrace) -> StepCost:
        """Emulate one PRAM instruction; returns its network cost."""

    @property
    @abstractmethod
    def scale(self) -> float:
        """Normalization scale (diameter-like) for the report."""

    def emulate_trace(self, trace: MemoryTrace | Sequence[StepTrace]) -> EmulationReport:
        report = EmulationReport(scale=self.scale)
        steps = trace.steps if isinstance(trace, MemoryTrace) else list(trace)
        for step in steps:
            if step.num_requests == 0:
                report.add(StepCost(0, 0))
                continue
            report.add(self.emulate_step(step))
        return report
