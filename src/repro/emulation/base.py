"""Emulator interfaces and reports (§2.4, §3.3).

One PRAM instruction is emulated as: hash the touched addresses to
modules, route request packets, perform the memory operations, route read
replies back.  An :class:`EmulationReport` records the network cost of
every emulated step so experiments can check the paper's bounds
(Theorems 2.5/2.6: Õ(ℓ); Theorem 3.2: 4n + o(n); Theorem 3.3: 6δ + o(δ)).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass, field
from typing import Sequence

from repro.faults import RehashStormError
from repro.pram.trace import MemoryTrace, StepTrace
from repro.util.stats import Summary, summarize


@dataclass
class StepCost:
    """Network cost of emulating one PRAM step."""

    request_steps: int
    reply_steps: int
    rehashes: int = 0
    combines: int = 0
    max_queue: int = 0
    requests: int = 0
    #: credit-flow-control stalls summed over the step's routing phases
    #: (zero unless ``flow_control="credit"``); the traffic subsystem
    #: turns these into a per-epoch time series
    credits_stalled: int = 0
    #: network steps burned by *failed* request attempts (missed
    #: allotments, wedged credit runs, fault-stalled timeouts) before
    #: the attempt that succeeded.  Excluded from ``total_steps`` so
    #: existing bounds checks keep measuring the successful phases; the
    #: traffic driver advances its virtual clock by
    #: ``total_steps + stall_steps`` so retries consume real time.
    stall_steps: int = 0
    #: link-fault transmission stalls summed over the step's routing
    #: phases (see :attr:`repro.routing.metrics.RoutingStats.fault_stalls`)
    fault_stalls: int = 0
    #: failed attempts that ended in a credit-flow-control
    #: :class:`~repro.routing.flow_control.DeadlockError` (each one was
    #: rehashed and retried)
    deadlock_retries: int = 0
    #: engine execution mode of every routing run performed for this
    #: step, in order: each request attempt (rehash retries included)
    #: followed by the reply phase.  Values are
    #: :attr:`repro.routing.metrics.RoutingStats.run_mode` strings;
    #: online runs assert on these that rectangular epochs never fall
    #: back to the per-event loop.
    run_modes: tuple[str, ...] = ()

    @property
    def total_steps(self) -> int:
        return self.request_steps + self.reply_steps


@dataclass
class AttemptLog:
    """Accounting across one step's request-phase attempts.

    Both emulators thread one of these through their rehash/retry loops
    so the fault bookkeeping (failed-attempt steps, fault stalls,
    deadlock retries, fail-fast detections) lands in the
    :class:`StepCost` identically on either network.
    """

    rehashes: int = 0
    stall_steps: int = 0
    fault_stalls: int = 0
    deadlock_retries: int = 0
    fault_failfasts: int = 0
    run_modes: list[str] = field(default_factory=list)


@dataclass
class EmulationReport:
    """Aggregate outcome of emulating a trace."""

    costs: list[StepCost] = field(default_factory=list)
    #: reference scale (network diameter or mesh side) for normalization
    scale: float = 1.0

    def add(self, cost: StepCost) -> None:
        self.costs.append(cost)

    @property
    def pram_steps(self) -> int:
        return len(self.costs)

    @property
    def total_network_steps(self) -> int:
        return sum(c.total_steps for c in self.costs)

    @property
    def total_rehashes(self) -> int:
        return sum(c.rehashes for c in self.costs)

    @property
    def total_combines(self) -> int:
        return sum(c.combines for c in self.costs)

    @property
    def total_stall_steps(self) -> int:
        return sum(c.stall_steps for c in self.costs)

    @property
    def total_fault_stalls(self) -> int:
        return sum(c.fault_stalls for c in self.costs)

    @property
    def total_deadlock_retries(self) -> int:
        return sum(c.deadlock_retries for c in self.costs)

    @property
    def max_queue(self) -> int:
        return max((c.max_queue for c in self.costs), default=0)

    @property
    def mean_step_time(self) -> float:
        if not self.costs:
            return 0.0
        return self.total_network_steps / len(self.costs)

    @property
    def max_step_time(self) -> int:
        return max((c.total_steps for c in self.costs), default=0)

    def normalized_step_times(self) -> list[float]:
        """Per-step total time divided by the reference scale — the
        quantity the theorems bound by a constant."""
        return [c.total_steps / self.scale for c in self.costs]

    def step_time_summary(self) -> Summary:
        return summarize(c.total_steps for c in self.costs)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EmulationReport(steps={self.pram_steps}, "
            f"mean={self.mean_step_time:.1f}, max={self.max_step_time}, "
            f"scale={self.scale}, rehashes={self.total_rehashes})"
        )


class Emulator(ABC):
    """A machine that executes PRAM memory traces on a network.

    Emulators are *cheap, picklable, independently steppable* instances:
    all state lives on the instance (no module-level caches), so a
    mid-run emulator round-trips through ``pickle`` and continues
    bit-identically — the contract the sharding layer
    (:mod:`repro.sharding`) relies on to move shards into worker
    processes.  Besides the one-shot :meth:`emulate_step`, every
    emulator exposes a small queued-work API: :meth:`submit` parks step
    traces in an inbox, :meth:`step` serves exactly one of them, and
    :meth:`drain` serves the rest — which is what lets a scatter/gather
    front end step N shards independently.

    Concrete emulators may be built with an
    :class:`~repro.obs.Observer`; the class-level ``observer = None``
    default keeps old pickles (and observer-less subclasses) loading.
    """

    #: optional repro.obs observer (metrics/tracing/profiling/flight
    #: recorder); forwarded to routers and engines by the subclasses
    observer = None

    @abstractmethod
    def emulate_step(self, step: StepTrace) -> StepCost:
        """Emulate one PRAM instruction; returns its network cost."""

    # ---- queued-work API (submit / step / drain) ----------------------
    @property
    def inbox(self) -> deque:
        """Step traces submitted but not yet served (FIFO)."""
        # Created lazily so every Emulator subclass gets the queued-work
        # API without having to call a base __init__ (and old pickles
        # without the attribute keep loading).
        box = getattr(self, "_inbox", None)
        if box is None:
            box = self._inbox = deque()
        return box

    @property
    def pending(self) -> int:
        """Submitted step traces waiting to be served."""
        return len(self.inbox)

    def submit(self, step: StepTrace) -> None:
        """Queue one step trace for a later :meth:`step` / :meth:`drain`."""
        self.inbox.append(step)

    def step(self) -> StepCost | None:
        """Serve the oldest submitted step trace; ``None`` when idle.

        One call emulates exactly one PRAM step, so a coordinator can
        interleave many emulators at step granularity (the sharding
        front end steps every shard once per gather barrier).
        """
        if not self.inbox:
            return None
        return self.emulate_step(self.inbox.popleft())

    def drain(self) -> list[StepCost]:
        """Serve every queued step trace, in submission order."""
        costs: list[StepCost] = []
        while self.inbox:
            costs.append(self.emulate_step(self.inbox.popleft()))
        return costs

    def _prepare_attempt(
        self, step: StepTrace, fault_base: int, log: AttemptLog, *, rehash=True
    ) -> list:
        """Liveness refresh + fail-fast detection before one routing
        attempt (shared by the concrete emulators, which provide
        ``faults``/``rehash``/``max_rehashes``/``_build_request_packets``).

        Revives become visible, then any request aimed at an
        *undetected* dead module fails fast — the module's home switch
        NACKs, costing zero network steps — and the emulator
        acknowledges the kill and (with hashed placement) rehashes, the
        §2.1 recovery path.  Loops because a surrogate can itself be
        undetected-dead; the storm guard bounds kill/revive flapping.
        """
        faults = self.faults
        if faults.has_module_faults:
            faults.refresh(fault_base)
        packets = self._build_request_packets(step)
        while faults.has_module_faults:
            dead = faults.undetected_dead(fault_base)
            if not dead or not any(p.dest in dead for p in packets):
                break
            faults.acknowledge(fault_base)
            if rehash:
                self.rehash()
                log.rehashes += 1
            log.fault_failfasts += 1
            log.run_modes.append("fault-failfast")
            if log.fault_failfasts > self.max_rehashes + faults.num_modules:
                err = RehashStormError(
                    "fault detections keep forcing rehashes",
                    rehashes=log.rehashes,
                    stall_steps=log.stall_steps,
                    deadlock_retries=log.deadlock_retries,
                    fault_failfasts=log.fault_failfasts,
                    run_modes=tuple(log.run_modes),
                )
                if self.observer is not None:
                    err.flight_tail = self.observer.flight_tail()
                raise err
            packets = self._build_request_packets(step)
        return packets

    @property
    @abstractmethod
    def scale(self) -> float:
        """Normalization scale (diameter-like) for the report."""

    def emulate_trace(self, trace: MemoryTrace | Sequence[StepTrace]) -> EmulationReport:
        report = EmulationReport(scale=self.scale)
        steps = trace.steps if isinstance(trace, MemoryTrace) else list(trace)
        for step in steps:
            if step.num_requests == 0:
                report.add(StepCost(0, 0))
                continue
            report.add(self.emulate_step(step))
        return report
