"""PRAM emulation on the n x n mesh (§3.3; Theorems 3.2 & 3.3).

Our algorithm has exactly two routing phases (the paper's improvement over
Karlin–Upfal's four):

1. processor (i, j) sends its request straight to module h(addr);
2. for reads, the module sends the value straight back.

Each phase is one run of the 3-stage randomized mesh router (Theorem 3.1:
2n + o(n)), so a full EREW step costs 4n + o(n) (Theorem 3.2).

Locality (Theorem 3.3): with *direct placement* (address a lives at node
a) and every request within Manhattan distance δ of its target, the same
algorithm — with the stage-1 random offset confined to an o(δ) slice —
finishes in 6δ + o(δ) steps.  Hashed placement would destroy locality, so
the locality mode switches placement to direct, exactly as the paper's
statement presumes requests "originate within a distance d of the
location of the memory".

``engine="auto" | "fast" | "reference"`` selects the routing simulator
for every phase — requests, EREW reply re-routing, and CRCW reverse-path
reply fan-out (rebuilt from the router's compiled integer trajectories
on the fast path) — with identical step costs under a fixed seed.
"""

from __future__ import annotations

import math
from typing import Literal

import numpy as np

from repro.emulation.base import AttemptLog, Emulator, StepCost
from repro.emulation.combining import (
    ReplySpawner,
    build_replies,
    reply_next_hop,
    route_replies_fast,
)
from repro.faults import FaultState, RehashStormError
from repro.hashing.family import HashFamily, degree_for_diameter
from repro.obs import NULL_OBSERVER
from repro.pram.memory import SharedMemory
from repro.pram.trace import StepTrace
from repro.pram.variants import WritePolicy, resolve_writes
from repro.routing.engine import SynchronousEngine
from repro.routing.fast_engine import resolve_engine_mode
from repro.routing.flow_control import DeadlockError, resolve_flow_control
from repro.routing.mesh_router import MeshRouter
from repro.routing.packet import Packet
from repro.topology.mesh import Mesh2D
from repro.util.rng import as_generator


def locality_slice_rows(delta: int) -> int:
    """An o(δ) slice height for the locality mode: δ / log₂(δ+2)."""
    return max(1, round(delta / math.log2(delta + 2)))


class MeshEmulator(Emulator):
    """Two-phase PRAM emulation on a mesh-connected computer.

    Parameters
    ----------
    mode:
        ``"erew"`` (exclusive accesses, Theorem 3.2) or ``"crcw"``
        (combining + reply fan-out along the merge trees).
    write_policy / combine_op:
        Concurrent-write resolution (CRCW variants).
    placement:
        ``"hash"`` (Karlin–Upfal hashed memory, the default) or
        ``"direct"`` (address a lives at node a — the locality mode of
        Theorem 3.3, see :func:`locality_slice_rows`).
    slice_rows:
        Stage-0 slice height forwarded to the router.
    hash_c / rehash_factor / max_rehashes:
        Hash-family degree scaling and the §2.1 rehash-on-timeout loop.
    node_capacity:
        Per-node buffer bound for the *request* phase (EREW replies
        too; CRCW reply fan-out always runs unconstrained in both
        engines).  On the fast engine, capacity requests take the
        vectorized constrained-batch mode.
    flow_control:
        ``"none"`` or ``"credit"`` (requires ``node_capacity``): the
        deadlock-free escape protocol; a wedged attempt is treated as a
        failed attempt and rehashed.
    engine:
        ``"auto"`` (default), ``"fast"``, or ``"reference"`` for every
        routing phase; identical step costs under a fixed seed.
    """

    def __init__(
        self,
        mesh: Mesh2D,
        address_space: int,
        *,
        mode: Literal["erew", "crcw"] = "erew",
        write_policy: WritePolicy = WritePolicy.ARBITRARY,
        combine_op: str = "sum",
        placement: Literal["hash", "direct"] = "hash",
        slice_rows: int | None = None,
        hash_c: float = 1.0,
        rehash_factor: float = 8.0,
        max_rehashes: int = 8,
        node_capacity: int | None = None,
        flow_control: str = "none",
        seed=None,
        validate: bool = True,
        engine: str = "auto",
        faults=None,
        observer=None,
    ) -> None:
        if mode not in ("erew", "crcw"):
            raise ValueError(f"unknown mode {mode!r}")
        if placement not in ("hash", "direct"):
            raise ValueError(f"unknown placement {placement!r}")
        self.mesh = mesh
        self.mode = mode
        #: repro.obs observer forwarded to every router/engine this
        #: emulator builds; None stays a no-op (see Emulator.observer)
        self.observer = observer
        self.engine_mode = engine
        resolve_engine_mode(engine)  # validate eagerly
        self.write_policy = write_policy
        self.combine_op = combine_op
        self.placement = placement
        self.slice_rows = slice_rows
        self.rehash_factor = rehash_factor
        self.max_rehashes = max_rehashes
        self.node_capacity = node_capacity
        self.flow_control = resolve_flow_control(
            flow_control, node_capacity=node_capacity
        )
        self.validate = validate
        self.rng = as_generator(seed)
        self.memory = SharedMemory(address_space)

        n = mesh.num_nodes
        if placement == "direct" and address_space > n:
            raise ValueError(
                "direct placement needs address_space <= number of nodes"
            )
        self.family = HashFamily(
            address_space, n, degree_for_diameter(mesh.diameter, hash_c)
        )
        self.hash = self.family.sample(self.rng)
        self.rehash_count = 0
        # Fault model: every mesh node is both a processor and a memory
        # module, so both id spaces are [0, num_nodes).  Link specs are
        # (u, v) packed-node-id pairs and must be mesh edges.
        self.faults = FaultState(faults, num_modules=n, num_processors=n)
        if self.faults.link_timeline is not None:
            for e in self.faults.schedule.link_events:
                u, v = e.target
                if not (0 <= u < n and 0 <= v < n):
                    raise ValueError(f"link fault spec {e.target!r} out of range")
                ur, uc = mesh.unpack(u)
                vr, vc = mesh.unpack(v)
                if abs(ur - vr) + abs(uc - vc) != 1:
                    raise ValueError(
                        f"link fault spec {e.target!r} is not a mesh edge"
                    )
        #: global virtual-network clock: advanced by each emulated step's
        #: ``total_steps + stall_steps`` so the fault schedule is sampled
        #: on one continuous timeline across steps and phases
        self.virtual_clock = 0

    # ------------------------------------------------------------------
    @property
    def scale(self) -> float:
        """n (the mesh side): Theorem 3.2's bound is 4n + o(n)."""
        return float(self.mesh.rows)

    def module_of(self, addr: int) -> int:
        """Module currently serving ``addr`` (dead modules remapped)."""
        home = addr if self.placement == "direct" else int(self.hash(addr))
        return self.faults.map_module(home)

    def rehash(self) -> None:
        self.hash = self.family.sample(self.rng)
        self.rehash_count += 1

    def _make_router(self, engine_mode: str, fault_base: int = 0) -> MeshRouter:
        # Traces are only recorded on the reference engine — the fast
        # CRCW reply phase rebuilds reverse itineraries from the router's
        # compiled integer paths instead.
        return MeshRouter(
            self.mesh,
            seed=self.rng,
            slice_rows=self.slice_rows,
            node_capacity=self.node_capacity,
            flow_control=self.flow_control,
            track_paths=(self.mode == "crcw" and engine_mode == "reference"),
            combine=(self.mode == "crcw"),
            engine=engine_mode,
            link_faults=self.faults.link_timeline,
            fault_base=fault_base,
            observer=self.observer,
        )

    # ------------------------------------------------------------------
    def _build_request_packets(self, step: StepTrace) -> list[Packet]:
        # One vectorized hash evaluation covers the whole step: the
        # scalar PolynomialHash.__call__ is O(S) per address, so hashing
        # per request used to cost O(requests * S) Python-level Horner
        # loops per attempt.
        addrs = [r.addr for r in step.reads]
        addrs += [w.addr for w in step.writes]
        if not addrs:
            return []
        if self.placement == "direct":
            module_arr = np.asarray(addrs, dtype=np.int64)
        else:
            module_arr = self.hash.map(np.asarray(addrs, dtype=np.int64))
        if self.faults.known_dead:
            # Addresses homed on a detected-dead module are served by
            # its deterministic surrogate (next live module, cyclic) —
            # engine-independent, so differential runs stay identical.
            module_arr = self.faults.map_modules(module_arr)
        modules = module_arr.tolist()
        remap_procs = self.faults.has_processor_faults
        packets: list[Packet] = []
        pid = 0
        n = self.mesh.num_nodes
        for r in step.reads:
            if r.pid >= n:
                raise ValueError(f"processor {r.pid} exceeds mesh size {n}")
            src = self.faults.map_processor(r.pid) if remap_procs else r.pid
            packets.append(
                Packet(
                    pid, src, int(modules[pid]), kind="read", address=r.addr
                )
            )
            pid += 1
        for w in step.writes:
            if w.pid >= n:
                raise ValueError(f"processor {w.pid} exceeds mesh size {n}")
            src = self.faults.map_processor(w.pid) if remap_procs else w.pid
            packets.append(
                Packet(
                    pid,
                    src,
                    int(modules[pid]),
                    kind="write",
                    address=w.addr,
                    payload=w.value,
                )
            )
            pid += 1
        return packets

    def _route_requests(self, step: StepTrace, engine_mode: str):
        n = self.mesh.rows + self.mesh.cols
        allotment = max(int(self.rehash_factor * n), n + 4)
        log = AttemptLog()
        hashed = self.placement == "hash"
        obs = self.observer if self.observer is not None else NULL_OBSERVER
        for _attempt in range(self.max_rehashes + 1):
            # Each attempt starts where the previous one gave up: failed
            # steps accumulate into the global fault timeline.  Direct
            # placement still fail-fast-detects kills, it just cannot
            # rehash (the remap alone reroutes the address).
            fault_base = self.virtual_clock + log.stall_steps
            packets = self._prepare_attempt(
                step, fault_base, log, rehash=hashed
            )
            router = self._make_router(engine_mode, fault_base)
            wedged = False
            with obs.span(
                "route_attempt",
                category="request",
                virtual_clock=fault_base,
                attempt=_attempt,
                requests=len(packets),
            ) as sp:
                try:
                    stats = router.route(
                        None, None, max_steps=allotment, packets=packets
                    )
                except DeadlockError as exc:
                    # A wedged attempt is just a failed attempt: a rehash
                    # (and fresh stage-1 rows) redraws the trajectories.
                    stats = exc.stats
                    wedged = True
                sp.virtual_end = fault_base + stats.steps
            log.run_modes.append(stats.run_mode)
            log.fault_stalls += stats.fault_stalls
            if stats.completed:
                return router, packets, stats, log
            log.stall_steps += stats.steps
            if wedged:
                log.deadlock_retries += 1
            if not hashed:
                break  # rehashing cannot help direct placement
            self.rehash()
            log.rehashes += 1
            obs.count("emulator_rehashes_total", network="mesh")
            obs.record(
                "rehash",
                virtual_clock=self.virtual_clock + log.stall_steps,
                attempt=_attempt,
                wedged=wedged,
            )
        fault_base = self.virtual_clock + log.stall_steps
        packets = self._prepare_attempt(step, fault_base, log, rehash=hashed)
        router = self._make_router(engine_mode, fault_base)
        with obs.span(
            "route_attempt",
            category="request",
            virtual_clock=fault_base,
            last_resort=True,
        ) as sp:
            stats = router.route(
                None, None, max_steps=500 * n + 2000, packets=packets
            )
            sp.virtual_end = fault_base + stats.steps
        log.run_modes.append(stats.run_mode)
        log.fault_stalls += stats.fault_stalls
        if not stats.completed:
            if self.faults.schedule:
                err = RehashStormError(
                    "mesh request routing failed after rehashes "
                    "(fault schedule active)",
                    rehashes=log.rehashes,
                    stall_steps=log.stall_steps + stats.steps,
                    deadlock_retries=log.deadlock_retries,
                    fault_failfasts=log.fault_failfasts,
                    run_modes=tuple(log.run_modes),
                )
                err.flight_tail = obs.flight_tail()
                raise err
            raise RuntimeError("mesh request routing failed after rehashes")
        return router, packets, stats, log

    # ------------------------------------------------------------------
    def emulate_step(self, step: StepTrace) -> StepCost:
        if self.mode == "erew" and not step.is_erew():
            raise ValueError(
                "EREW mesh emulator given concurrent accesses; use mode='crcw'"
            )

        engine_mode = resolve_engine_mode(self.engine_mode)
        router, packets, req_stats, log = self._route_requests(step, engine_mode)
        run_modes = log.run_modes
        hosts = [p for p in packets if not p.combined]
        read_hosts = [p for p in hosts if p.kind == "read"]
        values = {p.pid: self.memory.read(p.address) for p in read_hosts}
        write_hosts = [p for p in hosts if p.kind == "write"]
        by_addr: dict[int, list[tuple[int, object]]] = {}
        for host in write_hosts:
            for w in host.all_represented():
                # w.source is the requesting processor's node id on the mesh
                by_addr.setdefault(w.address, []).append((w.source, w.payload))
        for addr, writers in by_addr.items():
            self.memory.write(
                addr,
                resolve_writes(sorted(writers), self.write_policy, self.combine_op),
            )

        reply_steps = 0
        max_queue = req_stats.max_queue
        credits_stalled = req_stats.credits_stalled
        obs = self.observer if self.observer is not None else NULL_OBSERVER
        if read_hosts:
            with obs.span(
                "reply_phase",
                category="reply",
                virtual_clock=self.virtual_clock + req_stats.steps,
                replies=len(read_hosts),
            ) as sp:
                if self.mode == "crcw":
                    # Both engines intentionally run the CRCW reverse-path
                    # fan-out *unconstrained*: the reference phase below
                    # uses a bare SynchronousEngine() and the fast phase a
                    # bare FastPathEngine(), so node_capacity applies to
                    # request routing only.  If capacity is ever added to
                    # one reply phase it must be added to both (and the
                    # differential tests extended), or the bit-for-bit
                    # contract breaks.
                    if engine_mode == "fast" and router.last_fast_paths is not None:
                        n = self.mesh.rows + self.mesh.cols
                        reply_stats, _spawner, _replies = route_replies_fast(
                            read_hosts,
                            values,
                            packets,
                            router.last_fast_paths,
                            budget=500 * n + 2000,
                            num_nodes=self.mesh.num_nodes,
                            observer=self.observer,
                        )
                        if not reply_stats.completed:
                            raise RuntimeError(
                                "mesh reverse-path replies did not complete"
                            )
                    else:
                        reply_stats = self._replies_reverse_path(
                            read_hosts, values
                        )
                else:
                    reply_stats = self._replies_fresh_route(
                        read_hosts,
                        values,
                        engine_mode,
                        fault_base=(
                            self.virtual_clock + log.stall_steps + req_stats.steps
                        ),
                        log=log,
                    )
                sp.virtual_end = (
                    self.virtual_clock + req_stats.steps + reply_stats.steps
                )
            reply_steps = reply_stats.steps
            max_queue = max(max_queue, reply_stats.max_queue)
            credits_stalled += reply_stats.credits_stalled
            log.fault_stalls += reply_stats.fault_stalls
            run_modes.append(reply_stats.run_mode)

        cost = StepCost(
            request_steps=req_stats.steps,
            reply_steps=reply_steps,
            rehashes=log.rehashes,
            combines=req_stats.combines,
            max_queue=max_queue,
            requests=step.num_requests,
            credits_stalled=credits_stalled,
            stall_steps=log.stall_steps,
            fault_stalls=log.fault_stalls,
            deadlock_retries=log.deadlock_retries,
            run_modes=tuple(run_modes),
        )
        self.virtual_clock += cost.total_steps + cost.stall_steps
        obs.count("pram_steps_total", network="mesh")
        obs.count("network_steps_total", cost.total_steps, network="mesh")
        obs.observe("step_total_steps", cost.total_steps, network="mesh")
        return cost

    def _replies_fresh_route(
        self, read_hosts, values, engine_mode: str, fault_base: int = 0, log=None
    ):
        """EREW replies: an independent run of the 3-stage router from the
        modules back to the requesting processors (the paper's phase 2).

        Link faults apply here too: a down link stalls replies exactly
        like requests, and the generous budget rides out transient
        flaps.  A link held down *past* a whole budget fails the
        attempt, which is retried on a fresh router with the fault
        clock advanced by the burned steps — so a prolonged down
        window is ridden out attempt by attempt instead of surfacing
        as a hard error.  Failed attempts are charged to the step's
        stall accounting (``log``), mirroring the request-phase retry
        loop; a healthy first attempt is bit-identical to the old
        single-shot path.
        """
        n = self.mesh.rows + self.mesh.cols
        budget = 500 * n + 2000
        stats = None
        for _attempt in range(self.max_rehashes + 1):
            router = self._make_router(engine_mode, fault_base)
            # rebuild each attempt: routing mutates the packets
            replies = [
                Packet(
                    i, host.node, host.source, kind="reply", payload=values[host.pid]
                )
                for i, host in enumerate(read_hosts)
            ]
            stats = router.route(None, None, max_steps=budget, packets=replies)
            if stats.completed:
                break
            fault_base += stats.steps
            if log is not None:
                log.stall_steps += stats.steps
                log.fault_stalls += stats.fault_stalls
                log.run_modes.append(stats.run_mode)
        if not stats.completed:
            if self.faults.schedule:
                err = RehashStormError(
                    "mesh reply routing failed after retries "
                    "(fault schedule active)",
                    rehashes=log.rehashes if log is not None else 0,
                    stall_steps=log.stall_steps if log is not None else 0,
                    deadlock_retries=(
                        log.deadlock_retries if log is not None else 0
                    ),
                    fault_failfasts=(
                        log.fault_failfasts if log is not None else 0
                    ),
                    run_modes=tuple(log.run_modes) if log is not None else (),
                )
                if self.observer is not None:
                    err.flight_tail = self.observer.flight_tail()
                raise err
            raise RuntimeError("mesh reply routing did not complete")
        if self.validate and stats.delivered != len(read_hosts):
            raise AssertionError("lost replies in mesh emulation")
        return stats

    def _replies_reverse_path(self, read_hosts, values):
        """CRCW replies: reverse the request paths, splitting at merges."""
        replies = build_replies(read_hosts, values)
        spawner = ReplySpawner()
        engine = SynchronousEngine(observer=self.observer)
        n = self.mesh.rows + self.mesh.cols
        stats = engine.run(
            replies,
            reply_next_hop,
            max_steps=500 * n + 2000,
            on_arrival=spawner,
        )
        if not stats.completed:
            raise RuntimeError("mesh reverse-path replies did not complete")
        return stats
