"""The Karlin–Upfal 4-phase emulation scheme (§3.3), our ≈2× baseline.

Karlin and Upfal route every request through a *random* processor before
its true target, and every reply through another random processor — two
extra phases that "are there only to simplify the analysis, and can indeed
be eliminated" (§3.3).  On the mesh this costs ≈ 8n + o(n) per step versus
our algorithm's 4n + o(n); experiment E10 measures the factor-2 gap.

    1. processor i's request is sent to a random processor k;
    2. from k the request is sent to processor h(j);
    3. if the request was 'read', h(j) sends the packet to a random
       processor;
    4. finally the packet is sent to processor i.
"""

from __future__ import annotations

from repro.emulation.base import Emulator, StepCost
from repro.emulation.mesh import MeshEmulator
from repro.pram.trace import StepTrace
from repro.pram.variants import resolve_writes
from repro.routing.mesh_router import MeshRouter
from repro.routing.packet import Packet


class KarlinUpfalMeshEmulator(MeshEmulator):
    """4-phase variant of the mesh emulator (EREW workloads)."""

    def __init__(self, mesh, address_space, **kwargs) -> None:
        kwargs.setdefault("mode", "erew")
        if kwargs["mode"] != "erew":
            raise ValueError("the Karlin–Upfal baseline is measured on EREW traces")
        super().__init__(mesh, address_space, **kwargs)

    def _route_leg(self, sources, dests, kinds_addrs_payloads):
        router = MeshRouter(
            self.mesh,
            seed=self.rng,
            slice_rows=self.slice_rows,
            node_capacity=self.node_capacity,
            flow_control=self.flow_control,
        )
        packets = [
            Packet(i, int(s), int(d), kind=k, address=a, payload=v)
            for i, (s, d, (k, a, v)) in enumerate(
                zip(sources, dests, kinds_addrs_payloads)
            )
        ]
        n = self.mesh.rows + self.mesh.cols
        stats = router.route(None, None, max_steps=500 * n + 2000, packets=packets)
        if not stats.completed:
            raise RuntimeError("Karlin–Upfal leg did not complete")
        return packets, stats

    def emulate_step(self, step: StepTrace) -> StepCost:
        if not step.is_erew():
            raise ValueError("Karlin–Upfal baseline requires EREW steps")

        n_nodes = self.mesh.num_nodes
        reqs = [("read", r.pid, r.addr, None) for r in step.reads] + [
            ("write", w.pid, w.addr, w.value) for w in step.writes
        ]
        sources = [pid for _, pid, _, _ in reqs]
        modules = [self.module_of(addr) for _, _, addr, _ in reqs]
        meta = [(kind, addr, val) for kind, _, addr, val in reqs]

        # Phase 1: to a random processor each.
        rand1 = self.rng.integers(0, n_nodes, size=len(reqs)).tolist()
        _, s1 = self._route_leg(sources, rand1, meta)
        # Phase 2: random processor -> memory module h(addr).
        _, s2 = self._route_leg(rand1, modules, meta)

        # Memory operations (reads pre-step, then writes).
        read_values = {}
        for i, (kind, addr, _val) in enumerate(meta):
            if kind == "read":
                read_values[i] = self.memory.read(addr)
        by_addr: dict[int, list[tuple[int, object]]] = {}
        for i, (kind, addr, val) in enumerate(meta):
            if kind == "write":
                by_addr.setdefault(addr, []).append((i, val))
        for addr, writers in by_addr.items():
            self.memory.write(
                addr,
                resolve_writes(sorted(writers), self.write_policy, self.combine_op),
            )

        reply_steps = 0
        max_queue = max(s1.max_queue, s2.max_queue)
        read_idx = [i for i, (kind, _, _) in enumerate(meta) if kind == "read"]
        if read_idx:
            r_modules = [modules[i] for i in read_idx]
            r_meta = [("reply", meta[i][1], read_values[i]) for i in read_idx]
            r_sources = [sources[i] for i in read_idx]
            # Phase 3: module -> another random processor.
            rand2 = self.rng.integers(0, n_nodes, size=len(read_idx)).tolist()
            _, s3 = self._route_leg(r_modules, rand2, r_meta)
            # Phase 4: random processor -> original requester.
            _, s4 = self._route_leg(rand2, r_sources, r_meta)
            reply_steps = s3.steps + s4.steps
            max_queue = max(max_queue, s3.max_queue, s4.max_queue)

        return StepCost(
            request_steps=s1.steps + s2.steps,
            reply_steps=reply_steps,
            rehashes=0,
            combines=0,
            max_queue=max_queue,
            requests=step.num_requests,
        )
