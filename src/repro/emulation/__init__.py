"""PRAM emulation engines: the paper's algorithms plus baselines.

* :class:`LeveledEmulator` — Theorems 2.5/2.6 (star, shuffle, generic
  leveled networks), with hashing, combining, and rehash-on-timeout.
* :class:`MeshEmulator` — Theorem 3.2's 4n + o(n) two-phase scheme and
  Theorem 3.3's 6δ + o(δ) locality mode.
* :class:`KarlinUpfalMeshEmulator` — the 4-phase ≈ 8n baseline.
* :class:`RanadeEmulator` — merge-forwarding butterfly baseline with the
  large hidden constant the paper argues against.
"""

from repro.emulation.base import EmulationReport, Emulator, StepCost
from repro.emulation.combining import (
    ReplySpawner,
    build_replies,
    make_reply,
    reply_next_hop,
    reverse_path_of,
)
from repro.emulation.karlin_upfal import KarlinUpfalMeshEmulator
from repro.emulation.leveled import LeveledEmulator
from repro.emulation.mesh import MeshEmulator, locality_slice_rows
from repro.emulation.ranade import RanadeEmulator
from repro.emulation.replay import ReplayResult, configure_emulator_for, replay_program

__all__ = [
    "EmulationReport",
    "Emulator",
    "KarlinUpfalMeshEmulator",
    "LeveledEmulator",
    "MeshEmulator",
    "RanadeEmulator",
    "ReplayResult",
    "ReplySpawner",
    "StepCost",
    "build_replies",
    "configure_emulator_for",
    "replay_program",
    "locality_slice_rows",
    "make_reply",
    "reply_next_hop",
    "reverse_path_of",
]
