"""Real PRAM algorithms through the full emulation stack, end to end.

The paper's promise is a *workflow*: write a parallel algorithm once
against the ideal PRAM, then run the same computation on a physical
network at O(log n) (leveled) or Theta(sqrt n) (mesh) cost per step.
This demo makes that concrete with two real algorithms:

1. **connected components** — Liu-Tarjan-Zhong-style min-label hooking
   with pointer shortcutting, a CRCW combining program; every vertex
   label is checked against a sequential union-find oracle;
2. **bisimulation** — coarsest-partition refinement on a labeled
   transition system via signature elections, checked against the
   classical sequential refinement loop;
3. **the slowdown readings** — each run reports emulated slowdown next
   to the network scale and the paper's predicted log2(N) overhead, so
   the O(log n) theorem is a number you can look at;
4. **a deliberately broken variant** — the same hooking algorithm
   misdeclared as EREW, caught by the race sanitizer before it can be
   quoted under the wrong theorem.

Run:  python examples/pram_applications_demo.py [--quick]
"""

import sys

from repro.analysis.races import RaceError
from repro.apps import (
    bisimulation,
    bisimulation_oracle,
    broken_erew_components,
    connected_components,
    connected_components_oracle,
    gnp_graph,
    random_lts,
    run_app,
    star_graph,
)
from repro.pram.machine import PRAM

QUICK = "--quick" in sys.argv[1:]


def show(run):
    print(
        f"  {run.app:22s} {run.network:8s} N={run.n_processors:<4d} "
        f"slowdown={run.slowdown:6.2f}  scale={run.scale:<5.1f} "
        f"normalized={run.normalized_slowdown:5.2f}  "
        f"predicted log2(N)={run.predicted_log:4.1f}  "
        f"oracle={'ok' if run.oracle_match else 'FAIL'}"
    )


def scene_1_connected_components():
    print("=== 1. connected components on both networks ===")
    g = gnp_graph(12, 0.25, seed=7)
    oracle = connected_components_oracle(g)
    print(f"G(n={g.n}, m={g.m}) seeded; oracle labels: {oracle}")
    for network in ("leveled", "mesh"):
        show(run_app(connected_components(g), oracle, network=network, seed=0))
    print()


def scene_2_bisimulation():
    print("=== 2. bisimulation (partition refinement) ===")
    lts = random_lts(8, 2, seed=11)
    oracle = bisimulation_oracle(lts)
    print(f"LTS with {lts.n_states} states, {lts.n_labels} labels; "
          f"oracle partition: {oracle}")
    networks = ("leveled",) if QUICK else ("leveled", "mesh")
    for network in networks:
        show(run_app(bisimulation(lts), oracle, network=network, seed=0))
    print()


def scene_3_combining():
    print("=== 3. CRCW combining on a hot cell (star graph) ===")
    g = star_graph(12)
    run = run_app(
        connected_components(g), connected_components_oracle(g),
        network="leveled", seed=0,
    )
    show(run)
    print(
        f"  every leaf hooks onto vertex 0: {run.combines} of "
        f"{run.requests} routed requests were absorbed by combining "
        f"(hit rate {run.combining_hit_rate:.0%})"
    )
    print()


def scene_4_broken_variant():
    print("=== 4. the sanitizer catches a misdeclared variant ===")
    spec = broken_erew_components(gnp_graph(12, 0.25, seed=7))
    pram = PRAM(
        spec.n_procs,
        spec.memory_size,
        mode=spec.mode,
        write_policy=spec.write_policy,
        combine_op=spec.combine_op,
        init=spec.init,
        enforce_mode=False,
    )
    pram.load(spec.program)
    try:
        pram.run(check_races=True)
    except RaceError as exc:
        print(f"  {spec.name!r} declared EREW -> RaceError:")
        print(f"    {exc.args[0].splitlines()[0]}")
    else:
        raise AssertionError("the broken variant must be flagged")
    print()


def main():
    scene_1_connected_components()
    scene_2_bisimulation()
    scene_3_combining()
    scene_4_broken_variant()
    print("done: every emulated labeling matched its sequential oracle")


if __name__ == "__main__":
    main()
