"""Observability end to end: metrics, a Perfetto trace, flight data.

One ``Observer`` threaded through ``run_app`` watches a real PRAM
algorithm (connected components) go through the full emulation stack,
without changing a single result — the run is bit-identical to an
unobserved one, which this demo verifies live.  Four scenes:

1. **one argument lights up the stack** — ``run_app(...,
   observer=Observer())``, then the deterministic metrics snapshot;
2. **the virtual-clock trace** — the same run as Chrome trace-event
   JSON, written to ``trace_observability_demo.json`` (drop it on
   https://ui.perfetto.dev); each span carries wall time *and* its
   virtual-clock interval;
3. **the engine profile** — where the routing engines actually spent
   wall time, by dispatch mode and by phase;
4. **the flight recorder** — a forced routing deadlock whose
   ``DeadlockError`` arrives carrying the last ring-buffered events.

Run:  python examples/observability_demo.py [--quick]
"""

import sys

from repro.apps import (
    connected_components,
    connected_components_oracle,
    gnp_graph,
    run_app,
)
from repro.obs import Observer
from repro.routing import DeadlockError, SynchronousEngine, make_packets

QUICK = "--quick" in sys.argv[1:]

N = 12 if QUICK else 24
TRACE_PATH = "trace_observability_demo.json"


def scene_1_metrics():
    print("=== 1. one observer argument lights up the stack ===")
    g = gnp_graph(N, 0.25, seed=7)
    obs = Observer()
    run = run_app(
        connected_components(g),
        connected_components_oracle(g),
        network="leveled",
        engine="fast",
        seed=0,
        observer=obs,
    )
    baseline = run_app(
        connected_components(g),
        connected_components_oracle(g),
        network="leveled",
        engine="fast",
        seed=0,
    )
    assert run == baseline, "observation must never change the run"
    print(f"app run: {run.app} on {run.network}, "
          f"slowdown {run.slowdown:.2f}, oracle "
          f"{'ok' if run.oracle_match else 'FAIL'} "
          f"(bit-identical to the unobserved run)")
    snap = obs.metrics.snapshot()["metrics"]
    print("metrics snapshot:")
    for name in sorted(snap):
        for series in snap[name]["series"]:
            labels = ",".join(f"{k}={v}" for k, v in series["labels"].items())
            print(f"  {name}{{{labels}}} = {series['value']}")
    return obs


def scene_2_trace(obs):
    print("\n=== 2. the Perfetto trace ===")
    doc = obs.tracer.to_chrome_trace()
    by_cat = {}
    for ev in doc["traceEvents"]:
        by_cat.setdefault(ev["cat"], []).append(ev)
    for cat in sorted(by_cat):
        evs = by_cat[cat]
        wall_ms = sum(e["dur"] for e in evs) / 1e3
        print(f"  {cat:10s} {len(evs):4d} span(s), {wall_ms:8.2f} ms wall")
    obs.tracer.write(TRACE_PATH)
    print(f"wrote {TRACE_PATH} — open it at https://ui.perfetto.dev; "
          "every span's args carry its virtual-clock interval")


def scene_3_profile(obs):
    print("\n=== 3. the engine profile ===")
    prof = obs.profile.to_dict()
    print(f"engine runs observed: {prof['runs']}")
    print("wall time by dispatch mode:")
    for mode, s in sorted(prof["modes"].items()):
        print(f"  {mode:20s} {s * 1e3:8.2f} ms")
    print("wall time by routing phase:")
    for phase, s in sorted(prof["phases"].items()):
        print(f"  {phase:20s} {s * 1e3:8.2f} ms")


def scene_4_flight_recorder():
    print("\n=== 4. the flight recorder on a forced deadlock ===")
    # the canonical wedge: two packets crossing on capacity-1 nodes
    # under plain backpressure ("none" flow control)
    paths = [[1, 2, 3], [2, 1, 0]]

    def next_hop(p):
        path = paths[p.pid]
        return None if p.node == p.dest else path[path.index(p.node) + 1]

    obs = Observer(flight_recorder=8)
    engine = SynchronousEngine(node_capacity=1, observer=obs)
    try:
        engine.run(make_packets([1, 2], [3, 0]), next_hop, max_steps=100)
    except DeadlockError as e:
        print(f"caught: {e}")
        print(f"flight tail ({len(e.flight_tail)} event(s), oldest first):")
        for ev in e.flight_tail:
            print(f"  {ev}")


def main():
    obs = scene_1_metrics()
    scene_2_trace(obs)
    scene_3_profile(obs)
    scene_4_flight_recorder()
    print("\nall scenes done")


if __name__ == "__main__":
    main()
