"""Online traffic: serving an open request stream instead of one batch.

Everything the paper measures is a closed batch — inject one PRAM step,
drain it, stop.  This demo runs the emulators as an open *service*:

1. a seeded workload (Poisson arrivals x key distribution) streams
   requests into an admission queue;
2. an :class:`~repro.traffic.OnlineEmulator` serves them epoch by epoch
   through the usual engine dispatch (every epoch is a rectangular
   vectorized batch — the report proves it);
3. windowed telemetry reports throughput, p50/p95/p99 sojourn latency
   (in network steps, arrival -> delivery), and queue depth.

Two experiments:

* **exclusive access meets a hot spot** — on an EREW mesh a hot address
  can be touched once per epoch, so at the *same* offered load a
  Zipf-skewed stream saturates and its tail latency explodes while the
  uniform stream cruises;
* **combining absorbs the same skew** — the CRCW butterfly emulator
  (Theorem 2.6) serves the Zipf stream at uniform-like latency.

Run:  python examples/online_traffic_demo.py [--quick]
"""

import sys

from repro.emulation import LeveledEmulator, MeshEmulator
from repro.topology import DAryButterflyLeveled, Mesh2D
from repro.traffic import (
    OnlineEmulator,
    PoissonArrivals,
    UniformKeys,
    WorkloadGenerator,
    ZipfKeys,
)
from repro.util.tables import Table

QUICK = "--quick" in sys.argv
SIDE = 8 if QUICK else 12
EPOCHS = 16 if QUICK else 30


def serve(emulator, n_procs: int, space: int, keys, label: str):
    workload = WorkloadGenerator(
        n_procs,
        arrivals=PoissonArrivals(0.5 * n_procs),  # half the admit limit
        keys=keys,
        seed=7,
    )
    report = OnlineEmulator(emulator, workload).run(EPOCHS)
    ss = report.steady_state()
    return label, report, ss


mesh = Mesh2D.square(SIDE)
N = mesh.num_nodes
SPACE = 4 * N

print(f"EREW mesh({SIDE}x{SIDE}): equal offered load, uniform vs Zipf keys\n")
rows = [
    serve(
        MeshEmulator(mesh, SPACE, mode="erew", seed=11),
        N, SPACE, UniformKeys(SPACE), "uniform",
    ),
    serve(
        MeshEmulator(mesh, SPACE, mode="erew", seed=11),
        N, SPACE, ZipfKeys(SPACE, exponent=1.1), "zipf",
    ),
]
t = Table(["keys", "served", "p50", "p95", "p99", "backlog", "saturated"])
for label, report, ss in rows:
    t.add_row(
        [
            label,
            report.total_delivered,
            round(ss["sojourn_p50"]),
            round(ss["sojourn_p95"]),
            round(ss["sojourn_p99"]),
            report.final_backlog,
            bool(ss["saturated"]),
        ]
    )
print(t.render())
uniform_ss, zipf_ss = rows[0][2], rows[1][2]
assert zipf_ss["sojourn_p99"] > uniform_ss["sojourn_p99"]
print(
    "\nExclusive access serializes the hot addresses: the Zipf stream's "
    f"p99 sojourn\nis {zipf_ss['sojourn_p99'] / uniform_ss['sojourn_p99']:.0f}x "
    "the uniform stream's at the same offered load."
)

net = DAryButterflyLeveled(2, 6 if QUICK else 7)
LN = net.column_size
LSPACE = 4 * LN
print(f"\nCRCW butterfly (N={LN}): combining absorbs the same Zipf skew\n")
label, report, ss = serve(
    LeveledEmulator(net, LSPACE, mode="crcw", seed=11),
    LN, LSPACE, ZipfKeys(LSPACE, exponent=1.1), "zipf+combining",
)
print(
    f"served={report.total_delivered}  p50={ss['sojourn_p50']:.0f}  "
    f"p99={ss['sojourn_p99']:.0f}  backlog={report.final_backlog}  "
    f"saturated={bool(ss['saturated'])}"
)
assert not ss["saturated"]

modes = report.run_mode_counts()
print(f"\nEngine dispatch history across all epochs: {modes}")
assert set(modes) <= {"batch", "batch-constrained"}, "silent per-event fallback!"
print("Every online epoch stayed on the vectorized batch paths.")
