"""Locality on the mesh (Theorem 3.3): 6δ + o(δ) for δ-local requests.

When every processor's memory request targets data within Manhattan
distance δ (direct placement — hashing would destroy locality), the same
3-stage routing algorithm finishes in 6δ + o(δ) steps, *independent of
the mesh size n*.  This example sweeps δ on a fixed mesh and sweeps n at
a fixed δ.

Run:  python examples/mesh_locality.py
"""

from repro.analysis import MESH_LOCALITY_CLAIM
from repro.emulation import MeshEmulator, locality_slice_rows
from repro.pram import local_step_for_mesh
from repro.topology import Mesh2D
from repro.util.tables import Table


def local_cost(n: int, delta: int, seed: int) -> int:
    emu = MeshEmulator(
        Mesh2D.square(n),
        address_space=n * n,
        placement="direct",
        slice_rows=locality_slice_rows(delta),
        seed=seed,
    )
    return emu.emulate_step(local_step_for_mesh(n, delta, seed=seed + 1)).total_steps


print("Sweep δ at fixed n = 24 (global bound would be 4n = 96)\n")
t = Table(["delta", "steps", "steps/delta", "claim 6δ+o(δ)"])
for delta in (2, 4, 8, 12):
    steps = local_cost(24, delta, seed=13)
    t.add_row([delta, steps, round(steps / delta, 2),
               round(MESH_LOCALITY_CLAIM.bound(delta), 1)])
print(t.render())

print("\nSweep n at fixed δ = 4 — cost must NOT grow with the mesh\n")
t2 = Table(["n", "steps", "4n (global)"])
for n in (12, 24, 36):
    steps = local_cost(n, 4, seed=17)
    t2.add_row([n, steps, 4 * n])
print(t2.render())
print("\nLocal programs pay for locality only — the 'nice locality property'")
print("the paper highlights for its mesh algorithm.")
