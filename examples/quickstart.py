"""Quickstart: emulate a CRCW PRAM program on a star-graph machine.

The pipeline of the paper in ~30 lines:

1. write a PRAM program (here: histogram with combining writes);
2. run it on the abstract PRAM — unit-time shared memory;
3. replay the exact same execution on the 4-star graph's logical leveled
   network (Figure 3), where shared memory is hashed across modules and
   every step becomes two Õ(diameter) routing phases (Theorem 2.6);
4. confirm the memory contents agree and inspect the emulation cost.

Run:  python examples/quickstart.py
"""

from repro.emulation import LeveledEmulator, replay_program
from repro.pram import histogram
from repro.topology import StarLogicalLeveled

# A CRCW workload: 24 processors drop keys into 6 histogram bins, with
# concurrent writes combined by summation.
KEYS = [0, 1, 1, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 4, 5, 5, 5, 5, 5, 5, 0, 1, 2]
spec = histogram(KEYS, n_bins=6)

# The emulating machine: the logical leveled network of the 4-star graph
# (N = 4! = 24 processors, logical levels 2(n-1) = 6, degree n = 4).
network = StarLogicalLeveled(4)
emulator = LeveledEmulator(
    network,
    address_space=spec.memory_size,
    mode="crcw",          # combining for concurrent accesses (Thm 2.6)
    intermediate="node",  # Algorithm 2.2-style random intermediate nodes
    seed=42,
)

result = replay_program(spec, emulator)

print(f"program:            {spec.name} on {spec.n_procs} processors")
print(f"network:            {network!r}")
print(f"PRAM steps:         {result.report.pram_steps}")
print(f"network steps:      {result.report.total_network_steps}")
print(f"steps per PRAM op:  {result.slowdown:.1f}  (diameter scale = {emulator.scale:.0f})")
print(f"combines performed: {result.report.total_combines}")
print(f"rehash events:      {result.report.total_rehashes}")
print(f"memory matches:     {result.memory_matches}")

counts = emulator.memory.snapshot(len(KEYS), len(KEYS) + 6)
print(f"histogram bins:     {counts}")
assert result.memory_matches
assert counts == [sum(1 for k in KEYS if k == b) for b in range(6)]
print("OK: the network computed exactly what the PRAM computed.")
