"""Regenerate every experiment table (E1-E12) and figure (F1-F5).

This is the full evaluation of EXPERIMENTS.md at laptop-scale parameters.
Takes a few minutes; pass --quick for a subset.

Run:  python examples/reproduce_all.py [--quick]
"""

import sys
import time

from repro.experiments import ALL_EXPERIMENTS, all_figures

QUICK = {"E1", "E2", "E3", "E5", "E7", "E8"}


def main() -> None:
    quick = "--quick" in sys.argv
    names = sorted(ALL_EXPERIMENTS, key=_exp_sort_key)
    for name in names:
        if quick and name not in QUICK:
            continue
        runner = ALL_EXPERIMENTS[name]
        t0 = time.time()
        table = runner()
        elapsed = time.time() - t0
        print()
        print(table.render())
        print(f"[{name} regenerated in {elapsed:.1f}s]")
    print()
    print(all_figures())


def _exp_sort_key(name: str):
    import re

    m = re.match(r"E(\d+)([a-z]?)", name)
    return (int(m.group(1)), m.group(2))


if __name__ == "__main__":
    main()
