"""Fault injection: killing modules and cutting wires mid-run.

The emulators assume perfect hardware; ``repro.faults`` breaks things
on purpose — deterministically, so both engines replay the identical
degraded run.  This demo drives an online mesh service through three
regimes and prints the degraded-mode telemetry after each:

1. **clean baseline** — no faults, steady throughput;
2. **mid-run module kills** — k modules die at a scheduled virtual
   step; the first request aimed at a dead module fails fast (a
   zero-step NACK), the emulator acknowledges the kill and rehashes
   (the paper's §2.1 recovery path), and the windowed-throughput dip
   plus its recovery time show up in the report.  The dead modules'
   surrogates climb the module-hotness ranking;
3. **link flap** — two wires go down and come back; a down link stalls
   packets exactly like a zero-credit link (``fault_stalls``), nothing
   is rerouted, and everything still delivers.

Every run obeys the exact conservation law the driver enforces:
``arrivals == delivered + dropped + timed_out + dead_lettered +
backlog``.

Run:  python examples/fault_injection_demo.py [--quick]
"""

import sys

from repro.emulation import MeshEmulator
from repro.faults import FaultSchedule
from repro.topology import Mesh2D
from repro.traffic import (
    DeterministicArrivals,
    OnlineEmulator,
    UniformKeys,
    WorkloadGenerator,
)

N_SIDE = 8
N = N_SIDE * N_SIDE
SPACE = 4 * N
KILL_STEP = 40
DEAD = (10, 20, 30, 41)


def run_service(faults, *, epochs):
    em = MeshEmulator(
        Mesh2D.square(N_SIDE),
        SPACE,
        mode="crcw",
        seed=5,
        engine="fast",
        faults=faults,
    )
    wl = WorkloadGenerator(
        N,
        arrivals=DeterministicArrivals(0.75 * N),
        keys=UniformKeys(SPACE),
        read_fraction=0.7,
        seed=9,
    )
    return OnlineEmulator(em, wl).run(epochs)


def describe(label, report):
    print(f"\n=== {label} ===")
    print(
        f"delivered={report.total_delivered}  "
        f"backlog={report.final_backlog}  "
        f"rehashes={report.total_rehashes}  "
        f"fault_stalls={report.total_fault_stalls}  "
        f"dead_lettered={report.total_dead_lettered}"
    )
    deficit = report.conservation_deficit()
    print(f"conservation deficit: {deficit} (must be 0)")
    assert deficit == 0
    for epoch, event in report.fault_event_log:
        print(f"  epoch {epoch:2d}: {event}")
    for rec in report.recovery_times(window=4, tolerance=0.10):
        print(
            f"  recovery after epoch {rec['epoch']}: "
            f"{rec['recovery_steps']} virtual steps "
            f"(pre-fault throughput {rec['pre_throughput']:.2f}/step)"
        )
    hot = report.module_hotness(top=5)
    ranked = ", ".join(f"module {m}: {c}" for m, c in hot)
    print(f"  hottest modules: {ranked}")


def main(argv):
    epochs = 12 if "--quick" in argv else 30

    describe("clean baseline", run_service(None, epochs=epochs))

    kills = FaultSchedule()
    for m in DEAD:
        kills.kill_module(KILL_STEP, m)
    report = run_service(kills, epochs=epochs)
    describe(f"kill {len(DEAD)} of {N} modules at step {KILL_STEP}", report)
    served = {m for e in report.epochs[-3:] for m in e.modules}
    print(f"  dead modules absent from tail epochs: {served.isdisjoint(DEAD)}")
    assert served.isdisjoint(DEAD)

    flap = FaultSchedule()
    for u, v in ((27, 28), (35, 43)):
        flap.link_down(KILL_STEP, (u, v)).link_down(KILL_STEP, (v, u))
        flap.link_up(KILL_STEP + 80, (u, v)).link_up(KILL_STEP + 80, (v, u))
    report = run_service(flap, epochs=epochs)
    describe("link flap (2 wires, both directions)", report)
    assert report.total_fault_stalls > 0

    print("\nall regimes conserved every request")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
