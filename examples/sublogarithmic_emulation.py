"""The paper's headline (§1): PRAM emulation in *sub-logarithmic* time.

Ranade's classical result emulates a PRAM step in O(log N) on butterflies
and hypercubes — and log N is also those networks' diameter, so that is
optimal *for them*.  The star graph and the n-way shuffle have diameter
o(log N); Theorem 2.6 shows one PRAM step costs only Õ(diameter) there,
beating every logarithmic-time emulation as machines grow.

This example measures, for growing star graphs and shuffles:

* diameter vs log2(N) (the structural gap), and
* measured emulation time per PRAM step vs the log2(N) yardstick.

Run:  python examples/sublogarithmic_emulation.py
"""

import math

from repro.analysis import star_diameter, star_nodes, sublogarithmic_gap
from repro.emulation import LeveledEmulator
from repro.pram import permutation_step
from repro.topology import ShuffleLeveled, StarLogicalLeveled
from repro.util.tables import Table

print("Structural gap: diameter / log2(N) shrinks for star graphs\n")
t = Table(["n", "N = n!", "diameter", "log2(N)", "diam/log2(N)"])
for n in range(4, 10):
    t.add_row(
        [n, star_nodes(n), star_diameter(n),
         round(math.log2(star_nodes(n)), 1), round(sublogarithmic_gap(n, "star"), 3)]
    )
print(t.render())

print("\nMeasured emulation cost per PRAM step (EREW permutation steps)\n")
t2 = Table(["network", "N", "2L (scale)", "steps/PRAM op", "log2(N)"])
for label, net, mode in [
    ("star n=4", StarLogicalLeveled(4), "node"),
    ("star n=5", StarLogicalLeveled(5), "node"),
    ("shuffle n=3", ShuffleLeveled.n_way(3), "coin"),
]:
    m = 8 * net.column_size
    emu = LeveledEmulator(net, address_space=m, intermediate=mode, seed=7)
    step = permutation_step(net.column_size, m, seed=8)
    cost = emu.emulate_step(step)
    t2.add_row(
        [label, net.column_size, emu.scale, cost.total_steps,
         round(math.log2(net.column_size), 1)]
    )
print(t2.render())
print(
    "\nThe per-step cost tracks the (sub-logarithmic) diameter, not log N:"
    "\nas n grows, diameter/log2(N) keeps falling — the paper's point."
)
