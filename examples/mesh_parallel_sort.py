"""Sorting on a mesh-connected computer via PRAM emulation (§3).

Writes odd-even transposition sort once, as an EREW PRAM program, and
executes it on an n x n mesh through the 4n + o(n) emulation of Theorem
3.2 — no mesh-specific sorting code.  Also shows the 2-phase structure
(request + reply) and compares against the Karlin–Upfal 4-phase baseline
on the same workload.

Run:  python examples/mesh_parallel_sort.py
"""

import numpy as np

from repro.emulation import KarlinUpfalMeshEmulator, MeshEmulator, replay_program
from repro.pram import odd_even_sort, permutation_step
from repro.topology import Mesh2D
from repro.util.tables import Table

n = 4  # mesh side; 16 processors sort 16 keys
rng = np.random.default_rng(11)
keys = rng.permutation(16).tolist()
spec = odd_even_sort(keys)

emulator = MeshEmulator(
    Mesh2D.square(n), address_space=spec.memory_size, mode="crcw", seed=3
)
result = replay_program(spec, emulator)

print(f"input keys:      {keys}")
print(f"sorted on mesh:  {emulator.memory.snapshot(0, 16)}")
print(f"PRAM steps:      {result.report.pram_steps}")
print(f"network steps:   {result.report.total_network_steps}")
print(f"mean step cost:  {result.slowdown:.1f}  (mesh side n = {n})")
print(f"memory matches:  {result.memory_matches}")
assert result.memory_matches
assert emulator.memory.snapshot(0, 16) == sorted(keys)

print("\nPer-step cost: ours (2 phases) vs Karlin–Upfal (4 phases)\n")
t = Table(["scheme", "request", "reply", "total", "total/n"])
for name, cls in [("ours (Thm 3.2)", MeshEmulator), ("Karlin–Upfal", KarlinUpfalMeshEmulator)]:
    side = 12
    m = 4 * side * side
    emu = cls(Mesh2D.square(side), address_space=m, seed=5)
    cost = emu.emulate_step(permutation_step(side * side, m, seed=6))
    t.add_row([name, cost.request_steps, cost.reply_steps, cost.total_steps,
               round(cost.total_steps / side, 2)])
print(t.render())
print("\nEliminating the two random-intermediate phases halves the cost —")
print("4n + o(n) instead of ~8n (§3.3).")
