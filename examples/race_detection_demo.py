"""PRAM race detection end to end: sanitizer, classification, scan.

The emulation theorems are parameterized by the PRAM variant (Theorem
2.5 emulates EREW directly, Theorem 2.6 buys CRCW via combining), so a
program that violates its declared ``AccessMode`` invalidates the bound
it is quoted under.  This demo walks the detector through four scenes:

1. **the sanitizer catching a race** — a deliberately racy "EREW"
   program runs on a permissive machine with ``check_races=True``; the
   resulting :class:`RaceError` carries structured reports naming the
   step, the address, and the colliding processors;
2. **a portability check** — a legal CREW program asked "are you
   EREW-clean?" (it is not, and the reports say exactly why);
3. **library classification** — every program in
   ``repro.pram.programs`` is pre-run and its declared mode verified
   against the minimal variant its trace actually needs;
4. **the symbolic scan** — static proof of EREW-safety for programs
   whose addresses are affine in ``pid``, no execution required.

Run:  python examples/race_detection_demo.py [--quick]
"""

import sys

from repro.analysis.races import (
    RaceError,
    classify_all_programs,
    scan_program_addresses,
)
from repro.pram.machine import Read, Write, run_program
from repro.pram.programs import ALL_PROGRAM_BUILDERS
from repro.pram.variants import AccessMode

QUICK = "--quick" in sys.argv[1:]


def racy_erew(pid: int, nprocs: int):
    """Claims EREW, but every pid reads cell 0 and then writes cell 1."""
    v = yield Read(0)
    yield Write(1, pid + (0 * (v or 0)))


def crew_broadcast(pid: int, nprocs: int):
    """Legal CREW: concurrent read of cell 0, exclusive writes."""
    v = yield Read(0)
    yield Write(1 + pid, v)


def scene_1_sanitizer():
    print("=== 1. the check_races sanitizer ===")
    try:
        run_program(
            racy_erew, 4, 8,
            mode=AccessMode.EREW, enforce_mode=False, check_races=True,
        )
    except RaceError as e:
        print(f"caught RaceError: {len(e.reports)} violation(s)")
        for r in e.reports:
            print(f"  {r.describe()}   [pids {list(r.pids)}, "
                  f"needs {r.required_mode.name}]")
    else:
        raise AssertionError("the race must be flagged")
    print()


def scene_2_portability():
    print("=== 2. portability: is this CREW program EREW-clean? ===")
    pram = run_program(
        crew_broadcast, 4, 8, mode=AccessMode.CREW, check_races=True
    )
    print(f"under its own CREW declaration: clean "
          f"(inferred minimal mode: {pram.inferred_mode.name})")
    try:
        run_program(
            crew_broadcast, 4, 8,
            mode=AccessMode.CREW, check_races=AccessMode.EREW,
        )
    except RaceError as e:
        print(f"verified against EREW instead: {e.reports[0].describe()}")
    print()


def scene_3_classification():
    print("=== 3. library program classification ===")
    builders = dict(ALL_PROGRAM_BUILDERS)
    if QUICK:
        keep = ("parallel-sum", "broadcast", "boolean-or")
        builders = {k: v for k, v in builders.items() if k in keep}
    results = classify_all_programs(builders)
    width = max(len(n) for n in results)
    print(f"{'program':<{width}}  declared  inferred  verdict")
    for name, c in results.items():
        print(f"{name:<{width}}  {c.declared_mode.name:<8}  "
              f"{c.inferred_mode.name:<8}  {c.verdict}")
    assert all(c.verdict == "exact" for c in results.values())
    print("every declared mode is exact (minimal and sufficient)\n")


def scene_4_symbolic_scan():
    print("=== 4. symbolic address scan (static, no execution) ===")
    for label, fn in (("racy_erew", racy_erew),
                      ("crew_broadcast", crew_broadcast)):
        scan = scan_program_addresses(fn)
        print(f"{label}: proves_exclusive={scan.proves_exclusive}")
        for s in scan.sites:
            print(f"  line {s.lineno}: {s.op}({s.source}) -> {s.klass.value}")
    strided = scan_program_addresses(
        "def strided(pid, n):\n"
        "    v = yield Read(2 * pid)\n"
        "    yield Write(2 * pid + 1, v)\n"
    )
    print(f"strided (source form): proves_exclusive={strided.proves_exclusive}")
    assert strided.proves_exclusive


def main():
    scene_1_sanitizer()
    scene_2_portability()
    scene_3_classification()
    scene_4_symbolic_scan()
    print("\nall scenes passed")


if __name__ == "__main__":
    main()
