"""Credit flow control demo: surviving the crossing-flow wedge.

Two packet streams cross on a linear array whose nodes hold only one
packet each.  Plain backpressure (``flow_control="none"``) wedges: each
full node waits for the other to free a slot, and the engines report a
:class:`DeadlockError` instead of spinning.  The credit/escape protocol
of Corollary 3.3 (``flow_control="credit"``) routes the same traffic to
completion with ``max_node_load <= node_capacity`` intact.

The walk-through version of this scenario, with the protocol's
invariants I1-I4, lives in ``docs/flow_control.md``.

Run:  python examples/flow_control_demo.py
"""

from repro.routing import DeadlockError, GreedyRouter
from repro.topology import LinearArray

arr = LinearArray(6)
sources = [1, 2, 3, 4]
dests = [5, 0, 5, 0]  # two eastbound, two westbound: crossing flows

# 1. Plain backpressure with capacity-1 nodes: the crossing flows wedge.
plain = GreedyRouter(arr, node_capacity=1, flow_control="none")
try:
    plain.route(sources, dests, max_steps=10_000)
    raise AssertionError("expected the crossing flows to deadlock")
except DeadlockError as exc:
    print(f"flow_control='none':   {exc.stats}")
    print(f"  -> deadlock detected at step {exc.stats.steps} "
          f"({exc.stats.delivered}/{exc.stats.total_packets} delivered)")

# 2. The credit/escape protocol: same network, same traffic, completes.
credit = GreedyRouter(arr, node_capacity=1, flow_control="credit")
stats = credit.route(sources, dests, max_steps=10_000)
print(f"flow_control='credit': {stats}")
print(f"  -> escape hops: {stats.escape_hops}, "
      f"credit stalls: {stats.credits_stalled}, "
      f"max node load: {stats.max_node_load}")

assert stats.completed
assert stats.max_node_load <= 1   # invariant I1: O(1) buffers held
assert stats.escape_hops >= 1     # the wedge was broken via escape
print("OK: credit flow control routed the crossing flows deadlock-free.")
