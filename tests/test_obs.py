"""Unified observability layer: metrics, tracing, flight data, schemas.

Pins the ISSUE 10 contracts:

* **registry** — labeled counters / gauges / histograms with
  deterministic snapshots, runtime name/kind validation (the runtime
  half of REPRO007);
* **tracer** — spans carry both clocks and export valid Chrome
  trace-event (Perfetto) JSON;
* **flight recorder** — the ring buffer never exceeds its bound, and
  forced :class:`DeadlockError` / :class:`RehashStormError` /
  :class:`RaceError` all arrive with the recorder's tail attached;
* **zero-overhead opt-out** — a run with :class:`NullObserver` (or a
  full :class:`Observer`) is bit-identical to a run with no observer
  at all, on both engines;
* **schema** — the traffic report's ``to_dict`` carries the versioned
  envelope + grouped sections and round-trips byte-identically across
  the fast and reference engines under a fixed seed.
"""

import json

import pytest

from repro.apps import (
    connected_components,
    connected_components_oracle,
    gnp_graph,
    run_app,
)
from repro.emulation import LeveledEmulator, MeshEmulator
from repro.emulation.base import StepCost
from repro.faults import RehashStormError
from repro.obs import (
    NULL_OBSERVER,
    SCHEMA_VERSION,
    FlightRecorder,
    MetricsError,
    MetricsRegistry,
    NullObserver,
    Observer,
    SpanTracer,
    schema_of,
    stable_json,
    versioned,
)
from repro.pram.machine import PRAM
from repro.pram.trace import permutation_step
from repro.pram.variants import AccessMode
from repro.routing import (
    DeadlockError,
    FastPathEngine,
    SynchronousEngine,
    make_packets,
)
from repro.topology import DAryButterflyLeveled, Mesh2D
from repro.traffic import (
    HotspotKeys,
    OnlineEmulator,
    PoissonArrivals,
    TrafficRequest,
    WorkloadGenerator,
)


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------

class TestMetricsRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("steps_total")
        reg.counter("steps_total", 4)
        assert reg.value("steps_total") == 5

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("backlog", 7)
        reg.gauge("backlog", 3)
        assert reg.value("backlog") == 3

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        for v in (2, 5, 11):
            reg.histogram("step_steps", v)
        summary = reg.value("step_steps")
        assert summary == {"count": 3, "sum": 18, "min": 2, "max": 11}

    def test_labels_are_independent_series(self):
        reg = MetricsRegistry()
        reg.counter("steps_total", 2, network="mesh")
        reg.counter("steps_total", 5, network="leveled")
        assert reg.value("steps_total", network="mesh") == 2
        assert reg.value("steps_total", network="leveled") == 5

    def test_snapshot_is_deterministic(self):
        def build():
            reg = MetricsRegistry()
            # registration order deliberately shuffled between series
            reg.counter("b_total", 1, zone="z", net="mesh")
            reg.gauge("a_now", 9)
            reg.counter("b_total", 2, net="leveled", zone="y")
            return reg

        a, b = build(), build()
        assert a.snapshot() == b.snapshot()
        assert a.to_json() == b.to_json()
        # sorted names, sorted label keys inside each series key
        names = list(a.snapshot()["metrics"])
        assert names == sorted(names)

    def test_snapshot_has_envelope(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        assert schema_of(reg.snapshot()) == (SCHEMA_VERSION, "metrics")

    def test_bad_names_rejected(self):
        reg = MetricsRegistry()
        for bad in ("stepsTotal", "step.time", "steps-total", "2steps", ""):
            with pytest.raises(MetricsError):
                reg.counter(bad)

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("backlog")
        with pytest.raises(MetricsError, match="counter"):
            reg.gauge("backlog", 1)


# ---------------------------------------------------------------------------
# span tracer
# ---------------------------------------------------------------------------

class TestSpanTracer:
    def test_span_records_both_clocks(self):
        tracer = SpanTracer()
        with tracer.span("step", category="engine", virtual_clock=10) as sp:
            sp.virtual_end = 14
        (ev,) = tracer.events()
        assert ev["name"] == "step"
        assert ev["category"] == "engine"
        assert ev["virtual_start"] == 10
        assert ev["virtual_end"] == 14
        assert ev["wall_duration"] >= 0

    def test_chrome_trace_is_valid(self, tmp_path):
        tracer = SpanTracer()
        with tracer.span("a", category="request", virtual_clock=0, attempt=1) as sp:
            sp.virtual_end = 3
        with tracer.span("b"):
            pass
        doc = tracer.to_chrome_trace()
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert len(doc["traceEvents"]) == 2
        first = doc["traceEvents"][0]
        assert first["ph"] == "X"  # complete events: ts + dur in µs
        assert first["ts"] >= 0 and first["dur"] >= 0
        assert first["args"]["attempt"] == 1
        assert first["args"]["virtual_start"] == 0
        assert first["args"]["virtual_end"] == 3
        # virtual clocks are optional; span b carries none
        assert "virtual_start" not in doc["traceEvents"][1]["args"]
        path = tmp_path / "trace.json"
        tracer.write(path)
        assert json.loads(path.read_text())["traceEvents"] == doc["traceEvents"]

    def test_spans_survive_exceptions(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert len(tracer) == 1
        assert tracer.events()[0]["wall_duration"] >= 0


# ---------------------------------------------------------------------------
# flight recorder
# ---------------------------------------------------------------------------

class TestFlightRecorder:
    def test_bound_is_hard(self):
        rec = FlightRecorder(4)
        for i in range(100):
            rec.record("engine_step", virtual_clock=i)
        assert len(rec) == 4
        tail = rec.tail()
        assert [e["virtual_clock"] for e in tail] == [96, 97, 98, 99]

    def test_bound_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(0)
        with pytest.raises(ValueError):
            FlightRecorder(-3)

    def test_events_keep_fields(self):
        rec = FlightRecorder(8)
        rec.record("rehash", virtual_clock=12, attempt=2, wedged=True)
        (ev,) = rec.tail()
        assert ev == {
            "kind": "rehash", "virtual_clock": 12, "attempt": 2, "wedged": True
        }


# ---------------------------------------------------------------------------
# observer composition
# ---------------------------------------------------------------------------

class TestObserverComposition:
    def test_null_observer_is_inert(self):
        obs = NullObserver()
        assert not obs.enabled
        assert obs.metrics is obs.tracer is obs.profile is obs.recorder is None
        with obs.span("x", virtual_clock=1) as sp:
            sp.virtual_end = 2  # must tolerate the live-span protocol
        obs.count("a_total")
        obs.gauge("b_now", 1)
        obs.observe("c_steps", 1)
        obs.record("step")
        assert obs.flight_tail() == ()
        assert not NULL_OBSERVER.enabled

    def test_components_are_opt_in(self):
        obs = Observer(metrics=True, tracing=False, profiling=False,
                       flight_recorder=0)
        assert obs.tracer is None and obs.profile is None
        assert obs.recorder is None
        obs.count("a_total")
        with obs.span("x"):
            pass  # degrades to the null span
        obs.record("step")
        assert obs.flight_tail() == ()
        assert obs.metrics.value("a_total") == 1

    def test_full_observer_routes_hooks(self):
        obs = Observer(flight_recorder=2)
        obs.count("a_total", 3)
        obs.gauge("b_now", 7)
        obs.observe("c_steps", 5)
        with obs.span("s", virtual_clock=0) as sp:
            sp.virtual_end = 1
        for i in range(5):
            obs.record("step", virtual_clock=i)
        assert obs.metrics.value("a_total") == 3
        assert obs.metrics.value("b_now") == 7
        assert len(obs.tracer) == 1
        assert [e["virtual_clock"] for e in obs.flight_tail()] == [3, 4]


# ---------------------------------------------------------------------------
# error diagnostics carry the flight tail
# ---------------------------------------------------------------------------

# the canonical wedge from test_flow_control: two packets crossing on a
# line of capacity-1 nodes under plain backpressure
CROSS_PATHS = [[1, 2, 3], [2, 1, 0]]


def _crossing_packets():
    return make_packets([p[0] for p in CROSS_PATHS], [p[-1] for p in CROSS_PATHS])


def _crossing_next_hop(p):
    path = CROSS_PATHS[p.pid]
    if p.node == p.dest:
        return None
    return path[path.index(p.node) + 1]


class TestErrorFlightTails:
    def test_reference_deadlock_carries_tail(self):
        obs = Observer(flight_recorder=8)
        engine = SynchronousEngine(node_capacity=1, observer=obs)
        with pytest.raises(DeadlockError) as exc:
            engine.run(_crossing_packets(), _crossing_next_hop, max_steps=100)
        tail = exc.value.flight_tail
        assert tail and len(tail) <= 8
        assert all(e["kind"] == "engine_step" for e in tail)

    def test_fast_deadlock_carries_tail(self):
        obs = Observer(flight_recorder=8)
        engine = FastPathEngine(node_capacity=1, observer=obs)
        with pytest.raises(DeadlockError) as exc:
            engine.run(_crossing_packets(), CROSS_PATHS, num_nodes=4,
                       max_steps=100)
        assert exc.value.flight_tail
        assert len(exc.value.flight_tail) <= 8

    def test_without_observer_tail_is_empty(self):
        with pytest.raises(DeadlockError) as exc:
            SynchronousEngine(node_capacity=1).run(
                _crossing_packets(), _crossing_next_hop, max_steps=100
            )
        assert exc.value.flight_tail == ()

    def test_rehash_storm_carries_tail(self):
        """Driver storm-cap abort: the exception arrives with the last-K
        events (here the successful epoch before the storm)."""

        class _StubEmulator:
            def __init__(self, outcomes):
                self._outcomes = list(outcomes)
                self.virtual_clock = 0

            def emulate_step(self, step):
                return self._outcomes.pop(0)

        class _StubWorkload:
            n_procs = 4
            address_space = 64

            def __init__(self, epochs):
                self._epochs = [list(e) for e in epochs]

            def stream(self, epochs):
                out = list(self._epochs[:epochs])
                out += [[] for _ in range(epochs - len(out))]
                return out

        def req(rid):
            return TrafficRequest(rid=rid, pid=0, addr=5 + rid, kind="write",
                                  epoch=0, value=rid)

        obs = Observer(flight_recorder=16)
        emu = _StubEmulator([StepCost(1, 1), StepCost(1, 1, rehashes=5)])
        wl = _StubWorkload([[req(0)], [req(1)]])
        drv = OnlineEmulator(emu, wl, rehash_storm_cap=4, observer=obs)
        with pytest.raises(RehashStormError, match="cap 4") as exc:
            drv.run(2)
        tail = exc.value.flight_tail
        assert any(e["kind"] == "epoch" for e in tail)

    def test_race_error_carries_tail(self):
        from repro.analysis.races import RaceError
        from repro.pram.machine import Read, Write

        def racy(pid, nprocs):  # all pids read cell 0: EREW-illegal
            v = yield Read(0)
            yield Write(1, pid + (0 * (v or 0)))

        obs = Observer(flight_recorder=8)
        pram = PRAM(4, 8, mode=AccessMode.EREW, enforce_mode=False,
                    observer=obs)
        pram.load(racy)
        with pytest.raises(RaceError) as exc:
            pram.run(check_races=True)
        tail = exc.value.flight_tail
        assert tail
        assert all(e["kind"] == "pram_step" for e in tail)


# ---------------------------------------------------------------------------
# opt-out bit identity + end-to-end observer yield
# ---------------------------------------------------------------------------

def _run_cc(observer, network, engine):
    g = gnp_graph(12, 0.25, seed=7)
    return run_app(
        connected_components(g),
        connected_components_oracle(g),
        network=network,
        engine=engine,
        seed=0,
        observer=observer,
    )


class TestBitIdentity:
    @pytest.mark.parametrize("network", ["leveled", "mesh"])
    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_observer_never_changes_results(self, network, engine):
        base = _run_cc(None, network, engine)
        assert _run_cc(NullObserver(), network, engine) == base
        assert _run_cc(Observer(), network, engine) == base

    def test_one_observer_lights_up_the_stack(self):
        obs = Observer()
        run = _run_cc(obs, "leveled", "fast")
        assert run.memory_matches and run.oracle_match
        # metrics: service counters landed
        snap = obs.metrics.snapshot()["metrics"]
        assert "pram_steps_total" in snap
        assert "network_steps_total" in snap
        # tracing: a Perfetto document with the app + routing categories
        doc = obs.tracer.to_chrome_trace()
        cats = {e["cat"] for e in doc["traceEvents"]}
        assert {"app", "request", "reply"} <= cats
        # profiling: per-mode and per-phase wall-time breakdowns
        prof = obs.profile.to_dict()
        assert prof["runs"] > 0
        assert prof["modes"] and prof["phases"]
        assert all(t >= 0 for t in prof["phases"].values())
        # flight data: recent engine steps are on the ring
        assert any(e["kind"] == "engine_step" for e in obs.flight_tail())

    def test_profile_phases_on_both_engines(self):
        phases = {}
        for engine in ("fast", "reference"):
            obs = Observer(metrics=False, tracing=False, flight_recorder=0)
            net = Mesh2D.square(4)
            emu = MeshEmulator(net, 64, seed=3, engine=engine, observer=obs)
            emu.emulate_step(permutation_step(net.num_nodes, 64, seed=4))
            phases[engine] = obs.profile.to_dict()["phases"]
        # both engines attribute wall time to named routing phases
        assert phases["fast"] and phases["reference"]
        assert "transmission" in phases["reference"]


# ---------------------------------------------------------------------------
# unified report schema
# ---------------------------------------------------------------------------

def _driver_report(engine):
    mesh = Mesh2D.square(4)
    n = mesh.num_nodes
    em = MeshEmulator(mesh, 4 * n, mode="crcw", seed=5, engine=engine)
    wl = WorkloadGenerator(
        n,
        arrivals=PoissonArrivals(0.6 * n),
        keys=HotspotKeys(4 * n, hot_addresses=3, hot_fraction=0.5),
        read_fraction=0.8,
        seed=9,
    )
    return OnlineEmulator(em, wl).run(8)


def _strip_dispatch(d):
    """Drop the engine-dispatch detail (the one legitimately
    engine-dependent slice) exactly as the differential tests do."""
    d = json.loads(json.dumps(d))
    d.pop("run_mode_counts", None)
    for ep in d.get("epochs", []):
        ep.pop("run_modes", None)
    return d


class TestReportSchema:
    def test_versioned_envelope(self):
        d = versioned("demo", {"x": 1})
        assert schema_of(d) == (SCHEMA_VERSION, "demo")
        assert d["x"] == 1
        with pytest.raises(ValueError):
            versioned("demo", {"schema": {}})
        assert schema_of({"x": 1}) is None

    def test_stable_json_is_order_insensitive(self):
        assert stable_json({"b": 1, "a": 2}) == stable_json({"a": 2, "b": 1})

    def test_traffic_report_sections(self):
        report = _driver_report("fast")
        d = report.to_dict()
        assert schema_of(d) == (SCHEMA_VERSION, "traffic_report")
        assert schema_of(d["traffic"]) == (SCHEMA_VERSION, "traffic")
        assert schema_of(d["faults"]) == (SCHEMA_VERSION, "faults")
        assert schema_of(d["tenants"]) == (SCHEMA_VERSION, "tenants")
        # sections agree with the historical flat keys
        assert d["traffic"]["total_delivered"] == d["total_delivered"]
        assert d["faults"]["total_rehashes"] == d["total_rehashes"]
        assert d["tenants"]["totals"] == report.tenant_totals()

    def test_round_trip_stable_across_engines(self):
        fast = _strip_dispatch(_driver_report("fast").to_dict())
        ref = _strip_dispatch(_driver_report("reference").to_dict())
        assert stable_json(fast) == stable_json(ref)
