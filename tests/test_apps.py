"""Application conformance: PRAM algorithms vs oracles through the stack.

The tentpole property: every emulated run of a real algorithm —
connected components, partition refinement — must reproduce its
sequential oracle's answer exactly, on every seeded input family, on
both networks, under both engines, sharded or not.  Layers pinned here:

* **inputs** — the seeded graph/LTS families are deterministic, valid,
  and shaped as advertised (degree bounds, disjoint matchings, total
  transition functions);
* **oracles** — union-find components and coarsest-partition refinement
  agree with hand-computed answers on canonical instances;
* **native** — each PRAM program's own verifier passes and its result
  region equals the oracle across a family sweep;
* **emulated** — ``run_app`` reports ``oracle_match`` and
  ``memory_matches`` on every network x engine x shard-count cell, and
  repeated runs under a fixed seed are bit-identical;
* **faults** — a prolonged mesh link-down window stalls but no longer
  kills EREW reply routing (the retry regression), and a permanent
  window still fails loudly as a rehash storm.
"""

import math

import pytest

from repro.analysis.races import classify_program
from repro.apps import (
    APP_PROGRAM_BUILDERS,
    LTS,
    Graph,
    bisimulation,
    bisimulation_oracle,
    bounded_degree_graph,
    broken_erew_components,
    build_emulator,
    connected_components,
    connected_components_oracle,
    cycle_lts,
    gnp_graph,
    leveled_for,
    matching_components,
    matching_graph,
    mesh_for,
    path_graph,
    random_lts,
    run_app,
    star_graph,
)
from repro.emulation.mesh import MeshEmulator
from repro.emulation.replay import replay_program
from repro.faults.plan import FaultSchedule, RehashStormError
from repro.pram.programs import ALL_PROGRAM_BUILDERS
from repro.pram.variants import AccessMode
from repro.topology.mesh import Mesh2D


# ---------------------------------------------------------------------------
# input families
# ---------------------------------------------------------------------------


class TestGraphFamilies:
    def test_graph_validates_vertex_range(self):
        with pytest.raises(ValueError):
            Graph(3, ((0, 3),))

    def test_graph_requires_ordered_distinct_endpoints(self):
        with pytest.raises(ValueError):
            Graph(3, ((2, 1),))
        with pytest.raises(ValueError):
            Graph(3, ((1, 1),))

    def test_gnp_deterministic_under_seed(self):
        a = gnp_graph(20, 0.3, seed=9)
        b = gnp_graph(20, 0.3, seed=9)
        assert a == b
        assert a != gnp_graph(20, 0.3, seed=10)

    def test_gnp_edges_valid_and_deduplicated(self):
        g = gnp_graph(15, 0.4, seed=3)
        assert len(set(g.edges)) == g.m
        assert all(0 <= u < v < g.n for u, v in g.edges)

    def test_bounded_degree_respects_bound(self):
        g = bounded_degree_graph(24, 3, seed=7)
        deg = [0] * g.n
        for u, v in g.edges:
            deg[u] += 1
            deg[v] += 1
        assert max(deg) <= 3

    def test_star_and_path_shapes(self):
        s = star_graph(6)
        assert sorted(s.edges) == [(0, i) for i in range(1, 6)]
        p = path_graph(5)
        assert sorted(p.edges) == [(i, i + 1) for i in range(4)]

    def test_matching_edges_are_disjoint(self):
        g = matching_graph(14, seed=2)
        seen: set[int] = set()
        for u, v in g.edges:
            assert u not in seen and v not in seen
            seen.update((u, v))
        assert len(seen) == 14

    def test_random_lts_total_and_deterministic(self):
        a = random_lts(10, 3, seed=4)
        b = random_lts(10, 3, seed=4)
        assert a == b
        assert len(a.delta) == 10
        assert all(len(row) == 3 for row in a.delta)
        assert all(0 <= t < 10 for row in a.delta for t in row)

    def test_lts_validates_targets_and_obs(self):
        with pytest.raises(ValueError):
            LTS(2, 1, ((0,), (5,)), (0, 1))
        with pytest.raises(ValueError):
            LTS(2, 1, ((0,), (1,)), (0,))

    def test_cycle_lts_shape(self):
        lts = cycle_lts(6, marked=2)
        assert lts.n_states == 6
        assert [row[0] for row in lts.delta] == [1, 2, 3, 4, 5, 0]
        assert lts.obs == (1, 1, 0, 0, 0, 0)


# ---------------------------------------------------------------------------
# oracles
# ---------------------------------------------------------------------------


class TestOracles:
    def test_cc_oracle_star(self):
        assert connected_components_oracle(star_graph(5)) == [0] * 5

    def test_cc_oracle_disjoint_pieces(self):
        g = Graph(6, ((0, 1), (1, 2), (4, 5)))
        assert connected_components_oracle(g) == [0, 0, 0, 3, 4, 4]

    def test_cc_oracle_empty_graph(self):
        assert connected_components_oracle(Graph(4, ())) == [0, 1, 2, 3]

    def test_cc_oracle_path_single_component(self):
        assert connected_components_oracle(path_graph(7)) == [0] * 7

    def test_bisim_oracle_uniform_cycle_collapses(self):
        # every state marked: one block, representative 0 everywhere
        lts = cycle_lts(5, marked=5)
        assert bisimulation_oracle(lts) == [0] * 5

    def test_bisim_oracle_distinguishes_by_distance_to_mark(self):
        # one marked state on a 4-cycle: blocks = distance to the mark,
        # so all four states end up distinguishable
        lts = cycle_lts(4, marked=1)
        part = bisimulation_oracle(lts)
        assert len(set(part)) == 4

    def test_bisim_oracle_labels_are_min_representatives(self):
        lts = random_lts(12, 2, seed=8)
        part = bisimulation_oracle(lts)
        for s, block in enumerate(part):
            assert part[block] == block
            assert block <= s


# ---------------------------------------------------------------------------
# native PRAM runs vs oracle (family sweeps)
# ---------------------------------------------------------------------------

GRAPH_FAMILIES = [
    ("gnp-sparse", lambda seed: gnp_graph(12, 0.12, seed=seed)),
    ("gnp-dense", lambda seed: gnp_graph(10, 0.5, seed=seed)),
    ("bounded-degree", lambda seed: bounded_degree_graph(12, 2, seed=seed)),
    ("star", lambda seed: star_graph(9 + (seed % 3))),
    ("path", lambda seed: path_graph(8 + (seed % 4))),
]

LTS_FAMILIES = [
    ("random", lambda seed: random_lts(8, 2, seed=seed)),
    ("random-3label", lambda seed: random_lts(6, 3, seed=seed)),
    ("cycle", lambda seed: cycle_lts(6, marked=1 + (seed % 5))),
]


class TestNativePrograms:
    @pytest.mark.parametrize("family,make", GRAPH_FAMILIES, ids=[f[0] for f in GRAPH_FAMILIES])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_connected_components_matches_oracle(self, family, make, seed):
        g = make(seed)
        spec = connected_components(g)
        pram = spec.run()
        got = [pram.memory.read(i) for i in range(g.n)]
        assert got == connected_components_oracle(g)

    @pytest.mark.parametrize("family,make", LTS_FAMILIES, ids=[f[0] for f in LTS_FAMILIES])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_bisimulation_matches_oracle(self, family, make, seed):
        lts = make(seed)
        spec = bisimulation(lts)
        pram = spec.run()
        got = [pram.memory.read(i) for i in range(lts.n_states)]
        assert got == bisimulation_oracle(lts)

    @pytest.mark.parametrize("seed", [3, 5, 8])
    def test_matching_components_matches_oracle(self, seed):
        g = matching_graph(12, seed=seed)
        spec = matching_components(g)
        pram = spec.run()
        got = [pram.memory.read(i) for i in range(g.n)]
        assert got == connected_components_oracle(g)

    def test_matching_components_rejects_nonmatching(self):
        with pytest.raises(ValueError):
            matching_components(path_graph(4))

    def test_registered_builders_present_and_runnable(self):
        for name in ("connected-components", "matching-components", "bisimulation"):
            assert name in APP_PROGRAM_BUILDERS
            assert name in ALL_PROGRAM_BUILDERS
            spec = ALL_PROGRAM_BUILDERS[name]()
            spec.run()  # ProgramSpec.run invokes the spec's own verifier

    @pytest.mark.parametrize(
        "name", ["connected-components", "matching-components", "bisimulation"]
    )
    def test_classification_is_exact(self, name):
        assert classify_program(APP_PROGRAM_BUILDERS[name]()).verdict == "exact"


# ---------------------------------------------------------------------------
# emulated runs (the tentpole matrix)
# ---------------------------------------------------------------------------


def _assert_good(run):
    assert run.oracle_match
    assert run.memory_matches
    assert run.slowdown > 0
    assert run.normalized_slowdown > 0
    assert 0.0 <= run.combining_hit_rate <= 1.0


class TestEmulatedRuns:
    @pytest.mark.parametrize("network", ["leveled", "mesh"])
    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_connected_components_emulated(self, network, engine):
        g = gnp_graph(12, 0.25, seed=7)
        run = run_app(
            connected_components(g),
            connected_components_oracle(g),
            network=network,
            engine=engine,
            seed=0,
        )
        _assert_good(run)

    @pytest.mark.parametrize("network", ["leveled", "mesh"])
    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_bisimulation_emulated(self, network, engine):
        lts = random_lts(8, 2, seed=11)
        run = run_app(
            bisimulation(lts),
            bisimulation_oracle(lts),
            network=network,
            engine=engine,
            seed=0,
        )
        _assert_good(run)

    @pytest.mark.parametrize("network", ["leveled", "mesh"])
    @pytest.mark.parametrize("emulator_mode", ["erew", "crcw"])
    def test_matching_components_emulated_both_modes(self, network, emulator_mode):
        g = matching_graph(12, seed=5)
        run = run_app(
            matching_components(g),
            connected_components_oracle(g),
            network=network,
            emulator_mode=emulator_mode,
            seed=0,
        )
        _assert_good(run)
        assert run.emulator_mode == emulator_mode

    @pytest.mark.parametrize("n_shards", [1, 4])
    def test_connected_components_sharded_leveled(self, n_shards):
        g = gnp_graph(12, 0.25, seed=7)
        run = run_app(
            connected_components(g),
            connected_components_oracle(g),
            network="leveled",
            n_shards=n_shards,
            seed=0,
        )
        _assert_good(run)
        assert run.n_shards == n_shards

    @pytest.mark.parametrize("n_shards", [1, 4])
    def test_bisimulation_sharded_mesh(self, n_shards):
        lts = random_lts(8, 2, seed=11)
        run = run_app(
            bisimulation(lts),
            bisimulation_oracle(lts),
            network="mesh",
            n_shards=n_shards,
            seed=0,
        )
        _assert_good(run)

    @pytest.mark.parametrize("network", ["leveled", "mesh"])
    def test_fixed_seed_is_bit_identical(self, network):
        g = gnp_graph(12, 0.25, seed=7)
        oracle = connected_components_oracle(g)
        runs = [
            run_app(connected_components(g), oracle, network=network, seed=42)
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_engines_agree_on_slowdown(self):
        g = gnp_graph(12, 0.25, seed=7)
        oracle = connected_components_oracle(g)
        fast = run_app(connected_components(g), oracle, network="mesh", engine="fast", seed=0)
        ref = run_app(
            connected_components(g), oracle, network="mesh", engine="reference", seed=0
        )
        assert fast.slowdown == ref.slowdown
        assert fast.requests == ref.requests
        assert fast.combines == ref.combines

    def test_crcw_apps_actually_combine(self):
        g = star_graph(12)  # all leaves hook onto the center: heavy combining
        run = run_app(
            connected_components(g),
            connected_components_oracle(g),
            network="leveled",
            seed=0,
        )
        _assert_good(run)
        assert run.combines > 0

    def test_slowdown_tracks_network_scale(self):
        g = gnp_graph(12, 0.25, seed=7)
        oracle = connected_components_oracle(g)
        run = run_app(connected_components(g), oracle, network="leveled", seed=0)
        # the paper's O(log n) claim: slowdown within a constant factor
        # of the diameter (generous constant; pinned tight in the bench)
        assert run.slowdown <= 16 * run.scale
        assert run.predicted_log == math.log2(run.n_processors)


# ---------------------------------------------------------------------------
# harness plumbing
# ---------------------------------------------------------------------------


class TestHarness:
    def test_leveled_for_capacity(self):
        for n in (2, 3, 12, 16, 33):
            net = leveled_for(n)
            assert net.column_size >= max(2, n)

    def test_mesh_for_capacity(self):
        for n in (1, 2, 5, 12, 16, 17):
            mesh = mesh_for(n)
            assert mesh.num_nodes >= max(2, n)

    def test_build_emulator_rejects_unknown_network(self):
        with pytest.raises(ValueError):
            build_emulator("hypercube", 4, 64)

    def test_build_emulator_rejects_sharded_faults(self):
        with pytest.raises(ValueError):
            build_emulator("mesh", 4, 64, n_shards=2, faults=FaultSchedule())

    def test_run_app_defaults_mode_from_spec(self):
        g = matching_graph(8, seed=1)
        run = run_app(
            matching_components(g), connected_components_oracle(g), network="leveled"
        )
        assert run.emulator_mode == "erew"
        spec = connected_components(g)
        assert spec.mode is AccessMode.CRCW


# ---------------------------------------------------------------------------
# fault regression: prolonged link-down window on EREW mesh replies
# ---------------------------------------------------------------------------


def _node_links_down(mesh, node, start, stop=None):
    """Down every directed link touching *node* at *start* (up at *stop*)."""
    sched = FaultSchedule()
    for w in mesh.neighbors(node):
        for link in ((node, w), (w, node)):
            sched = sched.link_down(start, link)
            if stop is not None:
                sched = sched.link_up(stop, link)
    return sched


class TestMeshReplyRetry:
    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_recoverable_window_completes(self, engine):
        g = matching_graph(12, seed=5)
        spec = matching_components(g)
        mesh = Mesh2D.square(4)
        # the window opens mid-run and outlasts one full routing budget,
        # so the first reply attempt must fail and a retry must land
        sched = _node_links_down(mesh, 0, start=4, stop=4 + 6500)
        emulator = MeshEmulator(
            mesh, spec.memory_size, mode="erew", seed=123, engine=engine, faults=sched
        )
        result = replay_program(spec, emulator)
        assert result.memory_matches
        got = [emulator.memory.read(i) for i in range(g.n)]
        assert got == connected_components_oracle(g)
        report = result.report
        assert report.total_stall_steps >= 6000  # >= one exhausted budget
        assert any(c.fault_stalls > 0 for c in report.costs)

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_recoverable_window_engine_identical(self, engine):
        # pin the exact accounting so fast and reference can never drift
        g = matching_graph(12, seed=5)
        spec = matching_components(g)
        mesh = Mesh2D.square(4)
        sched = _node_links_down(mesh, 0, start=4, stop=4 + 6500)
        emulator = MeshEmulator(
            mesh, spec.memory_size, mode="erew", seed=123, engine=engine, faults=sched
        )
        report = replay_program(spec, emulator).report
        stalled = [c for c in report.costs if c.stall_steps]
        assert len(stalled) == 1
        assert stalled[0].stall_steps == 6000
        assert stalled[0].fault_stalls == 19494
        assert stalled[0].reply_steps == 503

    def test_permanent_window_raises_rehash_storm(self):
        g = matching_graph(12, seed=5)
        spec = matching_components(g)
        mesh = Mesh2D.square(4)
        sched = _node_links_down(mesh, 0, start=4)  # never comes back up
        emulator = MeshEmulator(
            mesh, spec.memory_size, mode="erew", seed=123, engine="fast", faults=sched
        )
        with pytest.raises(RehashStormError):
            replay_program(spec, emulator)

    def test_fast_engine_blocks_duplicate_coded_links(self):
        # mesh corner links carry duplicated arithmetic codes; a down
        # wire must block every slot that crosses it (regression: the
        # fast path used to keep only one slot per code and let packets
        # sail through the other)
        from repro.routing.mesh_router import MeshRouter
        from repro.routing.packet import Packet
        from repro.faults.runtime import LinkFaultTimeline

        mesh = Mesh2D.square(4)
        timeline = LinkFaultTimeline(_node_links_down(mesh, 0, start=0).link_events)
        stats = {}
        for engine in ("fast", "reference"):
            router = MeshRouter(mesh, seed=1, engine=engine, link_faults=timeline)
            packets = [
                Packet(0, 7, 0, kind="reply", payload=1),
                Packet(1, 5, 3, kind="reply", payload=2),
            ]
            stats[engine] = router.route(None, None, max_steps=50, packets=packets)
        assert not stats["fast"].completed
        assert not stats["reference"].completed
        assert stats["fast"].steps == stats["reference"].steps
        assert stats["fast"].fault_stalls == stats["reference"].fault_stalls
