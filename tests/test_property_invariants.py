"""Property-based tests on the library's cross-cutting invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import queue_line_check
from repro.emulation import LeveledEmulator
from repro.pram import ReadRequest, StepTrace
from repro.routing import LeveledRouter, MeshRouter, SynchronousEngine, make_packets
from repro.topology import DAryButterflyLeveled, DWayShuffle, Mesh2D, StarGraph


class TestRoutingInvariants:
    @given(
        d=st.integers(2, 3),
        levels=st.integers(2, 5),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=15, deadline=None)
    def test_leveled_routing_always_delivers_exact_hops(self, d, levels, seed):
        """Every packet crosses exactly 2L links and arrives; no routing
        randomness can break delivery (Theorem 2.1's setting)."""
        net = DAryButterflyLeveled(d, levels)
        router = LeveledRouter(net, seed=seed)
        stats = router.route_random_permutation()
        assert stats.completed
        assert set(stats.hops) == {2 * levels}

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_mesh_many_one_always_delivers(self, seed):
        """Arbitrary (even many-one) request patterns terminate."""
        rng = np.random.default_rng(seed)
        mesh = Mesh2D.square(6)
        sources = np.arange(36)
        dests = rng.integers(0, 36, size=36)
        stats = MeshRouter(mesh, seed=seed).route(sources, dests, max_steps=5000)
        assert stats.completed

    @given(
        n=st.integers(3, 5),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=10, deadline=None)
    def test_star_routing_total_hops_bounded(self, n, seed):
        from repro.routing import StarRouter

        star = StarGraph(n)
        router = StarRouter(star, seed=seed)
        stats = router.route_random_permutation()
        assert stats.completed
        assert stats.max_hops <= 2 * star.diameter  # two greedy phases

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_queue_line_lemma_on_single_pass_runs(self, seed):
        """Fact 2.1 audited in its actual setting: a single unique-path
        pass over a *leveled* network, where links are level-distinguished
        and the scheme is therefore nonrepeating.

        (On the physical shuffle the same directed link recurs at
        different hop indices, nonrepeating fails, and the lemma is not
        guaranteed — hypothesis found such a counterexample, which is why
        this test routes on the logical leveled view.)
        """
        net = DAryButterflyLeveled(2, 4)
        rng = np.random.default_rng(seed)
        perm = rng.permutation(net.column_size)

        def next_hop(p):
            level, row = p.node
            if level == net.num_levels:
                return None
            return (level + 1, net.unique_next(level, row, p.dest))

        packets = make_packets([(0, int(s)) for s in range(net.column_size)], perm)
        engine = SynchronousEngine(track_paths=True)
        stats = engine.run(packets, next_hop, max_steps=500)
        assert stats.completed
        assert queue_line_check(packets) == []


class TestCombiningInvariants:
    @given(
        n_readers=st.integers(2, 32),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=10, deadline=None)
    def test_every_reader_of_a_hotspot_is_answered(self, n_readers, seed):
        """The combining tree plus reply fan-out never loses a reader."""
        net = DAryButterflyLeveled(2, 5)
        emu = LeveledEmulator(net, address_space=64, mode="crcw", seed=seed)
        emu.memory.write(7, "v")
        step = StepTrace(reads=[ReadRequest(pid, 7) for pid in range(n_readers)])
        cost = emu.emulate_step(step)  # internal validation counts replies
        assert cost.requests == n_readers

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_emulated_memory_equals_pram_memory(self, seed):
        """Random EREW write/read traces leave identical memory on the
        abstract PRAM and the emulated network."""
        from repro.pram import random_trace

        net = DAryButterflyLeveled(2, 4)
        m = 64
        trace = random_trace(net.column_size, m, 3, seed=seed)
        emu = LeveledEmulator(net, address_space=m, seed=seed)
        emu.emulate_trace(trace)
        # reference: apply the same writes directly
        from repro.pram import SharedMemory

        ref = SharedMemory(m)
        for step in trace:
            for w in step.writes:
                ref.write(w.addr, w.value)
        for addr in range(m):
            assert emu.memory.read(addr) == ref.read(addr)


class TestHashInvariants:
    @given(
        m=st.integers(16, 2048),
        n_modules=st.integers(2, 128),
        s=st.integers(1, 12),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_hash_range_and_determinism(self, m, n_modules, s, seed):
        from repro.hashing import HashFamily

        family = HashFamily(m, n_modules, s)
        h1 = family.sample(seed=seed)
        h2 = family.sample(seed=seed)
        xs = np.arange(min(m, 256))
        mapped = h1.map(xs)
        assert mapped.min() >= 0 and mapped.max() < n_modules
        assert np.array_equal(mapped, h2.map(xs))
