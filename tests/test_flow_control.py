"""Credit-based flow control + deadlock detector (Corollary 3.3).

Pins the contract of :mod:`repro.routing.flow_control` in both engines:

* a pinned crossing-flow configuration that *deadlocks* under plain
  backpressure (``flow_control="none"`` raises :class:`DeadlockError`)
  *completes* under the credit/escape protocol, with
  ``max_node_load <= node_capacity`` intact;
* the deadlock detector reports a no-progress step immediately (never
  spinning to ``max_steps``) and attaches the run's stats;
* fast and reference engines stay bit-for-bit identical with credits
  enabled — stats, counters, and per-packet delay/hop lists — across
  mesh, linear-array, leveled, and emulator workloads;
* the new ``credits_stalled`` / ``escape_hops`` counters behave.
"""

import numpy as np
import pytest

from repro.emulation.leveled import LeveledEmulator
from repro.emulation.mesh import MeshEmulator
from repro.pram.trace import hotspot_step, permutation_step
from repro.routing import (
    DeadlockError,
    FastPathEngine,
    GreedyMeshRouter,
    GreedyRouter,
    LeveledRouter,
    MeshRouter,
    SynchronousEngine,
    make_packets,
    random_linear_instance,
    route_linear,
)
from repro.topology import DAryButterflyLeveled, LinearArray, Mesh2D
from test_fast_engine import assert_stats_equal

# Two packets crossing on a line with capacity-1 nodes: the canonical
# wedge.  p0 (1 -> 3, eastbound) waits on node 2, held full by p1
# (2 -> 0, westbound), which waits on node 1, held full by p0.
CROSS_PATHS = [[1, 2, 3], [2, 1, 0]]


def _crossing_packets():
    return make_packets([p[0] for p in CROSS_PATHS], [p[-1] for p in CROSS_PATHS])


def _crossing_next_hop(p):
    path = CROSS_PATHS[p.pid]
    if p.node == p.dest:
        return None
    return path[path.index(p.node) + 1]


class TestPinnedCrossingFlow:
    """The wedge deadlocks under "none" and completes under "credit"."""

    def test_reference_none_deadlocks(self):
        engine = SynchronousEngine(node_capacity=1)
        with pytest.raises(DeadlockError) as exc:
            engine.run(_crossing_packets(), _crossing_next_hop, max_steps=10**9)
        stats = exc.value.stats
        assert not stats.completed
        assert stats.steps == 0  # detected on the very first wedged step
        assert "deadlock" in str(exc.value)

    def test_fast_none_deadlocks(self):
        engine = FastPathEngine(node_capacity=1)
        with pytest.raises(DeadlockError) as exc:
            engine.run(_crossing_packets(), CROSS_PATHS, num_nodes=4, max_steps=10**9)
        assert not exc.value.stats.completed
        assert exc.value.stats.steps == 0

    def test_none_engines_agree_on_the_wedge(self):
        with pytest.raises(DeadlockError) as ref:
            SynchronousEngine(node_capacity=1).run(
                _crossing_packets(), _crossing_next_hop, max_steps=100
            )
        with pytest.raises(DeadlockError) as fast:
            FastPathEngine(node_capacity=1).run(
                _crossing_packets(), CROSS_PATHS, num_nodes=4, max_steps=100
            )
        assert_stats_equal(fast.value.stats, ref.value.stats)

    def test_reference_credit_completes(self):
        engine = SynchronousEngine(node_capacity=1, flow_control="credit")
        stats = engine.run(
            _crossing_packets(), _crossing_next_hop, max_steps=100
        )
        assert stats.completed
        assert stats.max_node_load <= 1
        assert stats.escape_hops >= 1  # the wedge is broken via escape

    def test_fast_credit_completes(self):
        engine = FastPathEngine(node_capacity=1, flow_control="credit")
        stats = engine.run(
            _crossing_packets(), CROSS_PATHS, num_nodes=4, max_steps=100
        )
        assert stats.completed
        assert stats.max_node_load <= 1
        assert stats.escape_hops >= 1

    def test_credit_engines_agree_exactly(self):
        ref = SynchronousEngine(node_capacity=1, flow_control="credit").run(
            _crossing_packets(), _crossing_next_hop, max_steps=100
        )
        fast = FastPathEngine(node_capacity=1, flow_control="credit").run(
            _crossing_packets(), CROSS_PATHS, num_nodes=4, max_steps=100
        )
        assert_stats_equal(fast, ref)

    def test_greedy_router_end_to_end(self):
        """Same wedge through the router API on a real linear array."""
        arr = LinearArray(4)
        with pytest.raises(DeadlockError):
            GreedyRouter(arr, node_capacity=1, engine="fast").route(
                [1, 2], [3, 0], max_steps=1000
            )
        stats_by_engine = [
            GreedyRouter(
                arr, node_capacity=1, flow_control="credit", engine=eng
            ).route([1, 2], [3, 0], max_steps=1000)
            for eng in ("fast", "reference")
        ]
        assert_stats_equal(*stats_by_engine)
        assert stats_by_engine[0].completed
        assert stats_by_engine[0].max_node_load <= 1


class TestDeadlockDetector:
    def test_detects_promptly_not_at_max_steps(self):
        """A huge budget must not be consumed: the no-progress step is
        reported the moment it happens."""
        rng = np.random.default_rng(1)
        mesh = Mesh2D.square(8)
        n = mesh.num_nodes
        dests = rng.choice(rng.choice(n, size=4, replace=False), size=n)
        with pytest.raises(DeadlockError) as exc:
            GreedyMeshRouter(mesh, node_capacity=2, engine="fast").route(
                np.arange(n), dests, max_steps=10**9
            )
        assert exc.value.stats.steps < 200
        assert "no progress" in str(exc.value)

    def test_stats_attached_with_packet_writeback(self):
        pkts = _crossing_packets()
        with pytest.raises(DeadlockError) as exc:
            FastPathEngine(node_capacity=1).run(
                pkts, CROSS_PATHS, num_nodes=4, max_steps=100
            )
        assert exc.value.stats.delivered == 0
        # Both packets were written back at their wedged positions.
        assert [p.node for p in pkts] == [1, 2]

    def test_injection_gaps_are_not_deadlocks(self):
        """Steps that move nothing while injections are still pending
        must not trip the detector."""
        pkts = make_packets([0, 0], [3, 3])
        pkts[1].injected_at = 5
        arr = LinearArray(4)

        def nh(p):
            return None if p.node == p.dest else arr.route_next(p.node, p.dest)

        stats = SynchronousEngine(node_capacity=1, flow_control="credit").run(
            pkts, nh, max_steps=100
        )
        assert stats.completed


class TestCreditDifferentialSweep:
    """Random workloads with credits: completion, the capacity invariant,
    and field-for-field engine agreement."""

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("cap", [1, 2])
    def test_linear_two_hubs_tight_caps(self, seed, cap):
        rng = np.random.default_rng(seed)
        arr = LinearArray(24)
        hubs = rng.choice(arr.n, size=2, replace=False)
        dests = rng.choice(hubs, size=arr.n)
        runs = [
            GreedyRouter(
                arr, node_capacity=cap, flow_control="credit", engine=eng
            ).route(np.arange(arr.n), dests, max_steps=8000)
            for eng in ("fast", "reference")
        ]
        assert_stats_equal(*runs)
        assert runs[0].completed
        assert runs[0].max_node_load <= cap

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("cap", [2, 4])
    def test_three_stage_mesh_priority_queues(self, seed, cap):
        """Furthest-first heaps + credits: the packed-int heap path."""
        rng = np.random.default_rng(seed)
        mesh = Mesh2D.square(8)
        n = mesh.num_nodes
        dests = rng.choice(rng.choice(n, size=4, replace=False), size=n)
        runs = [
            MeshRouter(
                mesh,
                seed=seed,
                node_capacity=cap,
                flow_control="credit",
                engine=eng,
            ).route(np.arange(n), dests, max_steps=8000)
            for eng in ("fast", "reference")
        ]
        assert_stats_equal(*runs)
        assert runs[0].completed
        assert runs[0].max_node_load <= cap

    def test_crcw_combining_with_credits(self):
        """combine=True + capacity + credit: escape landings bypass
        combining identically in both engines."""
        rng = np.random.default_rng(7)
        mesh = Mesh2D.square(8)
        n = mesh.num_nodes
        addresses = rng.integers(6, size=n)
        dests = (addresses * 7) % n
        runs = []
        for eng in ("fast", "reference"):
            router = MeshRouter(
                mesh,
                seed=13,
                combine=True,
                node_capacity=3,
                flow_control="credit",
                engine=eng,
            )
            pkts = make_packets(
                list(range(n)), dests.tolist(), addresses=addresses.tolist()
            )
            runs.append(router.route(None, None, packets=pkts, max_steps=8000))
        assert_stats_equal(*runs)
        assert runs[0].completed
        assert runs[0].combines > 0

    def test_counters_zero_without_credit(self):
        mesh = Mesh2D.square(8)
        stats = MeshRouter(mesh, seed=3, node_capacity=8).route_random_permutation()
        assert stats.credits_stalled == 0
        assert stats.escape_hops == 0

    def test_congestion_populates_counters(self):
        rng = np.random.default_rng(2)
        mesh = Mesh2D.square(8)
        n = mesh.num_nodes
        hub = int(rng.integers(n))
        stats = GreedyMeshRouter(
            mesh, node_capacity=1, flow_control="credit", engine="fast"
        ).route(np.arange(n), [hub] * n, max_steps=8000)
        assert stats.completed
        assert stats.credits_stalled > 0
        assert stats.escape_hops > 0


class TestLeveledCredit:
    """Capacity + credits on leveled networks: the (pass, level) order is
    rank-monotone, and the wrap node's two key aliases must account
    capacity identically in both engines."""

    @pytest.mark.parametrize("intermediate", ["coin", "node"])
    @pytest.mark.parametrize("cap", [1, 2])
    def test_hotspot_h_relation_matches(self, intermediate, cap):
        net = DAryButterflyLeveled(2, 4)
        n = net.column_size
        rng = np.random.default_rng(3)
        dests = rng.integers(4, size=n)  # heavy collisions, no combining
        runs = [
            LeveledRouter(
                net,
                intermediate=intermediate,
                seed=21,
                node_capacity=cap,
                flow_control="credit",
                engine=eng,
            ).route(np.arange(n), dests, max_steps=4000)
            for eng in ("fast", "reference")
        ]
        assert_stats_equal(*runs)
        assert runs[0].completed
        assert runs[0].max_node_load <= cap

    def test_permutation_matches_under_plain_capacity(self):
        """flow_control="none" + capacity also agrees (the exit/wrap
        aliasing is exercised without the escape channel)."""
        net = DAryButterflyLeveled(2, 5)
        perm = np.random.default_rng(5).permutation(net.column_size)
        runs = [
            LeveledRouter(
                net, seed=9, node_capacity=2, engine=eng
            ).route_permutation(perm, max_steps=4000)
            for eng in ("fast", "reference")
        ]
        assert_stats_equal(*runs)
        assert runs[0].completed
        assert runs[0].max_node_load <= 2


class TestEmulatorsWithCredit:
    def test_mesh_emulator_step_costs_match(self):
        mesh = Mesh2D.square(6)
        n = mesh.num_nodes
        space = 4 * n
        steps = [
            permutation_step(n, space, seed=11),
            permutation_step(n, space, seed=12, kind="write"),
        ]
        costs = []
        for eng in ("fast", "reference"):
            em = MeshEmulator(
                mesh,
                space,
                mode="erew",
                node_capacity=3,
                flow_control="credit",
                seed=5,
                engine=eng,
            )
            costs.append([em.emulate_step(s) for s in steps])
        for a, b in zip(*costs):
            assert (a.request_steps, a.reply_steps, a.rehashes, a.max_queue) == (
                b.request_steps,
                b.reply_steps,
                b.rehashes,
                b.max_queue,
            )

    def test_leveled_emulator_step_costs_match(self):
        net = DAryButterflyLeveled(2, 4)
        n = net.column_size
        space = 4 * n
        step = hotspot_step(n, space, hot_addresses=3, hot_fraction=0.5, seed=8)
        costs = []
        for eng in ("fast", "reference"):
            em = LeveledEmulator(
                net,
                space,
                mode="crcw",
                node_capacity=2,
                flow_control="credit",
                seed=6,
                engine=eng,
            )
            costs.append(em.emulate_step(step))
        a, b = costs
        assert (a.request_steps, a.reply_steps, a.combines, a.rehashes) == (
            b.request_steps,
            b.reply_steps,
            b.combines,
            b.rehashes,
        )


class TestRouteLinearEngines:
    """route_linear grew engine plumbing (the last always-reference row
    of the coverage matrix)."""

    @pytest.mark.parametrize("discipline", ["furthest_first", "fifo"])
    def test_differential(self, discipline):
        origins, dests = random_linear_instance(40, 80, seed=3)
        fast = route_linear(40, origins, dests, discipline=discipline, engine="fast")
        ref = route_linear(
            40, origins, dests, discipline=discipline, engine="reference"
        )
        assert fast.completed
        assert_stats_equal(fast, ref)

    def test_auto_resolves(self):
        stats = route_linear(10, [0, 9], [9, 0])
        assert stats.completed

    def test_bad_engine_rejected(self):
        with pytest.raises(ValueError):
            route_linear(10, [0], [5], engine="warp")


class TestValidation:
    def test_credit_requires_capacity(self):
        with pytest.raises(ValueError, match="node_capacity"):
            SynchronousEngine(flow_control="credit")
        with pytest.raises(ValueError, match="node_capacity"):
            FastPathEngine(flow_control="credit")

    def test_credit_rejects_service_rate(self):
        with pytest.raises(ValueError, match="service_rate"):
            SynchronousEngine(
                node_capacity=1, node_service_rate=1, flow_control="credit"
            )

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="flow_control"):
            SynchronousEngine(flow_control="window")

    def test_router_validates_eagerly(self):
        with pytest.raises(ValueError):
            GreedyMeshRouter(Mesh2D.square(4), flow_control="credit")
        with pytest.raises(ValueError):
            LeveledRouter(DAryButterflyLeveled(2, 3), flow_control="magic")

    def test_emulator_validates_eagerly(self):
        with pytest.raises(ValueError):
            MeshEmulator(Mesh2D.square(4), 16, flow_control="credit")
        with pytest.raises(ValueError):
            LeveledEmulator(DAryButterflyLeveled(2, 3), 16, flow_control="credit")
