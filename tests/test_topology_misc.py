"""Tests for hypercube, butterfly, mesh, and linear array topologies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import Butterfly, Hypercube, LinearArray, Mesh2D


class TestHypercube:
    def test_counts(self):
        h = Hypercube(4)
        assert h.num_nodes == 16
        assert h.degree == 4
        assert h.diameter == 4

    def test_neighbors_are_bit_flips(self):
        h = Hypercube(3)
        assert set(h.neighbors(0b000)) == {0b001, 0b010, 0b100}

    def test_distance_is_hamming(self):
        h = Hypercube(5)
        assert h.distance(0b10101, 0b01010) == 5
        assert h.distance(7, 7) == 0

    def test_ecube_route_fixes_lowest_bit_first(self):
        h = Hypercube(4)
        assert h.route_next(0b0000, 0b1010) == 0b0010

    def test_greedy_path_length_equals_distance(self):
        h = Hypercube(4)
        for u, v in [(0, 15), (3, 12), (9, 9)]:
            assert len(h.greedy_path(u, v)) - 1 == h.distance(u, v)

    def test_diameter_matches_bfs(self):
        h = Hypercube(4)
        assert h.bfs_eccentricity(0) == 4

    def test_label_codec(self):
        h = Hypercube(3)
        assert h.label(5) == "101"
        assert h.node_id("101") == 5


class TestButterfly:
    def test_counts(self):
        b = Butterfly(3)
        assert b.rows == 8
        assert b.num_nodes == 4 * 8

    def test_pack_unpack(self):
        b = Butterfly(3)
        for col in range(4):
            for row in range(8):
                assert b.unpack(b.pack(col, row)) == (col, row)

    def test_pack_validates(self):
        b = Butterfly(2)
        with pytest.raises(ValueError):
            b.pack(3, 0)
        with pytest.raises(ValueError):
            b.pack(0, 4)

    def test_forward_edges(self):
        b = Butterfly(3)
        v = b.pack(1, 0b000)
        assert set(b.forward_neighbors(v)) == {b.pack(2, 0b000), b.pack(2, 0b010)}

    def test_last_column_no_forward(self):
        b = Butterfly(2)
        assert b.forward_neighbors(b.pack(2, 1)) == []

    def test_unique_forward_path(self):
        # Exactly one forward path column 0 -> column k for every row pair.
        b = Butterfly(3)
        for src_row in range(8):
            for dst_row in range(8):
                cur = b.pack(0, src_row)
                for _ in range(3):
                    cur = b.forward_next(cur, dst_row)
                assert b.unpack(cur) == (3, dst_row)

    def test_forward_path_uniqueness_by_counting(self):
        b = Butterfly(3)
        counts = {b.pack(0, 3): 1}
        for _ in range(3):
            nxt: dict[int, int] = {}
            for node, c in counts.items():
                for w in b.forward_neighbors(node):
                    nxt[w] = nxt.get(w, 0) + c
            counts = nxt
        assert all(c == 1 for c in counts.values())
        assert len(counts) == 8

    def test_backward_next_inverts_forward(self):
        b = Butterfly(4)
        src_row, dst_row = 0b1010, 0b0110
        cur = b.pack(0, src_row)
        for _ in range(4):
            cur = b.forward_next(cur, dst_row)
        for _ in range(4):
            cur = b.backward_next(cur, src_row)
        assert b.unpack(cur) == (0, src_row)

    def test_route_next_rim_to_rim(self):
        b = Butterfly(3)
        u = b.pack(0, 5)
        v = b.pack(3, 2)
        cur = u
        hops = 0
        while cur != v:
            cur = b.route_next(cur, v)
            hops += 1
            assert hops <= 2 * b.k
        assert hops == 3

    def test_neighbors_symmetric(self):
        b = Butterfly(2)
        for v in range(b.num_nodes):
            for w in b.neighbors(v):
                assert v in b.neighbors(w)


class TestMesh:
    def test_counts(self):
        m = Mesh2D.square(5)
        assert m.num_nodes == 25
        assert m.diameter == 8

    def test_rect(self):
        m = Mesh2D(2, 7)
        assert m.num_nodes == 14
        assert m.diameter == 7

    def test_pack_unpack(self):
        m = Mesh2D(3, 4)
        assert m.unpack(m.pack(2, 3)) == (2, 3)
        with pytest.raises(ValueError):
            m.pack(3, 0)

    def test_corner_and_center_degree(self):
        m = Mesh2D.square(4)
        assert len(m.neighbors(m.pack(0, 0))) == 2
        assert len(m.neighbors(m.pack(1, 1))) == 4
        assert len(m.neighbors(m.pack(0, 1))) == 3

    def test_distance_manhattan(self):
        m = Mesh2D.square(6)
        assert m.distance(m.pack(0, 0), m.pack(5, 5)) == 10

    def test_route_next_column_first(self):
        m = Mesh2D.square(4)
        cur = m.pack(0, 0)
        dest = m.pack(3, 3)
        assert m.unpack(m.route_next(cur, dest)) == (0, 1)

    def test_greedy_path_is_shortest(self):
        m = Mesh2D.square(5)
        for u, v in [(0, 24), (7, 13), (20, 4)]:
            assert len(m.greedy_path(u, v)) - 1 == m.distance(u, v)

    def test_slices_partition_rows(self):
        m = Mesh2D.square(8)
        rows = []
        for s in range(4):
            rows.extend(m.slice_row_range(s, 2))
        assert rows == list(range(8))
        assert m.slice_of_row(5, 2) == 2

    def test_slice_validation(self):
        m = Mesh2D.square(4)
        with pytest.raises(ValueError):
            m.slice_row_range(9, 2)
        with pytest.raises(ValueError):
            m.slice_of_row(0, 0)

    @given(st.integers(0, 35), st.integers(0, 35))
    @settings(max_examples=40, deadline=None)
    def test_route_decreases_distance(self, u, v):
        m = Mesh2D.square(6)
        if u == v:
            assert m.route_next(u, v) == u
        else:
            assert m.distance(m.route_next(u, v), v) == m.distance(u, v) - 1


class TestLinearArray:
    def test_basic(self):
        a = LinearArray(10)
        assert a.num_nodes == 10
        assert a.diameter == 9
        assert a.neighbors(0) == [1]
        assert a.neighbors(9) == [8]
        assert set(a.neighbors(5)) == {4, 6}

    def test_route(self):
        a = LinearArray(8)
        assert a.route_next(2, 6) == 3
        assert a.route_next(6, 2) == 5
        assert a.route_next(4, 4) == 4

    def test_distance(self):
        a = LinearArray(8)
        assert a.distance(1, 7) == 6
