"""Smoke + shape tests for the experiment suite (small parameters)."""

import pytest

from repro.experiments import ALL_EXPERIMENTS, all_figures, run_sweep
from repro.experiments.exp_figures import (
    figure1_leveled_template,
    figure2_star_graphs,
    figure3_star_logical,
    figure4_two_way_shuffle,
    figure5_mesh_slices,
)
from repro.experiments.exp_hash import run_e5
from repro.experiments.exp_leveled import run_e1
from repro.experiments.exp_mesh import run_e7, run_linear_primitive
from repro.experiments.exp_shuffle import run_e3
from repro.experiments.exp_star import run_e2
from repro.util.tables import Table


class TestHarness:
    def test_run_sweep_reproducible(self):
        def trial(rng, *, x):
            return {"v": float(rng.integers(100)) + x}

        rows1 = run_sweep(trial, [{"x": 1}, {"x": 2}], trials=3, seed=5)
        rows2 = run_sweep(trial, [{"x": 1}, {"x": 2}], trials=3, seed=5)
        assert rows1[0].samples == rows2[0].samples
        assert rows1[1].mean("v") != rows1[0].mean("v")

    def test_row_aggregates(self):
        def trial(rng, *, x):
            return {"v": x}

        rows = run_sweep(trial, [{"x": 3}], trials=4, seed=1)
        assert rows[0].mean("v") == 3
        assert rows[0].max("v") == 3
        assert rows[0].summary("v").n == 4


class TestExperimentTables:
    def test_registry_complete(self):
        # every experiment id from DESIGN.md §4 is runnable
        expected = {
            "E1", "E2", "E2b", "E2c", "E2d", "E3", "E3b", "E4", "E5", "E5b",
            "E6", "E6b", "E6c", "E7", "E7b", "E7c", "E7d", "E7e", "E8", "E9",
            "E10", "E11a", "E11b", "E11c", "E12",
        }
        assert expected <= set(ALL_EXPERIMENTS)

    def test_e1_small(self):
        table = run_e1(settings=((2, 3), (2, 4)), trials=1, seed=1)
        assert isinstance(table, Table)
        assert len(table.rows) == 2
        assert "Theorem 2.1" in table.render()

    def test_e2_small(self):
        table = run_e2(ns=(4,), trials=1, seed=2)
        assert len(table.rows) == 1

    def test_e3_small(self):
        table = run_e3(settings=((2, 3),), trials=1, seed=3)
        assert len(table.rows) == 1

    def test_e5_bound_dominates(self):
        table = run_e5(settings=((256, 16, 6),), trials=15, seed=4)
        # row cells: M N S gamma measured bound bits
        measured = float(table.rows[0][4])
        bound = float(table.rows[0][5])
        assert measured <= bound + 0.1

    def test_e7_small(self):
        table = run_e7(ns=(8,), trials=1, seed=5)
        time_over_n = float(table.rows[0][2])
        assert time_over_n < 4.0

    def test_linear_primitive_small(self):
        table = run_linear_primitive(ns=(32,), trials=1, seed=6)
        assert float(table.rows[0][1]) <= 64  # time
        assert float(table.rows[0][2]) <= 2.0  # time/n near 1


class TestFigures:
    def test_figure1_contains_unique_path(self):
        out = figure1_leveled_template()
        assert "unique path" in out
        assert "level 0" in out

    def test_figure2_matches_paper_labels(self):
        out = figure2_star_graphs()
        assert "3-star: 6 nodes" in out
        assert "4-star: 24 nodes" in out
        assert "ABC" in out

    def test_figure3_stages(self):
        out = figure3_star_logical()
        assert "stage 1" in out and "stage 2" in out

    def test_figure4_shuffle_edges(self):
        out = figure4_two_way_shuffle()
        # node 01 -> 00, 10 (shift right, insert front digit)
        assert "01 -> 00, 10" in out or "01 -> 10, 00" in out

    def test_figure5_slices_cover_mesh(self):
        out = figure5_mesh_slices(16)
        assert "slice 0: rows 0.." in out
        assert "16x16" in out

    def test_all_figures_concatenates(self):
        out = all_figures()
        for marker in ("Figure 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5"):
            assert marker in out
