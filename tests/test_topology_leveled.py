"""Tests for the leveled-network abstraction (§2.3.1, Figures 1, 3, 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import (
    DAryButterflyLeveled,
    ShuffleLeveled,
    StarLogicalLeveled,
)


def _count_paths(net, src: int, dst: int) -> int:
    """Number of layered paths from column-0 src to last-column dst."""
    counts = {src: 1}
    for level in range(net.num_levels):
        nxt: dict[int, int] = {}
        for node, c in counts.items():
            for w in net.out_neighbors(level, node):
                nxt[w] = nxt.get(w, 0) + c
        counts = nxt
    return counts.get(dst, 0)


class TestDAryButterfly:
    def test_dimensions(self):
        net = DAryButterflyLeveled(3, 2)
        assert net.column_size == 9
        assert net.num_levels == 2
        assert net.num_columns == 3
        assert net.degree == 3
        assert net.total_nodes == 27

    def test_out_neighbors_rewrite_one_digit(self):
        net = DAryButterflyLeveled(3, 2)
        # level 0 rewrites the least significant digit
        assert sorted(net.out_neighbors(0, 4)) == [3, 4, 5]
        # level 1 rewrites the next digit
        assert sorted(net.out_neighbors(1, 4)) == [1, 4, 7]

    def test_unique_path_reaches_destination(self):
        net = DAryButterflyLeveled(4, 3)
        for src, dst in [(0, 63), (17, 17), (5, 40)]:
            path = net.unique_path(src, dst)
            assert len(path) == net.num_columns
            assert path[-1] == dst
            for level, (a, b) in enumerate(zip(path, path[1:])):
                assert b in net.out_neighbors(level, a)

    def test_paths_are_graph_theoretically_unique(self):
        net = DAryButterflyLeveled(2, 3)
        for src in range(net.column_size):
            for dst in range(net.column_size):
                assert _count_paths(net, src, dst) == 1

    def test_validates_ranges(self):
        net = DAryButterflyLeveled(2, 2)
        with pytest.raises(ValueError):
            net.out_neighbors(2, 0)
        with pytest.raises(ValueError):
            DAryButterflyLeveled(1, 2)
        with pytest.raises(ValueError):
            DAryButterflyLeveled(2, 0)

    @given(st.integers(0, 26), st.integers(0, 26))
    @settings(max_examples=40, deadline=None)
    def test_unique_path_property(self, src, dst):
        net = DAryButterflyLeveled(3, 3)
        assert net.unique_path(src, dst)[-1] == dst


class TestShuffleLeveled:
    def test_dimensions(self):
        net = ShuffleLeveled(3, 3)
        assert net.column_size == 27
        assert net.num_levels == 3
        assert net.degree == 3

    def test_n_way(self):
        net = ShuffleLeveled.n_way(3)
        assert net.column_size == 27

    def test_unique_paths(self):
        net = ShuffleLeveled(2, 3)
        for src in range(net.column_size):
            for dst in range(net.column_size):
                assert _count_paths(net, src, dst) == 1
                assert net.unique_path(src, dst)[-1] == dst

    def test_out_neighbors_are_shuffle_moves(self):
        net = ShuffleLeveled(3, 3)
        v = net.shuffle.node_id((2, 1, 0))
        expected = {net.shuffle.node_id((l, 2, 1)) for l in range(3)}
        for level in range(3):
            assert set(net.out_neighbors(level, v)) == expected


class TestStarLogical:
    def test_dimensions(self):
        net = StarLogicalLeveled(4)
        assert net.column_size == 24
        assert net.num_levels == 6  # 2*(n-1)
        assert net.degree == 4  # n-1 swaps + self link

    def test_out_neighbors_include_self(self):
        net = StarLogicalLeveled(4)
        for level in (0, 3, 5):
            nbrs = net.out_neighbors(level, 7)
            assert 7 in nbrs
            assert len(nbrs) == 4

    def test_canonical_path_reaches_destination(self):
        net = StarLogicalLeveled(4)
        for src in range(net.column_size):
            for dst in (0, 5, 23):
                path = net.unique_path(src, dst)
                assert path[-1] == dst
                for level, (a, b) in enumerate(zip(path, path[1:])):
                    assert b in net.out_neighbors(level, a)

    def test_canonical_path_fixes_positions_in_stage_order(self):
        net = StarLogicalLeveled(5)
        star = net.star
        src, dst = 13, 99
        path = net.unique_path(src, dst)
        dst_perm = star.label(dst)
        # After stage i (level 2(i+1)), positions n-1..n-1-i match dest.
        for stage in range(net.n - 1):
            node = path[2 * (stage + 1)]
            perm = star.label(node)
            for pos in range(net.n - 1 - stage, net.n):
                assert perm[pos] == dst_perm[pos]

    def test_physical_moves_are_star_edges_or_self(self):
        net = StarLogicalLeveled(4)
        path = net.unique_path(3, 20)
        for a, b in zip(path, path[1:]):
            assert a == b or b in net.star.neighbors(a)

    def test_flagged_as_canonical_not_unique(self):
        assert StarLogicalLeveled(4).has_unique_paths is False
        assert DAryButterflyLeveled(2, 2).has_unique_paths is True

    @given(st.integers(0, 119), st.integers(0, 119))
    @settings(max_examples=50, deadline=None)
    def test_canonical_path_property(self, src, dst):
        net = StarLogicalLeveled(5)
        path = net.unique_path(src, dst)
        assert path[-1] == dst
        assert len(path) == net.num_columns

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_unique_next_batch_matches_scalar(self, n):
        """The table-based batch form is the scalar path, level for level.

        Walks random (row, dest) pairs through every level with both the
        scalar ``unique_next`` and the vectorized ``unique_next_batch``
        (advancing along the batch results, so later levels exercise the
        staged-front invariant too) and requires identical hops — ending
        at the destinations.
        """
        net = StarLogicalLeveled(n)
        rng = np.random.default_rng(7 * n)
        N = net.column_size
        rows = rng.integers(N, size=120)
        dests = rng.integers(N, size=120)
        cur = rows.copy()
        for level in range(net.num_levels):
            scalar = np.array(
                [
                    net.unique_next(level, int(r), int(d))
                    for r, d in zip(cur, dests)
                ]
            )
            batch = net.unique_next_batch(level, cur, dests)
            assert np.array_equal(scalar, batch), f"level {level}"
            cur = batch
        assert np.array_equal(cur, dests)

    def test_unique_next_batch_handles_identical_pairs(self):
        """Hotspot shape: many packets sharing one (row, dest) pair."""
        net = StarLogicalLeveled(4)
        rows = np.full(50, 17, dtype=np.int64)
        dests = np.full(50, 3, dtype=np.int64)
        batch = net.unique_next_batch(0, rows, dests)
        expected = net.unique_next(0, 17, 3)
        assert np.array_equal(batch, np.full(50, expected))
