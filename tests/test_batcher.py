"""Tests for Batcher bitonic-sort routing (the §2.2.1 non-oblivious
baseline: Θ(log² N), permutation-only, queue-free)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing import ValiantHypercubeRouter, bitonic_route, bitonic_stage_count
from repro.topology import Hypercube


class TestStageCount:
    def test_formula(self):
        assert bitonic_stage_count(1) == 1
        assert bitonic_stage_count(4) == 10
        assert bitonic_stage_count(10) == 55

    def test_quadratic_growth(self):
        # Θ(log² N): doubling k roughly quadruples the stages.
        assert bitonic_stage_count(8) / bitonic_stage_count(4) > 3


class TestBitonicRoute:
    @pytest.mark.parametrize("k", [2, 3, 5, 7])
    def test_routes_random_permutation(self, k):
        cube = Hypercube(k)
        rng = np.random.default_rng(k)
        perm = rng.permutation(cube.num_nodes)
        stats = bitonic_route(cube, perm)
        assert stats.completed
        assert stats.steps == bitonic_stage_count(k)
        assert stats.max_queue == 1  # "need not have queues"
        assert stats.delivered == cube.num_nodes

    def test_identity_permutation(self):
        cube = Hypercube(4)
        stats = bitonic_route(cube, np.arange(16))
        assert stats.steps == bitonic_stage_count(4)  # fixed schedule

    def test_reversal_permutation(self):
        cube = Hypercube(5)
        stats = bitonic_route(cube, np.arange(31, -1, -1))
        assert stats.completed

    def test_rejects_non_permutation(self):
        cube = Hypercube(3)
        with pytest.raises(ValueError):
            bitonic_route(cube, [0] * 8)
        with pytest.raises(ValueError):
            bitonic_route(cube, [0, 1, 2])

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_always_sorts_property(self, seed):
        cube = Hypercube(4)
        rng = np.random.default_rng(seed)
        stats = bitonic_route(cube, rng.permutation(16))
        assert stats.completed


class TestPaperComparison:
    def test_batcher_deterministic_time_constant(self):
        """Same input or adversarial input: identical time (oblivious to
        data, fixed schedule) — the flip side of being Θ(log² N)."""
        cube = Hypercube(6)
        rng = np.random.default_rng(1)
        s1 = bitonic_route(cube, rng.permutation(64))
        s2 = bitonic_route(cube, np.arange(63, -1, -1))
        assert s1.steps == s2.steps

    def test_valiant_beats_batcher_at_scale(self):
        """§2.2.1: Batcher is 'not optimal' — Õ(log N) randomized routing
        wins as N grows."""
        k = 8  # 256 nodes: 36 bitonic stages
        cube = Hypercube(k)
        rng = np.random.default_rng(2)
        perm = rng.permutation(cube.num_nodes)
        batcher = bitonic_route(cube, perm)
        valiant = ValiantHypercubeRouter(cube, seed=3).route(
            np.arange(cube.num_nodes), perm
        )
        assert valiant.completed
        assert batcher.steps > valiant.steps
