"""Race detection: ConflictChecker, mode inference, program classification.

The emulation theorems are parameterized by the PRAM variant, so a
program that silently violates its declared AccessMode invalidates the
bound it is run under.  Four layers pinned here:

* **checker** — every conflict kind (read/read, read/write,
  write/write agree + diverge) detected on hand-built traces, with the
  step, address, and pid sets named exactly;
* **inference** — reports reduce to the minimal legalizing variant
  (EREW < CREW < CRCW) and COMMON-compatibility;
* **sanitizer** — ``PRAM.run(check_races=...)`` raises a structured
  :class:`RaceError` on violations (including the portability form
  "run on CRCW, verify against EREW") and works with tracing off;
* **classification** — every library program's declared mode is
  *exact*: the permissive pre-run infers precisely the declared
  variant, neither over- nor under-declared.
"""

import pytest

from repro.analysis.races import (
    AddressClass,
    ConflictChecker,
    ConflictKind,
    RaceError,
    RaceReport,
    classify_all_programs,
    classify_program,
    find_violations,
    infer_mode,
    mode_allows,
    prerun_trace,
    scan_program_addresses,
)
from repro.pram.machine import PRAM, Read, Write, run_program
from repro.pram.programs import ALL_PROGRAM_BUILDERS, ProgramSpec, broadcast
from repro.pram.trace import MemoryTrace, ReadRequest, StepTrace, WriteRequest
from repro.pram.variants import AccessMode, WritePolicy


# ---------------------------------------------------------------------------
# fixture programs (module level so inspect.getsource works for the scan)
# ---------------------------------------------------------------------------

def _racy_erew(pid: int, nprocs: int):
    """Deliberately EREW-illegal: all pids read cell 0, then all write 1."""
    v = yield Read(0)
    yield Write(1, pid + (0 * (v or 0)))


def _crew_only(pid: int, nprocs: int):
    """Concurrent read of cell 0, exclusive writes: CREW-exact."""
    v = yield Read(0)
    yield Write(1 + pid, v)


def _exclusive_prog(pid: int, nprocs: int):
    v = yield Read(pid)
    yield Write(pid + 8, v)


def _shared_read_prog(pid: int, nprocs: int):
    v = yield Read(0)
    yield Write(2 * pid + 1, v)


def _data_dependent_prog(pid: int, nprocs: int):
    idx = yield Read(pid)
    yield Write(idx, 1)


# ---------------------------------------------------------------------------
# checker on hand-built traces
# ---------------------------------------------------------------------------

class TestConflictChecker:
    def test_clean_step_has_no_reports(self):
        step = StepTrace(
            reads=[ReadRequest(0, 0), ReadRequest(1, 1)],
            writes=[WriteRequest(2, 2, "x")],
        )
        assert ConflictChecker().check_step(0, step) == []

    def test_read_read(self):
        step = StepTrace(reads=[ReadRequest(2, 5), ReadRequest(0, 5)])
        (r,) = ConflictChecker().check_step(3, step)
        assert r.kind is ConflictKind.READ_READ
        assert (r.step, r.addr) == (3, 5)
        assert r.readers == (0, 2)  # sorted
        assert r.writers == ()
        assert r.pids == (0, 2)
        assert r.required_mode is AccessMode.CREW
        assert r.values_agree is None

    def test_read_write(self):
        step = StepTrace(
            reads=[ReadRequest(1, 9)], writes=[WriteRequest(4, 9, 7)]
        )
        (r,) = ConflictChecker().check_step(0, step)
        assert r.kind is ConflictKind.READ_WRITE
        assert r.readers == (1,)
        assert r.writers == (4,)
        assert r.pids == (1, 4)
        assert r.required_mode is AccessMode.CRCW

    def test_write_write_agreeing(self):
        step = StepTrace(
            writes=[WriteRequest(3, 2, "v"), WriteRequest(1, 2, "v")]
        )
        (r,) = ConflictChecker().check_step(0, step)
        assert r.kind is ConflictKind.WRITE_WRITE
        assert r.writers == (1, 3)
        assert r.values_agree is True
        assert "values agree" in r.describe()

    def test_write_write_diverging(self):
        step = StepTrace(
            writes=[WriteRequest(0, 2, "a"), WriteRequest(1, 2, "b")]
        )
        (r,) = ConflictChecker().check_step(0, step)
        assert r.values_agree is False
        assert "values diverge" in r.describe()

    def test_same_addr_can_carry_ww_and_rw(self):
        """Readers plus multiple writers on one cell report both kinds."""
        step = StepTrace(
            reads=[ReadRequest(5, 1)],
            writes=[WriteRequest(0, 1, 1), WriteRequest(2, 1, 2)],
        )
        reports = ConflictChecker().check_step(7, step)
        assert {r.kind for r in reports} == {
            ConflictKind.WRITE_WRITE,
            ConflictKind.READ_WRITE,
        }
        assert all(r.step == 7 and r.addr == 1 for r in reports)

    def test_reports_ordered_by_address(self):
        step = StepTrace(
            reads=[ReadRequest(0, 9), ReadRequest(1, 9)],
            writes=[WriteRequest(0, 4, 1), WriteRequest(1, 4, 1)],
        )
        reports = ConflictChecker().check_step(0, step)
        assert [r.addr for r in reports] == [4, 9]

    def test_describe_names_step_addr_pids(self):
        step = StepTrace(reads=[ReadRequest(3, 11), ReadRequest(6, 11)])
        (r,) = ConflictChecker().check_step(2, step)
        text = r.describe()
        assert "step 2" in text and "address 11" in text
        assert "[3, 6]" in text

    def test_analyze_whole_trace(self):
        trace = MemoryTrace(num_processors=4, address_space=16)
        trace.steps.append(StepTrace(reads=[ReadRequest(0, 0)]))  # clean
        trace.steps.append(
            StepTrace(reads=[ReadRequest(0, 3), ReadRequest(1, 3)])
        )
        trace.steps.append(
            StepTrace(writes=[WriteRequest(0, 5, 1), WriteRequest(1, 5, 1)])
        )
        analysis = ConflictChecker().analyze(trace)
        assert analysis.steps_analyzed == 3
        assert analysis.has_conflicts
        assert [r.step for r in analysis.reports] == [1, 2]
        assert analysis.minimal_mode is AccessMode.CRCW
        assert analysis.common_compatible  # the lone WW agrees
        assert len(analysis.conflicts_of_kind(ConflictKind.READ_READ)) == 1

    def test_verify_against_declared_mode(self):
        trace = MemoryTrace(num_processors=2, address_space=8)
        trace.steps.append(
            StepTrace(reads=[ReadRequest(0, 1), ReadRequest(1, 1)])
        )
        checker = ConflictChecker()
        assert checker.verify(trace, AccessMode.CREW) == []
        bad = checker.verify(trace, AccessMode.EREW)
        assert len(bad) == 1 and bad[0].kind is ConflictKind.READ_READ


class TestModeInference:
    def test_mode_allows_is_rank_order(self):
        assert mode_allows(AccessMode.CRCW, AccessMode.EREW)
        assert mode_allows(AccessMode.CREW, AccessMode.CREW)
        assert not mode_allows(AccessMode.EREW, AccessMode.CREW)
        assert not mode_allows(AccessMode.CREW, AccessMode.CRCW)

    def test_infer_mode_empty_is_erew(self):
        assert infer_mode([]) is AccessMode.EREW

    def test_infer_mode_takes_maximum(self):
        rr = RaceReport(0, 0, ConflictKind.READ_READ, readers=(0, 1))
        ww = RaceReport(0, 0, ConflictKind.WRITE_WRITE, writers=(0, 1))
        assert infer_mode([rr]) is AccessMode.CREW
        assert infer_mode([rr, ww]) is AccessMode.CRCW
        assert infer_mode([ww, rr]) is AccessMode.CRCW

    def test_common_policy_flags_divergent_ww_only(self):
        agree = RaceReport(
            0, 0, ConflictKind.WRITE_WRITE, writers=(0, 1), values_agree=True
        )
        diverge = RaceReport(
            0, 1, ConflictKind.WRITE_WRITE, writers=(0, 1), values_agree=False
        )
        under_common = find_violations(
            [agree, diverge], AccessMode.CRCW, WritePolicy.COMMON
        )
        assert under_common == [diverge]
        # any other policy legalizes both
        assert (
            find_violations([agree, diverge], AccessMode.CRCW, WritePolicy.PRIORITY)
            == []
        )


# ---------------------------------------------------------------------------
# sanitizer: PRAM.run(check_races=...)
# ---------------------------------------------------------------------------

class TestRunSanitizer:
    def test_racy_erew_fixture_is_flagged(self):
        """The acceptance fixture: a deliberately racy EREW program must
        produce a RaceReport naming step, address, and pids."""
        with pytest.raises(RaceError) as exc:
            run_program(
                _racy_erew,
                4,
                8,
                mode=AccessMode.EREW,
                enforce_mode=False,
                check_races=True,
            )
        reports = exc.value.reports
        assert reports, "sanitizer must attach structured reports"
        first = reports[0]
        assert first.step == 0
        assert first.addr == 0
        assert first.kind is ConflictKind.READ_READ
        assert first.pids == (0, 1, 2, 3)
        # the concurrent write to cell 1 is flagged too
        kinds = {(r.step, r.addr, r.kind) for r in reports}
        assert (1, 1, ConflictKind.WRITE_WRITE) in kinds
        assert "step 0" in str(exc.value)

    def test_clean_run_attaches_empty_reports(self):
        pram = run_program(
            _exclusive_prog, 4, 16, mode=AccessMode.EREW, check_races=True
        )
        assert pram.race_reports == []
        assert pram.inferred_mode is AccessMode.EREW

    def test_portability_check_against_weaker_mode(self):
        """Run legally on CREW, ask: is this EREW-clean?  (No.)"""
        with pytest.raises(RaceError) as exc:
            run_program(
                _crew_only,
                4,
                8,
                mode=AccessMode.CREW,
                check_races=AccessMode.EREW,
            )
        assert all(r.kind is ConflictKind.READ_READ for r in exc.value.reports)

    def test_crew_program_passes_its_own_mode(self):
        pram = run_program(
            _crew_only, 4, 8, mode=AccessMode.CREW, check_races=True
        )
        assert pram.inferred_mode is AccessMode.CREW

    def test_sanitizer_works_without_trace_recording(self):
        pram = PRAM(
            4, 8, mode=AccessMode.CREW, record_trace=False, enforce_mode=False
        )
        pram.load(_racy_erew)
        with pytest.raises(RaceError):
            pram.run(check_races=AccessMode.EREW)
        assert pram.trace.steps == []  # tracing really was off
        assert pram.race_reports  # ... but the sanitizer still saw steps

    def test_check_races_off_by_default(self):
        pram = run_program(_racy_erew, 4, 8, enforce_mode=False)
        assert pram.race_reports is None
        assert pram.inferred_mode is None


# ---------------------------------------------------------------------------
# program classification
# ---------------------------------------------------------------------------

class TestClassification:
    def test_every_library_program_is_exact(self):
        """The gate: each ProgramSpec's declared mode is both sufficient
        (no violations) and minimal (the trace actually needs it)."""
        results = classify_all_programs()
        assert set(results) == set(ALL_PROGRAM_BUILDERS)
        for name, c in results.items():
            assert c.ok, f"{name}: {[r.describe() for r in c.violations]}"
            assert c.verdict == "exact", (
                f"{name}: declared {c.declared_mode.name}, "
                f"inferred {c.inferred_mode.name}"
            )

    def test_violation_verdict(self):
        spec = ProgramSpec(
            name="racy",
            n_procs=4,
            memory_size=8,
            mode=AccessMode.EREW,
            program=_racy_erew,
        )
        c = classify_program(spec)
        assert c.verdict == "violation"
        assert not c.ok
        assert c.inferred_mode is AccessMode.CRCW
        assert any(r.kind is ConflictKind.WRITE_WRITE for r in c.violations)

    def test_over_declared_verdict(self):
        spec = ProgramSpec(
            name="cautious",
            n_procs=4,
            memory_size=16,
            mode=AccessMode.CRCW,
            program=_exclusive_prog,
            write_policy=WritePolicy.ARBITRARY,
        )
        c = classify_program(spec)
        assert c.verdict == "over-declared"
        assert c.ok  # legal, just running under a needlessly strong theorem
        assert c.inferred_mode is AccessMode.EREW

    def test_prerun_trace_completes_for_racy_program(self):
        """The permissive machine must not raise mid-run; the trace is
        complete so every conflict is reportable."""
        spec = ProgramSpec(
            name="racy",
            n_procs=4,
            memory_size=8,
            mode=AccessMode.EREW,
            program=_racy_erew,
        )
        trace = prerun_trace(spec)
        assert len(trace.steps) == 2  # both program steps executed

    def test_prerun_matches_real_trace_for_sound_program(self):
        spec = broadcast(8)
        real = spec.run().trace
        pre = prerun_trace(spec)
        assert len(pre.steps) == len(real.steps)
        for a, b in zip(pre.steps, real.steps):
            assert [(r.pid, r.addr) for r in a.reads] == [
                (r.pid, r.addr) for r in b.reads
            ]
            assert [(w.pid, w.addr, w.value) for w in a.writes] == [
                (w.pid, w.addr, w.value) for w in b.writes
            ]


# ---------------------------------------------------------------------------
# symbolic address scan
# ---------------------------------------------------------------------------

class TestSymbolicScan:
    def test_affine_pid_addresses_prove_exclusive(self):
        scan = scan_program_addresses(_exclusive_prog)
        assert scan.parsed
        assert len(scan.sites) == 2
        assert scan.proves_exclusive
        assert [s.op for s in scan.sites] == ["read", "write"]

    def test_shared_site_blocks_the_proof(self):
        scan = scan_program_addresses(_shared_read_prog)
        assert scan.parsed
        assert not scan.proves_exclusive
        shared = scan.shared_sites
        assert len(shared) == 1 and shared[0].source == "0"
        # the affine write `2 * pid + 1` is still recognized
        write = next(s for s in scan.sites if s.op == "write")
        assert write.klass is AddressClass.EXCLUSIVE

    def test_runtime_address_is_data_dependent(self):
        scan = scan_program_addresses(_data_dependent_prog)
        write = next(s for s in scan.sites if s.op == "write")
        assert write.klass is AddressClass.DATA_DEPENDENT
        assert not scan.proves_exclusive

    def test_source_text_form(self):
        """Source text in place of a callable (code with no file)."""
        scan = scan_program_addresses(
            "def p(pid, n):\n"
            "    v = yield Read(3 * pid + 1)\n"
            "    yield Write(3 * pid + 2, v)\n"
        )
        assert scan.parsed and scan.proves_exclusive

    def test_unparseable_program_degrades_gracefully(self):
        scan = scan_program_addresses(lambda pid, n: iter(()))
        assert not scan.parsed
        assert not scan.proves_exclusive

    def test_scan_agrees_with_trace_on_library_erew_programs(self):
        """Advisory static proof, where it fires, must agree with the
        trace-level ground truth."""
        for name, build in ALL_PROGRAM_BUILDERS.items():
            spec = build()
            scan = scan_program_addresses(spec.program)
            if scan.proves_exclusive:
                c = classify_program(spec)
                assert c.inferred_mode is AccessMode.EREW, name


# ---------------------------------------------------------------------------
# Application programs (repro.apps)
# ---------------------------------------------------------------------------

class TestApplicationPrograms:
    """The apps layer rides the same gates as the core library."""

    def test_registered_apps_classify_exact(self):
        from repro.apps.programs import APP_PROGRAM_BUILDERS

        for name, build in APP_PROGRAM_BUILDERS.items():
            c = classify_program(build())
            assert c.verdict == "exact", (
                f"{name}: declared {c.declared_mode.name}, "
                f"inferred {c.inferred_mode.name}"
            )

    def test_apps_merged_into_library_registry(self):
        from repro.apps.programs import APP_PROGRAM_BUILDERS

        assert set(APP_PROGRAM_BUILDERS) <= set(ALL_PROGRAM_BUILDERS)

    def test_broken_erew_components_caught_by_sanitizer(self):
        """A CRCW hooking algorithm misdeclared as EREW is exactly the
        failure mode the sanitizer exists for: the permissive machine
        completes the run, then the checker names the concurrent steps."""
        from repro.apps import broken_erew_components, gnp_graph

        spec = broken_erew_components(gnp_graph(12, 0.25, seed=7))
        assert spec.mode is AccessMode.EREW
        pram = PRAM(
            spec.n_procs,
            spec.memory_size,
            mode=spec.mode,
            write_policy=spec.write_policy,
            combine_op=spec.combine_op,
            init=spec.init,
            enforce_mode=False,
        )
        pram.load(spec.program)
        with pytest.raises(RaceError) as exc:
            pram.run(check_races=True)
        assert exc.value.reports
        assert any(
            r.kind in (ConflictKind.READ_READ, ConflictKind.WRITE_WRITE)
            for r in exc.value.reports
        )

    def test_broken_variant_stays_out_of_registry(self):
        assert "broken-erew-components" not in ALL_PROGRAM_BUILDERS

    def test_broken_variant_classifies_as_violation(self):
        from repro.apps import broken_erew_components, gnp_graph

        c = classify_program(broken_erew_components(gnp_graph(12, 0.25, seed=7)))
        assert c.verdict == "violation"
        assert not c.ok
