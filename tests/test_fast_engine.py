"""Differential tests: the compiled fast path vs. the reference engine.

The fast engine's contract is *exact* equivalence: under a fixed seed it
must produce the same RoutingStats — steps, delivered, max_queue,
combines, max_node_load, and the per-packet delay/hop lists — as the
readable reference engine, on every supported network family and router
configuration.  These tests pin that contract on star, shuffle, and
butterfly networks (logical leveled views and physical routers), for
both phase-1 flavors, with and without CRCW combining, and through the
full emulation pipeline including reply fan-out.
"""

import numpy as np
import pytest

from repro.emulation.leveled import LeveledEmulator
from repro.emulation.mesh import MeshEmulator
from repro.pram.trace import h_relation_step, hotspot_step, permutation_step
from repro.routing import (
    FastPathEngine,
    GreedyMeshRouter,
    GreedyRouter,
    LeveledRouter,
    MeshRouter,
    ShuffleRouter,
    StarRouter,
    ValiantHypercubeRouter,
    resolve_engine_mode,
    valiant_shuffle_route,
)
from repro.routing.fast_engine import ENGINE_ENV_VAR
from repro.routing.packet import make_packets
from repro.topology import (
    DAryButterflyLeveled,
    DWayShuffle,
    Hypercube,
    LinearArray,
    Mesh2D,
    ShuffleLeveled,
    StarGraph,
    StarLogicalLeveled,
    compile_leveled,
)

STAT_FIELDS = (
    "steps",
    "delivered",
    "total_packets",
    "max_queue",
    "completed",
    "combines",
    "max_node_load",
    "credits_stalled",
    "escape_hops",
    "fault_stalls",
)


def assert_stats_equal(fast, ref):
    for field in STAT_FIELDS:
        assert getattr(fast, field) == getattr(ref, field), field
    assert fast.delays == ref.delays
    assert fast.hops == ref.hops


def leveled_nets():
    return [
        DAryButterflyLeveled(2, 6),
        DAryButterflyLeveled(3, 4),
        ShuffleLeveled(3, 4),
        StarLogicalLeveled(5),
    ]


class TestLeveledDifferential:
    @pytest.mark.parametrize("net", leveled_nets(), ids=lambda n: repr(n))
    @pytest.mark.parametrize("intermediate", ["coin", "node"])
    def test_permutation_matches(self, net, intermediate):
        perm = np.random.default_rng(7).permutation(net.column_size)
        fast = LeveledRouter(
            net, intermediate=intermediate, seed=42, engine="fast"
        ).route_permutation(perm)
        ref = LeveledRouter(
            net, intermediate=intermediate, seed=42, engine="reference"
        ).route_permutation(perm)
        assert fast.completed
        assert_stats_equal(fast, ref)

    @pytest.mark.parametrize("net", leveled_nets(), ids=lambda n: repr(n))
    def test_crcw_combining_matches(self, net):
        """Hotspot traffic with combining: counts and queues must agree."""
        n = net.column_size
        rng = np.random.default_rng(5)
        sources = np.arange(n)
        addresses = rng.integers(8, size=n)  # few addresses -> heavy combining
        dests = addresses % n
        kwargs = dict(combine=True, track_paths=True, seed=9)
        fast = LeveledRouter(net, engine="fast", **kwargs).route(
            sources, dests, addresses=addresses
        )
        ref = LeveledRouter(net, engine="reference", **kwargs).route(
            sources, dests, addresses=addresses
        )
        assert fast.combines > 0
        assert_stats_equal(fast, ref)

    @pytest.mark.parametrize("net", leveled_nets(), ids=lambda n: repr(n))
    def test_traces_match(self, net):
        """track_paths: every packet's recorded trace must be identical."""
        n = net.column_size
        perm = np.random.default_rng(3).permutation(n)
        pf = make_packets([(0, 0, int(s)) for s in range(n)], perm.tolist())
        pr = make_packets([(0, 0, int(s)) for s in range(n)], perm.tolist())
        LeveledRouter(net, seed=1, track_paths=True, engine="fast").route_packets(pf)
        LeveledRouter(net, seed=1, track_paths=True, engine="reference").route_packets(pr)
        for a, b in zip(pf, pr):
            assert a.trace == b.trace
            assert a.node == b.node

    def test_timeout_matches(self):
        net = DAryButterflyLeveled(2, 6)
        perm = np.random.default_rng(11).permutation(net.column_size)
        budget = 2 * net.num_levels + 1  # too tight: some packets miss it
        fast = LeveledRouter(net, seed=2, engine="fast").route_permutation(
            perm, max_steps=budget
        )
        ref = LeveledRouter(net, seed=2, engine="reference").route_permutation(
            perm, max_steps=budget
        )
        assert not fast.completed
        assert_stats_equal(fast, ref)

    def test_restarts_match(self):
        net = DAryButterflyLeveled(2, 6)
        perm = np.random.default_rng(4).permutation(net.column_size)
        args = (np.arange(net.column_size), perm)
        sf, rf = LeveledRouter(net, seed=3, engine="fast").route_with_restarts(
            *args, allotment=2 * net.num_levels + 1
        )
        sr, rr = LeveledRouter(net, seed=3, engine="reference").route_with_restarts(
            *args, allotment=2 * net.num_levels + 1
        )
        assert rf == rr
        assert sf.steps == sr.steps
        assert sorted(sf.hops) == sorted(sr.hops)


class TestPhysicalRouterDifferential:
    def test_star_permutation_matches(self):
        star = StarGraph(5)
        perm = np.random.default_rng(1).permutation(star.num_nodes)
        fast = StarRouter(star, seed=8, engine="fast").route_permutation(perm)
        ref = StarRouter(star, seed=8, engine="reference").route_permutation(perm)
        assert fast.completed
        assert_stats_equal(fast, ref)

    def test_star_nonrandomized_matches(self):
        star = StarGraph(4)
        perm = np.random.default_rng(2).permutation(star.num_nodes)
        fast = StarRouter(star, randomized=False, engine="fast").route_permutation(perm)
        ref = StarRouter(star, randomized=False, engine="reference").route_permutation(
            perm
        )
        assert_stats_equal(fast, ref)

    def test_shuffle_permutation_matches(self):
        sh = DWayShuffle(3, 4)
        perm = np.random.default_rng(3).permutation(sh.num_nodes)
        fast = ShuffleRouter(sh, seed=6, engine="fast").route_permutation(perm)
        ref = ShuffleRouter(sh, seed=6, engine="reference").route_permutation(perm)
        assert fast.completed
        assert_stats_equal(fast, ref)

    def test_shuffle_n_relation_matches(self):
        sh = DWayShuffle(3, 3)
        fast = ShuffleRouter(sh, seed=13, engine="fast").route_n_relation(h=3)
        ref = ShuffleRouter(sh, seed=13, engine="reference").route_n_relation(h=3)
        assert_stats_equal(fast, ref)

    def test_delayed_injection_matches(self):
        from repro.routing import SynchronousEngine

        paths = [[0, 1, 2], [1, 2, 3]]

        def mk():
            pkts = make_packets([0, 1], [2, 3])
            pkts[1].injected_at = 3
            return pkts

        pf = mk()
        sf = FastPathEngine().run(pf, paths, num_nodes=4, max_steps=20)
        pr = mk()
        walkers = {p.pid: iter(path[1:]) for p, path in zip(pr, paths)}
        sr = SynchronousEngine().run(
            pr, lambda p: next(walkers[p.pid], None), max_steps=20
        )
        assert_stats_equal(sf, sr)
        assert pf[1].arrived_at == pr[1].arrived_at == 5


class TestMeshStackDifferential:
    """The §3.3–3.4 mesh stack: routers and emulator, both engines."""

    @pytest.mark.parametrize("discipline", ["furthest_first", "fifo"])
    @pytest.mark.parametrize("capacity", [None, 4])
    def test_mesh_router_permutation_matches(self, discipline, capacity):
        mesh = Mesh2D.square(10)
        perm = np.random.default_rng(2).permutation(mesh.num_nodes)

        def run(engine):
            return MeshRouter(
                mesh,
                seed=11,
                discipline=discipline,
                node_capacity=capacity,
                engine=engine,
            ).route_permutation(perm)

        fast, ref = run("fast"), run("reference")
        assert fast.completed
        assert_stats_equal(fast, ref)

    def test_mesh_router_many_one_matches(self):
        mesh = Mesh2D.square(9)
        rng = np.random.default_rng(4)
        dests = rng.integers(0, mesh.num_nodes, size=mesh.num_nodes)

        def run(engine):
            return MeshRouter(mesh, seed=7, engine=engine).route(
                np.arange(mesh.num_nodes), dests, max_steps=5000
            )

        fast, ref = run("fast"), run("reference")
        assert fast.completed
        assert_stats_equal(fast, ref)

    def test_mesh_router_traces_match(self):
        mesh = Mesh2D.square(6)
        perm = np.random.default_rng(6).permutation(mesh.num_nodes)

        def run(engine):
            router = MeshRouter(mesh, seed=3, track_paths=True, engine=engine)
            pkts = make_packets(list(range(mesh.num_nodes)), perm.tolist())
            router.route(None, None, packets=pkts)
            return pkts

        for a, b in zip(run("fast"), run("reference")):
            assert a.trace == b.trace
            assert a.node == b.node

    def test_mesh_router_timeout_matches(self):
        mesh = Mesh2D.square(10)
        perm = np.random.default_rng(9).permutation(mesh.num_nodes)
        budget = 6  # below the diameter: many packets miss it

        def run(engine):
            return MeshRouter(mesh, seed=5, engine=engine).route_permutation(
                perm, max_steps=budget
            )

        fast, ref = run("fast"), run("reference")
        assert not fast.completed
        assert_stats_equal(fast, ref)

    @pytest.mark.parametrize("capacity", [None, 3])
    def test_greedy_mesh_matches(self, capacity):
        mesh = Mesh2D.square(9)
        rng = np.random.default_rng(8)
        dests = rng.integers(0, mesh.num_nodes, size=mesh.num_nodes)

        def run(engine):
            return GreedyMeshRouter(
                mesh, node_capacity=capacity, engine=engine
            ).route(np.arange(mesh.num_nodes), dests)

        fast, ref = run("fast"), run("reference")
        assert fast.completed
        assert_stats_equal(fast, ref)

    @pytest.mark.parametrize(
        "topology",
        [Mesh2D.square(7), LinearArray(40), Hypercube(6), StarGraph(4)],
        ids=lambda t: type(t).__name__,
    )
    def test_greedy_router_matches(self, topology):
        """GreedyRouter fast paths: vectorized builders for mesh, linear
        array and hypercube; generic route_next walk otherwise."""
        rng = np.random.default_rng(12)
        n = topology.num_nodes
        sources = np.arange(n)
        dests = rng.permutation(n)

        def run(engine):
            return GreedyRouter(topology, engine=engine).route(sources, dests)

        fast, ref = run("fast"), run("reference")
        assert fast.completed
        assert_stats_equal(fast, ref)

    @pytest.mark.parametrize("randomized", [True, False])
    def test_valiant_hypercube_matches(self, randomized):
        cube = Hypercube(7)
        perm = np.random.default_rng(14).permutation(cube.num_nodes)

        def run(engine):
            return ValiantHypercubeRouter(
                cube, seed=15, randomized=randomized, engine=engine
            ).route(np.arange(cube.num_nodes), perm)

        fast, ref = run("fast"), run("reference")
        assert fast.completed
        assert_stats_equal(fast, ref)

    def test_valiant_shuffle_serialized_matches(self):
        """The node_service_rate=1 model must arbitrate identically."""
        sh = DWayShuffle(3, 3)
        perm = np.random.default_rng(16).permutation(sh.num_nodes)

        def run(engine):
            return valiant_shuffle_route(
                sh, np.arange(sh.num_nodes), perm, seed=17, engine=engine
            )

        fast, ref = run("fast"), run("reference")
        assert fast.completed
        assert_stats_equal(fast, ref)

    @pytest.mark.parametrize("mode", ["erew", "crcw"])
    def test_mesh_emulator_step_costs_match(self, mode):
        n_side = 6
        n = n_side * n_side
        space = 128
        steps = [
            permutation_step(n, space, seed=2),
            permutation_step(n, space, seed=4, kind="write"),
        ]
        if mode == "crcw":
            # Concurrent-access patterns are only legal in CRCW mode.
            steps.insert(0, hotspot_step(n, space, seed=1))
            steps.append(h_relation_step(n, space, 2, seed=3))

        def run(engine):
            em = MeshEmulator(
                Mesh2D.square(n_side), space, mode=mode, seed=21, engine=engine
            )
            costs = []
            for s in steps:
                c = em.emulate_step(s)
                costs.append(
                    (c.request_steps, c.reply_steps, c.rehashes, c.combines, c.max_queue)
                )
            mem = [em.memory.read(a) for a in range(space)]
            return costs, mem

        fast_costs, fast_mem = run("fast")
        ref_costs, ref_mem = run("reference")
        assert fast_costs == ref_costs
        assert fast_mem == ref_mem

    @pytest.mark.parametrize("mode", ["erew", "crcw"])
    def test_mesh_emulator_capacity_variant_matches(self, mode):
        """Corollary 3.3's O(1)-queue emulation, differentially.

        The CRCW case pins the combine-with-capacity interaction in the
        fast engine's constrained per-event loop (combining index
        release inside transmit, stalled-head checks on a combining
        heap)."""
        n_side = 6
        n = n_side * n_side
        step = (
            permutation_step(n, 128, seed=5)
            if mode == "erew"
            else hotspot_step(n, 128, seed=5)
        )

        def run(engine):
            em = MeshEmulator(
                Mesh2D.square(n_side),
                128,
                mode=mode,
                node_capacity=8,
                seed=23,
                engine=engine,
            )
            c = em.emulate_step(step)
            return (
                c.request_steps,
                c.reply_steps,
                c.rehashes,
                c.combines,
                c.max_queue,
            )

        costs_fast = run("fast")
        costs_ref = run("reference")
        assert costs_fast == costs_ref
        if mode == "crcw":
            assert costs_fast[3] > 0  # combining actually exercised

    def test_mesh_router_combining_with_capacity_matches(self):
        """combine=True + node_capacity: the constrained fast loop must
        release combine-index residency and stall exactly like the
        reference priority queues."""
        mesh = Mesh2D.square(8)
        n = mesh.num_nodes
        rng = np.random.default_rng(18)
        addresses = rng.integers(6, size=n)
        dests = (addresses * 7) % n

        def run(engine):
            router = MeshRouter(
                mesh, seed=19, combine=True, node_capacity=6, engine=engine
            )
            pkts = make_packets(
                list(range(n)), dests.tolist(), addresses=addresses.tolist()
            )
            return router.route(None, None, packets=pkts, max_steps=4000)

        fast, ref = run("fast"), run("reference")
        assert fast.combines > 0
        assert fast.max_node_load <= 6
        assert_stats_equal(fast, ref)


class TestEmulatorDifferential:
    @pytest.mark.parametrize(
        "net", [DAryButterflyLeveled(2, 5), StarLogicalLeveled(4)], ids=lambda n: repr(n)
    )
    def test_step_costs_match(self, net):
        n = net.column_size
        space = 128
        steps = [
            hotspot_step(n, space, seed=1),
            permutation_step(n, space, seed=2),
            h_relation_step(n, space, 2, seed=3),
            permutation_step(n, space, seed=4, kind="write"),
        ]

        def run(engine):
            em = LeveledEmulator(net, space, mode="crcw", seed=21, engine=engine)
            costs = []
            for s in steps:
                c = em.emulate_step(s)
                costs.append(
                    (c.request_steps, c.reply_steps, c.rehashes, c.combines, c.max_queue)
                )
            mem = [em.memory.read(a) for a in range(space)]
            return costs, mem

        fast_costs, fast_mem = run("fast")
        ref_costs, ref_mem = run("reference")
        assert fast_costs == ref_costs
        assert fast_mem == ref_mem

    def test_nonuniform_degree_falls_back_to_reference(self):
        """A net that cannot pre-draw coins must still emulate correctly
        in fast mode: the router silently falls back to the reference
        engine, so the reply phase needs traces recorded."""

        class OddButterfly(DAryButterflyLeveled):
            uniform_out_degree = False

        net = OddButterfly(2, 4)
        step = hotspot_step(net.column_size, 64, seed=6)
        fast = LeveledEmulator(net, 64, mode="crcw", seed=17, engine="fast")
        cost_fast = fast.emulate_step(step)
        ref = LeveledEmulator(net, 64, mode="crcw", seed=17, engine="reference")
        cost_ref = ref.emulate_step(step)
        assert (cost_fast.request_steps, cost_fast.reply_steps) == (
            cost_ref.request_steps,
            cost_ref.reply_steps,
        )

    def test_nonuniform_degree_node_mode_uses_fast_path(self):
        """Node-mode trajectories need no out-neighbor tables, so the
        fast path must work even on non-uniform-degree networks."""

        class OddButterfly(DAryButterflyLeveled):
            uniform_out_degree = False

        net = OddButterfly(2, 5)
        perm = np.random.default_rng(8).permutation(net.column_size)
        fast = LeveledRouter(
            net, intermediate="node", seed=12, engine="fast"
        ).route_permutation(perm)
        ref = LeveledRouter(
            net, intermediate="node", seed=12, engine="reference"
        ).route_permutation(perm)
        assert fast.completed
        assert_stats_equal(fast, ref)

        step = hotspot_step(net.column_size, 64, seed=6)
        costs = []
        for engine in ("fast", "reference"):
            em = LeveledEmulator(
                net, 64, mode="crcw", intermediate="node", seed=19, engine=engine
            )
            c = em.emulate_step(step)
            costs.append((c.request_steps, c.reply_steps, c.combines))
        assert costs[0] == costs[1]

    def test_rehash_storm_matches(self):
        """Impossibly tight allotments force rehashes on both engines."""
        net = DAryButterflyLeveled(2, 4)
        step = hotspot_step(net.column_size, 64, seed=5)

        def run(engine):
            em = LeveledEmulator(
                net, 64, mode="crcw", seed=33, rehash_factor=0.4, engine=engine
            )
            cost = em.emulate_step(step)
            return cost.rehashes, cost.request_steps, em.rehash_count

        assert run("fast") == run("reference")


class TestEngineSelection:
    def test_env_var_override(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "reference")
        assert resolve_engine_mode("auto") == "reference"
        monkeypatch.setenv(ENGINE_ENV_VAR, "fast")
        assert resolve_engine_mode("auto") == "fast"
        monkeypatch.delenv(ENGINE_ENV_VAR)
        assert resolve_engine_mode("auto") == "fast"

    def test_typoed_env_var_raises(self, monkeypatch):
        # A typo must not silently run the engine under suspicion.
        monkeypatch.setenv(ENGINE_ENV_VAR, "refernce")
        with pytest.raises(ValueError, match="REPRO_ENGINE"):
            resolve_engine_mode("auto")
        monkeypatch.setenv(ENGINE_ENV_VAR, "")
        assert resolve_engine_mode("auto") == "fast"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "reference")
        assert resolve_engine_mode("fast") == "fast"

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            resolve_engine_mode("warp")
        with pytest.raises(ValueError):
            LeveledRouter(DAryButterflyLeveled(2, 2), engine="warp")


class TestFastPathEngineUnit:
    def test_shared_link_serializes(self):
        # Two packets crossing the same link: second waits one step.
        pkts = make_packets([0, 0], [2, 2])
        stats = FastPathEngine().run(
            pkts, [[0, 1, 2], [0, 1, 2]], num_nodes=3, max_steps=10
        )
        assert stats.completed
        assert stats.steps == 3
        assert sorted(p.delay for p in pkts) == [0, 1]

    def test_combining_on_shared_queue(self):
        pkts = make_packets([0, 0, 0], [2, 2, 2], addresses=[7, 7, 7])
        stats = FastPathEngine(combine=True).run(
            pkts, [[0, 1, 2]] * 3, num_nodes=3, max_steps=10
        )
        assert stats.completed
        assert stats.combines == 2
        assert stats.steps == 2  # combined flow behaves as one packet

    def test_mismatched_paths_rejected(self):
        pkts = make_packets([0], [1])
        with pytest.raises(ValueError):
            FastPathEngine().run(pkts, [], num_nodes=2, max_steps=5)

    def test_single_packet_delivers(self):
        pkts = make_packets([0], [1])
        stats = FastPathEngine().run(pkts, [[0, 1]], num_nodes=2, max_steps=5)
        assert stats.completed
        assert stats.steps == 1
        assert pkts[0].hops == 1

    def test_timeout_raises_when_asked(self):
        from repro.routing import RoutingTimeout

        pkts = make_packets([0, 0], [2, 2])
        with pytest.raises(RoutingTimeout):
            FastPathEngine().run(
                pkts,
                [[0, 1, 2], [0, 1, 2]],
                num_nodes=3,
                max_steps=2,
                raise_on_timeout=True,
            )

    def test_node_ids_roundtrip(self):
        net = DAryButterflyLeveled(2, 3)
        compiled = compile_leveled(net)
        L, N = net.num_levels, net.column_size
        # trace-style keys: wrap position decodes to (0, L, row)
        assert compiled.trace_key(L, L * N + 3) == (0, L, 3)
        # node-style keys: wrap position decodes to its pass-2 alias
        assert compiled.node_key(L, L * N + 3) == (1, 0, 3)
        assert compiled.encode_key((0, L, 3)) == compiled.encode_key((1, 0, 3))
        for key in [(0, 0, 1), (0, L, 5), (1, L, 2)]:
            assert compiled.reply_key(0, compiled.encode_key(key)) == key
