"""The sharded memory service (repro.sharding): placement, scatter/gather,
tenant QoS, and the Emulator queued-work/picklability contract.

Layers under test:

* **placement** — the level-1 (address -> shard) hash: determinism,
  range, order-preserving step splits;
* **service** — :class:`ShardedEmulator`: the shards=1 row is
  bit-identical to an unsharded emulator on *both* engines, the fast
  and reference fleets agree cost for cost, writes land in the owning
  shard, gather-barrier failures clear the scattered inboxes;
* **queued work + pickle** — the refactored Emulator contract: explicit
  ``submit``/``step``/``drain``, and a mid-run shard round-trips
  through ``pickle`` with a bit-identical continuation (the property
  that lets shards move into worker processes);
* **qos** — multi-tenant admission: strict priority, per-epoch quotas,
  and the per-tenant conservation law.
"""

import json
import pickle

import pytest

from repro.emulation import LeveledEmulator
from repro.emulation.base import StepCost
from repro.faults import RehashStormError
from repro.pram.trace import StepTrace, permutation_step, random_trace
from repro.sharding import (
    MultiTenantOnlineEmulator,
    MultiTenantWorkload,
    ShardPlacement,
    ShardedEmulator,
    TenantPolicy,
    merge_costs,
)
from repro.topology import DAryButterflyLeveled
from repro.traffic import (
    DeterministicArrivals,
    OnlineEmulator,
    PoissonArrivals,
    UniformKeys,
    WorkloadGenerator,
)

NET = DAryButterflyLeveled(2, 4)
N_PROCS = NET.column_size
SPACE = 4096
ENGINES = ("fast", "reference")


def make_factory(engine: str, **kwargs):
    def factory(index, seed):
        return LeveledEmulator(
            NET, SPACE, mode="crcw", seed=seed, engine=engine, **kwargs
        )

    return factory


def steps_for(n: int, *, kind: str = "read", start: int = 0):
    return [
        permutation_step(N_PROCS, SPACE, seed=100 + start + k, kind=kind)
        for k in range(n)
    ]


def costs_sans_modes(costs):
    """Step costs with the engine-mode labels stripped (the labels name
    the executing engine, so they differ across a differential pair by
    construction)."""
    out = []
    for c in costs:
        d = dict(c.__dict__)
        d.pop("run_modes")
        out.append(d)
    return out


# ---------------------------------------------------------------------------
# level-1 placement
# ---------------------------------------------------------------------------

class TestShardPlacement:
    def test_deterministic_under_seed(self):
        a = ShardPlacement(SPACE, 8, seed=3)
        b = ShardPlacement(SPACE, 8, seed=3)
        addrs = list(range(0, SPACE, 7))
        assert a.map(addrs).tolist() == b.map(addrs).tolist()

    def test_range_and_spread(self):
        p = ShardPlacement(SPACE, 8, seed=3)
        owners = p.map(list(range(SPACE)))
        assert owners.min() >= 0 and owners.max() < 8
        # a universal hash over 4096 addresses must touch every shard
        assert len(set(owners.tolist())) == 8

    def test_scalar_matches_vector(self):
        p = ShardPlacement(SPACE, 5, seed=9)
        addrs = list(range(0, 200, 3))
        assert [p.shard_of(a) for a in addrs] == p.map(addrs).tolist()

    def test_split_partitions_and_preserves_order(self):
        p = ShardPlacement(SPACE, 4, seed=1)
        step = random_trace(N_PROCS, SPACE, 1, seed=5).steps[0]
        parts = p.split(step)
        # every request lands in exactly the shard that owns its address
        for shard, sub in parts.items():
            for req in sub.reads + sub.writes:
                assert p.shard_of(req.addr) == shard
        # reassembling the per-shard reads in shard-scan order yields a
        # subsequence-stable partition of the original
        all_reads = [r for sub in parts.values() for r in sub.reads]
        assert sorted(map(id, all_reads)) == sorted(map(id, step.reads))
        for sub in parts.values():
            idx = [step.reads.index(r) for r in sub.reads]
            assert idx == sorted(idx)

    def test_single_shard_split_is_passthrough(self):
        p = ShardPlacement(SPACE, 1, seed=1)
        step = steps_for(1)[0]
        assert p.split(step) == {0: step}
        assert p.split(StepTrace()) == {}

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardPlacement(SPACE, 0, seed=1)


# ---------------------------------------------------------------------------
# gather cost merge
# ---------------------------------------------------------------------------

class TestMergeCosts:
    def test_empty_and_identity(self):
        assert merge_costs([]) == StepCost(0, 0)
        c = StepCost(5, 3, rehashes=1, combines=2, max_queue=4, requests=7,
                     stall_steps=6, run_modes=("batch",))
        assert merge_costs([c]) == c

    def test_time_maxed_events_summed(self):
        a = StepCost(10, 4, rehashes=1, combines=2, max_queue=3, requests=5,
                     credits_stalled=1, stall_steps=7, fault_stalls=2,
                     deadlock_retries=1, run_modes=("batch",))
        b = StepCost(6, 8, rehashes=2, combines=1, max_queue=9, requests=4,
                     credits_stalled=3, stall_steps=2, fault_stalls=1,
                     deadlock_retries=2, run_modes=("batch-constrained",))
        m = merge_costs([a, b])
        assert (m.request_steps, m.reply_steps) == (10, 8)  # slowest shard
        assert m.max_queue == 9 and m.stall_steps == 7
        assert m.rehashes == 3 and m.combines == 3 and m.requests == 9
        assert m.credits_stalled == 4 and m.fault_stalls == 3
        assert m.deadlock_retries == 3
        assert m.run_modes == ("batch", "batch-constrained")


# ---------------------------------------------------------------------------
# the Emulator queued-work API (submit / step / drain)
# ---------------------------------------------------------------------------

class TestQueuedWork:
    def test_submit_step_drain_matches_emulate_step(self):
        queued = LeveledEmulator(NET, SPACE, mode="crcw", seed=7)
        direct = LeveledEmulator(NET, SPACE, mode="crcw", seed=7)
        steps = steps_for(4)
        for s in steps:
            queued.submit(s)
        assert queued.pending == 4
        first = queued.step()
        rest = queued.drain()
        assert queued.pending == 0 and queued.step() is None
        assert [first] + rest == [direct.emulate_step(s) for s in steps]

    def test_inbox_survives_pickle(self):
        em = LeveledEmulator(NET, SPACE, mode="crcw", seed=7)
        em.submit(steps_for(1)[0])
        clone = pickle.loads(pickle.dumps(em))
        assert clone.pending == 1
        assert clone.step() == em.step()


# ---------------------------------------------------------------------------
# the scatter/gather service
# ---------------------------------------------------------------------------

class TestShardedEmulator:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_single_shard_bit_identical_to_unsharded(self, engine):
        service = ShardedEmulator(make_factory(engine), 1, SPACE, seed=42)
        bare = LeveledEmulator(
            NET, SPACE, mode="crcw", seed=service.shard_seeds[0], engine=engine
        )
        steps = steps_for(6)
        assert [service.emulate_step(s) for s in steps] == [
            bare.emulate_step(s) for s in steps
        ]
        assert service.virtual_clock == bare.virtual_clock

    def test_engine_differential_across_shards(self):
        steps = steps_for(6)
        fast = ShardedEmulator(make_factory("fast"), 4, SPACE, seed=42)
        ref = ShardedEmulator(make_factory("reference"), 4, SPACE, seed=42)
        cf = [fast.emulate_step(s) for s in steps]
        cr = [ref.emulate_step(s) for s in steps]
        assert costs_sans_modes(cf) == costs_sans_modes(cr)

    def test_writes_land_in_owning_shard(self):
        service = ShardedEmulator(make_factory("fast"), 4, SPACE, seed=42)
        step = permutation_step(N_PROCS, SPACE, seed=5, kind="write")
        service.emulate_step(step)
        for w in step.writes:
            owner = service.placement.shard_of(w.addr)
            assert service.shards[owner].memory.read(w.addr) == w.value
            # the facade routes the read to the same cell
            assert service.memory.read(w.addr) == w.value
            # shards that do not own the address never saw the write
            for i, shard in enumerate(service.shards):
                if i != owner:
                    assert shard.memory.read(w.addr) == 0

    def test_module_of_strides_by_shard(self):
        service = ShardedEmulator(make_factory("fast"), 4, SPACE, seed=42)
        stride = service.module_stride
        for addr in range(0, SPACE, 97):
            m = service.module_of(addr)
            shard = service.placement.shard_of(addr)
            assert m // stride == shard
            assert m % stride == service.shards[shard].module_of(addr)

    def test_seed_derivation_is_stable(self):
        a = ShardedEmulator(make_factory("fast"), 4, SPACE, seed=42)
        b = ShardedEmulator(make_factory("fast"), 4, SPACE, seed=42)
        assert a.placement_seed == b.placement_seed
        assert a.shard_seeds == b.shard_seeds

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedEmulator(make_factory("fast"), 0, SPACE, seed=1)
        with pytest.raises(TypeError):
            ShardedEmulator(lambda i, s: object(), 2, SPACE, seed=1)
        small = lambda i, s: LeveledEmulator(NET, SPACE // 2, seed=s)
        with pytest.raises(ValueError):
            ShardedEmulator(small, 2, SPACE, seed=1)

    def test_gather_failure_clears_scattered_inboxes(self):
        class FailingShard(LeveledEmulator):
            def emulate_step(self, step):
                raise RehashStormError("wedged", rehashes=3, stall_steps=11)

        def factory(index, seed):
            cls = FailingShard if index == 0 else LeveledEmulator
            return cls(NET, SPACE, mode="crcw", seed=seed, engine="fast")

        service = ShardedEmulator(factory, 4, SPACE, seed=42)
        with pytest.raises(RehashStormError):
            service.emulate_step(steps_for(1)[0])
        assert all(shard.pending == 0 for shard in service.shards)

    def test_online_driver_runs_a_sharded_service(self):
        service = ShardedEmulator(make_factory("fast"), 4, SPACE, seed=42)
        workload = WorkloadGenerator(
            N_PROCS,
            arrivals=PoissonArrivals(0.5 * N_PROCS),
            keys=UniformKeys(SPACE),
            seed=7,
        )
        report = OnlineEmulator(service, workload).run(12)
        assert report.conservation_deficit() == 0
        assert set(report.run_mode_counts()) <= {"batch", "batch-constrained"}
        # single-tenant runs account everything under "default"
        assert report.tenants == ["default"]
        assert report.tenant_conservation_deficits() == {"default": 0}

    def test_per_shard_credit_pools_compose(self):
        service = ShardedEmulator(
            make_factory("fast", node_capacity=2, flow_control="credit"),
            4,
            SPACE,
            seed=42,
        )
        costs = [service.emulate_step(s) for s in steps_for(4)]
        modes = {m for c in costs for m in c.run_modes}
        # request phases take the vectorized constrained-batch path on
        # every shard; replies run unconstrained, as on a bare emulator
        assert "batch-constrained" in modes
        assert modes <= {"batch", "batch-constrained"}


# ---------------------------------------------------------------------------
# picklability: a mid-run shard moves and continues bit-identically
# ---------------------------------------------------------------------------

class TestPicklability:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_midrun_shard_roundtrip_continues_identically(self, engine):
        em = LeveledEmulator(NET, SPACE, mode="crcw", seed=13, engine=engine)
        for s in steps_for(3, kind="write"):
            em.emulate_step(s)
        clone = pickle.loads(pickle.dumps(em))
        cont = steps_for(3, start=50)
        assert [em.emulate_step(s) for s in cont] == [
            clone.emulate_step(s) for s in cont
        ]
        assert em.virtual_clock == clone.virtual_clock
        assert em.memory.snapshot() == clone.memory.snapshot()

    @pytest.mark.parametrize("engine", ENGINES)
    def test_midrun_service_roundtrip(self, engine):
        service = ShardedEmulator(make_factory(engine), 4, SPACE, seed=42)
        for s in steps_for(3):
            service.emulate_step(s)
        clone = pickle.loads(pickle.dumps(service))
        cont = steps_for(3, start=50)
        assert [service.emulate_step(s) for s in cont] == [
            clone.emulate_step(s) for s in cont
        ]


# ---------------------------------------------------------------------------
# multi-tenant workloads
# ---------------------------------------------------------------------------

def _tenant_sources(rate: float = 4.0, read_fraction: float = 1.0):
    return {
        name: WorkloadGenerator(
            N_PROCS,
            arrivals=DeterministicArrivals(rate),
            keys=UniformKeys(SPACE),
            read_fraction=read_fraction,
            seed=i,
        )
        for i, name in enumerate(("gold", "silver", "bronze"))
    }


class TestMultiTenantWorkload:
    def test_stream_is_deterministic_and_labeled(self):
        wl = MultiTenantWorkload(_tenant_sources())
        s1, s2 = wl.stream(5), wl.stream(5)
        assert s1 == s2
        tenants = {r.tenant for epoch in s1 for r in epoch}
        assert tenants == {"gold", "silver", "bronze"}

    def test_rids_globally_unique_and_monotone(self):
        wl = MultiTenantWorkload(_tenant_sources())
        rids = [r.rid for epoch in wl.stream(5) for r in epoch]
        assert rids == sorted(rids) == list(range(len(rids)))

    def test_write_values_follow_renumbered_rids(self):
        wl = MultiTenantWorkload(_tenant_sources(read_fraction=0.0))
        for epoch in wl.stream(3):
            for r in epoch:
                assert r.kind == "write" and r.value == r.rid

    def test_address_space_mismatch_rejected(self):
        bad = _tenant_sources()
        bad["bronze"] = WorkloadGenerator(
            N_PROCS,
            arrivals=DeterministicArrivals(1.0),
            keys=UniformKeys(SPACE * 2),
            seed=9,
        )
        with pytest.raises(ValueError):
            MultiTenantWorkload(bad)
        with pytest.raises(ValueError):
            MultiTenantWorkload({})


# ---------------------------------------------------------------------------
# QoS admission
# ---------------------------------------------------------------------------

class TestTenantPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            TenantPolicy("t", qos="platinum")
        with pytest.raises(ValueError):
            TenantPolicy("t", quota=0)
        assert TenantPolicy("t", qos="gold").rank < TenantPolicy("t").rank


class TestQoSAdmission:
    POLICIES = (
        TenantPolicy("gold", qos="gold"),
        TenantPolicy("silver", qos="silver", quota=4),
        TenantPolicy("bronze", qos="bronze", quota=2),
    )

    def _driver(self, *, admit_limit=None, policies=POLICIES):
        em = LeveledEmulator(NET, SPACE, mode="crcw", seed=11, engine="fast")
        wl = MultiTenantWorkload(_tenant_sources())
        return MultiTenantOnlineEmulator(
            em, wl, policies=policies, admit_limit=admit_limit
        )

    def test_strict_priority_under_scarce_admission(self):
        # 4 gold arrive per epoch; an admit_limit of 4 means gold's
        # class priority must claim every admission slot.
        driver = self._driver(admit_limit=4, policies=(
            TenantPolicy("gold", qos="gold"),
            TenantPolicy("silver", qos="silver"),
            TenantPolicy("bronze", qos="bronze"),
        ))
        report = driver.run(4)
        first = report.epochs[0]
        assert first.delivered_by_tenant == {"gold": 4}

    def test_quota_caps_each_epoch(self):
        driver = self._driver()
        report = driver.run(8)
        for e in report.epochs:
            assert e.delivered_by_tenant.get("silver", 0) <= 4
            assert e.delivered_by_tenant.get("bronze", 0) <= 2

    def test_conservation_per_tenant(self):
        report = self._driver().run(10)
        assert all(
            v == 0 for v in report.tenant_conservation_deficits().values()
        )

    def test_unknown_tenant_gets_default_policy(self):
        driver = self._driver(policies=())
        assert driver.policy_for("nobody").qos == "silver"
        report = driver.run(4)
        assert all(
            v == 0 for v in report.tenant_conservation_deficits().values()
        )

    def test_duplicate_policy_rejected(self):
        em = LeveledEmulator(NET, SPACE, seed=1)
        wl = MultiTenantWorkload(_tenant_sources())
        with pytest.raises(ValueError):
            MultiTenantOnlineEmulator(
                em, wl, policies=(TenantPolicy("a"), TenantPolicy("a"))
            )

    def test_sharded_qos_engine_differential(self):
        def run(engine):
            service = ShardedEmulator(make_factory(engine), 4, SPACE, seed=42)
            wl = MultiTenantWorkload(_tenant_sources())
            return MultiTenantOnlineEmulator(
                service, wl, policies=self.POLICIES
            ).run(8)

        fast, ref = run("fast"), run("reference")
        strip = lambda d: {
            k: v for k, v in d.items() if k != "run_mode_counts"
        }

        def strip_epochs(dump):
            out = strip(dump)
            out["epochs"] = [
                {k: v for k, v in e.items() if k != "run_modes"}
                for e in dump["epochs"]
            ]
            return out

        assert json.dumps(strip_epochs(fast.to_dict()), sort_keys=True) == (
            json.dumps(strip_epochs(ref.to_dict()), sort_keys=True)
        )
